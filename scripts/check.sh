#!/usr/bin/env bash
# Lint gate: formatting + clippy across the whole workspace, warnings fatal,
# plus the perf-critical guarantees — benches must compile, the sharded
# runners must be thread-count invariant, the metrics layer must keep its
# merge-exactness/golden-schema promises, the trig-free phase-table /
# scratch-buffer readout fast path must stay bit-identical to the naive
# oracles, the streaming codec engine must stay byte-identical to its
# oracles and allocation-free in steady state, the predictor zoo must
# keep the paper adapter bit-identical and its leaderboard reproducible
# for any thread count, the gate-fusion engine must keep its classical
# record bit-identical to per-gate execution (amplitudes within 1e-12) and
# stay allocation-free across reused shot buffers, and the multi-tenant
# work-stealing shot scheduler must stay byte-identical for any worker
# count and any (forced) steal interleaving while isolating chunk panics
# to the owning job, and the streaming QEC decode engine must keep its
# cluster-then-match corrections bit-identical to the exact-DP oracle,
# its sliding window equal to offline decode, its steady state
# allocation-free, and its fig12d artifact byte-identical for any
# ARTERY_THREADS.
# Run locally before pushing; CI runs the same commands.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo bench --workspace --no-run
cargo test -p artery-bench --lib -q thread_invariance
cargo test -q -p artery-metrics
cargo test -q --test metrics
cargo test -q -p artery-readout
cargo test -q -p artery-core bit_identical
cargo test -q --test readout_fastpath
cargo test -q -p artery-pulse
cargo test -q -p artery-trace
cargo test -q --test codec_engine
cargo test -q --test codec_zero_alloc
cargo test -q --test trace
cargo test -q --test trace_zero_alloc
cargo test -q -p artery-predictors
cargo test -q --test predictors
cargo test -q --test fusion
cargo test -q --test fusion_zero_alloc
cargo test -q -p artery-qec
cargo test -q --test qec_decode
cargo test -q --test qec_zero_alloc

# Scheduler gates: thread-count invariance of a mixed multi-tenant queue
# (including the BENCH_metrics.json-style document), byte-identity under a
# forced adversarial steal interleaving, tree-merge associativity of the
# merge-exact aggregation structures, and panic isolation per tenant.
cargo test -q -p artery-bench --lib scheduler
cargo test -q --test scheduler
cargo test -q --test failure_injection

# Leaderboard smoke: a small corpus recorded into trace-v2 blocks,
# decoded and replayed with 1 and 8 workers — routed through the
# work-stealing scheduler (block-chunked panel jobs, sequential zoo jobs).
# The trace_eval binary itself asserts the oracle ranks first, the paper
# adapter replays bit-identically, the distilled leaderboards rank the
# panel and the zoo identically to the full-corpus replay and the
# distilled replay does ≥5× less work; here we additionally require the
# zoo leaderboard JSON *and* the distilled-replay JSON (weighted
# leaderboards + replay counters) to be byte-identical across thread
# counts, i.e. across completely different steal schedules.
cargo build --release -p artery-bench --bin trace_eval
ARTERY_SHOTS=40 ARTERY_THREADS=1 ./target/release/trace_eval --distill > /dev/null
cp target/experiments/predictors.json target/experiments/predictors.t1.json
cp target/experiments/distill.json target/experiments/distill.t1.json
ARTERY_SHOTS=40 ARTERY_THREADS=8 ./target/release/trace_eval --distill > /dev/null
cmp target/experiments/predictors.t1.json target/experiments/predictors.json
cmp target/experiments/distill.t1.json target/experiments/distill.json
rm target/experiments/predictors.t1.json target/experiments/distill.t1.json
echo "predictor + distilled leaderboards reproducible across thread counts"

# QEC memory harness: d = 3/5/7 streamed through the sliding-window
# decoder on the work-stealing scheduler with 1 and 8 workers. The binary
# itself asserts window == offline and component == chunked-oracle
# corrections per shot and a ≥10× d=7 decode speedup; here we additionally
# require the deterministic artifact (rates, event/component histograms,
# window commit/rollback counters) to be byte-identical across thread
# counts. Timings live in the separate qec_bench.json artifact, which is
# deliberately not byte-compared.
cargo build --release -p artery-bench --bin fig12d_distance_scaling
ARTERY_SHOTS=120 ARTERY_THREADS=1 ./target/release/fig12d_distance_scaling > /dev/null
cp target/experiments/fig12d_distance_scaling.json target/experiments/fig12d.t1.json
ARTERY_SHOTS=120 ARTERY_THREADS=8 ./target/release/fig12d_distance_scaling > /dev/null
cmp target/experiments/fig12d.t1.json target/experiments/fig12d_distance_scaling.json
rm target/experiments/fig12d.t1.json
echo "qec distance-scaling artifact reproducible across thread counts"
