#!/usr/bin/env bash
# Lint gate: formatting + clippy across the whole workspace, warnings fatal.
# Run locally before pushing; CI runs the same two commands.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
