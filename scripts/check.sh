#!/usr/bin/env bash
# Lint gate: formatting + clippy across the whole workspace, warnings fatal,
# plus the perf-critical guarantees — benches must compile, the sharded
# runners must be thread-count invariant, the metrics layer must keep its
# merge-exactness/golden-schema promises, the trig-free phase-table /
# scratch-buffer readout fast path must stay bit-identical to the naive
# oracles, and the streaming codec engine must stay byte-identical to its
# oracles and allocation-free in steady state. Run locally before pushing;
# CI runs the same commands.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo bench --workspace --no-run
cargo test -p artery-bench --lib -q thread_invariance
cargo test -q -p artery-metrics
cargo test -q --test metrics
cargo test -q -p artery-readout
cargo test -q -p artery-core bit_identical
cargo test -q --test readout_fastpath
cargo test -q -p artery-pulse
cargo test -q -p artery-trace
cargo test -q --test codec_engine
cargo test -q --test codec_zero_alloc
cargo test -q --test trace
