//! Stochastic readout pulse synthesis.

use artery_num::Complex64;
use rand::Rng;
use rand_distr_normal::sample_standard_normal;
use serde::{Deserialize, Serialize};

use crate::phase::PhaseTable;

/// Box–Muller standard normal sampling (rand's `StandardNormal` lives in
/// `rand_distr`, which is not in the approved dependency set).
mod rand_distr_normal {
    use rand::Rng;

    pub fn sample_standard_normal(rng: &mut impl Rng) -> f64 {
        // Box–Muller; reject u1 == 0 to avoid ln(0).
        loop {
            let u1: f64 = rng.gen();
            if u1 > f64::MIN_POSITIVE {
                let u2: f64 = rng.gen();
                return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            }
        }
    }
}

/// Physical model of one qubit's dispersive readout chain.
///
/// A readout pulse is a carrier at digital frequency `omega` (radians per
/// sample) whose phase is shifted by the qubit state — the dispersive shift
/// of Fig. 5 — plus complex white noise per ADC sample. A `|1⟩` qubit may
/// relax mid-readout (T1 decay), after which the remaining samples carry the
/// `|0⟩` phase; this is the dominant source of late-readout classification
/// error and the reason prediction cannot simply wait longer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadoutModel {
    /// ADC sample rate in gigasamples per second (paper: 1 GSPS).
    pub sample_rate_gsps: f64,
    /// Readout pulse duration in nanoseconds (paper: 2 µs).
    pub duration_ns: f64,
    /// Carrier digital frequency, radians per sample.
    pub omega: f64,
    /// Carrier amplitude (arbitrary units).
    pub amplitude: f64,
    /// Carrier phase when the qubit is `|0⟩`, radians.
    pub phase0: f64,
    /// Carrier phase when the qubit is `|1⟩`, radians.
    pub phase1: f64,
    /// Standard deviation of the complex noise per sample (each quadrature).
    pub noise_sigma: f64,
    /// Qubit T1 during readout, nanoseconds (decay applies to `|1⟩` pulses).
    pub t1_ns: f64,
}

impl ReadoutModel {
    /// The evaluation platform of §6.1: 1 GSPS ADC, 2 µs readout,
    /// T1 = 125 µs, with the signal-to-noise ratio calibrated so that full
    /// integration reaches the paper's 99.0 % readout fidelity and partial
    /// integration reproduces Fig. 15a (≈82.7 % at 0.75 µs, ≈90.6 % at
    /// 1 µs).
    #[must_use]
    pub fn paper() -> Self {
        Self {
            sample_rate_gsps: 1.0,
            duration_ns: 2000.0,
            omega: 0.35,
            amplitude: 1.0,
            phase0: 0.55,  // |0⟩ center at angle +0.55 rad
            phase1: -0.55, // |1⟩ center at angle −0.55 rad
            noise_sigma: 10.0,
            t1_ns: 125_000.0,
        }
    }

    /// Number of ADC samples in a full pulse.
    #[must_use]
    pub fn num_samples(&self) -> usize {
        (self.duration_ns * self.sample_rate_gsps).round() as usize
    }

    /// Converts a time offset (ns) into a sample index, clamped to the pulse.
    #[must_use]
    pub fn sample_at_ns(&self, t_ns: f64) -> usize {
        ((t_ns * self.sample_rate_gsps).round() as usize).min(self.num_samples())
    }

    /// Ideal (noise-free, decay-free) demodulated IQ center for a state.
    #[must_use]
    pub fn ideal_center(&self, state: bool) -> Complex64 {
        let phase = if state { self.phase1 } else { self.phase0 };
        Complex64::from_polar(self.amplitude, phase)
    }

    /// Synthesizes one readout pulse for a qubit in the given state.
    ///
    /// # Examples
    ///
    /// ```
    /// let model = artery_readout::ReadoutModel::paper();
    /// let mut rng = artery_num::rng::rng_for("doc/synth");
    /// let pulse = model.synthesize(false, &mut rng);
    /// assert_eq!(pulse.samples.len(), 2000);
    /// assert!(!pulse.true_state);
    /// ```
    #[must_use]
    pub fn synthesize(&self, state: bool, rng: &mut impl Rng) -> ReadoutPulse {
        let n = self.num_samples();
        // Sample a decay time for |1⟩ pulses: exponential with mean T1.
        let decay_at = if state && self.t1_ns.is_finite() {
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let t = -self.t1_ns * u.ln();
            (t < self.duration_ns).then_some(t)
        } else {
            None
        };
        let decay_sample = decay_at.map_or(usize::MAX, |t| self.sample_at_ns(t));
        let mut samples = Vec::with_capacity(n);
        for i in 0..n {
            let effective_state = state && i < decay_sample;
            let phase = if effective_state {
                self.phase1
            } else {
                self.phase0
            };
            let clean = Complex64::from_polar(self.amplitude, self.omega * (i as f64) + phase);
            let noise = Complex64::new(
                self.noise_sigma * sample_standard_normal(rng),
                self.noise_sigma * sample_standard_normal(rng),
            );
            samples.push(clean + noise);
        }
        ReadoutPulse {
            samples,
            true_state: state,
            decayed_at_ns: decay_at,
        }
    }

    /// Evaluates this model's carrier and demodulation phasors once; the
    /// resulting [`PhaseTable`] drives the trig-free `*_with` / `*_into`
    /// fast paths, which are bit-identical to the naive loops.
    #[must_use]
    pub fn phase_table(&self) -> PhaseTable {
        PhaseTable::for_model(self)
    }

    /// Trig-free [`Self::synthesize`]: identical RNG consumption and
    /// bit-identical samples, with the carrier read from `table` instead of
    /// evaluated per sample.
    ///
    /// # Panics
    ///
    /// Panics when `table` was built for a different carrier.
    #[must_use]
    pub fn synthesize_with(
        &self,
        table: &PhaseTable,
        state: bool,
        rng: &mut impl Rng,
    ) -> ReadoutPulse {
        let mut out = ReadoutPulse::default();
        self.synthesize_into(table, state, rng, &mut out);
        out
    }

    /// Zero-allocation [`Self::synthesize`]: writes the pulse into `out`,
    /// reusing its sample buffer. After the first call at this pulse length
    /// the steady state allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics when `table` was built for a different carrier.
    pub fn synthesize_into(
        &self,
        table: &PhaseTable,
        state: bool,
        rng: &mut impl Rng,
        out: &mut ReadoutPulse,
    ) {
        assert!(
            table.matches_model(self),
            "phase table was built for a different readout model"
        );
        let n = self.num_samples();
        // Identical decay draw to `synthesize` — the RNG stream must match
        // sample for sample so both paths see the same noise.
        let decay_at = if state && self.t1_ns.is_finite() {
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let t = -self.t1_ns * u.ln();
            (t < self.duration_ns).then_some(t)
        } else {
            None
        };
        let decay_sample = decay_at.map_or(usize::MAX, |t| self.sample_at_ns(t));
        out.samples.clear();
        out.samples.reserve(n);
        for i in 0..n {
            let effective_state = state && i < decay_sample;
            let clean = table.carrier(effective_state, i);
            let noise = Complex64::new(
                self.noise_sigma * sample_standard_normal(rng),
                self.noise_sigma * sample_standard_normal(rng),
            );
            out.samples.push(clean + noise);
        }
        out.true_state = state;
        out.decayed_at_ns = decay_at;
    }
}

/// One synthesized (or captured) readout pulse.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReadoutPulse {
    /// Complex ADC samples.
    pub samples: Vec<Complex64>,
    /// The qubit state that produced the pulse (ground truth label).
    pub true_state: bool,
    /// When the qubit relaxed mid-readout, the decay time in nanoseconds.
    pub decayed_at_ns: Option<f64>,
}

impl ReadoutPulse {
    /// Number of ADC samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the pulse holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_num::rng::rng_for;

    #[test]
    fn paper_model_dimensions() {
        let m = ReadoutModel::paper();
        assert_eq!(m.num_samples(), 2000);
        assert_eq!(m.sample_at_ns(1000.0), 1000);
        assert_eq!(m.sample_at_ns(1e9), 2000); // clamped
    }

    #[test]
    fn centers_are_separated() {
        let m = ReadoutModel::paper();
        let d = (m.ideal_center(false) - m.ideal_center(true)).norm();
        assert!(d > 0.5, "separation {d}");
    }

    #[test]
    fn synthesize_is_deterministic_per_seed() {
        let m = ReadoutModel::paper();
        let a = m.synthesize(true, &mut rng_for("model/det"));
        let b = m.synthesize(true, &mut rng_for("model/det"));
        assert_eq!(a, b);
    }

    #[test]
    fn ground_state_never_decays() {
        let m = ReadoutModel::paper();
        let mut rng = rng_for("model/ground");
        for _ in 0..32 {
            assert!(m.synthesize(false, &mut rng).decayed_at_ns.is_none());
        }
    }

    #[test]
    fn decay_rate_matches_t1() {
        let mut m = ReadoutModel::paper();
        m.t1_ns = 2000.0; // aggressive decay for the test
        let mut rng = rng_for("model/decay");
        let mut decayed = 0usize;
        const N: usize = 2000;
        for _ in 0..N {
            if m.synthesize(true, &mut rng).decayed_at_ns.is_some() {
                decayed += 1;
            }
        }
        let frac = decayed as f64 / N as f64;
        let expected = 1.0 - (-1.0f64).exp(); // 1 − e^{−2000/2000}
        assert!((frac - expected).abs() < 0.04, "decay fraction {frac}");
    }

    #[test]
    fn noise_scale_is_respected() {
        let mut m = ReadoutModel::paper();
        m.noise_sigma = 0.0;
        let mut rng = rng_for("model/clean");
        let pulse = m.synthesize(false, &mut rng);
        for (i, s) in pulse.samples.iter().enumerate() {
            let expected = Complex64::from_polar(m.amplitude, m.omega * i as f64 + m.phase0);
            assert!((*s - expected).norm() < 1e-12);
        }
    }

    #[test]
    fn table_synthesis_is_bit_identical() {
        let m = ReadoutModel::paper();
        let table = m.phase_table();
        for state in [false, true] {
            for seed in 0..8u64 {
                let label = format!("model/table-{state}-{seed}");
                let naive = m.synthesize(state, &mut rng_for(&label));
                let fast = m.synthesize_with(&table, state, &mut rng_for(&label));
                assert_eq!(naive, fast);
            }
        }
    }

    #[test]
    fn synthesize_into_reuses_the_buffer() {
        let m = ReadoutModel::paper();
        let table = m.phase_table();
        let mut out = ReadoutPulse::default();
        let mut rng = rng_for("model/reuse");
        m.synthesize_into(&table, true, &mut rng, &mut out);
        let cap = out.samples.capacity();
        m.synthesize_into(&table, false, &mut rng, &mut out);
        assert_eq!(out.samples.capacity(), cap);
        assert!(!out.true_state);
        assert_eq!(out.len(), m.num_samples());
    }

    #[test]
    #[should_panic(expected = "different readout model")]
    fn mismatched_table_panics() {
        let m = ReadoutModel::paper();
        let detuned = ReadoutModel { omega: 0.5, ..m };
        let table = detuned.phase_table();
        let _ = m.synthesize_with(&table, false, &mut rng_for("model/mismatch"));
    }

    #[test]
    fn paper_decay_probability_is_small() {
        // T1 = 125 µs over a 2 µs pulse → ~1.6 % decays.
        let m = ReadoutModel::paper();
        let mut rng = rng_for("model/paper-decay");
        let mut decayed = 0usize;
        const N: usize = 4000;
        for _ in 0..N {
            if m.synthesize(true, &mut rng).decayed_at_ns.is_some() {
                decayed += 1;
            }
        }
        let frac = decayed as f64 / N as f64;
        assert!(frac > 0.005 && frac < 0.035, "decay fraction {frac}");
    }
}
