//! Shared phase tables — the trig-free readout fast path.
//!
//! Every hot loop in the readout pipeline evaluates the same per-sample
//! phasors: synthesis needs the state-conditioned carrier
//! `A·e^{i(ωi+φ_s)}` and demodulation needs the conjugate carrier
//! `e^{−iωi}`. Both depend only on the sample index and the (fixed)
//! [`ReadoutModel`], so a [`PhaseTable`] evaluates them once per model and
//! the per-shot loops become pure multiply-adds — no `sin`/`cos` per
//! sample.
//!
//! # Bit-identity
//!
//! The table stores the *exact expressions* the naive loops evaluate —
//! `Complex64::from_polar(amplitude, omega·i + phase)` for the carriers
//! (not the algebraically equal but not bitwise-equal product
//! `A·cis(ωi)·cis(φ)`) and `Complex64::cis(−omega·i)` for the
//! demodulation factors. A table lookup therefore yields the same f64
//! bits as the trigonometric evaluation it replaces, and every consumer
//! (synthesis, windowed demodulation, the multiplexed line) produces
//! byte-identical output. The equivalence proptests in
//! `tests/properties.rs` pin this down.

use artery_num::Complex64;

use crate::demod::Demodulator;
use crate::model::ReadoutModel;

/// Precomputed per-sample carrier and demodulation phasors of one
/// [`ReadoutModel`].
///
/// # Examples
///
/// ```
/// use artery_readout::{PhaseTable, ReadoutModel};
///
/// let model = ReadoutModel::paper();
/// let table = PhaseTable::for_model(&model);
/// assert_eq!(table.len(), model.num_samples());
/// assert!(table.matches_model(&model));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTable {
    omega: f64,
    amplitude: f64,
    phase0: f64,
    phase1: f64,
    carrier0: Vec<Complex64>,
    carrier1: Vec<Complex64>,
    demod: Vec<Complex64>,
}

impl PhaseTable {
    /// Evaluates the carrier and demodulation phasors of `model` at every
    /// sample index of a full pulse.
    #[must_use]
    pub fn for_model(model: &ReadoutModel) -> Self {
        let n = model.num_samples();
        let mut carrier0 = Vec::with_capacity(n);
        let mut carrier1 = Vec::with_capacity(n);
        let mut demod = Vec::with_capacity(n);
        for i in 0..n {
            let angle = model.omega * (i as f64);
            carrier0.push(Complex64::from_polar(model.amplitude, angle + model.phase0));
            carrier1.push(Complex64::from_polar(model.amplitude, angle + model.phase1));
            demod.push(Complex64::cis(-model.omega * (i as f64)));
        }
        Self {
            omega: model.omega,
            amplitude: model.amplitude,
            phase0: model.phase0,
            phase1: model.phase1,
            carrier0,
            carrier1,
            demod,
        }
    }

    /// Number of tabulated sample indices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.demod.len()
    }

    /// Whether the table is empty (a zero-length model).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.demod.is_empty()
    }

    /// The state-conditioned carrier `A·e^{i(ω·i+φ_state)}` at sample `i`.
    #[inline]
    #[must_use]
    pub fn carrier(&self, state: bool, i: usize) -> Complex64 {
        if state {
            self.carrier1[i]
        } else {
            self.carrier0[i]
        }
    }

    /// The full carrier table for one state.
    #[must_use]
    pub fn carriers(&self, state: bool) -> &[Complex64] {
        if state {
            &self.carrier1
        } else {
            &self.carrier0
        }
    }

    /// The demodulation factors `e^{−iω·i}` for all sample indices.
    #[inline]
    #[must_use]
    pub fn demod_factors(&self) -> &[Complex64] {
        &self.demod
    }

    /// Whether this table was built from a model with the same carrier
    /// parameters and pulse length as `model`.
    ///
    /// Noise and T1 parameters are deliberately *not* compared: the table
    /// holds only deterministic carrier phasors, so e.g. the multiplexed
    /// line's `noise_sigma: 0` clean copies share their channel's table.
    #[must_use]
    pub fn matches_model(&self, model: &ReadoutModel) -> bool {
        self.omega.to_bits() == model.omega.to_bits()
            && self.amplitude.to_bits() == model.amplitude.to_bits()
            && self.phase0.to_bits() == model.phase0.to_bits()
            && self.phase1.to_bits() == model.phase1.to_bits()
            && self.len() == model.num_samples()
    }

    /// Whether this table's demodulation factors apply to `demod` (same
    /// carrier frequency).
    #[must_use]
    pub fn matches_demod(&self, demod: &Demodulator) -> bool {
        self.omega.to_bits() == demod.omega.to_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_naive_expressions() {
        let m = ReadoutModel::paper();
        let t = PhaseTable::for_model(&m);
        assert_eq!(t.len(), m.num_samples());
        for i in (0..t.len()).step_by(97) {
            let c0 = Complex64::from_polar(m.amplitude, m.omega * (i as f64) + m.phase0);
            let c1 = Complex64::from_polar(m.amplitude, m.omega * (i as f64) + m.phase1);
            let d = Complex64::cis(-m.omega * (i as f64));
            assert_eq!(t.carrier(false, i), c0);
            assert_eq!(t.carrier(true, i), c1);
            assert_eq!(t.demod_factors()[i], d);
        }
    }

    #[test]
    fn matching_ignores_noise_parameters() {
        let m = ReadoutModel::paper();
        let t = PhaseTable::for_model(&m);
        let clean = ReadoutModel {
            noise_sigma: 0.0,
            t1_ns: f64::INFINITY,
            ..m
        };
        assert!(t.matches_model(&clean));
        let detuned = ReadoutModel { omega: 0.36, ..m };
        assert!(!t.matches_model(&detuned));
    }

    #[test]
    fn matching_respects_demodulator_frequency() {
        let m = ReadoutModel::paper();
        let t = PhaseTable::for_model(&m);
        let demod = Demodulator::for_model(&m, 30.0);
        assert!(t.matches_demod(&demod));
        let other = Demodulator {
            omega: 0.5,
            ..demod
        };
        assert!(!t.matches_demod(&other));
    }
}
