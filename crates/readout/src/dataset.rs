//! Labelled pulse datasets with train/test splits.
//!
//! The paper collects 4,000 readout pulses from its device per benchmark,
//! using 1,000 for parameter training and the rest for latency testing
//! (§6.1). That dataset is private, so we regenerate its statistical
//! properties: pulses are drawn from a [`ReadoutModel`] with the benchmark's
//! branch prior `p1` (the probability the measured qubit is `|1⟩`).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::model::{ReadoutModel, ReadoutPulse};

/// A labelled collection of readout pulses from one feedback site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    pulses: Vec<ReadoutPulse>,
    p1: f64,
}

impl Dataset {
    /// Draws `n` pulses whose true states are Bernoulli(`p1`).
    ///
    /// # Panics
    ///
    /// Panics when `p1` is outside `[0, 1]`.
    #[must_use]
    pub fn generate(model: &ReadoutModel, p1: f64, n: usize, rng: &mut impl Rng) -> Self {
        assert!((0.0..=1.0).contains(&p1), "p1 must be a probability");
        let pulses = (0..n)
            .map(|_| model.synthesize(rng.gen::<f64>() < p1, rng))
            .collect();
        Self { pulses, p1 }
    }

    /// The paper's per-benchmark dataset size: 4,000 pulses.
    #[must_use]
    pub fn paper_size(model: &ReadoutModel, p1: f64, rng: &mut impl Rng) -> Self {
        Self::generate(model, p1, 4000, rng)
    }

    /// All pulses.
    #[must_use]
    pub fn pulses(&self) -> &[ReadoutPulse] {
        &self.pulses
    }

    /// The generating prior for `|1⟩`.
    #[must_use]
    pub fn p1(&self) -> f64 {
        self.p1
    }

    /// Number of pulses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pulses.len()
    }

    /// Whether the dataset is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pulses.is_empty()
    }

    /// Empirical fraction of `|1⟩` labels.
    #[must_use]
    pub fn empirical_p1(&self) -> f64 {
        if self.pulses.is_empty() {
            return 0.0;
        }
        self.pulses.iter().filter(|p| p.true_state).count() as f64 / self.pulses.len() as f64
    }

    /// Splits into `train_len` training pulses and the remaining test
    /// pulses (paper: 1,000 / 3,000).
    ///
    /// # Panics
    ///
    /// Panics when `train_len` exceeds the dataset size.
    #[must_use]
    pub fn split(&self, train_len: usize) -> DatasetSplit<'_> {
        assert!(train_len <= self.pulses.len(), "train split too large");
        DatasetSplit {
            train: &self.pulses[..train_len],
            test: &self.pulses[train_len..],
        }
    }
}

/// Borrowed train/test views of a [`Dataset`].
#[derive(Debug, Clone, Copy)]
pub struct DatasetSplit<'a> {
    /// Training pulses (parameter fitting: centers, state tables).
    pub train: &'a [ReadoutPulse],
    /// Held-out pulses (latency/accuracy evaluation).
    pub test: &'a [ReadoutPulse],
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_num::rng::rng_for;

    #[test]
    fn generate_respects_prior() {
        let m = ReadoutModel::paper();
        let mut rng = rng_for("dataset/prior");
        let ds = Dataset::generate(&m, 0.3, 3000, &mut rng);
        assert!((ds.empirical_p1() - 0.3).abs() < 0.03);
        assert_eq!(ds.p1(), 0.3);
    }

    #[test]
    fn paper_size_is_4000() {
        let m = ReadoutModel::paper();
        let mut rng = rng_for("dataset/size");
        let ds = Dataset::paper_size(&m, 0.5, &mut rng);
        assert_eq!(ds.len(), 4000);
    }

    #[test]
    fn split_partitions() {
        let m = ReadoutModel::paper();
        let mut rng = rng_for("dataset/split");
        let ds = Dataset::generate(&m, 0.5, 40, &mut rng);
        let split = ds.split(10);
        assert_eq!(split.train.len(), 10);
        assert_eq!(split.test.len(), 30);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_split_panics() {
        let m = ReadoutModel::paper();
        let mut rng = rng_for("dataset/oversplit");
        let ds = Dataset::generate(&m, 0.5, 4, &mut rng);
        let _ = ds.split(5);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_prior_panics() {
        let m = ReadoutModel::paper();
        let mut rng = rng_for("dataset/badprior");
        let _ = Dataset::generate(&m, 1.5, 4, &mut rng);
    }

    #[test]
    fn empty_dataset_prior_is_zero() {
        let m = ReadoutModel::paper();
        let mut rng = rng_for("dataset/empty");
        let ds = Dataset::generate(&m, 0.5, 0, &mut rng);
        assert!(ds.is_empty());
        assert_eq!(ds.empirical_p1(), 0.0);
    }
}
