//! Dispersive-readout physics: pulse synthesis, demodulation and IQ
//! trajectories.
//!
//! On superconducting hardware a qubit is read by driving its readout
//! resonator and observing the state-dependent phase (dispersive) shift of
//! the reflected pulse (paper §4, Fig. 5). ARTERY's real-time predictor works
//! on *partial* readout pulses, so this crate models the readout as a stream
//! of complex ADC samples:
//!
//! * [`ReadoutModel`] synthesizes pulses — a carrier with a state-dependent
//!   phase, white IQ noise, and mid-readout T1 decay events that make late
//!   windows of a `|1⟩` pulse look like `|0⟩`,
//! * [`Demodulator`] implements the paper's windowed I/Q demodulation
//!   equations and cumulative-integration trajectories,
//! * [`IqCenters`] calibrates the `|0⟩`/`|1⟩` cluster centers and classifies
//!   IQ points,
//! * [`Dataset`] draws the train/test pulse collections the evaluation uses
//!   (the paper's 4,000-pulse device dataset is private; see DESIGN.md),
//! * [`PhaseTable`] caches every per-sample carrier/demodulation phasor of a
//!   model so the hot `*_with` / `*_into` paths run trig-free and
//!   allocation-free while staying bit-identical to the naive loops.
//!
//! # Examples
//!
//! ```
//! use artery_readout::{Demodulator, ReadoutModel};
//!
//! let model = ReadoutModel::paper();
//! let mut rng = artery_num::rng::rng_for("doc/readout");
//! let pulse = model.synthesize(true, &mut rng);
//! let demod = Demodulator::for_model(&model, 30.0); // 30 ns windows
//! let trajectory = demod.cumulative_trajectory(&pulse);
//! assert_eq!(trajectory.len(), 66); // 2 µs / 30 ns
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classifier;
mod dataset;
mod demod;
mod model;
mod multiplex;
mod phase;

pub use classifier::IqCenters;
pub use dataset::{Dataset, DatasetSplit};
pub use demod::{Demodulator, IqPoint};
pub use model::{ReadoutModel, ReadoutPulse};
pub use multiplex::{MultiplexedLine, MultiplexedPulse};
pub use phase::PhaseTable;
