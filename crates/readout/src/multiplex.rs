//! Frequency-multiplexed readout lines.
//!
//! The evaluation platform reads 3 qubits per line using frequency
//! multiplexing (§6.1): each qubit's resonator is probed at its own carrier
//! frequency, the line carries the sum, and the controller demodulates each
//! channel with its own digital oscillator. Channel carriers must be far
//! enough apart that the windowed demodulation of one carrier averages the
//! others to (near) zero.

use artery_num::Complex64;
use rand::Rng;

use crate::demod::{Demodulator, IqPoint};
use crate::model::{ReadoutModel, ReadoutPulse};
use crate::phase::PhaseTable;

/// A readout line shared by several frequency-multiplexed channels.
#[derive(Debug, Clone)]
pub struct MultiplexedLine {
    channels: Vec<ReadoutModel>,
    /// Per-channel carrier/demod phasors, shared by synthesis and
    /// demultiplexing (built once at construction).
    tables: Vec<PhaseTable>,
    /// Phasors of the amplitude-zero line-noise model.
    noise_table: PhaseTable,
}

/// A captured multiplexed pulse: summed samples plus per-channel ground
/// truth.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiplexedPulse {
    /// Summed complex ADC samples of the whole line.
    pub samples: Vec<Complex64>,
    /// The state of each channel's qubit (ground truth labels).
    pub true_states: Vec<bool>,
}

impl MultiplexedLine {
    /// Builds a line with `n` channels derived from a base model, carriers
    /// spaced by `spacing` radians/sample.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero or the spacing would push a carrier past the
    /// Nyquist limit (π radians/sample).
    #[must_use]
    pub fn new(base: &ReadoutModel, n: usize, spacing: f64) -> Self {
        assert!(n >= 1, "a line needs at least one channel");
        let top = base.omega + spacing * (n as f64 - 1.0);
        assert!(
            top < std::f64::consts::PI,
            "carrier {top:.3} rad/sample beyond Nyquist"
        );
        let channels: Vec<ReadoutModel> = (0..n)
            .map(|k| ReadoutModel {
                omega: base.omega + spacing * k as f64,
                ..*base
            })
            .collect();
        let tables = channels.iter().map(PhaseTable::for_model).collect();
        let noise_table = PhaseTable::for_model(&ReadoutModel {
            amplitude: 0.0,
            ..channels[0]
        });
        Self {
            channels,
            tables,
            noise_table,
        }
    }

    /// The paper's configuration: 3 channels per line.
    #[must_use]
    pub fn paper() -> Self {
        Self::new(&ReadoutModel::paper(), 3, 0.9)
    }

    /// Number of channels.
    #[must_use]
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// The per-channel synthesis models.
    #[must_use]
    pub fn channels(&self) -> &[ReadoutModel] {
        &self.channels
    }

    /// Synthesizes one multiplexed capture for the given qubit states.
    ///
    /// # Panics
    ///
    /// Panics when `states.len()` differs from the channel count.
    #[must_use]
    pub fn synthesize(&self, states: &[bool], rng: &mut impl Rng) -> MultiplexedPulse {
        assert_eq!(states.len(), self.channels.len(), "one state per channel");
        let n = self.channels[0].num_samples();
        let mut samples = vec![Complex64::ZERO; n];
        // The carriers sum cleanly; the noise floor (amplifier chain) is a
        // property of the *line* and is added once, so per-channel SNR
        // matches the single-channel model up to carrier leakage. Each
        // channel's carrier comes from its shared phase table (bit-identical
        // to per-sample `from_polar`), and one scratch pulse is reused.
        let mut scratch = ReadoutPulse::default();
        for ((model, table), &state) in self.channels.iter().zip(&self.tables).zip(states) {
            let clean = ReadoutModel {
                noise_sigma: 0.0,
                ..*model
            };
            clean.synthesize_into(table, state, rng, &mut scratch);
            for (acc, s) in samples.iter_mut().zip(&scratch.samples) {
                *acc += *s;
            }
        }
        let sigma = self.channels[0].noise_sigma;
        let noise_only = ReadoutModel {
            amplitude: 0.0,
            noise_sigma: sigma,
            ..self.channels[0]
        };
        noise_only.synthesize_into(&self.noise_table, false, rng, &mut scratch);
        for (acc, s) in samples.iter_mut().zip(&scratch.samples) {
            *acc += *s;
        }
        MultiplexedPulse {
            samples,
            true_states: states.to_vec(),
        }
    }

    /// Demultiplexes one channel of a captured pulse into a standard
    /// [`ReadoutPulse`] that the per-channel demodulator/classifier stack
    /// can consume.
    ///
    /// # Panics
    ///
    /// Panics when `channel` is out of range.
    #[must_use]
    pub fn channel_view(&self, pulse: &MultiplexedPulse, channel: usize) -> ReadoutPulse {
        assert!(channel < self.channels.len(), "channel out of range");
        ReadoutPulse {
            samples: pulse.samples.clone(),
            true_state: pulse.true_states[channel],
            decayed_at_ns: None,
        }
    }

    /// Full-integration classification of one channel: demodulate at the
    /// channel's own carrier and compare against its scaled ideal centers.
    ///
    /// # Panics
    ///
    /// Panics when `channel` is out of range.
    #[must_use]
    pub fn classify_channel(
        &self,
        pulse: &MultiplexedPulse,
        channel: usize,
        window_ns: f64,
    ) -> bool {
        let model = &self.channels[channel];
        let demod = Demodulator::for_model(model, window_ns);
        // Demodulate straight off the shared wire samples through the
        // channel's phase table — no per-channel pulse clone, no per-sample
        // `cis`; bit-identical to the naive `channel_view` path.
        let len = pulse.samples.len().max(1);
        let iq = demod.demodulate_slice_with(&self.tables[channel], &pulse.samples, 0, len);
        let c0 = IqPoint::from(model.ideal_center(false));
        let c1 = IqPoint::from(model.ideal_center(true));
        iq.distance_sq(&c1) < iq.distance_sq(&c0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_num::rng::rng_for;

    #[test]
    fn paper_line_has_three_channels() {
        let line = MultiplexedLine::paper();
        assert_eq!(line.num_channels(), 3);
        // Carriers are distinct and below Nyquist.
        let omegas: Vec<f64> = line.channels().iter().map(|c| c.omega).collect();
        assert!(omegas.windows(2).all(|w| w[1] > w[0]));
        assert!(*omegas.last().unwrap() < std::f64::consts::PI);
    }

    #[test]
    #[should_panic(expected = "Nyquist")]
    fn too_many_channels_panic() {
        let _ = MultiplexedLine::new(&ReadoutModel::paper(), 8, 0.9);
    }

    #[test]
    fn demux_recovers_every_channel() {
        let line = MultiplexedLine::paper();
        let mut rng = rng_for("mux/recover");
        let mut correct = [0usize; 3];
        const N: usize = 300;
        for k in 0..N {
            let states = [k % 2 == 0, k % 3 == 0, k % 5 == 0];
            let pulse = line.synthesize(&states, &mut rng);
            for (ch, &truth) in states.iter().enumerate() {
                correct[ch] += usize::from(line.classify_channel(&pulse, ch, 30.0) == truth);
            }
        }
        for (ch, &c) in correct.iter().enumerate() {
            let acc = c as f64 / N as f64;
            assert!(acc > 0.93, "channel {ch} accuracy {acc}");
        }
    }

    #[test]
    fn crosstalk_is_bounded() {
        // Flipping channel 2's state must not change channel 0's
        // classification statistics materially.
        let line = MultiplexedLine::paper();
        let mut rng = rng_for("mux/crosstalk");
        let mut flips = 0usize;
        const N: usize = 200;
        for k in 0..N {
            let s0 = k % 2 == 0;
            let a = line.synthesize(&[s0, false, false], &mut rng);
            let b = line.synthesize(&[s0, true, true], &mut rng);
            let ca = line.classify_channel(&a, 0, 30.0);
            let cb = line.classify_channel(&b, 0, 30.0);
            flips += usize::from(ca != cb);
        }
        assert!(
            (flips as f64 / N as f64) < 0.15,
            "crosstalk flip rate {flips}/{N}"
        );
    }

    #[test]
    fn single_channel_line_matches_base_model() {
        let base = ReadoutModel::paper();
        let line = MultiplexedLine::new(&base, 1, 0.9);
        let mut rng = rng_for("mux/single");
        let pulse = line.synthesize(&[true], &mut rng);
        assert!(line.classify_channel(&pulse, 0, 30.0));
        assert_eq!(pulse.samples.len(), base.num_samples());
    }

    #[test]
    fn table_synthesis_matches_naive_oracle() {
        // The naive oracle re-derives the pre-phase-table implementation:
        // per-channel clean synthesis with per-sample `from_polar`, then one
        // line-noise pulse, consuming the same RNG stream.
        let line = MultiplexedLine::paper();
        for seed in 0..4u64 {
            let label = format!("mux/oracle-{seed}");
            let states = [seed % 2 == 0, seed % 3 == 0, true];
            let got = line.synthesize(&states, &mut rng_for(&label));

            let mut rng = rng_for(&label);
            let n = line.channels()[0].num_samples();
            let mut samples = vec![Complex64::ZERO; n];
            for (model, &state) in line.channels().iter().zip(&states) {
                let clean = ReadoutModel {
                    noise_sigma: 0.0,
                    ..*model
                };
                let pulse = clean.synthesize(state, &mut rng);
                for (acc, s) in samples.iter_mut().zip(&pulse.samples) {
                    *acc += *s;
                }
            }
            let noise_only = ReadoutModel {
                amplitude: 0.0,
                ..line.channels()[0]
            };
            let noise = noise_only.synthesize(false, &mut rng);
            for (acc, s) in samples.iter_mut().zip(&noise.samples) {
                *acc += *s;
            }
            assert_eq!(got.samples, samples);
        }
    }

    #[test]
    fn table_channel_classification_matches_naive_view() {
        let line = MultiplexedLine::paper();
        let mut rng = rng_for("mux/classify-oracle");
        for k in 0..16 {
            let states = [k % 2 == 0, k % 3 == 0, k % 5 == 0];
            let pulse = line.synthesize(&states, &mut rng);
            for ch in 0..line.num_channels() {
                let model = &line.channels()[ch];
                let demod = Demodulator::for_model(model, 30.0);
                let view = line.channel_view(&pulse, ch);
                let iq = demod.integrate_prefix(&view, view.samples.len());
                let c0 = IqPoint::from(model.ideal_center(false));
                let c1 = IqPoint::from(model.ideal_center(true));
                let naive = iq.distance(&c1) < iq.distance(&c0);
                assert_eq!(line.classify_channel(&pulse, ch, 30.0), naive);
            }
        }
    }

    #[test]
    #[should_panic(expected = "one state per channel")]
    fn wrong_state_count_panics() {
        let line = MultiplexedLine::paper();
        let mut rng = rng_for("mux/wrong");
        let _ = line.synthesize(&[true], &mut rng);
    }
}
