//! Windowed IQ demodulation — the paper's §4 equations.

use artery_num::Complex64;
use serde::{Deserialize, Serialize};

use crate::model::{ReadoutModel, ReadoutPulse};
use crate::phase::PhaseTable;

/// One demodulated point in the IQ plane.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct IqPoint {
    /// In-phase component.
    pub i: f64,
    /// Quadrature component.
    pub q: f64,
}

impl IqPoint {
    /// Constructs an IQ point.
    #[must_use]
    pub fn new(i: f64, q: f64) -> Self {
        Self { i, q }
    }

    /// Euclidean distance to another point.
    #[must_use]
    pub fn distance(&self, other: &IqPoint) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance — `sqrt`-free, and monotone in
    /// [`Self::distance`], so nearest-center comparisons on squared
    /// distances make the same decisions.
    #[must_use]
    pub fn distance_sq(&self, other: &IqPoint) -> f64 {
        (self.i - other.i).powi(2) + (self.q - other.q).powi(2)
    }

    /// Conversion to a complex number `I + iQ`.
    #[must_use]
    pub fn to_complex(self) -> Complex64 {
        Complex64::new(self.i, self.q)
    }
}

impl From<Complex64> for IqPoint {
    fn from(z: Complex64) -> Self {
        Self { i: z.re, q: z.im }
    }
}

/// Windowed demodulator implementing the paper's I/Q equations:
///
/// ```text
/// I = 1/(L+1) Σ (aᵢ.re·cos(ωi) + aᵢ.im·sin(ωi))
/// Q = 1/(L+1) Σ (aᵢ.im·cos(ωi) − aᵢ.re·sin(ωi))
/// ```
///
/// which is the real/imaginary part of the mean of `aᵢ·e^{−iωi}` (scaled by
/// `L/(L+1)`). The demodulator also produces the *cumulative* trajectory —
/// the IQ of all samples received so far at each window boundary — which is
/// what the trajectory predictor consumes: integrating longer shrinks the
/// noise, so the trajectory spirals into the state's center (Fig. 5 (b)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Demodulator {
    /// Carrier digital frequency (radians per sample); must match the
    /// synthesis model.
    pub omega: f64,
    /// Samples per demodulation window.
    pub window_samples: usize,
}

impl Demodulator {
    /// Builds a demodulator matching `model` with the given window length in
    /// nanoseconds (paper default 30 ns).
    ///
    /// # Panics
    ///
    /// Panics when the window is shorter than one sample.
    #[must_use]
    pub fn for_model(model: &ReadoutModel, window_ns: f64) -> Self {
        let window_samples = (window_ns * model.sample_rate_gsps).round() as usize;
        assert!(window_samples >= 1, "demodulation window too short");
        Self {
            omega: model.omega,
            window_samples,
        }
    }

    /// Demodulates one sample range `[start, start + len)` of a pulse using
    /// the paper's equations. Sample phases use the *absolute* index so
    /// windows are phase-coherent.
    ///
    /// # Panics
    ///
    /// Panics when the range exceeds the pulse.
    #[must_use]
    pub fn demodulate_range(&self, pulse: &ReadoutPulse, start: usize, len: usize) -> IqPoint {
        assert!(start + len <= pulse.len(), "window exceeds pulse");
        assert!(len > 0, "empty demodulation window");
        let mut acc = Complex64::ZERO;
        for (k, a) in pulse.samples[start..start + len].iter().enumerate() {
            let i = (start + k) as f64;
            // a·e^{−iωi}: Re gives the paper's I integrand, Im gives Q.
            acc += *a * Complex64::cis(-self.omega * i);
        }
        let scaled = acc / (len as f64 + 1.0);
        IqPoint::new(scaled.re, scaled.im)
    }

    /// Trig-free [`Self::demodulate_range`]: the factors `e^{−iωi}` are
    /// read from `table` instead of evaluated per sample. Bit-identical to
    /// the naive path.
    ///
    /// # Panics
    ///
    /// Panics when the range exceeds the pulse or the table does not match
    /// this demodulator.
    #[must_use]
    pub fn demodulate_range_with(
        &self,
        table: &PhaseTable,
        pulse: &ReadoutPulse,
        start: usize,
        len: usize,
    ) -> IqPoint {
        self.demodulate_slice_with(table, &pulse.samples, start, len)
    }

    /// [`Self::demodulate_range_with`] over a raw sample slice — lets the
    /// multiplexed line demodulate a channel directly from the shared wire
    /// samples without cloning a per-channel [`ReadoutPulse`] view.
    ///
    /// # Panics
    ///
    /// Panics when the range exceeds the samples or the table is too short
    /// or mismatched.
    #[must_use]
    pub fn demodulate_slice_with(
        &self,
        table: &PhaseTable,
        samples: &[Complex64],
        start: usize,
        len: usize,
    ) -> IqPoint {
        assert!(start + len <= samples.len(), "window exceeds pulse");
        assert!(len > 0, "empty demodulation window");
        assert!(
            table.matches_demod(self),
            "phase table was built for a different carrier frequency"
        );
        let factors = table.demod_factors();
        assert!(
            start + len <= factors.len(),
            "phase table shorter than pulse"
        );
        let mut acc = Complex64::ZERO;
        for (a, f) in samples[start..start + len]
            .iter()
            .zip(&factors[start..start + len])
        {
            acc += *a * *f;
        }
        let scaled = acc / (len as f64 + 1.0);
        IqPoint::new(scaled.re, scaled.im)
    }

    /// Number of whole windows in a pulse.
    #[must_use]
    pub fn num_windows(&self, pulse: &ReadoutPulse) -> usize {
        pulse.len() / self.window_samples
    }

    /// Per-window IQ points (the demodulation result queue of Fig. 7 (c),
    /// depth = pulse length / window length).
    #[must_use]
    pub fn window_trajectory(&self, pulse: &ReadoutPulse) -> Vec<IqPoint> {
        (0..self.num_windows(pulse))
            .map(|w| self.demodulate_range(pulse, w * self.window_samples, self.window_samples))
            .collect()
    }

    /// Cumulative IQ at each window boundary: entry `w` integrates samples
    /// `[0, (w+1)·window)`. Noise shrinks as `1/√t`, so points converge to
    /// the state center.
    #[must_use]
    pub fn cumulative_trajectory(&self, pulse: &ReadoutPulse) -> Vec<IqPoint> {
        let mut out = Vec::with_capacity(self.num_windows(pulse));
        self.fold_cumulative(pulse, |iq| out.push(iq));
        out
    }

    /// Streams the cumulative trajectory through `sink`, one point per
    /// window boundary, without materializing a `Vec<IqPoint>`. This is the
    /// naive-`cis` walk — the oracle the table-driven
    /// [`Self::fold_cumulative_with`] is tested against — and the single
    /// pass the fused demodulate+classify path builds on.
    pub fn fold_cumulative(&self, pulse: &ReadoutPulse, mut sink: impl FnMut(IqPoint)) {
        let n = self.num_windows(pulse);
        let mut acc = Complex64::ZERO;
        let mut count = 0usize;
        for w in 0..n {
            let start = w * self.window_samples;
            for (k, a) in pulse.samples[start..start + self.window_samples]
                .iter()
                .enumerate()
            {
                let i = (start + k) as f64;
                acc += *a * Complex64::cis(-self.omega * i);
            }
            count += self.window_samples;
            let scaled = acc / (count as f64 + 1.0);
            sink(IqPoint::new(scaled.re, scaled.im));
        }
    }

    /// Trig-free [`Self::fold_cumulative`]: demodulation factors come from
    /// `table`. Bit-identical to the naive walk.
    ///
    /// # Panics
    ///
    /// Panics when the table does not match this demodulator or is shorter
    /// than the pulse's whole windows.
    pub fn fold_cumulative_with(
        &self,
        table: &PhaseTable,
        pulse: &ReadoutPulse,
        mut sink: impl FnMut(IqPoint),
    ) {
        let n = self.num_windows(pulse);
        assert!(
            table.matches_demod(self),
            "phase table was built for a different carrier frequency"
        );
        let factors = table.demod_factors();
        assert!(
            n * self.window_samples <= factors.len(),
            "phase table shorter than pulse"
        );
        let mut acc = Complex64::ZERO;
        let mut count = 0usize;
        for w in 0..n {
            let start = w * self.window_samples;
            for (a, f) in pulse.samples[start..start + self.window_samples]
                .iter()
                .zip(&factors[start..start + self.window_samples])
            {
                acc += *a * *f;
            }
            count += self.window_samples;
            let scaled = acc / (count as f64 + 1.0);
            sink(IqPoint::new(scaled.re, scaled.im));
        }
    }

    /// Trig-free, allocating [`Self::cumulative_trajectory`].
    ///
    /// # Panics
    ///
    /// Panics when the table is mismatched or too short.
    #[must_use]
    pub fn cumulative_trajectory_with(
        &self,
        table: &PhaseTable,
        pulse: &ReadoutPulse,
    ) -> Vec<IqPoint> {
        let mut out = Vec::with_capacity(self.num_windows(pulse));
        self.fold_cumulative_with(table, pulse, |iq| out.push(iq));
        out
    }

    /// Zero-allocation [`Self::cumulative_trajectory`]: clears and refills
    /// `out`, retaining its capacity across shots.
    ///
    /// # Panics
    ///
    /// Panics when the table is mismatched or too short.
    pub fn cumulative_trajectory_into(
        &self,
        table: &PhaseTable,
        pulse: &ReadoutPulse,
        out: &mut Vec<IqPoint>,
    ) {
        out.clear();
        out.reserve(self.num_windows(pulse));
        self.fold_cumulative_with(table, pulse, |iq| out.push(iq));
    }

    /// Cumulative IQ using only the first `t_ns` nanoseconds of the pulse
    /// (full-pulse classification uses `t_ns = duration`).
    #[must_use]
    pub fn integrate_prefix(&self, pulse: &ReadoutPulse, samples: usize) -> IqPoint {
        let n = samples.min(pulse.len()).max(1);
        self.demodulate_range(pulse, 0, n)
    }

    /// Trig-free [`Self::integrate_prefix`].
    ///
    /// # Panics
    ///
    /// Panics when the table is mismatched or too short.
    #[must_use]
    pub fn integrate_prefix_with(
        &self,
        table: &PhaseTable,
        pulse: &ReadoutPulse,
        samples: usize,
    ) -> IqPoint {
        let n = samples.min(pulse.len()).max(1);
        self.demodulate_range_with(table, pulse, 0, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_num::rng::rng_for;

    fn clean_model() -> ReadoutModel {
        ReadoutModel {
            noise_sigma: 0.0,
            t1_ns: f64::INFINITY,
            ..ReadoutModel::paper()
        }
    }

    #[test]
    fn clean_pulse_demodulates_to_center() {
        let m = clean_model();
        let mut rng = rng_for("demod/clean");
        let demod = Demodulator::for_model(&m, 30.0);
        for state in [false, true] {
            let pulse = m.synthesize(state, &mut rng);
            let iq = demod.integrate_prefix(&pulse, pulse.len());
            let center = IqPoint::from(m.ideal_center(state));
            // 1/(L+1) vs 1/L scaling plus finite-sum carrier leakage.
            assert!(iq.distance(&center) < 0.05, "iq {iq:?} vs {center:?}");
        }
    }

    #[test]
    fn window_count_matches_duration() {
        let m = ReadoutModel::paper();
        let demod = Demodulator::for_model(&m, 30.0);
        let pulse = m.synthesize(false, &mut rng_for("demod/windows"));
        assert_eq!(demod.num_windows(&pulse), 66);
        assert_eq!(demod.window_trajectory(&pulse).len(), 66);
    }

    #[test]
    fn cumulative_trajectory_converges() {
        let m = ReadoutModel::paper();
        let demod = Demodulator::for_model(&m, 30.0);
        let mut rng = rng_for("demod/converge");
        let center0 = IqPoint::from(m.ideal_center(false));
        // Average distance over pulses: early windows are farther from the
        // center than late windows.
        let mut early = 0.0;
        let mut late = 0.0;
        const N: usize = 64;
        for _ in 0..N {
            let pulse = m.synthesize(false, &mut rng);
            let traj = demod.cumulative_trajectory(&pulse);
            early += traj[1].distance(&center0);
            late += traj[traj.len() - 1].distance(&center0);
        }
        assert!(
            late < early / 2.0,
            "late {late:.3} should be well below early {early:.3}"
        );
    }

    #[test]
    fn cumulative_last_equals_full_prefix() {
        let m = ReadoutModel::paper();
        let demod = Demodulator::for_model(&m, 100.0);
        let pulse = m.synthesize(true, &mut rng_for("demod/prefix"));
        let traj = demod.cumulative_trajectory(&pulse);
        let full = demod.integrate_prefix(&pulse, 2000);
        let last = traj[traj.len() - 1];
        assert!(last.distance(&full) < 1e-9);
    }

    #[test]
    fn decayed_pulse_drifts_toward_zero_center() {
        let mut m = clean_model();
        m.t1_ns = f64::INFINITY;
        let mut rng = rng_for("demod/decay");
        // Build a |1⟩ pulse, then manually overwrite the second half with a
        // |0⟩ pulse to emulate mid-readout decay.
        let mut pulse = m.synthesize(true, &mut rng);
        let zero = m.synthesize(false, &mut rng);
        let half = pulse.len() / 2;
        pulse.samples[half..].copy_from_slice(&zero.samples[half..]);
        let demod = Demodulator::for_model(&m, 30.0);
        let traj = demod.window_trajectory(&pulse);
        let c0 = IqPoint::from(m.ideal_center(false));
        let c1 = IqPoint::from(m.ideal_center(true));
        let first = traj[0];
        let last = traj[traj.len() - 1];
        assert!(first.distance(&c1) < first.distance(&c0));
        assert!(last.distance(&c0) < last.distance(&c1));
    }

    #[test]
    #[should_panic(expected = "exceeds pulse")]
    fn out_of_range_window_panics() {
        let m = ReadoutModel::paper();
        let demod = Demodulator::for_model(&m, 30.0);
        let pulse = m.synthesize(false, &mut rng_for("demod/oob"));
        let _ = demod.demodulate_range(&pulse, 1990, 30);
    }

    #[test]
    fn iq_point_distance_and_conversion() {
        let a = IqPoint::new(0.0, 0.0);
        let b = IqPoint::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
        assert_eq!(b.to_complex(), Complex64::new(3.0, 4.0));
        assert_eq!(
            IqPoint::from(Complex64::new(1.0, 2.0)),
            IqPoint::new(1.0, 2.0)
        );
    }

    #[test]
    fn table_demodulation_is_bit_identical() {
        let m = ReadoutModel::paper();
        let table = m.phase_table();
        let demod = Demodulator::for_model(&m, 30.0);
        let pulse = m.synthesize(true, &mut rng_for("demod/table"));
        for (start, len) in [
            (0usize, 2000usize),
            (0, 1),
            (990, 30),
            (1970, 30),
            (13, 777),
        ] {
            let naive = demod.demodulate_range(&pulse, start, len);
            let fast = demod.demodulate_range_with(&table, &pulse, start, len);
            assert_eq!(naive, fast, "range ({start}, {len})");
        }
        assert_eq!(
            demod.cumulative_trajectory(&pulse),
            demod.cumulative_trajectory_with(&table, &pulse)
        );
        let mut reused = Vec::new();
        demod.cumulative_trajectory_into(&table, &pulse, &mut reused);
        assert_eq!(reused, demod.cumulative_trajectory(&pulse));
        let cap = reused.capacity();
        demod.cumulative_trajectory_into(&table, &pulse, &mut reused);
        assert_eq!(reused.capacity(), cap);
        assert_eq!(
            demod.integrate_prefix(&pulse, 750),
            demod.integrate_prefix_with(&table, &pulse, 750)
        );
    }

    #[test]
    #[should_panic(expected = "different carrier frequency")]
    fn mismatched_table_frequency_panics() {
        let m = ReadoutModel::paper();
        let table = ReadoutModel { omega: 0.5, ..m }.phase_table();
        let demod = Demodulator::for_model(&m, 30.0);
        let pulse = m.synthesize(false, &mut rng_for("demod/table-mismatch"));
        let _ = demod.demodulate_range_with(&table, &pulse, 0, 30);
    }
}
