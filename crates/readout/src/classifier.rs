//! IQ cluster centers and state classification.

use serde::{Deserialize, Serialize};

use crate::demod::{Demodulator, IqPoint};
use crate::model::{ReadoutModel, ReadoutPulse};
use crate::phase::PhaseTable;

/// Calibrated `|0⟩`/`|1⟩` cluster centers in the IQ plane.
///
/// On hardware these come from preparation-and-measurement calibration runs;
/// here they are fit from labelled training pulses (or taken from the ideal
/// model in tests).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IqCenters {
    /// Cluster center of `|0⟩` pulses.
    pub c0: IqPoint,
    /// Cluster center of `|1⟩` pulses.
    pub c1: IqPoint,
}

impl IqCenters {
    /// Ideal centers of a synthesis model (no noise, no decay).
    #[must_use]
    pub fn ideal(model: &ReadoutModel) -> Self {
        Self {
            c0: IqPoint::from(model.ideal_center(false)),
            c1: IqPoint::from(model.ideal_center(true)),
        }
    }

    /// Calibrates centers from labelled pulses by averaging each label's
    /// fully-integrated IQ.
    ///
    /// # Panics
    ///
    /// Panics when either label is missing from the training set.
    #[must_use]
    pub fn calibrate<'a>(
        pulses: impl IntoIterator<Item = &'a ReadoutPulse>,
        demod: &Demodulator,
    ) -> Self {
        let mut sums = [IqPoint::default(); 2];
        let mut counts = [0usize; 2];
        for pulse in pulses {
            let iq = demod.integrate_prefix(pulse, pulse.len());
            let k = usize::from(pulse.true_state);
            sums[k].i += iq.i;
            sums[k].q += iq.q;
            counts[k] += 1;
        }
        assert!(
            counts[0] > 0 && counts[1] > 0,
            "calibration needs both labels"
        );
        Self {
            c0: IqPoint::new(sums[0].i / counts[0] as f64, sums[0].q / counts[0] as f64),
            c1: IqPoint::new(sums[1].i / counts[1] as f64, sums[1].q / counts[1] as f64),
        }
    }

    /// Trig-free [`Self::calibrate`]: full-pulse integration reads its
    /// demodulation factors from `table`. Bit-identical centers.
    ///
    /// # Panics
    ///
    /// Panics when either label is missing, or when the table is mismatched
    /// or shorter than a pulse.
    #[must_use]
    pub fn calibrate_with<'a>(
        pulses: impl IntoIterator<Item = &'a ReadoutPulse>,
        demod: &Demodulator,
        table: &PhaseTable,
    ) -> Self {
        let mut sums = [IqPoint::default(); 2];
        let mut counts = [0usize; 2];
        for pulse in pulses {
            let iq = demod.integrate_prefix_with(table, pulse, pulse.len());
            let k = usize::from(pulse.true_state);
            sums[k].i += iq.i;
            sums[k].q += iq.q;
            counts[k] += 1;
        }
        assert!(
            counts[0] > 0 && counts[1] > 0,
            "calibration needs both labels"
        );
        Self {
            c0: IqPoint::new(sums[0].i / counts[0] as f64, sums[0].q / counts[0] as f64),
            c1: IqPoint::new(sums[1].i / counts[1] as f64, sums[1].q / counts[1] as f64),
        }
    }

    /// Hard nearest-center classification of an IQ point. Compares squared
    /// distances — `sqrt` is monotone, so the decision is identical to
    /// comparing true distances, without the two square roots.
    #[must_use]
    pub fn classify(&self, iq: IqPoint) -> bool {
        iq.distance_sq(&self.c1) < iq.distance_sq(&self.c0)
    }

    /// Signed margin of a classification: positive leans `|1⟩`, negative
    /// leans `|0⟩`, magnitude grows with confidence. Normalized by the
    /// center separation so it is scale-free.
    #[must_use]
    pub fn margin(&self, iq: IqPoint) -> f64 {
        let d = self.c0.distance(&self.c1).max(f64::MIN_POSITIVE);
        (iq.distance(&self.c0) - iq.distance(&self.c1)) / d
    }

    /// Per-window preliminary classifications of a pulse — the bit stream
    /// that feeds the branch history registers (Fig. 7 (c)). Uses the
    /// cumulative trajectory so late windows are increasingly reliable.
    #[must_use]
    pub fn window_states(&self, pulse: &ReadoutPulse, demod: &Demodulator) -> Vec<bool> {
        // Fused demodulate+classify: one pass over the samples, no
        // intermediate Vec<IqPoint>. Same accumulation order as
        // `cumulative_trajectory`, so the states are bit-identical to the
        // two-pass composition (pinned by tests).
        let mut out = Vec::with_capacity(demod.num_windows(pulse));
        demod.fold_cumulative(pulse, |iq| out.push(self.classify(iq)));
        out
    }

    /// Trig-free [`Self::window_states`].
    ///
    /// # Panics
    ///
    /// Panics when the table is mismatched or too short.
    #[must_use]
    pub fn window_states_with(
        &self,
        pulse: &ReadoutPulse,
        demod: &Demodulator,
        table: &PhaseTable,
    ) -> Vec<bool> {
        let mut out = Vec::with_capacity(demod.num_windows(pulse));
        demod.fold_cumulative_with(table, pulse, |iq| out.push(self.classify(iq)));
        out
    }

    /// Zero-allocation [`Self::window_states`]: clears and refills `out`,
    /// retaining its capacity across shots.
    ///
    /// # Panics
    ///
    /// Panics when the table is mismatched or too short.
    pub fn window_states_into(
        &self,
        pulse: &ReadoutPulse,
        demod: &Demodulator,
        table: &PhaseTable,
        out: &mut Vec<bool>,
    ) {
        out.clear();
        out.reserve(demod.num_windows(pulse));
        demod.fold_cumulative_with(table, pulse, |iq| out.push(self.classify(iq)));
    }

    /// Full-integration classification of a pulse (what the baseline state
    /// classifier reports at readout end).
    #[must_use]
    pub fn classify_full(&self, pulse: &ReadoutPulse, demod: &Demodulator) -> bool {
        self.classify(demod.integrate_prefix(pulse, pulse.len()))
    }

    /// Trig-free [`Self::classify_full`].
    ///
    /// # Panics
    ///
    /// Panics when the table is mismatched or too short.
    #[must_use]
    pub fn classify_full_with(
        &self,
        pulse: &ReadoutPulse,
        demod: &Demodulator,
        table: &PhaseTable,
    ) -> bool {
        self.classify(demod.integrate_prefix_with(table, pulse, pulse.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_num::rng::rng_for;

    #[test]
    fn ideal_centers_match_model() {
        let m = ReadoutModel::paper();
        let c = IqCenters::ideal(&m);
        assert!(c.c0.q > 0.0); // phase0 = +0.55 rad
        assert!(c.c1.q < 0.0);
    }

    #[test]
    fn calibration_close_to_ideal() {
        let m = ReadoutModel::paper();
        let demod = Demodulator::for_model(&m, 30.0);
        let mut rng = rng_for("classifier/cal");
        let pulses: Vec<ReadoutPulse> = (0..200)
            .map(|k| m.synthesize(k % 2 == 0, &mut rng))
            .collect();
        let cal = IqCenters::calibrate(&pulses, &demod);
        let ideal = IqCenters::ideal(&m);
        assert!(cal.c0.distance(&ideal.c0) < 0.2);
        assert!(cal.c1.distance(&ideal.c1) < 0.2);
    }

    #[test]
    fn full_classification_reaches_paper_fidelity() {
        let m = ReadoutModel::paper();
        let demod = Demodulator::for_model(&m, 30.0);
        let centers = IqCenters::ideal(&m);
        let mut rng = rng_for("classifier/fidelity");
        let mut correct = 0usize;
        const N: usize = 2000;
        for k in 0..N {
            let state = k % 2 == 0;
            let pulse = m.synthesize(state, &mut rng);
            if centers.classify_full(&pulse, &demod) == state {
                correct += 1;
            }
        }
        let acc = correct as f64 / N as f64;
        // Paper: 99.0 % readout fidelity.
        assert!(acc > 0.975, "full-readout accuracy {acc}");
    }

    #[test]
    fn partial_integration_is_less_accurate() {
        let m = ReadoutModel::paper();
        let demod = Demodulator::for_model(&m, 30.0);
        let centers = IqCenters::ideal(&m);
        let mut rng = rng_for("classifier/partial");
        let mut correct_early = 0usize;
        let mut correct_late = 0usize;
        const N: usize = 1500;
        for k in 0..N {
            let state = k % 2 == 0;
            let pulse = m.synthesize(state, &mut rng);
            let early = centers.classify(demod.integrate_prefix(&pulse, 250));
            let late = centers.classify(demod.integrate_prefix(&pulse, 2000));
            correct_early += usize::from(early == state);
            correct_late += usize::from(late == state);
        }
        assert!(
            correct_late > correct_early,
            "late {correct_late} vs early {correct_early}"
        );
    }

    #[test]
    fn margin_sign_matches_classification() {
        let m = ReadoutModel::paper();
        let c = IqCenters::ideal(&m);
        let near1 = IqPoint::from(m.ideal_center(true));
        let near0 = IqPoint::from(m.ideal_center(false));
        assert!(c.margin(near1) > 0.0);
        assert!(c.margin(near0) < 0.0);
        assert!(c.classify(near1));
        assert!(!c.classify(near0));
    }

    #[test]
    fn window_states_length() {
        let m = ReadoutModel::paper();
        let demod = Demodulator::for_model(&m, 30.0);
        let centers = IqCenters::ideal(&m);
        let pulse = m.synthesize(true, &mut rng_for("classifier/windows"));
        assert_eq!(centers.window_states(&pulse, &demod).len(), 66);
    }

    #[test]
    fn fused_window_states_match_two_pass_composition() {
        let m = ReadoutModel::paper();
        let demod = Demodulator::for_model(&m, 30.0);
        let table = m.phase_table();
        let centers = IqCenters::ideal(&m);
        let mut rng = rng_for("classifier/fused");
        for k in 0..8 {
            let pulse = m.synthesize(k % 2 == 0, &mut rng);
            let composed: Vec<bool> = demod
                .cumulative_trajectory(&pulse)
                .into_iter()
                .map(|iq| centers.classify(iq))
                .collect();
            assert_eq!(centers.window_states(&pulse, &demod), composed);
            assert_eq!(centers.window_states_with(&pulse, &demod, &table), composed);
            let mut reused = Vec::new();
            centers.window_states_into(&pulse, &demod, &table, &mut reused);
            assert_eq!(reused, composed);
        }
    }

    #[test]
    fn table_calibration_and_full_classification_are_bit_identical() {
        let m = ReadoutModel::paper();
        let demod = Demodulator::for_model(&m, 30.0);
        let table = m.phase_table();
        let mut rng = rng_for("classifier/table-cal");
        let pulses: Vec<ReadoutPulse> = (0..64)
            .map(|k| m.synthesize(k % 2 == 0, &mut rng))
            .collect();
        let naive = IqCenters::calibrate(&pulses, &demod);
        let fast = IqCenters::calibrate_with(&pulses, &demod, &table);
        assert_eq!(naive, fast);
        for pulse in &pulses {
            assert_eq!(
                naive.classify_full(pulse, &demod),
                naive.classify_full_with(pulse, &demod, &table)
            );
        }
    }

    #[test]
    #[should_panic(expected = "both labels")]
    fn calibration_requires_both_labels() {
        let m = ReadoutModel::paper();
        let demod = Demodulator::for_model(&m, 30.0);
        let mut rng = rng_for("classifier/onelabel");
        let pulses: Vec<ReadoutPulse> = (0..4).map(|_| m.synthesize(false, &mut rng)).collect();
        let _ = IqCenters::calibrate(&pulses, &demod);
    }
}
