//! Numeric foundations shared by every ARTERY crate.
//!
//! The reproduction deliberately avoids heavyweight numeric dependencies:
//! the only pieces of numerics the paper needs are
//!
//! * complex arithmetic for state vectors and IQ demodulation
//!   ([`Complex64`]),
//! * summary statistics over latency/fidelity samples ([`stats`]),
//! * reproducible random number seeding shared across experiments
//!   ([`rng`]).
//!
//! # Examples
//!
//! ```
//! use artery_num::Complex64;
//!
//! let a = Complex64::new(1.0, 2.0);
//! let b = Complex64::i();
//! assert_eq!(a * b, Complex64::new(-2.0, 1.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
pub mod rng;
pub mod stats;

pub use complex::Complex64;

/// Machine tolerance used in approximate floating-point comparisons across
/// the workspace test suites.
pub const EPS: f64 = 1e-9;

/// Returns `true` when `a` and `b` are within `tol` of each other.
///
/// This is the comparison helper used throughout the ARTERY test suites; it
/// treats two NaNs as unequal, like IEEE 754.
///
/// # Examples
///
/// ```
/// assert!(artery_num::approx_eq(0.1 + 0.2, 0.3, 1e-12));
/// ```
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Clamps a probability to the closed interval `[floor, 1 - floor]`.
///
/// The Bayesian fusion of the predictor divides by products of probabilities;
/// clamping keeps the update numerically stable when a table entry saturates
/// at exactly 0 or 1.
///
/// # Examples
///
/// ```
/// assert_eq!(artery_num::clamp_probability(1.2, 1e-6), 1.0 - 1e-6);
/// assert_eq!(artery_num::clamp_probability(0.5, 1e-6), 0.5);
/// ```
#[must_use]
pub fn clamp_probability(p: f64, floor: f64) -> f64 {
    p.clamp(floor, 1.0 - floor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_within_tolerance() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
    }

    #[test]
    fn approx_eq_rejects_nan() {
        assert!(!approx_eq(f64::NAN, f64::NAN, 1e-9));
    }

    #[test]
    fn clamp_probability_bounds() {
        assert_eq!(clamp_probability(-0.5, 1e-3), 1e-3);
        assert_eq!(clamp_probability(2.0, 1e-3), 1.0 - 1e-3);
        assert_eq!(clamp_probability(0.42, 1e-3), 0.42);
    }
}
