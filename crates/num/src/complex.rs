//! A minimal, dependency-free complex number type.
//!
//! `num-complex` is not part of the approved offline dependency set, and the
//! workspace only needs a small surface: arithmetic, conjugation, polar
//! helpers and norms. Everything is `f64`-based because both the state-vector
//! simulator and the IQ demodulator work in double precision.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A double-precision complex number `re + i·im`.
///
/// # Examples
///
/// ```
/// use artery_num::Complex64;
///
/// let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
/// assert!((z.re).abs() < 1e-12);
/// assert!((z.im - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };

    /// Creates a complex number from real and imaginary parts.
    ///
    /// # Examples
    ///
    /// ```
    /// let z = artery_num::Complex64::new(3.0, -4.0);
    /// assert_eq!(z.norm(), 5.0);
    /// ```
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The imaginary unit `i`.
    #[must_use]
    pub const fn i() -> Self {
        Self { re: 0.0, im: 1.0 }
    }

    /// Builds a complex number from polar coordinates `r·e^{iθ}`.
    #[must_use]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// Euler's formula: `e^{iθ} = cos θ + i sin θ`.
    ///
    /// # Examples
    ///
    /// ```
    /// use artery_num::Complex64;
    /// let z = Complex64::cis(std::f64::consts::PI);
    /// assert!((z.re + 1.0).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate `re - i·im`.
    #[must_use]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared modulus `re² + im²`. Cheaper than [`Complex64::norm`] when
    /// only relative magnitudes matter (e.g. measurement probabilities).
    #[must_use]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[must_use]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians, in `(-π, π]`.
    #[must_use]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[must_use]
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// Returns `true` when either component is NaN.
    #[must_use]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Self::new(re, 0.0)
    }
}

impl Add for Complex64 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for Complex64 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl Mul for Complex64 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Self;
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Self::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl DivAssign for Complex64 {
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    fn div(self, rhs: f64) -> Self {
        Self::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, Add::add)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn construction_and_identities() {
        assert_eq!(Complex64::ZERO + Complex64::ONE, Complex64::ONE);
        assert_eq!(Complex64::ONE * Complex64::i(), Complex64::i());
        assert_eq!(Complex64::from(2.5), Complex64::new(2.5, 0.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex64::i() * Complex64::i(), Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn multiplication_matches_formula() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
    }

    #[test]
    fn division_is_inverse_of_multiplication() {
        let a = Complex64::new(0.7, -1.3);
        let b = Complex64::new(-2.2, 0.4);
        let q = (a * b) / b;
        assert!(approx_eq(q.re, a.re, 1e-12));
        assert!(approx_eq(q.im, a.im, 1e-12));
    }

    #[test]
    fn conjugate_properties() {
        let z = Complex64::new(1.5, -0.5);
        assert_eq!(z.conj().conj(), z);
        let zz = z * z.conj();
        assert!(approx_eq(zz.re, z.norm_sqr(), 1e-12));
        assert!(approx_eq(zz.im, 0.0, 1e-12));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, 0.3);
        assert!(approx_eq(z.norm(), 2.0, 1e-12));
        assert!(approx_eq(z.arg(), 0.3, 1e-12));
    }

    #[test]
    fn cis_has_unit_norm() {
        for k in 0..16 {
            let theta = k as f64 * 0.41;
            assert!(approx_eq(Complex64::cis(theta).norm(), 1.0, 1e-12));
        }
    }

    #[test]
    fn sum_over_iterator() {
        let total: Complex64 = (0..4).map(|k| Complex64::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex64::new(6.0, 4.0));
    }

    #[test]
    fn scalar_ops() {
        let z = Complex64::new(1.0, -2.0);
        assert_eq!(z * 2.0, Complex64::new(2.0, -4.0));
        assert_eq!(2.0 * z, z * 2.0);
        assert_eq!(z / 2.0, Complex64::new(0.5, -1.0));
        assert_eq!(-z, Complex64::new(-1.0, 2.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn nan_detection() {
        assert!(Complex64::new(f64::NAN, 0.0).is_nan());
        assert!(!Complex64::ONE.is_nan());
    }
}
