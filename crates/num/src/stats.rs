//! Summary statistics over experiment samples.
//!
//! Every harness in `artery-bench` reduces per-shot measurements (latency,
//! fidelity, prediction accuracy) to the summaries the paper reports:
//! means, standard deviations and percentile boxes (Fig. 15b shows accuracy
//! *distributions*). [`Accumulator`] implements Welford's online algorithm so
//! million-shot sweeps never materialize their sample vectors.

use serde::{Deserialize, Serialize};

/// Online mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use artery_num::stats::Accumulator;
///
/// let mut acc = Accumulator::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.mean(), 2.5);
/// assert_eq!(acc.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

/// `Default` must agree with [`Accumulator::new`]: the derived impl would
/// zero `min`/`max`, and a default-then-push accumulator would then report
/// a spurious minimum of 0 for all-positive samples.
impl Default for Accumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Accumulator {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples pushed so far.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Returns `true` when no samples have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sample mean, or 0 for an empty accumulator.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance, or 0 with fewer than two samples.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample seen, or `+inf` when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen, or `-inf` when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    ///
    /// Callers are responsible for the operands covering *disjoint* sample
    /// sets (e.g. distinct shot-id shards); merging overlapping shards
    /// double-counts silently. Debug builds assert the cheap invariants
    /// that overlap bugs tend to violate — an operand whose extrema are
    /// inconsistent with its count, or a count overflow from runaway
    /// repeated merging.
    pub fn merge(&mut self, other: &Accumulator) {
        debug_assert!(
            other.count == 0
                || other.min.partial_cmp(&other.max) != Some(std::cmp::Ordering::Greater),
            "merge operand has {} samples but min {} > max {} — \
             was it merged from overlapping or corrupted shards?",
            other.count,
            other.min,
            other.max
        );
        debug_assert!(
            self.count.checked_add(other.count).is_some(),
            "sample count overflow in merge — repeated self-merge?"
        );
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for Accumulator {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Accumulator {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut acc = Self::new();
        acc.extend(iter);
        acc
    }
}

/// Mean of a slice; 0 for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(artery_num::stats::mean(&[2.0, 4.0]), 3.0);
/// ```
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Linearly interpolated percentile of a slice, `q` in `[0, 1]`.
///
/// The slice does not need to be sorted; a sorted copy is made internally.
///
/// # Panics
///
/// Panics when `xs` is empty or `q` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// let xs = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(artery_num::stats::percentile(&xs, 0.5), 2.5);
/// assert_eq!(artery_num::stats::percentile(&xs, 0.0), 1.0);
/// assert_eq!(artery_num::stats::percentile(&xs, 1.0), 4.0);
/// ```
#[must_use]
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of an empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Five-number summary used for the box plots of Fig. 15b.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FiveNumber {
    /// Minimum sample.
    pub min: f64,
    /// 25th percentile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Maximum sample.
    pub max: f64,
}

impl FiveNumber {
    /// Computes the five-number summary of a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics when `xs` is empty.
    ///
    /// # Examples
    ///
    /// ```
    /// let s = artery_num::stats::FiveNumber::from_samples(&[1.0, 2.0, 3.0]);
    /// assert_eq!(s.median, 2.0);
    /// ```
    #[must_use]
    pub fn from_samples(xs: &[f64]) -> Self {
        Self {
            min: percentile(xs, 0.0),
            q1: percentile(xs, 0.25),
            median: percentile(xs, 0.5),
            q3: percentile(xs, 0.75),
            max: percentile(xs, 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn accumulator_matches_direct_formulas() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let acc: Accumulator = xs.iter().copied().collect();
        assert!(approx_eq(acc.mean(), 3.0, 1e-12));
        assert!(approx_eq(acc.variance(), 2.5, 1e-12));
        assert_eq!(acc.min(), 1.0);
        assert_eq!(acc.max(), 5.0);
    }

    #[test]
    fn accumulator_empty_and_singleton() {
        let acc = Accumulator::new();
        assert!(acc.is_empty());
        assert_eq!(acc.variance(), 0.0);
        let mut one = Accumulator::new();
        one.push(7.0);
        assert_eq!(one.mean(), 7.0);
        assert_eq!(one.variance(), 0.0);
    }

    #[test]
    fn accumulator_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|k| (k as f64) * 0.37 - 5.0).collect();
        let whole: Accumulator = xs.iter().copied().collect();
        let mut left: Accumulator = xs[..33].iter().copied().collect();
        let right: Accumulator = xs[33..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.len(), whole.len());
        assert!(approx_eq(left.mean(), whole.mean(), 1e-10));
        assert!(approx_eq(left.variance(), whole.variance(), 1e-10));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut acc: Accumulator = [1.0, 2.0].iter().copied().collect();
        let before = acc;
        acc.merge(&Accumulator::new());
        assert_eq!(acc, before);
        let mut empty = Accumulator::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn default_is_a_true_empty_accumulator() {
        // Regression: the derived Default zeroed min/max, so pushing into a
        // defaulted accumulator reported min = 0 for all-positive samples.
        assert_eq!(Accumulator::default(), Accumulator::new());
        let mut acc = Accumulator::default();
        acc.push(5.0);
        acc.push(9.0);
        assert_eq!(acc.min(), 5.0);
        assert_eq!(acc.max(), 9.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "overlapping or corrupted")]
    fn merge_of_inconsistent_operand_is_caught_in_debug() {
        // An operand claiming samples while its extrema say "never pushed"
        // is the signature of counters merged separately from samples.
        let mut bogus = Accumulator::new();
        bogus.count = 3;
        let mut acc: Accumulator = [1.0, 2.0].iter().copied().collect();
        acc.merge(&bogus);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert!(approx_eq(percentile(&xs, 0.5), 25.0, 1e-12));
        assert!(approx_eq(percentile(&xs, 1.0 / 3.0), 20.0, 1e-12));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        let _ = percentile(&[], 0.5);
    }

    #[test]
    fn five_number_ordering() {
        let xs = [9.0, 1.0, 5.0, 3.0, 7.0, 2.0, 8.0];
        let s = FiveNumber::from_samples(&xs);
        assert!(s.min <= s.q1 && s.q1 <= s.median);
        assert!(s.median <= s.q3 && s.q3 <= s.max);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn mean_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }
}
