//! Deterministic random-number seeding for reproducible experiments.
//!
//! Every experiment harness in this workspace must be rerunnable with
//! bit-identical output, because EXPERIMENTS.md records measured values. All
//! stochastic code therefore draws from [`rand::rngs::StdRng`] seeded through
//! this module instead of `thread_rng`.
//!
//! The helpers hash a human-readable label (e.g. `"table1/qrw/step=25"`) into
//! a 64-bit seed with [FNV-1a], so each experiment owns an independent and
//! stable stream.
//!
//! [FNV-1a]: http://www.isthe.com/chongo/tech/comp/fnv/

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Workspace-wide base seed; combined with per-experiment labels.
pub const BASE_SEED: u64 = 0xA57E_2025_15CA_0001;

/// Hashes a label into a 64-bit value with FNV-1a.
///
/// # Examples
///
/// ```
/// let a = artery_num::rng::hash_label("qec");
/// let b = artery_num::rng::hash_label("qrw");
/// assert_ne!(a, b);
/// assert_eq!(a, artery_num::rng::hash_label("qec"));
/// ```
#[must_use]
pub fn hash_label(label: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Creates a deterministic RNG for a labelled experiment.
///
/// The same label always produces the same stream; different labels produce
/// independent streams.
///
/// # Examples
///
/// ```
/// use rand::Rng;
///
/// let mut a = artery_num::rng::rng_for("fig15a");
/// let mut b = artery_num::rng::rng_for("fig15a");
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[must_use]
pub fn rng_for(label: &str) -> StdRng {
    StdRng::seed_from_u64(BASE_SEED ^ hash_label(label))
}

/// Creates a deterministic RNG for the `index`-th member of a labelled family
/// (e.g. one RNG per shot or per Monte-Carlo repetition).
///
/// # Examples
///
/// ```
/// use rand::Rng;
///
/// let mut s0 = artery_num::rng::rng_for_indexed("shots", 0);
/// let mut s1 = artery_num::rng::rng_for_indexed("shots", 1);
/// assert_ne!(s0.gen::<u64>(), s1.gen::<u64>());
/// ```
#[must_use]
pub fn rng_for_indexed(label: &str, index: u64) -> StdRng {
    let mixed = hash_label(label) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    StdRng::seed_from_u64(BASE_SEED ^ mixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let xs: Vec<u64> = rng_for("x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let ys: Vec<u64> = rng_for("x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_labels_differ() {
        let a: u64 = rng_for("a").gen();
        let b: u64 = rng_for("b").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_are_independent() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            let v: u64 = rng_for_indexed("family", i).gen();
            assert!(seen.insert(v), "collision at index {i}");
        }
    }

    #[test]
    fn hash_label_is_fnv1a() {
        // Known FNV-1a vector: empty string hashes to the offset basis.
        assert_eq!(hash_label(""), 0xcbf2_9ce4_8422_2325);
    }
}
