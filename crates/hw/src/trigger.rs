//! The feedback trigger mechanism of §5.3 (Fig. 9).
//!
//! Under static timing, branch pulses would fire at fixed schedule points;
//! with prediction the decision time is data-dependent, so the dynamic
//! timing controller watches the predictor's probability stream and issues a
//! *feedback trigger* the first time the confidence threshold is crossed.
//! The trigger propagates to the branch decider — locally or across the
//! backplane — which starts the branch circuit.

use serde::{Deserialize, Serialize};

use crate::controller::ControllerTiming;

/// One probability update from the Bayesian predictor, produced at a window
/// boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbabilityUpdate {
    /// Demodulation window index (0-based).
    pub window: usize,
    /// Predicted probability of branch 1 after this window.
    pub p_predict_1: f64,
}

/// A fired feedback trigger.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TriggerEvent {
    /// Window at which the threshold was crossed.
    pub window: usize,
    /// The branch the trigger selects.
    pub branch: bool,
    /// Time from readout start at which the trigger fires at the *local*
    /// dynamic timing controller, ns.
    pub fired_at_ns: f64,
    /// Time at which the (possibly remote) branch decider starts the branch
    /// pulse, ns.
    pub branch_start_ns: f64,
}

/// Confidence thresholds θ0/θ1 of the branch decider.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// Confidence required to commit to branch 0 (on `1 − P_predict_1`).
    pub theta0: f64,
    /// Confidence required to commit to branch 1 (on `P_predict_1`).
    pub theta1: f64,
}

impl Thresholds {
    /// Symmetric thresholds (the paper tunes a single tolerance per
    /// benchmark; Fig. 17 selects 0.91 for RCNOT).
    ///
    /// # Panics
    ///
    /// Panics unless `theta` is in `(0.5, 1.0]`.
    #[must_use]
    pub fn symmetric(theta: f64) -> Self {
        assert!(
            theta > 0.5 && theta <= 1.0,
            "threshold must be in (0.5, 1.0]"
        );
        Self {
            theta0: theta,
            theta1: theta,
        }
    }

    /// The branch committed by probability `p1`, if any: branch 1 when
    /// `p1 > θ1`, branch 0 when `1 − p1 > θ0`.
    #[must_use]
    pub fn decide(&self, p1: f64) -> Option<bool> {
        if p1 > self.theta1 {
            Some(true)
        } else if 1.0 - p1 > self.theta0 {
            Some(false)
        } else {
            None
        }
    }
}

impl Default for Thresholds {
    /// The paper's tuned default, θ = 0.91.
    fn default() -> Self {
        Self::symmetric(0.91)
    }
}

/// The dynamic timing controller: folds a probability stream into the first
/// trigger, if the stream ever crosses a threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicTimingController {
    thresholds: Thresholds,
}

impl DynamicTimingController {
    /// Creates a controller with the given thresholds.
    #[must_use]
    pub fn new(thresholds: Thresholds) -> Self {
        Self { thresholds }
    }

    /// The active thresholds.
    #[must_use]
    pub fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    /// Scans probability updates in window order and returns the first
    /// trigger, with timing derived from `timing` and `route_ns` of
    /// interconnect latency to the branch decider.
    ///
    /// Returns `None` when no update crosses a threshold — the feedback then
    /// degrades to the sequential path.
    #[must_use]
    pub fn first_trigger(
        &self,
        updates: impl IntoIterator<Item = ProbabilityUpdate>,
        timing: &ControllerTiming,
        route_ns: f64,
    ) -> Option<TriggerEvent> {
        for u in updates {
            if let Some(branch) = self.thresholds.decide(u.p_predict_1) {
                let fired_at_ns = timing.prediction_ready_ns(u.window);
                return Some(TriggerEvent {
                    window: u.window,
                    branch,
                    fired_at_ns,
                    branch_start_ns: timing.branch_start_ns(u.window, route_ns),
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::HardwareParams;

    fn timing() -> ControllerTiming {
        ControllerTiming::new(HardwareParams::paper(), 30.0)
    }

    #[test]
    fn thresholds_decide_both_sides() {
        let t = Thresholds::symmetric(0.9);
        assert_eq!(t.decide(0.95), Some(true));
        assert_eq!(t.decide(0.05), Some(false));
        assert_eq!(t.decide(0.6), None);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn low_threshold_rejected() {
        let _ = Thresholds::symmetric(0.5);
    }

    #[test]
    fn default_threshold_is_091() {
        let t = Thresholds::default();
        assert_eq!(t.theta1, 0.91);
    }

    #[test]
    fn first_crossing_fires() {
        let ctl = DynamicTimingController::new(Thresholds::symmetric(0.9));
        let updates = vec![
            ProbabilityUpdate {
                window: 0,
                p_predict_1: 0.7,
            },
            ProbabilityUpdate {
                window: 1,
                p_predict_1: 0.85,
            },
            ProbabilityUpdate {
                window: 2,
                p_predict_1: 0.93,
            },
            ProbabilityUpdate {
                window: 3,
                p_predict_1: 0.99,
            },
        ];
        let trig = ctl.first_trigger(updates, &timing(), 0.0).expect("trigger");
        assert_eq!(trig.window, 2);
        assert!(trig.branch);
        assert_eq!(trig.fired_at_ns, timing().prediction_ready_ns(2));
        assert!(trig.branch_start_ns > trig.fired_at_ns);
    }

    #[test]
    fn branch_zero_trigger() {
        let ctl = DynamicTimingController::new(Thresholds::symmetric(0.9));
        let updates = vec![ProbabilityUpdate {
            window: 5,
            p_predict_1: 0.02,
        }];
        let trig = ctl.first_trigger(updates, &timing(), 0.0).expect("trigger");
        assert!(!trig.branch);
    }

    #[test]
    fn no_crossing_no_trigger() {
        let ctl = DynamicTimingController::new(Thresholds::symmetric(0.95));
        let updates = (0..66).map(|w| ProbabilityUpdate {
            window: w,
            p_predict_1: 0.5,
        });
        assert!(ctl.first_trigger(updates, &timing(), 0.0).is_none());
    }

    #[test]
    fn exact_threshold_boundary_holds_fire() {
        // θ = 0.75 and p1 ∈ {0.25, 0.75} are exactly representable, so both
        // comparisons are exact: commitment requires strictly *exceeding*
        // the threshold, and p1 == θ1 (or 1 − p1 == θ0) must not commit.
        let t = Thresholds::symmetric(0.75);
        assert_eq!(t.decide(0.75), None);
        assert_eq!(t.decide(0.25), None);
        // One ULP past the boundary commits.
        assert_eq!(t.decide(0.75 + f64::EPSILON), Some(true));
        assert_eq!(t.decide(0.25 - f64::EPSILON), Some(false));
    }

    #[test]
    fn nan_probability_never_commits() {
        // NaN compares false against both thresholds: the decider must
        // degrade to the sequential path, never fire on garbage confidence.
        let t = Thresholds::default();
        assert_eq!(t.decide(f64::NAN), None);
        let ctl = DynamicTimingController::new(t);
        let updates = (0..66).map(|w| ProbabilityUpdate {
            window: w,
            p_predict_1: f64::NAN,
        });
        assert!(ctl.first_trigger(updates, &timing(), 0.0).is_none());
    }

    #[test]
    fn empty_probability_stream_never_triggers() {
        // A shot can end before any window produces an update (e.g. a
        // case-4 site): the controller must fall back without firing.
        let ctl = DynamicTimingController::new(Thresholds::default());
        let updates: Vec<ProbabilityUpdate> = Vec::new();
        assert!(ctl.first_trigger(updates, &timing(), 0.0).is_none());
        assert!(ctl
            .first_trigger(std::iter::empty(), &timing(), 144.0)
            .is_none());
    }

    #[test]
    fn remote_trigger_adds_route_latency() {
        let ctl = DynamicTimingController::new(Thresholds::symmetric(0.9));
        let updates = vec![ProbabilityUpdate {
            window: 2,
            p_predict_1: 0.95,
        }];
        let local = ctl
            .first_trigger(updates.clone(), &timing(), 0.0)
            .expect("local");
        let remote = ctl.first_trigger(updates, &timing(), 48.0).expect("remote");
        assert_eq!(remote.branch_start_ns - local.branch_start_ns, 48.0);
        assert_eq!(remote.fired_at_ns, local.fired_at_ns);
    }
}
