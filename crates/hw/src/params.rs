//! Published hardware constants — the calibration table of DESIGN.md.

use serde::{Deserialize, Serialize};

/// All latency/clock constants of the evaluation platform.
///
/// Values come straight from the paper: the stage latencies of §2.2
/// (Fig. 2), the FPGA/serdes configuration of §6.1 and the readout duration
/// of the device description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareParams {
    /// ADC processing latency (capture + digital down-conversion), ns.
    pub adc_ns: f64,
    /// State classification latency (demodulation + discrimination), ns.
    pub classify_ns: f64,
    /// Pulse preparation latency (library lookup + decode), ns.
    pub pulse_prep_ns: f64,
    /// DAC processing latency (interpolation + conversion), ns.
    pub dac_ns: f64,
    /// Serdes latency per inter-FPGA hop, ns.
    pub serdes_ns: f64,
    /// On-chip signal latency between units, ns.
    pub on_chip_ns: f64,
    /// FPGA fabric clock period, ns (250 MHz → 4 ns).
    pub clock_ns: f64,
    /// Readout pulse duration, ns.
    pub readout_ns: f64,
    /// Bayesian predictor pipeline depth in fabric cycles (§5.1: "outputs
    /// the P_predict after three cycles").
    pub predictor_cycles: u32,
}

impl HardwareParams {
    /// The paper's configuration.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            adc_ns: 44.0,
            classify_ns: 24.0,
            pulse_prep_ns: 36.0,
            dac_ns: 56.0,
            serdes_ns: 48.0,
            on_chip_ns: 4.0,
            clock_ns: 4.0,
            readout_ns: 2000.0,
            predictor_cycles: 3,
        }
    }

    /// Total classical processing latency of the sequential pipeline:
    /// ADC + classification + pulse preparation + DAC (= 160 ns).
    #[must_use]
    pub fn processing_ns(&self) -> f64 {
        self.adc_ns + self.classify_ns + self.pulse_prep_ns + self.dac_ns
    }

    /// The latency wall of Fig. 2: the 500 ns minimum readout Google deems
    /// safe for qubit lifetime plus the 160 ns hardware floor.
    #[must_use]
    pub fn latency_wall_ns(&self) -> f64 {
        500.0 + self.processing_ns()
    }

    /// Latency of the Bayesian predictor pipeline, ns.
    #[must_use]
    pub fn predictor_ns(&self) -> f64 {
        f64::from(self.predictor_cycles) * self.clock_ns
    }
}

impl Default for HardwareParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// A published readout-latency-versus-T1 design point (Fig. 2, left).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadoutDesignPoint {
    /// Design label.
    pub name: &'static str,
    /// Readout latency in nanoseconds.
    pub readout_ns: f64,
    /// Qubit lifetime T1 in microseconds.
    pub t1_us: f64,
}

/// The readout/lifetime frontier the paper plots in Fig. 2 (left): pushing
/// readout latency down costs qubit lifetime, which is why readout cannot be
/// optimized below ~500 ns in practice.
///
/// Values transcribed from the paper's citations: Walter et al. [67]
/// (88 ns, 7.6 µs), Google's surface-code processor [42] (500 ns, ≈20 µs),
/// IBM Fez [41] (long readout, long-lived transmons).
pub const READOUT_FRONTIER: [ReadoutDesignPoint; 3] = [
    ReadoutDesignPoint {
        name: "Walter et al. [67]",
        readout_ns: 88.0,
        t1_us: 7.6,
    },
    ReadoutDesignPoint {
        name: "Google [42]",
        readout_ns: 500.0,
        t1_us: 20.0,
    },
    ReadoutDesignPoint {
        name: "IBM Fez [41]",
        readout_ns: 1400.0,
        t1_us: 180.0,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processing_sums_to_160ns() {
        assert_eq!(HardwareParams::paper().processing_ns(), 160.0);
    }

    #[test]
    fn latency_wall_is_660ns() {
        assert_eq!(HardwareParams::paper().latency_wall_ns(), 660.0);
    }

    #[test]
    fn predictor_is_three_cycles() {
        assert_eq!(HardwareParams::paper().predictor_ns(), 12.0);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(HardwareParams::default(), HardwareParams::paper());
    }

    #[test]
    fn frontier_trades_readout_for_lifetime() {
        // Sorted by readout latency, lifetime must be non-decreasing.
        for pair in READOUT_FRONTIER.windows(2) {
            assert!(pair[0].readout_ns < pair[1].readout_ns);
            assert!(pair[0].t1_us < pair[1].t1_us);
        }
    }
}
