//! The classical feedback-controller hardware model.
//!
//! ARTERY's latency results are sums of published stage latencies (§2.2) plus
//! interconnect hops (§5.2) and trigger timing (§5.3). This crate models the
//! controller as cycle-accounted pipelines rather than RTL:
//!
//! * [`HardwareParams`] — the single source of truth for every published
//!   constant (ADC 44 ns, classification 24 ns, pulse preparation 36 ns, DAC
//!   56 ns, serdes 48 ns, 250 MHz fabric clock, 2 µs readout, the 660 ns
//!   latency wall),
//! * [`ControllerTiming`] — when classification results, predictions and
//!   branch pulses become available, for both the sequential pipeline and
//!   ARTERY's windowed early-decision pipeline,
//! * [`interconnect`] — the three-level backplane hierarchy and its routing
//!   latencies,
//! * [`trigger`] — the dynamic-timing feedback trigger that converts a
//!   threshold crossing into a (possibly remote) branch start time.
//!
//! # Examples
//!
//! ```
//! use artery_hw::HardwareParams;
//!
//! let hw = HardwareParams::paper();
//! assert_eq!(hw.processing_ns(), 160.0);
//! assert_eq!(hw.latency_wall_ns(), 660.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
pub mod event;
pub mod interconnect;
mod params;
pub mod trigger;

pub use controller::ControllerTiming;
pub use params::{HardwareParams, ReadoutDesignPoint, READOUT_FRONTIER};
