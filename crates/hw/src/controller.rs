//! When controller pipeline outputs become available.

use crate::params::HardwareParams;

/// Timing calculator for the feedback controller of Fig. 7.
///
/// Two pipelines matter:
///
/// * the **sequential** pipeline — wait for the whole readout, then ADC →
///   classify → pulse-prep → DAC (the baselines),
/// * the **windowed** pipeline — every demodulation window of length `W`
///   updates the branch-history registers and the Bayesian predictor; a
///   decision at window `w` is available `ADC + classify + predictor`
///   after that window's samples end, and the branch pulse reaches the
///   qubit after pulse-prep + DAC (ARTERY).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerTiming {
    params: HardwareParams,
    window_ns: f64,
}

impl ControllerTiming {
    /// Creates a timing calculator with the given demodulation window
    /// (paper default: 30 ns).
    ///
    /// # Panics
    ///
    /// Panics when the window is not positive.
    #[must_use]
    pub fn new(params: HardwareParams, window_ns: f64) -> Self {
        assert!(window_ns > 0.0, "window length must be positive");
        Self { params, window_ns }
    }

    /// The underlying constants.
    #[must_use]
    pub fn params(&self) -> &HardwareParams {
        &self.params
    }

    /// Demodulation window length, ns.
    #[must_use]
    pub fn window_ns(&self) -> f64 {
        self.window_ns
    }

    /// Number of whole demodulation windows in the readout pulse.
    #[must_use]
    pub fn num_windows(&self) -> usize {
        (self.params.readout_ns / self.window_ns).floor() as usize
    }

    /// Feedback latency of the sequential pipeline, measured from readout
    /// start to branch-pulse arrival, excluding the branch gates themselves.
    #[must_use]
    pub fn sequential_latency_ns(&self) -> f64 {
        self.params.readout_ns + self.params.processing_ns()
    }

    /// Time (from readout start) at which the prediction made from window
    /// `w` (0-based) is available at the branch decider.
    #[must_use]
    pub fn prediction_ready_ns(&self, window: usize) -> f64 {
        (window as f64 + 1.0) * self.window_ns
            + self.params.adc_ns
            + self.params.classify_ns
            + self.params.predictor_ns()
    }

    /// Time (from readout start) at which the branch pulse reaches the qubit
    /// when the decision fires at window `w` and the target is reached with
    /// `route_ns` of interconnect latency.
    ///
    /// For cases 1–2 this is when pre-execution starts; the paper's latency
    /// metric for those cases is exactly this quantity (plus branch gates and
    /// any recovery).
    #[must_use]
    pub fn branch_start_ns(&self, window: usize, route_ns: f64) -> f64 {
        self.prediction_ready_ns(window) + route_ns + self.params.pulse_prep_ns + self.params.dac_ns
    }

    /// Latency of a case-3 (reset-style) predicted feedback: the branch pulse
    /// is armed during the readout and fires the moment the readout window
    /// closes, so only the arming path can exceed the readout. When the
    /// decision fires at window `w`, latency is
    /// `max(readout, branch_start(w))`.
    #[must_use]
    pub fn armed_latency_ns(&self, window: usize, route_ns: f64) -> f64 {
        self.params
            .readout_ns
            .max(self.branch_start_ns(window, route_ns))
    }

    /// Latency of a *misprediction* discovered at readout end: the full
    /// sequential path must run (the classification at readout end reveals
    /// the truth, then the correct branch is prepared), plus the recovery
    /// pulses accounted by the caller.
    #[must_use]
    pub fn misprediction_latency_ns(&self) -> f64 {
        self.sequential_latency_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> ControllerTiming {
        ControllerTiming::new(HardwareParams::paper(), 30.0)
    }

    #[test]
    fn sequential_latency_is_2160ns() {
        assert_eq!(timing().sequential_latency_ns(), 2160.0);
    }

    #[test]
    fn window_count() {
        assert_eq!(timing().num_windows(), 66);
        let t = ControllerTiming::new(HardwareParams::paper(), 100.0);
        assert_eq!(t.num_windows(), 20);
    }

    #[test]
    fn prediction_ready_grows_with_window() {
        let t = timing();
        // Window 0: 30 + 44 + 24 + 12 = 110 ns.
        assert_eq!(t.prediction_ready_ns(0), 110.0);
        assert!(t.prediction_ready_ns(10) > t.prediction_ready_ns(0));
        // Last window decision lands after readout end.
        assert!(t.prediction_ready_ns(65) > 2000.0);
    }

    #[test]
    fn branch_start_adds_prep_dac_and_route() {
        let t = timing();
        assert_eq!(t.branch_start_ns(0, 0.0), 110.0 + 36.0 + 56.0);
        assert_eq!(t.branch_start_ns(0, 48.0), 110.0 + 48.0 + 36.0 + 56.0);
    }

    #[test]
    fn armed_latency_floors_at_readout() {
        let t = timing();
        // Early decision: floor at 2 µs.
        assert_eq!(t.armed_latency_ns(0, 0.0), 2000.0);
        // Decision at the very last window: slightly above readout.
        assert!(t.armed_latency_ns(65, 0.0) > 2000.0);
    }

    #[test]
    fn early_decision_beats_sequential() {
        let t = timing();
        // Deciding at 1 µs (window 32) saves ~1 µs.
        let lat = t.branch_start_ns(32, 0.0);
        assert!(lat < 1200.0);
        assert!(lat < t.sequential_latency_ns() / 1.8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        let _ = ControllerTiming::new(HardwareParams::paper(), 0.0);
    }
}
