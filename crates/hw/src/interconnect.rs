//! The three-level controller interconnect of §5.2.
//!
//! Feedback signals travel (1) inside one FPGA, (2) between FPGAs on the
//! same backplane over a direct point-to-point link, or (3) across
//! backplanes through the backplane routing network. The hierarchy keeps
//! most feedback on the cheapest paths; only long-distance qubit pairs pay
//! the cross-backplane cost.

use serde::{Deserialize, Serialize};

use crate::params::HardwareParams;

/// Identifier of an FPGA board in the control system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FpgaId(pub usize);

/// Identifier of a backplane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BackplaneId(pub usize);

/// The hierarchy level a route uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouteLevel {
    /// Source and destination on the same FPGA.
    IntraFpga,
    /// Same backplane, different FPGAs: one serdes hop.
    IntraBackplane,
    /// Different backplanes: serdes to the local backplane, backplane-to-
    /// backplane link, serdes to the remote FPGA.
    InterBackplane,
}

/// Static topology of the control system: `num_backplanes` backplanes each
/// carrying `fpgas_per_backplane` FPGAs, each FPGA controlling
/// `qubits_per_fpga` qubits (§6.1: 16 DACs / 4 ADCs per FPGA).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// FPGAs mounted on one backplane.
    pub fpgas_per_backplane: usize,
    /// Number of backplanes.
    pub num_backplanes: usize,
    /// Qubits controlled by one FPGA.
    pub qubits_per_fpga: usize,
}

impl Topology {
    /// The evaluation system: one backplane of FPGAs driving the 18-qubit
    /// chip, 6 qubits per FPGA (3 readout lines × 2).
    #[must_use]
    pub fn paper() -> Self {
        Self {
            fpgas_per_backplane: 3,
            num_backplanes: 1,
            qubits_per_fpga: 6,
        }
    }

    /// Total FPGA count.
    #[must_use]
    pub fn num_fpgas(&self) -> usize {
        self.fpgas_per_backplane * self.num_backplanes
    }

    /// Total qubit capacity.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_fpgas() * self.qubits_per_fpga
    }

    /// The FPGA controlling a qubit.
    ///
    /// # Panics
    ///
    /// Panics when the qubit exceeds the system capacity.
    #[must_use]
    pub fn fpga_of_qubit(&self, qubit: usize) -> FpgaId {
        assert!(qubit < self.num_qubits(), "qubit {qubit} beyond capacity");
        FpgaId(qubit / self.qubits_per_fpga)
    }

    /// The backplane carrying an FPGA.
    ///
    /// # Panics
    ///
    /// Panics when the FPGA id is out of range.
    #[must_use]
    pub fn backplane_of(&self, fpga: FpgaId) -> BackplaneId {
        assert!(fpga.0 < self.num_fpgas(), "fpga {fpga:?} out of range");
        BackplaneId(fpga.0 / self.fpgas_per_backplane)
    }

    /// The hierarchy level of a route between two FPGAs.
    #[must_use]
    pub fn route_level(&self, from: FpgaId, to: FpgaId) -> RouteLevel {
        if from == to {
            RouteLevel::IntraFpga
        } else if self.backplane_of(from) == self.backplane_of(to) {
            RouteLevel::IntraBackplane
        } else {
            RouteLevel::InterBackplane
        }
    }

    /// One-way latency of a route, ns.
    ///
    /// Level 1 is an on-chip wire (4 ns); level 2 is one serdes hop (48 ns);
    /// level 3 crosses two serdes hops plus the backplane-to-backplane link
    /// (modelled as one more serdes-class hop).
    #[must_use]
    pub fn route_latency_ns(&self, from: FpgaId, to: FpgaId, hw: &HardwareParams) -> f64 {
        match self.route_level(from, to) {
            RouteLevel::IntraFpga => hw.on_chip_ns,
            RouteLevel::IntraBackplane => hw.serdes_ns,
            RouteLevel::InterBackplane => 3.0 * hw.serdes_ns,
        }
    }

    /// Latency of the feedback path between two qubits' controllers, ns.
    #[must_use]
    pub fn qubit_route_latency_ns(
        &self,
        from_qubit: usize,
        to_qubit: usize,
        hw: &HardwareParams,
    ) -> f64 {
        self.route_latency_ns(
            self.fpga_of_qubit(from_qubit),
            self.fpga_of_qubit(to_qubit),
            hw,
        )
    }

    /// Worst-case route latency anywhere in the system, ns.
    #[must_use]
    pub fn diameter_ns(&self, hw: &HardwareParams) -> f64 {
        if self.num_backplanes > 1 {
            3.0 * hw.serdes_ns
        } else if self.fpgas_per_backplane > 1 {
            hw.serdes_ns
        } else {
            hw.on_chip_ns
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big() -> Topology {
        Topology {
            fpgas_per_backplane: 4,
            num_backplanes: 3,
            qubits_per_fpga: 6,
        }
    }

    #[test]
    fn paper_topology_covers_device() {
        let t = Topology::paper();
        assert_eq!(t.num_fpgas(), 3);
        assert_eq!(t.num_qubits(), 18);
    }

    #[test]
    fn qubit_mapping() {
        let t = Topology::paper();
        assert_eq!(t.fpga_of_qubit(0), FpgaId(0));
        assert_eq!(t.fpga_of_qubit(5), FpgaId(0));
        assert_eq!(t.fpga_of_qubit(6), FpgaId(1));
        assert_eq!(t.fpga_of_qubit(17), FpgaId(2));
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn out_of_range_qubit_panics() {
        let _ = Topology::paper().fpga_of_qubit(18);
    }

    #[test]
    fn route_levels() {
        let t = big();
        assert_eq!(t.route_level(FpgaId(0), FpgaId(0)), RouteLevel::IntraFpga);
        assert_eq!(
            t.route_level(FpgaId(0), FpgaId(3)),
            RouteLevel::IntraBackplane
        );
        assert_eq!(
            t.route_level(FpgaId(0), FpgaId(4)),
            RouteLevel::InterBackplane
        );
    }

    #[test]
    fn latency_ordering() {
        let t = big();
        let hw = HardwareParams::paper();
        let l1 = t.route_latency_ns(FpgaId(0), FpgaId(0), &hw);
        let l2 = t.route_latency_ns(FpgaId(0), FpgaId(1), &hw);
        let l3 = t.route_latency_ns(FpgaId(0), FpgaId(11), &hw);
        assert_eq!(l1, 4.0);
        assert_eq!(l2, 48.0);
        assert_eq!(l3, 144.0);
        assert!(l1 < l2 && l2 < l3);
    }

    #[test]
    fn qubit_route_latency() {
        let t = big();
        let hw = HardwareParams::paper();
        // Qubits 0 and 5 share FPGA 0.
        assert_eq!(t.qubit_route_latency_ns(0, 5, &hw), 4.0);
        // Qubits 0 and 70 are on different backplanes (70/6 = 11).
        assert_eq!(t.qubit_route_latency_ns(0, 70, &hw), 144.0);
    }

    #[test]
    fn diameter_matches_structure() {
        let hw = HardwareParams::paper();
        assert_eq!(Topology::paper().diameter_ns(&hw), 48.0);
        assert_eq!(big().diameter_ns(&hw), 144.0);
        let single = Topology {
            fpgas_per_backplane: 1,
            num_backplanes: 1,
            qubits_per_fpga: 18,
        };
        assert_eq!(single.diameter_ns(&hw), 4.0);
    }
}
