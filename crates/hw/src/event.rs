//! Event-timed simulation of one feedback through the controller units.
//!
//! `ControllerTiming` answers "when is X available" in closed form; this
//! module complements it with an explicit discrete-event timeline of the
//! units in Fig. 7 (c) — readout capture, windowed demodulation, history
//! registers, Bayesian predictor, dynamic timing controller, branch decider,
//! pulse library, DAC — so a feedback's life can be traced, printed and
//! asserted unit by unit.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::controller::ControllerTiming;
use crate::trigger::{DynamicTimingController, ProbabilityUpdate, TriggerEvent};

/// A controller unit that can emit timeline events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Unit {
    /// ADC capture + digital down-conversion of one window.
    Adc,
    /// Demodulator producing one IQ point.
    Demodulator,
    /// Branch history registers shifting in a preliminary classification.
    HistoryRegisters,
    /// Bayesian predictor emitting `P_predict_1`.
    Predictor,
    /// Dynamic timing controller issuing the feedback trigger.
    TimingController,
    /// Branch decider fetching instructions from the operation table.
    BranchDecider,
    /// Pulse library lookup + decode.
    PulseLibrary,
    /// DAC conversion; the pulse reaches the qubit when this completes.
    Dac,
}

/// One timestamped unit event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineEvent {
    /// Nanoseconds from readout start.
    pub at_ns: f64,
    /// The unit that completed work.
    pub unit: Unit,
    /// Human-readable description.
    pub detail: String,
}

/// A time-ordered event queue (min-heap by timestamp).
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(u64, usize)>>, // (time in picoseconds, insertion id)
    events: Vec<TimelineEvent>,
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event.
    pub fn push(&mut self, event: TimelineEvent) {
        let key = (event.at_ns.max(0.0) * 1000.0).round() as u64;
        let id = self.events.len();
        self.events.push(event);
        self.heap.push(Reverse((key, id)));
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<TimelineEvent> {
        self.heap
            .pop()
            .map(|Reverse((_, id))| self.events[id].clone())
    }

    /// Drains all events in time order.
    pub fn drain_ordered(&mut self) -> Vec<TimelineEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        while let Some(e) = self.pop() {
            out.push(e);
        }
        self.events.clear();
        out
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Simulates the unit-level timeline of one feedback: every window's
/// demod/classify/predict completions, and — if `trigger` fires — the
/// trigger, decider, library and DAC events down to the branch-pulse start.
///
/// Returns the time-ordered events and the trigger (if any).
#[must_use]
pub fn feedback_timeline(
    timing: &ControllerTiming,
    controller: &DynamicTimingController,
    updates: &[ProbabilityUpdate],
    route_ns: f64,
) -> (Vec<TimelineEvent>, Option<TriggerEvent>) {
    let hw = timing.params();
    let mut queue = EventQueue::new();
    let trigger = controller.first_trigger(updates.iter().copied(), timing, route_ns);
    let last_window = trigger.map_or(updates.last().map_or(0, |u| u.window), |t| t.window);
    for u in updates.iter().take_while(|u| u.window <= last_window) {
        let window_end = (u.window as f64 + 1.0) * timing.window_ns();
        queue.push(TimelineEvent {
            at_ns: window_end + hw.adc_ns,
            unit: Unit::Adc,
            detail: format!("window {} captured + down-converted", u.window),
        });
        queue.push(TimelineEvent {
            at_ns: window_end + hw.adc_ns + hw.classify_ns * 0.5,
            unit: Unit::Demodulator,
            detail: format!("window {} IQ point", u.window),
        });
        queue.push(TimelineEvent {
            at_ns: window_end + hw.adc_ns + hw.classify_ns,
            unit: Unit::HistoryRegisters,
            detail: format!("window {} classification shifted in", u.window),
        });
        queue.push(TimelineEvent {
            at_ns: timing.prediction_ready_ns(u.window),
            unit: Unit::Predictor,
            detail: format!("P_predict_1 = {:.3}", u.p_predict_1),
        });
    }
    if let Some(t) = trigger {
        queue.push(TimelineEvent {
            at_ns: t.fired_at_ns,
            unit: Unit::TimingController,
            detail: format!("feedback trigger for branch {}", u8::from(t.branch)),
        });
        queue.push(TimelineEvent {
            at_ns: t.fired_at_ns + route_ns,
            unit: Unit::BranchDecider,
            detail: "trigger received; fetching branch instructions".to_string(),
        });
        queue.push(TimelineEvent {
            at_ns: t.fired_at_ns + route_ns + hw.pulse_prep_ns,
            unit: Unit::PulseLibrary,
            detail: "branch pulses decoded".to_string(),
        });
        queue.push(TimelineEvent {
            at_ns: t.branch_start_ns,
            unit: Unit::Dac,
            detail: "branch pulse on the line".to_string(),
        });
    }
    (queue.drain_ordered(), trigger)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::HardwareParams;
    use crate::trigger::Thresholds;

    fn setup() -> (ControllerTiming, DynamicTimingController) {
        (
            ControllerTiming::new(HardwareParams::paper(), 30.0),
            DynamicTimingController::new(Thresholds::symmetric(0.9)),
        )
    }

    fn rising_updates(n: usize) -> Vec<ProbabilityUpdate> {
        (5..5 + n)
            .map(|w| ProbabilityUpdate {
                window: w,
                p_predict_1: 0.5 + 0.05 * (w as f64 - 4.0),
            })
            .collect()
    }

    #[test]
    fn queue_orders_by_time() {
        let mut q = EventQueue::new();
        for (t, d) in [(5.0, "b"), (1.0, "a"), (9.0, "c")] {
            q.push(TimelineEvent {
                at_ns: t,
                unit: Unit::Adc,
                detail: d.to_string(),
            });
        }
        let order: Vec<String> = q.drain_ordered().into_iter().map(|e| e.detail).collect();
        assert_eq!(order, ["a", "b", "c"]);
        assert!(q.is_empty());
    }

    #[test]
    fn queue_is_stable_for_ties() {
        let mut q = EventQueue::new();
        for d in ["first", "second", "third"] {
            q.push(TimelineEvent {
                at_ns: 7.0,
                unit: Unit::Predictor,
                detail: d.to_string(),
            });
        }
        let order: Vec<String> = q.drain_ordered().into_iter().map(|e| e.detail).collect();
        assert_eq!(order, ["first", "second", "third"]);
    }

    #[test]
    fn timeline_ends_with_dac_when_triggered() {
        let (timing, ctl) = setup();
        let (events, trigger) = feedback_timeline(&timing, &ctl, &rising_updates(30), 0.0);
        let t = trigger.expect("threshold crossed");
        let last = events.last().expect("events emitted");
        assert_eq!(last.unit, Unit::Dac);
        assert!((last.at_ns - t.branch_start_ns).abs() < 1e-9);
        // Monotone timeline.
        for pair in events.windows(2) {
            assert!(pair[0].at_ns <= pair[1].at_ns + 1e-9);
        }
    }

    #[test]
    fn timeline_unit_order_within_a_window() {
        let (timing, ctl) = setup();
        let (events, _) = feedback_timeline(&timing, &ctl, &rising_updates(30), 0.0);
        // The first three events belong to the first analysed window in
        // pipeline order; its Predictor completion overlaps the *next*
        // window's ADC (the units are pipelined), so it appears later.
        let units: Vec<Unit> = events.iter().take(3).map(|e| e.unit).collect();
        assert_eq!(
            units,
            [Unit::Adc, Unit::Demodulator, Unit::HistoryRegisters]
        );
        let first_pred = events
            .iter()
            .find(|e| e.unit == Unit::Predictor)
            .expect("predictor event");
        assert!((first_pred.at_ns - timing.prediction_ready_ns(5)).abs() < 1e-9);
    }

    #[test]
    fn no_trigger_means_no_downstream_units() {
        let (timing, ctl) = setup();
        let flat: Vec<ProbabilityUpdate> = (5..20)
            .map(|w| ProbabilityUpdate {
                window: w,
                p_predict_1: 0.5,
            })
            .collect();
        let (events, trigger) = feedback_timeline(&timing, &ctl, &flat, 0.0);
        assert!(trigger.is_none());
        assert!(events
            .iter()
            .all(|e| !matches!(e.unit, Unit::Dac | Unit::BranchDecider)));
    }

    #[test]
    fn route_latency_shifts_decider_not_trigger() {
        let (timing, ctl) = setup();
        let (local, _) = feedback_timeline(&timing, &ctl, &rising_updates(30), 0.0);
        let (remote, _) = feedback_timeline(&timing, &ctl, &rising_updates(30), 48.0);
        let pick = |evs: &[TimelineEvent], u: Unit| {
            evs.iter().find(|e| e.unit == u).map(|e| e.at_ns).unwrap()
        };
        assert_eq!(
            pick(&local, Unit::TimingController),
            pick(&remote, Unit::TimingController)
        );
        assert_eq!(
            pick(&remote, Unit::BranchDecider) - pick(&local, Unit::BranchDecider),
            48.0
        );
    }
}
