//! A HERQULES-style feed-forward-network readout classifier.
//!
//! HERQULES (Maurya et al., the paper's [31]) and Lienhard et al. [26]
//! classify readout trajectories with small neural networks. ARTERY's §7
//! argues its table-based vectorization reaches similar accuracy at a
//! fraction of the hardware cost; this module provides the network so the
//! comparison can actually be run: a one-hidden-layer tanh/σ network over
//! cumulative-IQ checkpoints, trained with plain SGD on labelled pulses.
//!
//! The implementation is deliberately dependency-free (no BLAS, no autograd)
//! — the networks involved are tiny (tens of weights), matching what fits in
//! FPGA fabric.

use artery_readout::{Demodulator, IqPoint, ReadoutModel, ReadoutPulse};
use rand::Rng;

/// A small feed-forward classifier over readout-pulse features.
#[derive(Debug, Clone, PartialEq)]
pub struct FnnClassifier {
    demod: Demodulator,
    checkpoints: usize,
    feature_scale: f64,
    /// `hidden[j]` holds the weights of hidden unit `j` (last entry: bias).
    hidden: Vec<Vec<f64>>,
    /// Output weights over hidden activations (last entry: bias).
    output: Vec<f64>,
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FnnConfig {
    /// Demodulation window length in nanoseconds (HERQULES uses 30 ns).
    pub window_ns: f64,
    /// Number of cumulative-IQ checkpoints used as features.
    pub checkpoints: usize,
    /// Hidden layer width.
    pub hidden: usize,
    /// SGD epochs over the training set.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
}

impl Default for FnnConfig {
    fn default() -> Self {
        Self {
            window_ns: 30.0,
            checkpoints: 8,
            hidden: 6,
            epochs: 30,
            learning_rate: 0.05,
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl FnnClassifier {
    /// Trains a classifier on labelled pulses.
    ///
    /// # Panics
    ///
    /// Panics when the training set is empty or the configuration is
    /// degenerate (zero checkpoints/hidden units).
    #[must_use]
    pub fn train(
        model: &ReadoutModel,
        config: &FnnConfig,
        pulses: &[ReadoutPulse],
        rng: &mut impl Rng,
    ) -> Self {
        assert!(!pulses.is_empty(), "training set must not be empty");
        assert!(config.checkpoints >= 1, "need at least one checkpoint");
        assert!(config.hidden >= 1, "need at least one hidden unit");
        let demod = Demodulator::for_model(model, config.window_ns);
        // Scale features to roughly unit magnitude (the carrier amplitude).
        let feature_scale = 1.0 / model.amplitude.max(f64::MIN_POSITIVE);
        let num_features = config.checkpoints * 2;
        let mut net = Self {
            demod,
            checkpoints: config.checkpoints,
            feature_scale,
            hidden: (0..config.hidden)
                .map(|_| {
                    (0..=num_features)
                        .map(|_| rng.gen_range(-0.5..0.5))
                        .collect()
                })
                .collect(),
            output: (0..=config.hidden)
                .map(|_| rng.gen_range(-0.5..0.5))
                .collect(),
        };
        // Pre-compute features once, demodulating every training pulse
        // through the model's shared phase table into one reused trajectory
        // buffer (bit-identical to the naive per-pulse path).
        let table = model.phase_table();
        let mut traj = Vec::new();
        let data: Vec<(Vec<f64>, f64)> = pulses
            .iter()
            .map(|p| {
                net.demod.cumulative_trajectory_into(&table, p, &mut traj);
                (
                    net.features_from_trajectory(&traj),
                    f64::from(u8::from(p.true_state)),
                )
            })
            .collect();
        let mut order: Vec<usize> = (0..data.len()).collect();
        for _ in 0..config.epochs {
            // Fisher–Yates shuffle for SGD.
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for &i in &order {
                let (x, y) = &data[i];
                net.sgd_step(x, *y, config.learning_rate);
            }
        }
        net
    }

    /// Cumulative-IQ features at evenly spaced checkpoints.
    fn features(&self, pulse: &ReadoutPulse) -> Vec<f64> {
        self.features_from_trajectory(&self.demod.cumulative_trajectory(pulse))
    }

    /// Features from an already-demodulated cumulative trajectory (e.g. one
    /// replayed from a recorded trace instead of a raw pulse).
    fn features_from_trajectory(&self, traj: &[IqPoint]) -> Vec<f64> {
        let n = traj.len().max(1);
        let mut out = Vec::with_capacity(self.checkpoints * 2);
        for k in 0..self.checkpoints {
            let idx = ((k + 1) * n / self.checkpoints).min(n) - 1;
            let point = traj.get(idx).copied().unwrap_or_default();
            out.push(point.i * self.feature_scale);
            out.push(point.q * self.feature_scale);
        }
        out
    }

    fn forward(&self, x: &[f64]) -> (Vec<f64>, f64) {
        let acts: Vec<f64> = self
            .hidden
            .iter()
            .map(|w| {
                let mut z = w[x.len()]; // bias
                for (wi, xi) in w[..x.len()].iter().zip(x) {
                    z += wi * xi;
                }
                z.tanh()
            })
            .collect();
        let mut z = self.output[acts.len()];
        for (wi, a) in self.output[..acts.len()].iter().zip(&acts) {
            z += wi * a;
        }
        (acts, sigmoid(z))
    }

    fn sgd_step(&mut self, x: &[f64], y: f64, lr: f64) {
        let (acts, p) = self.forward(x);
        let delta_out = p - y; // dL/dz for cross-entropy + sigmoid
                               // Output layer.
        for (w, a) in self.output[..acts.len()].iter_mut().zip(&acts) {
            *w -= lr * delta_out * a;
        }
        let bias_idx = acts.len();
        self.output[bias_idx] -= lr * delta_out;
        // Hidden layer.
        for (j, w) in self.hidden.iter_mut().enumerate() {
            let delta_h = delta_out * self.output[j] * (1.0 - acts[j] * acts[j]);
            for (wi, xi) in w[..x.len()].iter_mut().zip(x) {
                *wi -= lr * delta_h * xi;
            }
            w[x.len()] -= lr * delta_h;
        }
    }

    /// Probability that the pulse reads out as `|1⟩`.
    #[must_use]
    pub fn probability(&self, pulse: &ReadoutPulse) -> f64 {
        self.forward(&self.features(pulse)).1
    }

    /// Hard classification.
    #[must_use]
    pub fn classify(&self, pulse: &ReadoutPulse) -> bool {
        self.probability(pulse) > 0.5
    }

    /// Probability of `|1⟩` from an already-demodulated cumulative
    /// trajectory. Lets trace-driven harnesses evaluate the network from
    /// recorded IQ checkpoints without re-synthesizing the pulse; the
    /// trajectory must use the same window length the network was trained
    /// with.
    #[must_use]
    pub fn probability_from_trajectory(&self, traj: &[IqPoint]) -> f64 {
        self.forward(&self.features_from_trajectory(traj)).1
    }

    /// Hard classification from an already-demodulated trajectory.
    #[must_use]
    pub fn classify_trajectory(&self, traj: &[IqPoint]) -> bool {
        self.probability_from_trajectory(traj) > 0.5
    }

    /// Accuracy against ground-truth labels.
    #[must_use]
    pub fn accuracy<'a>(&self, pulses: impl IntoIterator<Item = &'a ReadoutPulse>) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for p in pulses {
            correct += usize::from(self.classify(p) == p.true_state);
            total += 1;
        }
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_num::rng::rng_for;
    use artery_readout::Dataset;

    fn trained() -> (ReadoutModel, FnnClassifier, Dataset) {
        let model = ReadoutModel::paper();
        let mut rng = rng_for("fnn/train");
        let dataset = Dataset::generate(&model, 0.5, 1200, &mut rng);
        let split = dataset.split(800);
        let net = FnnClassifier::train(
            &model,
            &FnnConfig::default(),
            split.train,
            &mut rng_for("fnn/init"),
        );
        (model, net, dataset)
    }

    #[test]
    fn reaches_high_accuracy_on_held_out_pulses() {
        let (_, net, dataset) = trained();
        let split = dataset.split(800);
        let acc = net.accuracy(split.test.iter());
        // HERQULES-class networks reach matched-filter-like accuracy;
        // require 95 % on the held-out set (full-readout fidelity is 99 %).
        assert!(acc > 0.95, "held-out accuracy {acc}");
    }

    #[test]
    fn probability_is_calibrated_direction() {
        let (model, net, _) = trained();
        let mut rng = rng_for("fnn/direction");
        let mut p1_sum = 0.0;
        let mut p0_sum = 0.0;
        const N: usize = 50;
        for _ in 0..N {
            p1_sum += net.probability(&model.synthesize(true, &mut rng));
            p0_sum += net.probability(&model.synthesize(false, &mut rng));
        }
        assert!((p1_sum / N as f64) > 0.8, "mean P(1|state=1) too low");
        assert!((p0_sum / N as f64) < 0.2, "mean P(1|state=0) too high");
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let model = ReadoutModel::paper();
        let dataset = Dataset::generate(&model, 0.5, 200, &mut rng_for("fnn/det/data"));
        let a = FnnClassifier::train(
            &model,
            &FnnConfig::default(),
            dataset.pulses(),
            &mut rng_for("fnn/det/init"),
        );
        let b = FnnClassifier::train(
            &model,
            &FnnConfig::default(),
            dataset.pulses(),
            &mut rng_for("fnn/det/init"),
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_training_set_panics() {
        let model = ReadoutModel::paper();
        let _ = FnnClassifier::train(
            &model,
            &FnnConfig::default(),
            &[],
            &mut rng_for("fnn/empty"),
        );
    }

    #[test]
    fn accuracy_of_empty_set_is_zero() {
        let (_, net, _) = trained();
        assert_eq!(net.accuracy(std::iter::empty()), 0.0);
    }

    #[test]
    fn trajectory_api_matches_pulse_api() {
        let (model, net, _) = trained();
        let mut rng = rng_for("fnn/traj");
        for state in [false, true] {
            let pulse = model.synthesize(state, &mut rng);
            let traj = net.demod.cumulative_trajectory(&pulse);
            assert_eq!(
                net.probability_from_trajectory(&traj),
                net.probability(&pulse)
            );
            assert_eq!(net.classify_trajectory(&traj), net.classify(&pulse));
        }
    }

    #[test]
    fn table_training_features_match_naive_features() {
        let (model, net, _) = trained();
        let table = model.phase_table();
        let mut rng = rng_for("fnn/table-features");
        let mut traj = Vec::new();
        for state in [false, true] {
            let pulse = model.synthesize(state, &mut rng);
            net.demod
                .cumulative_trajectory_into(&table, &pulse, &mut traj);
            assert_eq!(net.features_from_trajectory(&traj), net.features(&pulse));
        }
    }

    #[test]
    fn empty_trajectory_is_handled() {
        let (_, net, _) = trained();
        let p = net.probability_from_trajectory(&[]);
        assert!((0.0..=1.0).contains(&p));
    }
}
