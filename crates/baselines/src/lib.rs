//! Baseline feedback controllers the paper compares against (§6.1).
//!
//! All four baselines are *sequential*: they wait for the full readout, run
//! their classification/pulse-preparation pipeline, and only then play the
//! branch. They differ in classical pipeline latency:
//!
//! * **QubiC 2.0** (Huang et al. [20]) — the state of the art; pre-stored
//!   pulse tables and fine-grained DAC optimization give it the shortest
//!   conventional pipeline,
//! * **HERQULES** (Maurya et al. [31]) — matched-filter + FNN readout with a
//!   30 ns window; slightly more classification work than QubiC,
//! * **Salathé et al.** [48] — parallel/pipelined DSP classification; the
//!   fastest classical path but a less optimized pulse stage overall,
//! * **Reuer et al.** [44] — a deep-reinforcement-learning agent in the
//!   loop; the network inference adds several hundred nanoseconds.
//!
//! Pipeline constants are fitted to Table 1's reset column (readout-bound
//! feedback exposes the raw pipeline: latency − 2 µs readout − 30 ns branch
//! pulse). Each baseline implements
//! [`FeedbackHandler`](artery_sim::FeedbackHandler), so it plugs into the
//! same executor as ARTERY.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fnn;

use artery_circuit::Feedback;
use artery_sim::{FeedbackHandler, Resolution};
use rand::rngs::StdRng;

/// A sequential baseline feedback controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Baseline {
    name: &'static str,
    readout_ns: f64,
    processing_ns: f64,
}

impl Baseline {
    /// QubiC 2.0 — the state-of-the-art comparison point.
    #[must_use]
    pub fn qubic() -> Self {
        Self {
            name: "QubiC",
            readout_ns: 2000.0,
            processing_ns: 130.0,
        }
    }

    /// HERQULES with feedback and a 30 ns matched-filter window.
    #[must_use]
    pub fn herqules() -> Self {
        Self {
            name: "HERQULES",
            readout_ns: 2000.0,
            processing_ns: 150.0,
        }
    }

    /// Salathé et al.'s pipelined DSP controller.
    #[must_use]
    pub fn salathe() -> Self {
        Self {
            name: "Salathe et al.",
            readout_ns: 2000.0,
            processing_ns: 100.0,
        }
    }

    /// Reuer et al.'s reinforcement-learning agent controller.
    #[must_use]
    pub fn reuer() -> Self {
        Self {
            name: "Reuer et al.",
            readout_ns: 2000.0,
            processing_ns: 370.0,
        }
    }

    /// All four baselines in the paper's table order.
    #[must_use]
    pub fn all() -> Vec<Baseline> {
        vec![
            Self::qubic(),
            Self::herqules(),
            Self::salathe(),
            Self::reuer(),
        ]
    }

    /// Controller name as printed in the paper's tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Classical pipeline latency (everything after the readout), ns.
    #[must_use]
    pub fn processing_ns(&self) -> f64 {
        self.processing_ns
    }

    /// Readout duration this controller waits for, ns.
    #[must_use]
    pub fn readout_ns(&self) -> f64 {
        self.readout_ns
    }

    /// Overrides the readout duration (for readout-latency sweeps).
    #[must_use]
    pub fn with_readout_ns(mut self, readout_ns: f64) -> Self {
        self.readout_ns = readout_ns;
        self
    }

    /// Feedback latency for a branch of the given pulse duration, ns.
    #[must_use]
    pub fn feedback_latency_ns(&self, branch_ns: f64) -> f64 {
        self.readout_ns + self.processing_ns + branch_ns
    }
}

impl FeedbackHandler for Baseline {
    fn resolve(&mut self, fb: &Feedback, reported: bool, _rng: &mut StdRng) -> Resolution {
        Resolution::sequential(self.feedback_latency_ns(fb.branch_duration_ns(reported)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_circuit::{CircuitBuilder, Gate, Qubit};
    use artery_num::rng::rng_for;
    use artery_sim::{Executor, NoiseModel};

    #[test]
    fn ordering_of_pipelines() {
        let s = Baseline::salathe().processing_ns();
        let q = Baseline::qubic().processing_ns();
        let h = Baseline::herqules().processing_ns();
        let r = Baseline::reuer().processing_ns();
        assert!(s < q && q < h && h < r);
    }

    #[test]
    fn reset_latency_matches_table1_column() {
        // Table 1 reset column: QubiC 2.16, HERQULES 2.16, Salathé 2.11,
        // Reuer 2.38 µs. Branch = one 30 ns X pulse.
        let tol = 0.05; // µs
        let expect = [
            (Baseline::qubic(), 2.16),
            (Baseline::herqules(), 2.16),
            (Baseline::salathe(), 2.11),
            (Baseline::reuer(), 2.38),
        ];
        for (b, us) in expect {
            let got = b.feedback_latency_ns(30.0) / 1000.0;
            assert!(
                (got - us).abs() < tol,
                "{}: {got:.3} vs paper {us}",
                b.name()
            );
        }
    }

    #[test]
    fn all_lists_four() {
        let names: Vec<&str> = Baseline::all().iter().map(Baseline::name).collect();
        assert_eq!(
            names,
            ["QubiC", "HERQULES", "Salathe et al.", "Reuer et al."]
        );
    }

    #[test]
    fn handler_resolves_sequentially() {
        let mut b = CircuitBuilder::new(1);
        b.gate(Gate::X, &[Qubit(0)]);
        b.feedback(Qubit(0)).on_one(Gate::X, &[Qubit(0)]).finish();
        let circuit = b.build();
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut handler = Baseline::qubic();
        let mut rng = rng_for("baseline/handler");
        let rec = exec.run(&circuit, &mut handler, &mut rng);
        assert_eq!(rec.predictions, 0);
        assert!((rec.feedback_latencies_ns[0] - 2160.0).abs() < 1e-9);
    }

    #[test]
    fn readout_override() {
        let b = Baseline::qubic().with_readout_ns(500.0);
        assert_eq!(b.feedback_latency_ns(0.0), 630.0);
    }
}
