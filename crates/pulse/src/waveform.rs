//! DAC waveform synthesis for the calibrated gate set.

use serde::{Deserialize, Serialize};

/// Full-scale value of the 16-bit DAC (§5.4: "a resolution of 16 bits").
pub const DAC_FULL_SCALE: f64 = i16::MAX as f64;

/// Analytic description of a control pulse envelope.
///
/// The paper's gate set needs three shapes: a Gaussian XY envelope (30 ns),
/// a flat-top CZ envelope (60 ns), and a long square readout pulse (2 µs).
/// Idle periods are explicit zero pulses because their compressibility is
/// the entire point of §5.4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PulseShape {
    /// Gaussian envelope: `amp · exp(−(t−T/2)²/2σ²)` over duration `T`.
    Gaussian {
        /// Duration in nanoseconds.
        duration_ns: f64,
        /// Peak amplitude in `[0, 1]` of DAC full scale.
        amplitude: f64,
        /// Gaussian σ in nanoseconds.
        sigma_ns: f64,
    },
    /// Flat-top envelope with cosine-ramped edges.
    FlatTop {
        /// Duration in nanoseconds.
        duration_ns: f64,
        /// Plateau amplitude in `[0, 1]` of DAC full scale.
        amplitude: f64,
        /// Ramp length at each edge in nanoseconds.
        ramp_ns: f64,
    },
    /// Constant-amplitude square pulse (readout probe).
    Square {
        /// Duration in nanoseconds.
        duration_ns: f64,
        /// Amplitude in `[0, 1]` of DAC full scale.
        amplitude: f64,
    },
    /// All-zero idle period.
    Idle {
        /// Duration in nanoseconds.
        duration_ns: f64,
    },
}

impl PulseShape {
    /// The standard 30 ns XY pulse of the evaluation platform.
    #[must_use]
    pub fn xy_pulse() -> Self {
        PulseShape::Gaussian {
            duration_ns: 30.0,
            amplitude: 0.8,
            sigma_ns: 6.0,
        }
    }

    /// The standard 60 ns CZ pulse.
    #[must_use]
    pub fn cz_pulse() -> Self {
        PulseShape::FlatTop {
            duration_ns: 60.0,
            amplitude: 0.6,
            ramp_ns: 10.0,
        }
    }

    /// The 2 µs readout probe pulse.
    #[must_use]
    pub fn readout_pulse() -> Self {
        PulseShape::Square {
            duration_ns: 2000.0,
            amplitude: 0.3,
        }
    }

    /// Duration of the shape in nanoseconds.
    #[must_use]
    pub fn duration_ns(&self) -> f64 {
        match *self {
            PulseShape::Gaussian { duration_ns, .. }
            | PulseShape::FlatTop { duration_ns, .. }
            | PulseShape::Square { duration_ns, .. }
            | PulseShape::Idle { duration_ns } => duration_ns,
        }
    }

    /// Envelope value at time `t_ns` in `[0, 1]` of full scale.
    #[must_use]
    pub fn envelope(&self, t_ns: f64) -> f64 {
        match *self {
            PulseShape::Gaussian {
                duration_ns,
                amplitude,
                sigma_ns,
            } => {
                let mid = duration_ns / 2.0;
                amplitude * (-((t_ns - mid).powi(2)) / (2.0 * sigma_ns * sigma_ns)).exp()
            }
            PulseShape::FlatTop {
                duration_ns,
                amplitude,
                ramp_ns,
            } => {
                if t_ns < ramp_ns {
                    amplitude * 0.5 * (1.0 - (std::f64::consts::PI * t_ns / ramp_ns).cos())
                } else if t_ns > duration_ns - ramp_ns {
                    let u = (duration_ns - t_ns) / ramp_ns;
                    amplitude * 0.5 * (1.0 - (std::f64::consts::PI * u).cos())
                } else {
                    amplitude
                }
            }
            PulseShape::Square { amplitude, .. } => amplitude,
            PulseShape::Idle { .. } => 0.0,
        }
    }
}

/// A sampled 16-bit DAC waveform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Waveform {
    samples: Vec<i16>,
    sample_rate_gsps: f64,
}

impl Waveform {
    /// Samples a shape at `sample_rate_gsps` gigasamples per second,
    /// quantizing to 16 bits.
    ///
    /// # Panics
    ///
    /// Panics when the sample rate is not positive.
    #[must_use]
    pub fn synthesize(shape: &PulseShape, sample_rate_gsps: f64) -> Self {
        assert!(sample_rate_gsps > 0.0, "sample rate must be positive");
        let n = (shape.duration_ns() * sample_rate_gsps).round() as usize;
        let samples = (0..n)
            .map(|k| {
                let t = k as f64 / sample_rate_gsps;
                let v = shape.envelope(t).clamp(-1.0, 1.0);
                (v * DAC_FULL_SCALE).round() as i16
            })
            .collect();
        Self {
            samples,
            sample_rate_gsps,
        }
    }

    /// An all-zero waveform of the given duration.
    #[must_use]
    pub fn idle(duration_ns: f64, sample_rate_gsps: f64) -> Self {
        Self::synthesize(&PulseShape::Idle { duration_ns }, sample_rate_gsps)
    }

    /// The DAC samples.
    #[must_use]
    pub fn samples(&self) -> &[i16] {
        &self.samples
    }

    /// The sample rate in GSPS.
    #[must_use]
    pub fn sample_rate_gsps(&self) -> f64 {
        self.sample_rate_gsps
    }

    /// Duration in nanoseconds.
    #[must_use]
    pub fn duration_ns(&self) -> f64 {
        self.samples.len() as f64 / self.sample_rate_gsps
    }

    /// Raw size in bits (16 bits per sample).
    #[must_use]
    pub fn raw_bits(&self) -> usize {
        self.samples.len() * 16
    }

    /// Appends another waveform (must share the sample rate).
    ///
    /// # Panics
    ///
    /// Panics on sample-rate mismatch.
    pub fn append(&mut self, other: &Waveform) {
        assert!(
            (self.sample_rate_gsps - other.sample_rate_gsps).abs() < 1e-12,
            "sample-rate mismatch"
        );
        self.samples.extend_from_slice(&other.samples);
    }

    /// Returns an amplitude-scaled copy (per-qubit calibration differences
    /// make each gate instance's pulse slightly different on real hardware).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Waveform {
        Waveform {
            samples: self
                .samples
                .iter()
                .map(|&s| ((f64::from(s) * factor).round() as i32).clamp(-32768, 32767) as i16)
                .collect(),
            sample_rate_gsps: self.sample_rate_gsps,
        }
    }

    /// Returns a copy with deterministic ±`max_lsb` dither added to every
    /// non-zero sample — the calibration noise floor that makes real pulse
    /// data far less compressible than ideal envelopes. The dither is held
    /// constant over `block` consecutive samples, modelling the staircase
    /// output of an AWG whose envelope update rate is below the DAC sample
    /// rate; this is why real pulse data still contains runs (and why the
    /// paper's run-length stage outperforms Huffman). Zero (idle) samples
    /// stay exactly zero, as the paper observes.
    ///
    /// # Panics
    ///
    /// Panics when `block` is zero.
    #[must_use]
    pub fn dithered(&self, seed: u64, max_lsb: i16, block: usize) -> Waveform {
        assert!(block > 0, "dither block must be positive");
        let span = i32::from(max_lsb) * 2 + 1;
        let samples = self
            .samples
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                if s == 0 || max_lsb == 0 {
                    s
                } else {
                    // SplitMix64 over (seed, block index) for stable dither.
                    let mut z = seed ^ ((i / block) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    z ^= z >> 31;
                    let d = (z % span as u64) as i32 - i32::from(max_lsb);
                    (i32::from(s) + d).clamp(-32768, 32767) as i16
                }
            })
            .collect();
        Waveform {
            samples,
            sample_rate_gsps: self.sample_rate_gsps,
        }
    }

    /// Returns a copy where each block of `block` samples is held at the
    /// block's first value — the staircase envelope of an AWG whose update
    /// rate is a fraction of the DAC rate.
    ///
    /// # Panics
    ///
    /// Panics when `block` is zero.
    #[must_use]
    pub fn held(&self, block: usize) -> Waveform {
        assert!(block > 0, "hold block must be positive");
        let samples = self
            .samples
            .iter()
            .enumerate()
            .map(|(i, _)| self.samples[(i / block) * block])
            .collect();
        Waveform {
            samples,
            sample_rate_gsps: self.sample_rate_gsps,
        }
    }

    /// Returns a copy with each sample repeated `n` times — the on-FPGA
    /// upsampling in front of an `n`× interpolating DAC (§6.1 configures
    /// 2×), which is what actually crosses the AXI bus.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    #[must_use]
    pub fn repeated(&self, n: usize) -> Waveform {
        assert!(n > 0, "repetition factor must be positive");
        let mut samples = Vec::with_capacity(self.samples.len() * n);
        for &s in &self.samples {
            samples.extend(std::iter::repeat_n(s, n));
        }
        Waveform {
            samples,
            sample_rate_gsps: self.sample_rate_gsps * n as f64,
        }
    }

    /// Fraction of exactly-zero samples — the sparsity §5.4 exploits.
    #[must_use]
    pub fn zero_fraction(&self) -> f64 {
        if self.samples.is_empty() {
            return 1.0;
        }
        self.samples.iter().filter(|s| **s == 0).count() as f64 / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_pulse_dimensions() {
        let wf = Waveform::synthesize(&PulseShape::xy_pulse(), 2.0);
        assert_eq!(wf.samples().len(), 60); // 30 ns × 2 GSPS
        assert!((wf.duration_ns() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_peaks_in_middle() {
        let wf = Waveform::synthesize(&PulseShape::xy_pulse(), 2.0);
        let peak_idx = wf
            .samples()
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| **v)
            .map(|(i, _)| i)
            .unwrap();
        assert!((25..=35).contains(&peak_idx), "peak at {peak_idx}");
        let peak = wf.samples()[peak_idx] as f64 / DAC_FULL_SCALE;
        assert!((peak - 0.8).abs() < 0.01);
    }

    #[test]
    fn flat_top_has_plateau() {
        let wf = Waveform::synthesize(&PulseShape::cz_pulse(), 2.0);
        let mid = wf.samples()[wf.samples().len() / 2] as f64 / DAC_FULL_SCALE;
        assert!((mid - 0.6).abs() < 0.01);
        // Edges ramp from zero.
        assert_eq!(wf.samples()[0], 0);
    }

    #[test]
    fn idle_is_all_zeros() {
        let wf = Waveform::idle(100.0, 2.0);
        assert_eq!(wf.samples().len(), 200);
        assert!(wf.samples().iter().all(|s| *s == 0));
        assert_eq!(wf.zero_fraction(), 1.0);
    }

    #[test]
    fn readout_square_is_constant() {
        let wf = Waveform::synthesize(&PulseShape::readout_pulse(), 2.0);
        assert_eq!(wf.samples().len(), 4000);
        let first = wf.samples()[0];
        assert!(wf.samples().iter().all(|s| *s == first));
    }

    #[test]
    fn append_concatenates() {
        let mut wf = Waveform::idle(10.0, 2.0);
        wf.append(&Waveform::synthesize(&PulseShape::xy_pulse(), 2.0));
        assert_eq!(wf.samples().len(), 20 + 60);
        assert!(wf.zero_fraction() > 0.2);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn append_rate_mismatch_panics() {
        let mut wf = Waveform::idle(10.0, 2.0);
        wf.append(&Waveform::idle(10.0, 4.0));
    }

    #[test]
    fn raw_bits_counts_16_per_sample() {
        let wf = Waveform::idle(10.0, 2.0);
        assert_eq!(wf.raw_bits(), 20 * 16);
    }
}
