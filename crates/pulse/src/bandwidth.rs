//! Bandwidth, DAC-density and decode-latency model regenerating Table 2.
//!
//! One DAC channel at 4 GSPS and 16 bits consumes 64 Gb/s of on-chip (AXI)
//! bandwidth when fed raw samples — the "Raw pulse" column of Table 2. A
//! codec with compression ratio `r` shrinks that to `64/r` Gb/s, so the
//! number of DAC channels one FPGA can feed grows from
//! `⌊budget/64⌋ = 4` to `⌊budget/(64/r)⌋`.
//!
//! Decode latency is a pipeline model at the 250 MHz fabric clock (4 ns per
//! cycle): the run-length decoder is a short fixed pipeline whose depth grows
//! when runs are short (more tokens per output word), and the Huffman
//! decoder's critical path follows its maximum code length. The combined
//! decoder pipelines the two stages with partial overlap. The model is
//! calibrated to the latency column of Table 2 (7–21 ns).

use serde::{Deserialize, Serialize};

use crate::codec::CodecAnalysis;

/// Static bandwidth parameters of the evaluation platform (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthModel {
    /// DAC sample rate in GSPS (evaluation: 4 GSPS).
    pub dac_gsps: f64,
    /// DAC resolution in bits.
    pub dac_bits: f64,
    /// Total AXI bandwidth budget per FPGA in Gb/s. The paper's raw
    /// configuration feeds 4 DACs at 64 Gb/s each, giving 256 Gb/s.
    pub axi_budget_gbps: f64,
    /// FPGA fabric clock period in nanoseconds (250 MHz → 4 ns).
    pub clock_ns: f64,
}

impl Default for BandwidthModel {
    fn default() -> Self {
        Self {
            dac_gsps: 4.0,
            dac_bits: 16.0,
            axi_budget_gbps: 256.0,
            clock_ns: 4.0,
        }
    }
}

/// One row-triplet of Table 2 for a codec on a workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodecReport {
    /// Effective per-DAC bandwidth in Gb/s (64 for raw).
    pub bandwidth_gbps: f64,
    /// DAC channels one FPGA can feed at this bandwidth.
    pub dacs_per_fpga: usize,
    /// Decoder pipeline latency in nanoseconds (0 for raw).
    pub decode_latency_ns: f64,
    /// Compression ratio achieved on the workload stream.
    pub compression_ratio: f64,
}

impl BandwidthModel {
    /// Raw per-DAC bandwidth in Gb/s.
    #[must_use]
    pub fn raw_gbps(&self) -> f64 {
        self.dac_gsps * self.dac_bits
    }

    /// Effective bandwidth after compression with ratio `r`.
    #[must_use]
    pub fn effective_gbps(&self, ratio: f64) -> f64 {
        self.raw_gbps() / ratio.max(1e-9)
    }

    /// DAC channels supported at compression ratio `r` (at least 1).
    #[must_use]
    pub fn dacs_per_fpga(&self, ratio: f64) -> usize {
        ((self.axi_budget_gbps / self.effective_gbps(ratio)).floor() as usize).max(1)
    }

    /// The "Raw pulse" column.
    #[must_use]
    pub fn raw_report(&self) -> CodecReport {
        CodecReport {
            bandwidth_gbps: self.raw_gbps(),
            dacs_per_fpga: self.dacs_per_fpga(1.0),
            decode_latency_ns: 0.0,
            compression_ratio: 1.0,
        }
    }

    /// Run-length decoder latency: a 2-cycle fetch/expand pipeline plus one
    /// extra cycle when runs are short (ratio below 4 means the decoder
    /// touches multiple tokens per output burst).
    #[must_use]
    pub fn rle_latency_ns(&self, ratio: f64) -> f64 {
        let cycles = if ratio < 4.0 { 3.0 } else { 2.0 };
        cycles * self.clock_ns
    }

    /// Huffman decoder latency: prefix resolution at 4 bits per cycle
    /// (a wide parallel decode LUT) over the maximum code length, plus one
    /// table-stage cycle.
    #[must_use]
    pub fn huffman_latency_ns(&self, max_code_len: u8) -> f64 {
        (1.0 + f64::from(max_code_len) / 4.0).ceil() * self.clock_ns
    }

    /// Combined decoder latency: the two stages run pipelined, so the
    /// critical path is the slower stage plus one handoff cycle.
    #[must_use]
    pub fn combined_latency_ns(&self, rle_ns: f64, huffman_ns: f64) -> f64 {
        rle_ns.max(huffman_ns) + self.clock_ns
    }

    /// Full Table 2 triplet for a named codec on a sample stream.
    ///
    /// The stream is scanned once ([`CodecAnalysis`]); the old implementation
    /// re-encoded it per codec name — up to four full encodes for
    /// `"huffman+run-length"`. Reported numbers are bit-for-bit unchanged
    /// (the analysis sizes are exact).
    ///
    /// # Panics
    ///
    /// Panics when `codec_name` is not one of `"huffman"`, `"run-length"`,
    /// `"huffman+run-length"`.
    #[must_use]
    pub fn report(&self, codec_name: &str, samples: &[i16]) -> CodecReport {
        self.report_from_analysis(codec_name, &CodecAnalysis::of(samples))
    }

    /// All three Table 2 triplets from a single stream scan. Use this when
    /// emitting a full table row — `report` called per name would repeat the
    /// analysis.
    #[must_use]
    pub fn report_all(&self, samples: &[i16]) -> [(&'static str, CodecReport); 3] {
        let analysis = CodecAnalysis::of(samples);
        ["huffman", "run-length", "huffman+run-length"]
            .map(|name| (name, self.report_from_analysis(name, &analysis)))
    }

    /// Table 2 triplet for a named codec from an existing analysis.
    ///
    /// # Panics
    ///
    /// Panics when `codec_name` is not one of `"huffman"`, `"run-length"`,
    /// `"huffman+run-length"`.
    #[must_use]
    pub fn report_from_analysis(&self, codec_name: &str, analysis: &CodecAnalysis) -> CodecReport {
        let (ratio, latency) = match codec_name {
            "huffman" => (
                analysis.huffman.ratio(),
                self.huffman_latency_ns(analysis.max_code_len),
            ),
            "run-length" => {
                let ratio = analysis.run_length.ratio();
                (ratio, self.rle_latency_ns(ratio))
            }
            "huffman+run-length" => {
                let ratio = analysis.combined.ratio();
                let rle = self.rle_latency_ns(analysis.run_length.ratio());
                let huff = self.huffman_latency_ns(analysis.max_code_len);
                (ratio, self.combined_latency_ns(rle, huff))
            }
            other => panic!("unknown codec {other}"),
        };
        CodecReport {
            bandwidth_gbps: self.effective_gbps(ratio),
            dacs_per_fpga: self.dacs_per_fpga(ratio),
            decode_latency_ns: latency,
            compression_ratio: ratio,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{Codec, Combined, CompressionStats, Huffman, RunLength};

    #[test]
    fn raw_configuration_matches_paper() {
        let m = BandwidthModel::default();
        assert_eq!(m.raw_gbps(), 64.0);
        let raw = m.raw_report();
        assert_eq!(raw.dacs_per_fpga, 4);
        assert_eq!(raw.decode_latency_ns, 0.0);
    }

    #[test]
    fn higher_ratio_means_more_dacs() {
        let m = BandwidthModel::default();
        assert!(m.dacs_per_fpga(6.0) > m.dacs_per_fpga(2.0));
        // Paper: combined QEC bandwidth 9.9 Gb/s (ratio 64/9.9) → 25 DACs.
        assert_eq!(m.dacs_per_fpga(64.0 / 9.9), 25);
    }

    #[test]
    fn dacs_never_below_one() {
        let m = BandwidthModel::default();
        assert_eq!(m.dacs_per_fpga(0.001), 1);
    }

    #[test]
    fn latency_models_land_in_paper_range() {
        let m = BandwidthModel::default();
        // RLE: 7.6–12.5 ns in Table 2.
        assert!(m.rle_latency_ns(10.0) >= 4.0 && m.rle_latency_ns(10.0) <= 12.5);
        assert!(m.rle_latency_ns(2.0) <= 16.0);
        // Huffman: 16.4–18.9 ns in Table 2.
        let h = m.huffman_latency_ns(8);
        assert!((12.0..=24.0).contains(&h), "huffman latency {h}");
    }

    #[test]
    fn combined_latency_between_sum_and_max() {
        let m = BandwidthModel::default();
        let c = m.combined_latency_ns(8.0, 16.0);
        assert!((16.0..=24.0).contains(&c));
    }

    #[test]
    fn report_on_sparse_stream() {
        let m = BandwidthModel::default();
        let mut samples = vec![0i16; 4000];
        for (k, s) in samples.iter_mut().enumerate().take(120) {
            *s = (k as i16) * 100;
        }
        let raw = m.raw_report();
        for name in ["huffman", "run-length", "huffman+run-length"] {
            let rep = m.report(name, &samples);
            assert!(rep.compression_ratio > 1.0, "{name} did not compress");
            assert!(rep.bandwidth_gbps < raw.bandwidth_gbps);
            assert!(rep.dacs_per_fpga >= raw.dacs_per_fpga);
            assert!(rep.decode_latency_ns > 0.0);
        }
    }

    /// The pre-analysis implementation of `report`, reproduced verbatim on
    /// the naive oracles: one `stats` (= encode) per ratio, plus the extra
    /// RLE ratio and `max_code_len` passes for the combined row.
    fn report_by_reencoding(m: &BandwidthModel, codec_name: &str, samples: &[i16]) -> CodecReport {
        let stats = |encoded: &[u8]| CompressionStats {
            raw_bits: samples.len() * 16,
            encoded_bits: encoded.len() * 8,
        };
        let (ratio, latency) = match codec_name {
            "huffman" => {
                let ratio = stats(&Huffman.naive_encode(samples)).ratio();
                (ratio, m.huffman_latency_ns(Huffman::max_code_len(samples)))
            }
            "run-length" => {
                let ratio = stats(&RunLength.encode(samples)).ratio();
                (ratio, m.rle_latency_ns(ratio))
            }
            "huffman+run-length" => {
                let ratio = stats(&Combined.naive_encode(samples)).ratio();
                let rle = m.rle_latency_ns(stats(&RunLength.encode(samples)).ratio());
                let huff = m.huffman_latency_ns(Huffman::max_code_len(samples));
                (ratio, m.combined_latency_ns(rle, huff))
            }
            other => panic!("unknown codec {other}"),
        };
        CodecReport {
            bandwidth_gbps: m.effective_gbps(ratio),
            dacs_per_fpga: m.dacs_per_fpga(ratio),
            decode_latency_ns: latency,
            compression_ratio: ratio,
        }
    }

    #[test]
    fn single_pass_report_is_bit_identical_to_reencoding() {
        let m = BandwidthModel::default();
        let mut sparse = vec![0i16; 4000];
        for (k, s) in sparse.iter_mut().enumerate().take(120) {
            *s = (k as i16) * 100;
        }
        let streams: [Vec<i16>; 4] = [
            sparse,
            vec![7i16; 300],
            (0..2000).map(|k| (k % 97) as i16 * 11).collect(),
            Vec::new(),
        ];
        for samples in &streams {
            for name in ["huffman", "run-length", "huffman+run-length"] {
                // Exact equality, f64 fields included: the analysis computes
                // the same encoded sizes the real encoders produce.
                assert_eq!(
                    m.report(name, samples),
                    report_by_reencoding(&m, name, samples),
                    "report changed for {name}"
                );
            }
        }
    }

    #[test]
    fn report_all_matches_per_name_reports() {
        let m = BandwidthModel::default();
        let samples: Vec<i16> = (0..3000)
            .map(|k| if k % 50 < 45 { 0 } else { k as i16 })
            .collect();
        for (name, rep) in m.report_all(&samples) {
            assert_eq!(rep, m.report(name, &samples));
        }
    }

    #[test]
    #[should_panic(expected = "unknown codec")]
    fn unknown_codec_panics() {
        let m = BandwidthModel::default();
        let _ = m.report("lz77", &[0, 1, 2]);
    }
}
