//! The on-FPGA pulse library and circuit pulse-stream assembly.

use artery_circuit::{Circuit, Gate, Instruction};

use crate::waveform::{PulseShape, Waveform};

/// The pulse lookup table of Fig. 7 (c): pre-encoded waveforms for the basis
/// gate set, addressed by the branch decider.
#[derive(Debug, Clone)]
pub struct PulseLibrary {
    sample_rate_gsps: f64,
    xy: Waveform,
    cz: Waveform,
    readout: Waveform,
}

impl PulseLibrary {
    /// Builds the standard library at the given DAC sample rate (§5.4
    /// example: 2 GSPS; the evaluation configures 4 GSPS).
    #[must_use]
    pub fn standard(sample_rate_gsps: f64) -> Self {
        Self {
            sample_rate_gsps,
            xy: Waveform::synthesize(&PulseShape::xy_pulse(), sample_rate_gsps),
            cz: Waveform::synthesize(&PulseShape::cz_pulse(), sample_rate_gsps),
            readout: Waveform::synthesize(&PulseShape::readout_pulse(), sample_rate_gsps),
        }
    }

    /// DAC sample rate in GSPS.
    #[must_use]
    pub fn sample_rate_gsps(&self) -> f64 {
        self.sample_rate_gsps
    }

    /// The readout probe waveform.
    #[must_use]
    pub fn readout(&self) -> &Waveform {
        &self.readout
    }

    /// The physical waveform of a gate: its basis decomposition rendered as
    /// concatenated pulses (virtual RZ gates contribute nothing).
    #[must_use]
    pub fn waveform_for_gate(&self, gate: Gate) -> Waveform {
        let mut out = Waveform::idle(0.0, self.sample_rate_gsps);
        for (basis, _local) in gate.basis_decomposition() {
            match basis {
                Gate::RX(_) | Gate::RY(_) => out.append(&self.xy),
                Gate::CZ => out.append(&self.cz),
                // Virtual frame updates: no pulse.
                Gate::RZ(_) => {}
                other => unreachable!("basis decomposition produced {other}"),
            }
        }
        out
    }
}

/// Hardware-realism knobs for assembled pulse streams.
///
/// Ideal envelopes compress far better than real calibrated pulse data; the
/// realism model restores the three effects that dominate on hardware:
/// per-gate-instance amplitude calibration differences, a dither/noise floor
/// on non-idle samples, and the on-FPGA upsampling in front of the
/// interpolating DAC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamRealism {
    /// Maximum relative amplitude deviation per gate instance (±).
    pub amplitude_jitter: f64,
    /// Dither magnitude on non-zero samples, DAC LSBs.
    pub dither_lsb: i16,
    /// AWG envelope-update block: envelope and dither are held constant for
    /// this many samples (staircase output).
    pub hold_block: usize,
    /// DAC interpolation factor (§6.1: 2×).
    pub interpolation: usize,
}

impl Default for StreamRealism {
    fn default() -> Self {
        Self {
            amplitude_jitter: 0.03,
            dither_lsb: 25,
            hold_block: 4,
            interpolation: 2,
        }
    }
}

/// An assembled DAC sample stream for a whole circuit — the data that
/// crosses the AXI bus and whose compressibility Table 2 measures.
#[derive(Debug, Clone)]
pub struct PulseStream {
    waveform: Waveform,
}

impl PulseStream {
    /// Assembles a hardware-realistic stream: like
    /// [`PulseStream::for_circuit`], but each gate instance's waveform gets
    /// its own calibration scaling and dither, and the whole stream is
    /// upsampled for the interpolating DAC.
    #[must_use]
    pub fn for_circuit_realistic(
        circuit: &Circuit,
        library: &PulseLibrary,
        idle_gap_ns: f64,
        realism: &StreamRealism,
    ) -> Self {
        let rate = library.sample_rate_gsps();
        let mut waveform = Waveform::idle(0.0, rate);
        let gap = Waveform::idle(idle_gap_ns, rate);
        let mut instance: u64 = 0;
        let push = |waveform: &mut Waveform, wf: &Waveform, instance: &mut u64| {
            // Deterministic per-instance calibration factor in
            // 1 ± amplitude_jitter.
            let mut z = 0x5BF0_3635_ADE3_9A2Bu64 ^ instance.wrapping_mul(0xD134_2543_DE82_EF95);
            z = (z ^ (z >> 29)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
            let factor = 1.0 + realism.amplitude_jitter * (2.0 * unit - 1.0);
            let block = realism.hold_block.max(1);
            waveform.append(
                &wf.scaled(factor)
                    .held(block)
                    .dithered(z, realism.dither_lsb, block),
            );
            *instance += 1;
        };
        for inst in circuit.instructions() {
            match inst {
                Instruction::Gate(g) => {
                    push(
                        &mut waveform,
                        &library.waveform_for_gate(g.gate),
                        &mut instance,
                    );
                    waveform.append(&gap);
                }
                Instruction::Measure(..) | Instruction::Reset(_) => {
                    push(&mut waveform, library.readout(), &mut instance);
                    waveform.append(&gap);
                }
                Instruction::Feedback(fb) => {
                    push(&mut waveform, library.readout(), &mut instance);
                    waveform.append(&gap);
                    for op in fb.branch(true) {
                        if let artery_circuit::BranchOp::Gate(g) = op {
                            push(
                                &mut waveform,
                                &library.waveform_for_gate(g.gate),
                                &mut instance,
                            );
                            waveform.append(&gap);
                        }
                    }
                }
            }
        }
        Self {
            waveform: waveform.repeated(realism.interpolation.max(1)),
        }
    }
    /// Assembles the stream for `circuit`.
    ///
    /// Gates contribute their waveform followed by `idle_gap_ns` of zeros
    /// (trigger alignment slack); measurements and feedback contribute the
    /// readout probe followed by the classical-processing idle. Feedback
    /// branches contribute their *branch-1* pulses — the pulses the library
    /// must hold regardless of the outcome taken.
    #[must_use]
    pub fn for_circuit(circuit: &Circuit, library: &PulseLibrary, idle_gap_ns: f64) -> Self {
        let rate = library.sample_rate_gsps();
        let mut waveform = Waveform::idle(0.0, rate);
        let gap = Waveform::idle(idle_gap_ns, rate);
        for inst in circuit.instructions() {
            match inst {
                Instruction::Gate(g) => {
                    waveform.append(&library.waveform_for_gate(g.gate));
                    waveform.append(&gap);
                }
                Instruction::Measure(..) | Instruction::Reset(_) => {
                    waveform.append(library.readout());
                    waveform.append(&gap);
                }
                Instruction::Feedback(fb) => {
                    waveform.append(library.readout());
                    waveform.append(&gap);
                    for op in fb.branch(true) {
                        if let artery_circuit::BranchOp::Gate(g) = op {
                            waveform.append(&library.waveform_for_gate(g.gate));
                            waveform.append(&gap);
                        }
                    }
                }
            }
        }
        Self { waveform }
    }

    /// The assembled samples.
    #[must_use]
    pub fn samples(&self) -> &[i16] {
        self.waveform.samples()
    }

    /// Content hash of the assembled samples, suitable as a
    /// [`CodebookCache`](crate::codec::CodebookCache) key: pulse-library
    /// entries for the same circuit and realism settings hash identically, so
    /// repeated encodes of the same stream reuse their cached codebooks.
    #[must_use]
    pub fn codec_cache_key(&self) -> u64 {
        crate::codec::codebook_key(self.samples())
    }

    /// The assembled waveform.
    #[must_use]
    pub fn waveform(&self) -> &Waveform {
        &self.waveform
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_circuit::{CircuitBuilder, Qubit};

    #[test]
    fn xy_gate_waveform_duration() {
        let lib = PulseLibrary::standard(2.0);
        let wf = lib.waveform_for_gate(Gate::X);
        assert!((wf.duration_ns() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn virtual_gates_have_no_pulse() {
        let lib = PulseLibrary::standard(2.0);
        assert_eq!(lib.waveform_for_gate(Gate::RZ(1.0)).samples().len(), 0);
        assert_eq!(lib.waveform_for_gate(Gate::Z).samples().len(), 0);
    }

    #[test]
    fn cnot_waveform_is_cz_plus_two_xy() {
        let lib = PulseLibrary::standard(2.0);
        let wf = lib.waveform_for_gate(Gate::CNOT);
        assert!((wf.duration_ns() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn stream_includes_readout_and_gaps() {
        let mut b = CircuitBuilder::new(2);
        b.gate(Gate::X, &[Qubit(0)]);
        b.feedback(Qubit(0)).on_one(Gate::X, &[Qubit(0)]).finish();
        let c = b.build();
        let lib = PulseLibrary::standard(2.0);
        let stream = PulseStream::for_circuit(&c, &lib, 100.0);
        // X(30) + gap(100) + readout(2000) + gap(100) + branch X(30) + gap(100)
        assert!((stream.waveform().duration_ns() - 2360.0).abs() < 1e-9);
        // Mostly non-zero only inside pulses: the stream must be sparse.
        assert!(stream.waveform().zero_fraction() > 0.05);
    }

    #[test]
    fn stream_is_mostly_zero_for_sparse_circuits() {
        let mut b = CircuitBuilder::new(1);
        b.gate(Gate::X, &[Qubit(0)]);
        let c = b.build();
        let lib = PulseLibrary::standard(2.0);
        let stream = PulseStream::for_circuit(&c, &lib, 1000.0);
        assert!(stream.waveform().zero_fraction() > 0.9);
    }
}
