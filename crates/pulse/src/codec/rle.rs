//! Run-length encoding over samples and over bytes.
//!
//! Both codecs — the sample-level `(run, value)` token stream and the
//! byte-level escape format used behind the combined codec — share one run
//! scanner, [`scan_runs`]: the only differences are the run cap and what the
//! caller does with each `(run, value)` pair.

use super::{Codec, DecodeError};

/// Scans `items` into maximal runs of equal values (each run capped at
/// `max_run` and split), invoking `emit(run, value)` per run in stream
/// order. This is the single run-detection loop behind [`rle_tokens`],
/// [`ByteRunLength::encode_bytes`], and the engine's combined tokenizer.
pub(crate) fn scan_runs<T: Copy + PartialEq>(
    items: &[T],
    max_run: usize,
    mut emit: impl FnMut(usize, T),
) {
    let mut i = 0usize;
    while i < items.len() {
        let value = items[i];
        let mut run = 1usize;
        while run < max_run && i + run < items.len() && items[i + run] == value {
            run += 1;
        }
        emit(run, value);
        i += run;
    }
}

/// Sample-level run-length codec: a stream of `(run: u16 LE, value: i16 LE)`
/// tokens. Runs longer than `u16::MAX` are split.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunLength;

/// Tokenizes a sample stream into `(run, value)` pairs (runs capped at
/// `u16::MAX` and split).
#[must_use]
pub fn rle_tokens(samples: &[i16]) -> Vec<(u16, i16)> {
    let mut out = Vec::new();
    scan_runs(samples, u16::MAX as usize, |run, value| {
        out.push((run as u16, value));
    });
    out
}

/// Expands `(run, value)` tokens back into samples.
///
/// # Errors
///
/// Returns [`DecodeError`] on a zero-length run.
pub fn rle_expand(tokens: &[(u16, i16)]) -> Result<Vec<i16>, DecodeError> {
    let mut out = Vec::new();
    for &(run, value) in tokens {
        if run == 0 {
            return Err(DecodeError::new("zero-length run"));
        }
        out.extend(std::iter::repeat_n(value, run as usize));
    }
    Ok(out)
}

impl RunLength {
    /// Encodes `samples` into `out` (cleared first) without any intermediate
    /// token buffer — allocation-free once `out` has warmed up to the
    /// high-water encoded size.
    pub fn encode_into(&self, samples: &[i16], out: &mut Vec<u8>) {
        out.clear();
        scan_runs(samples, u16::MAX as usize, |run, value| {
            out.extend_from_slice(&(run as u16).to_le_bytes());
            out.extend_from_slice(&value.to_le_bytes());
        });
    }

    /// Decodes a token stream into `out` (cleared first).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on a zero-length run or a stream that is not
    /// a whole number of 4-byte tokens.
    pub fn decode_into(&self, bytes: &[u8], out: &mut Vec<i16>) -> Result<(), DecodeError> {
        out.clear();
        if !bytes.len().is_multiple_of(4) {
            return Err(DecodeError::new(
                "run-length stream not a whole number of tokens",
            ));
        }
        for token in bytes.chunks_exact(4) {
            let run = u16::from_le_bytes([token[0], token[1]]) as usize;
            let value = i16::from_le_bytes([token[2], token[3]]);
            if run == 0 {
                return Err(DecodeError::new("zero-length run"));
            }
            out.extend(std::iter::repeat_n(value, run));
        }
        Ok(())
    }
}

impl Codec for RunLength {
    fn name(&self) -> &'static str {
        "run-length"
    }

    fn encode(&self, samples: &[i16]) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(samples, &mut out);
        out
    }

    fn decode(&self, bytes: &[u8]) -> Result<Vec<i16>, DecodeError> {
        let mut out = Vec::new();
        self.decode_into(bytes, &mut out)?;
        Ok(out)
    }
}

/// Byte-level run-length used as the second stage of the combined codec.
///
/// Escape-based format so incompressible stretches barely expand:
///
/// * control byte `1..=127` — copy that many literal bytes verbatim,
/// * control byte `128..=255` — repeat the following byte `control − 125`
///   times (runs of 3–130).
///
/// Runs shorter than 3 are stored as literals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ByteRunLength;

/// Minimum run worth encoding as a run token.
const MIN_RUN: usize = 3;
/// Bias of the run control byte: control = run + 125, so run 3 → 128.
const RUN_BIAS: usize = 125;
/// Longest run one token can carry (255 − 125).
const MAX_RUN: usize = 130;
/// Longest literal chunk one token can carry.
const MAX_LITERAL: usize = 127;

impl ByteRunLength {
    /// Encodes a byte stream.
    #[must_use]
    pub fn encode_bytes(bytes: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        let mut literals: Vec<u8> = Vec::new();
        let flush = |literals: &mut Vec<u8>, out: &mut Vec<u8>| {
            for chunk in literals.chunks(MAX_LITERAL) {
                out.push(chunk.len() as u8);
                out.extend_from_slice(chunk);
            }
            literals.clear();
        };
        scan_runs(bytes, MAX_RUN, |run, value| {
            if run >= MIN_RUN {
                flush(&mut literals, &mut out);
                out.push((run + RUN_BIAS) as u8);
                out.push(value);
            } else {
                literals.extend(std::iter::repeat_n(value, run));
            }
        });
        flush(&mut literals, &mut out);
        out
    }

    /// Decodes a byte stream.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on a truncated or malformed stream.
    pub fn decode_bytes(bytes: &[u8]) -> Result<Vec<u8>, DecodeError> {
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < bytes.len() {
            let control = bytes[i] as usize;
            i += 1;
            if control == 0 {
                return Err(DecodeError::new("zero control byte"));
            }
            if control <= MAX_LITERAL {
                let lits = bytes
                    .get(i..i + control)
                    .ok_or_else(|| DecodeError::new("literal run truncated"))?;
                out.extend_from_slice(lits);
                i += control;
            } else {
                let value = *bytes
                    .get(i)
                    .ok_or_else(|| DecodeError::new("run value truncated"))?;
                out.extend(std::iter::repeat_n(value, control - RUN_BIAS));
                i += 1;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_stream() {
        let data: Vec<i16> = vec![0, 0, 0, 5, 5, -3, 0, 0, 7];
        let rl = RunLength;
        assert_eq!(rl.decode(&rl.encode(&data)).unwrap(), data);
    }

    #[test]
    fn scan_runs_splits_at_cap() {
        let data = [9u8; 10];
        let mut runs = Vec::new();
        scan_runs(&data, 4, |run, value| runs.push((run, value)));
        assert_eq!(runs, vec![(4, 9), (4, 9), (2, 9)]);
    }

    #[test]
    fn scan_runs_empty_and_distinct() {
        let mut runs: Vec<(usize, i16)> = Vec::new();
        scan_runs(&[], 100, |run, value| runs.push((run, value)));
        assert!(runs.is_empty());
        scan_runs(&[1i16, 2, 3], 100, |run, value| runs.push((run, value)));
        assert_eq!(runs, vec![(1, 1), (1, 2), (1, 3)]);
    }

    #[test]
    fn encode_into_matches_encode_and_reuses_capacity() {
        let data: Vec<i16> = vec![0, 0, 0, 5, 5, -3, 0, 0, 7];
        let rl = RunLength;
        let mut out = Vec::new();
        rl.encode_into(&data, &mut out);
        assert_eq!(out, rl.encode(&data));
        let cap = out.capacity();
        rl.encode_into(&data, &mut out);
        assert_eq!(out.capacity(), cap);
        let mut dec = Vec::new();
        rl.decode_into(&out, &mut dec).unwrap();
        assert_eq!(dec, data);
    }

    #[test]
    fn zeros_compress_massively() {
        let data = vec![0i16; 4000];
        let rl = RunLength;
        let encoded = rl.encode(&data);
        assert_eq!(encoded.len(), 4); // one token
        assert!(rl.stats(&data).ratio() > 1000.0);
    }

    #[test]
    fn incompressible_data_expands_predictably() {
        let data: Vec<i16> = (0..100).map(|k| k * 31).collect();
        let rl = RunLength;
        // 4 bytes per 2-byte sample.
        assert_eq!(rl.encode(&data).len(), 400);
    }

    #[test]
    fn long_runs_split_at_u16_max() {
        let data = vec![9i16; 70000];
        let rl = RunLength;
        let encoded = rl.encode(&data);
        // 70000 = 65535 + 4465 → exactly two tokens, same as the pre-helper
        // encoder produced.
        assert_eq!(encoded.len(), 8);
        assert_eq!(rl.decode(&encoded).unwrap(), data);
    }

    #[test]
    fn tokens_match_encode_format() {
        let data: Vec<i16> = vec![4, 4, 4, -1, -1, 0];
        assert_eq!(rle_tokens(&data), vec![(3, 4), (2, -1), (1, 0)]);
        assert_eq!(rle_expand(&rle_tokens(&data)).unwrap(), data);
    }

    #[test]
    fn truncated_stream_errors() {
        assert!(RunLength.decode(&[1, 0, 0]).is_err());
        assert!(ByteRunLength::decode_bytes(&[5, 1, 2]).is_err()); // promises 5 literals
        assert!(ByteRunLength::decode_bytes(&[200]).is_err()); // run missing value
    }

    #[test]
    fn zero_run_errors() {
        assert!(RunLength.decode(&[0, 0, 5, 0]).is_err());
        assert!(ByteRunLength::decode_bytes(&[0, 7]).is_err());
    }

    #[test]
    fn byte_rle_round_trip() {
        let data: Vec<u8> = vec![0, 0, 0, 0, 1, 2, 2, 2, 0];
        assert_eq!(
            ByteRunLength::decode_bytes(&ByteRunLength::encode_bytes(&data)).unwrap(),
            data
        );
    }

    #[test]
    fn byte_rle_long_runs() {
        let data = vec![0u8; 1000];
        let enc = ByteRunLength::encode_bytes(&data);
        assert_eq!(enc.len(), 16); // ⌈1000/130⌉ = 8 run tokens of 2 bytes
        assert_eq!(ByteRunLength::decode_bytes(&enc).unwrap(), data);
    }

    #[test]
    fn byte_rle_literals_barely_expand() {
        let data: Vec<u8> = (0..=255).collect();
        let enc = ByteRunLength::encode_bytes(&data);
        // 256 literals in chunks of 127 → 3 control bytes of overhead.
        assert_eq!(enc.len(), 259);
        assert_eq!(ByteRunLength::decode_bytes(&enc).unwrap(), data);
    }

    #[test]
    fn byte_rle_short_runs_stay_literal() {
        // Runs of 1–2 must be emitted as literals, exactly as before the
        // shared scanner: [7, 7, 3] → literal chunk of 3 bytes.
        let enc = ByteRunLength::encode_bytes(&[7, 7, 3]);
        assert_eq!(enc, vec![3, 7, 7, 3]);
    }

    #[test]
    fn byte_rle_mixed_runs_and_literals() {
        let mut data: Vec<u8> = vec![7; 200];
        data.extend(0..100u8);
        data.extend(std::iter::repeat_n(0, 500));
        data.push(9);
        assert_eq!(
            ByteRunLength::decode_bytes(&ByteRunLength::encode_bytes(&data)).unwrap(),
            data
        );
    }

    #[test]
    fn empty_streams() {
        let rl = RunLength;
        assert!(rl.encode(&[]).is_empty());
        assert_eq!(rl.decode(&[]).unwrap(), Vec::<i16>::new());
        assert!(ByteRunLength::encode_bytes(&[]).is_empty());
    }
}
