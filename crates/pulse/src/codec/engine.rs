//! The streaming, zero-steady-state-allocation codec engine.
//!
//! The naive codecs in [`huffman`](super::huffman) and [`rle`](super::rle)
//! are faithful but allocation-heavy: every `Huffman::encode` rebuilds a
//! `HashMap` histogram and a `Box`-pointer tree, and every decode resolves
//! codes one bit at a time through a `Vec<HashMap<u64, i16>>`. This module
//! re-implements the whole layer around reusable buffers:
//!
//! * [`CodecScratch`] — one flat-array workspace (histogram, canonical
//!   codebook, tree arena, decoder tables, token buffers) threaded through
//!   every `encode_into`/`decode_into` call, mirroring the readout path's
//!   `ShotScratch`. After warm-up, steady-state encode/decode loops perform
//!   **zero heap allocations** (pinned by the `codec_zero_alloc` test).
//! * A word-buffered 64-bit [`BitWriter`]/[`BitReader`] replacing the
//!   bit-at-a-time byte pokes of the naive path.
//! * A multi-bit root-LUT Huffman decoder: an 11-bit primary table resolves
//!   common codes in one probe; longer codes chain through per-prefix
//!   overflow subtables, and pathological (> 22-bit) codes fall back to a
//!   canonical first-code/limit scan. No hashing anywhere.
//! * [`CodecAnalysis`] — compressed sizes of all three Table 2 codecs plus
//!   the Huffman `max_code_len` from a **single scan** of the input, used by
//!   `BandwidthModel::report` so one Table 2 row-triplet no longer costs
//!   four full encodes.
//! * [`CodebookCache`] — canonical codebooks keyed by pulse-library entry,
//!   so repeated waveforms across shots and multiplexed channels skip both
//!   the histogram pass and the tree build.
//!
//! # Canonical tie-break contract
//!
//! The engine's output is **byte-identical** to the naive oracle. Canonical
//! code assignment only depends on the per-symbol code *lengths*, so the
//! engine reproduces the naive tree construction's tie-breaking exactly:
//! leaves enter the merge queue keyed by `(frequency, symbol-rank)` with
//! ranks assigned in ascending symbol order, and the `m`-th merged internal
//! node is keyed by `(frequency, usize::MAX - m)`. All keys are distinct, so
//! any min-heap pops them in the same order as the naive `BinaryHeap` and
//! the resulting length profile — and therefore every encoded byte — is
//! identical. Equivalence is pinned by proptests in `tests/codec_engine.rs`.

use std::collections::HashMap;

use super::rle::scan_runs;
use super::{CompressionStats, DecodeError, MAX_CODE_LEN};

/// Number of distinct 16-bit symbols (flat table size).
const SYMBOL_SPACE: usize = 1 << 16;

/// Width of the primary decoder lookup table: one probe resolves any code of
/// at most this many bits. Pulse alphabets produce mostly 1–14-bit codes, so
/// 11 bits (an 8 KiB table) catches the overwhelming majority in one step.
const ROOT_BITS: u32 = 11;

/// Maximum width of an overflow subtable. Codes longer than
/// `ROOT_BITS + SUB_BITS` (22 bits — adversarial inputs only) resolve via
/// the canonical first-code scan instead.
const SUB_BITS: u32 = 11;

/// Decoder LUT entry flag: the entry points at an overflow subtable.
const SUB_FLAG: u32 = 1 << 31;

const fn mask(bits: u32) -> u64 {
    if bits == 0 {
        0
    } else {
        u64::MAX >> (64 - bits)
    }
}

// ---------------------------------------------------------------------------
// Histogram.

/// Flat-array symbol histogram with an explicit touched-set so clearing is
/// `O(distinct symbols)`, not `O(65536)`.
#[derive(Debug)]
pub(crate) struct Histogram {
    counts: Vec<u64>,
    touched: Vec<u16>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: vec![0; SYMBOL_SPACE],
            touched: Vec::new(),
        }
    }
}

impl Histogram {
    fn reset(&mut self) {
        for &t in &self.touched {
            self.counts[t as usize] = 0;
        }
        self.touched.clear();
    }

    #[inline]
    fn add(&mut self, symbol: i16, weight: u64) {
        let idx = symbol as u16;
        if self.counts[idx as usize] == 0 {
            self.touched.push(idx);
        }
        self.counts[idx as usize] += weight;
    }

    fn count_samples(&mut self, samples: &[i16]) {
        self.reset();
        for &s in samples {
            self.add(s, 1);
        }
    }

    #[inline]
    fn count_of(&self, symbol: i16) -> u64 {
        self.counts[symbol as u16 as usize]
    }

    fn distinct(&self) -> usize {
        self.touched.len()
    }
}

// ---------------------------------------------------------------------------
// Huffman tree construction (flat arena, no Box nodes).

/// Workspace for the canonical code-length construction.
#[derive(Debug, Default)]
struct TreeScratch {
    /// Sorted distinct symbols (the leaves, in naive id order).
    syms: Vec<i16>,
    /// Min-heap of `(key, node-handle)`; `key = freq << 64 | tie-break id`.
    heap: Vec<(u128, u32)>,
    /// Children of internal nodes, in creation order. Internal node `m` has
    /// handle `n + m` where `n` is the leaf count.
    children: Vec<[u32; 2]>,
    /// Depth of every node handle.
    depths: Vec<u32>,
}

fn heap_push(heap: &mut Vec<(u128, u32)>, item: (u128, u32)) {
    heap.push(item);
    let mut i = heap.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if heap[parent].0 <= heap[i].0 {
            break;
        }
        heap.swap(parent, i);
        i = parent;
    }
}

fn heap_pop(heap: &mut Vec<(u128, u32)>) -> (u128, u32) {
    let top = heap.swap_remove(0);
    let mut i = 0;
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut smallest = i;
        if l < heap.len() && heap[l].0 < heap[smallest].0 {
            smallest = l;
        }
        if r < heap.len() && heap[r].0 < heap[smallest].0 {
            smallest = r;
        }
        if smallest == i {
            break;
        }
        heap.swap(i, smallest);
        i = smallest;
    }
    top
}

/// Computes canonical code lengths into `lengths`, sorted by
/// `(length, symbol)` — the wire header order. Reproduces the naive
/// `BinaryHeap`-of-`Box`-nodes construction bit for bit (see the module-level
/// tie-break contract) without allocating any tree nodes.
fn build_lengths(hist: &Histogram, tree: &mut TreeScratch, lengths: &mut Vec<(i16, u8)>) {
    lengths.clear();
    let n = hist.distinct();
    if n == 0 {
        return;
    }
    tree.syms.clear();
    tree.syms.extend(hist.touched.iter().map(|&t| t as i16));
    tree.syms.sort_unstable();
    if n == 1 {
        lengths.push((tree.syms[0], 1));
        return;
    }
    tree.heap.clear();
    for (rank, &sym) in tree.syms.iter().enumerate() {
        let key = (u128::from(hist.count_of(sym)) << 64) | rank as u128;
        heap_push(&mut tree.heap, (key, rank as u32));
    }
    tree.children.clear();
    let mut merges: u64 = 0;
    while tree.heap.len() > 1 {
        let (ka, a) = heap_pop(&mut tree.heap);
        let (kb, b) = heap_pop(&mut tree.heap);
        let freq = (ka >> 64) as u64 + (kb >> 64) as u64;
        let handle = (n + tree.children.len()) as u32;
        tree.children.push([a, b]);
        merges += 1;
        // The naive construction tie-breaks internal nodes by
        // `usize::MAX - merge-count`, so later merges pop first among equal
        // frequencies.
        let key = (u128::from(freq) << 64) | u128::from(u64::MAX - merges);
        heap_push(&mut tree.heap, (key, handle));
    }
    let total = n + tree.children.len();
    tree.depths.clear();
    tree.depths.resize(total, 0);
    // Children are always created before their parent, so one reverse sweep
    // over the internal nodes resolves every depth.
    for m in (0..tree.children.len()).rev() {
        let d = tree.depths[n + m] + 1;
        let [a, b] = tree.children[m];
        tree.depths[a as usize] = d;
        tree.depths[b as usize] = d;
    }
    for (rank, &sym) in tree.syms.iter().enumerate() {
        debug_assert!(tree.depths[rank] >= 1 && tree.depths[rank] <= 255);
        lengths.push((sym, tree.depths[rank] as u8));
    }
    // Keys are unique, so the unstable sort is deterministic and matches the
    // naive `sort_by_key`.
    lengths.sort_unstable_by_key(|&(sym, len)| (len, sym));
}

// ---------------------------------------------------------------------------
// Canonical codebook (encode side).

/// A canonical Huffman codebook: the wire header (`(symbol, length)` sorted
/// by `(length, symbol)`) plus a flat symbol-indexed code table.
#[derive(Debug)]
pub struct Codebook {
    /// Header order: `(symbol, code length)` sorted by `(length, symbol)`.
    lengths: Vec<(i16, u8)>,
    /// Packed `(code << 8) | len` per symbol index; `0` = symbol absent
    /// (lengths are always ≥ 1).
    table: Vec<u64>,
    max_len: u8,
}

impl Default for Codebook {
    fn default() -> Self {
        Self {
            lengths: Vec::new(),
            table: vec![0; SYMBOL_SPACE],
            max_len: 0,
        }
    }
}

impl Codebook {
    fn clear(&mut self) {
        for &(sym, _) in &self.lengths {
            self.table[sym as u16 as usize] = 0;
        }
        self.lengths.clear();
        self.max_len = 0;
    }

    /// Assigns canonical codes for `lengths` (already in header order).
    fn assign(&mut self, lengths: &[(i16, u8)]) {
        self.clear();
        self.lengths.extend_from_slice(lengths);
        let mut code: u64 = 0;
        let mut prev: u8 = 0;
        for &(sym, len) in &self.lengths {
            code <<= len - prev;
            debug_assert!(
                len <= 56,
                "code length {len} exceeds the packed-entry budget"
            );
            self.table[sym as u16 as usize] = (code << 8) | u64::from(len);
            code += 1;
            prev = len;
            self.max_len = len;
        }
    }

    /// Longest assigned code length (0 for an empty book).
    #[must_use]
    pub fn max_code_len(&self) -> u8 {
        self.max_len
    }

    /// Payload size in bits when encoding a stream with histogram `hist`.
    fn payload_bits(&self, hist: &Histogram) -> u64 {
        self.lengths
            .iter()
            .map(|&(sym, len)| hist.count_of(sym) * u64::from(len))
            .sum()
    }

    /// Total encoded byte length (header + count + payload) for
    /// `sample_count` samples drawn from `hist`.
    fn encoded_len(&self, hist: &Histogram) -> usize {
        let header = 4 + 3 * self.lengths.len() + 8;
        header + (self.payload_bits(hist) as usize).div_ceil(8)
    }

    /// Appends the self-describing header (symbol table + sample count).
    fn append_header(&self, sample_count: usize, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.lengths.len() as u32).to_le_bytes());
        for &(sym, len) in &self.lengths {
            out.extend_from_slice(&sym.to_le_bytes());
            out.push(len);
        }
        out.extend_from_slice(&(sample_count as u64).to_le_bytes());
    }

    /// Appends the MSB-first payload for `samples`.
    ///
    /// Returns `false` (leaving `out` untouched past `start`) when a sample
    /// has no code in this book — only possible when a cached book is applied
    /// to a stream it was not built from.
    fn append_payload(&self, samples: &[i16], out: &mut Vec<u8>) -> bool {
        let start = out.len();
        let mut writer = BitWriter::default();
        for &s in samples {
            let entry = self.table[s as u16 as usize];
            if entry == 0 {
                out.truncate(start);
                return false;
            }
            writer.push_code(out, entry >> 8, (entry & 0xFF) as u8);
        }
        writer.finish(out);
        true
    }
}

// ---------------------------------------------------------------------------
// Word-buffered bit I/O.

/// MSB-first bit writer buffering through a 64-bit accumulator; emits bytes
/// identical to the naive bit-at-a-time writer.
#[derive(Debug, Default)]
struct BitWriter {
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    #[inline]
    fn push_code(&mut self, out: &mut Vec<u8>, code: u64, len: u8) {
        let len = u32::from(len);
        if len > 32 {
            let lo = len - 32;
            self.push_bits(out, code >> lo, 32);
            self.push_bits(out, code & mask(lo), lo);
        } else {
            self.push_bits(out, code & mask(len), len);
        }
    }

    #[inline]
    fn push_bits(&mut self, out: &mut Vec<u8>, bits: u64, len: u32) {
        debug_assert!(len <= 32);
        self.acc = (self.acc << len) | bits;
        self.nbits += len;
        while self.nbits >= 8 {
            self.nbits -= 8;
            out.push((self.acc >> self.nbits) as u8);
        }
    }

    fn finish(&mut self, out: &mut Vec<u8>) {
        if self.nbits > 0 {
            out.push(((self.acc << (8 - self.nbits)) & 0xFF) as u8);
            self.nbits = 0;
        }
        self.acc = 0;
    }
}

/// MSB-first bit reader with a 64-bit refill buffer. `peek` pads with zeros
/// past the end of the stream; `consume` is what errors on exhaustion, so a
/// padded lookahead can never silently decode past the payload.
#[derive(Debug)]
struct BitReader<'a> {
    bytes: &'a [u8],
    next: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            next: 0,
            acc: 0,
            nbits: 0,
        }
    }

    #[inline]
    fn refill(&mut self) {
        while self.nbits < 56 && self.next < self.bytes.len() {
            self.acc = (self.acc << 8) | u64::from(self.bytes[self.next]);
            self.next += 1;
            self.nbits += 8;
        }
    }

    /// Next `n` bits (MSB-first), zero-padded past the end of the stream.
    #[inline]
    fn peek(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 56);
        self.refill();
        if self.nbits >= n {
            (self.acc >> (self.nbits - n)) & mask(n)
        } else {
            (self.acc << (n - self.nbits)) & mask(n)
        }
    }

    /// Consumes `n` bits.
    #[inline]
    fn consume(&mut self, n: u32) -> Result<(), DecodeError> {
        self.refill();
        if n > self.nbits {
            return Err(DecodeError::new("bitstream exhausted"));
        }
        self.nbits -= n;
        self.acc &= mask(self.nbits);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Decoder tables.

/// Root-LUT + overflow-subtable decoder state, rebuilt per stream into
/// reused buffers.
#[derive(Debug)]
struct DecoderTables {
    /// `2^ROOT_BITS` entries. Direct entry: `(len << 16) | sym` with
    /// `len ≥ 1`; `0` = no code; `SUB_FLAG | (width << 26) | offset` =
    /// overflow subtable.
    lut: Vec<u32>,
    /// Concatenated overflow subtables (direct entries; `0` = escape to the
    /// canonical scan).
    sub: Vec<u32>,
    /// Parsed header entries in canonical (wire) order.
    lengths: Vec<(i16, u8)>,
    /// Symbols in canonical order (for the first-code scan).
    syms: Vec<i16>,
    /// First canonical code of each length.
    first_code: [u64; MAX_CODE_LEN + 1],
    /// Number of codes of each length.
    count: [u32; MAX_CODE_LEN + 1],
    /// Index into `syms` of the first symbol of each length.
    first_idx: [u32; MAX_CODE_LEN + 1],
    max_len: u32,
}

impl Default for DecoderTables {
    fn default() -> Self {
        Self {
            lut: vec![0; 1 << ROOT_BITS],
            sub: Vec::new(),
            lengths: Vec::new(),
            syms: Vec::new(),
            first_code: [0; MAX_CODE_LEN + 1],
            count: [0; MAX_CODE_LEN + 1],
            first_idx: [0; MAX_CODE_LEN + 1],
            max_len: 0,
        }
    }
}

#[inline]
fn direct_entry(sym: i16, len: u8) -> u32 {
    (u32::from(len) << 16) | u32::from(sym as u16)
}

impl DecoderTables {
    /// Builds every table from the parsed header (entries must be sorted by
    /// ascending length — the canonical wire order; enforced by the caller).
    fn build(&mut self) {
        self.lut.fill(0);
        self.sub.clear();
        self.syms.clear();
        self.first_code.fill(0);
        self.count.fill(0);
        self.first_idx.fill(0);
        self.max_len = 0;

        // Canonical code assignment + first-code/limit bookkeeping.
        let mut code: u64 = 0;
        let mut prev: u8 = 0;
        for (i, &(sym, len)) in self.lengths.iter().enumerate() {
            code <<= len - prev;
            let l = usize::from(len);
            if self.count[l] == 0 {
                self.first_code[l] = code;
                self.first_idx[l] = i as u32;
            }
            self.count[l] += 1;
            self.syms.push(sym);
            self.max_len = u32::from(len);

            // Root fill for short codes. Codes that overflow their own bit
            // width (possible only with a non-canonical header) are
            // unreachable by any bit pattern and are skipped, matching the
            // naive per-bit decoder.
            let len_bits = u32::from(len);
            if code >> len_bits == 0 && len_bits <= ROOT_BITS {
                let lo = code << (ROOT_BITS - len_bits);
                let hi = (code + 1) << (ROOT_BITS - len_bits);
                for slot in &mut self.lut[lo as usize..hi as usize] {
                    // First (shortest) code wins, as in the per-bit walk.
                    if *slot == 0 {
                        *slot = direct_entry(sym, len);
                    }
                }
            }
            code += 1;
            prev = len;
        }

        // Overflow subtables: group long codes by their ROOT_BITS prefix.
        if self.max_len <= ROOT_BITS {
            return;
        }
        // Pass 1: per-prefix subtable width, stashed in the LUT entry itself
        // (no side map — the build stays allocation-free). Lengths arrive in
        // ascending order, so the last write per prefix carries the width of
        // its longest code.
        let mut code: u64 = 0;
        let mut prev: u8 = 0;
        for &(_, len) in &self.lengths {
            code <<= len - prev;
            let len_bits = u32::from(len);
            if code >> len_bits == 0 && len_bits > ROOT_BITS {
                let prefix = (code >> (len_bits - ROOT_BITS)) as usize;
                // A prefix already resolved by a shorter direct code is
                // unreachable for longer codes.
                if self.lut[prefix] == 0 || self.lut[prefix] & SUB_FLAG != 0 {
                    let w = (len_bits - ROOT_BITS).min(SUB_BITS);
                    self.lut[prefix] = SUB_FLAG | (w << 26);
                }
            }
            code += 1;
            prev = len;
        }
        // Allocate subtables into the reused backing storage. At most
        // 2^ROOT_BITS prefixes of at most 2^SUB_BITS slots each, so the
        // 26-bit offset field never saturates.
        for entry in &mut self.lut {
            if *entry & SUB_FLAG != 0 {
                let width = (*entry >> 26) & 0x1F;
                let offset = self.sub.len() as u32;
                debug_assert!(offset < (1 << 26));
                self.sub.resize(self.sub.len() + (1usize << width), 0);
                *entry = SUB_FLAG | (width << 26) | offset;
            }
        }
        // Pass 2: fill subtable slots (ascending length, first code wins).
        let mut code: u64 = 0;
        let mut prev: u8 = 0;
        for &(sym, len) in &self.lengths {
            code <<= len - prev;
            let len_bits = u32::from(len);
            if code >> len_bits == 0 && len_bits > ROOT_BITS {
                let prefix = code >> (len_bits - ROOT_BITS);
                let entry = self.lut[prefix as usize];
                if entry & SUB_FLAG != 0 {
                    let width = (entry >> 26) & 0x1F;
                    let offset = (entry & 0x03FF_FFFF) as usize;
                    if len_bits <= ROOT_BITS + width {
                        let tail = code & mask(len_bits - ROOT_BITS);
                        let lo = tail << (ROOT_BITS + width - len_bits);
                        let hi = (tail + 1) << (ROOT_BITS + width - len_bits);
                        for slot in &mut self.sub[offset + lo as usize..offset + hi as usize] {
                            if *slot == 0 {
                                *slot = direct_entry(sym, len);
                            }
                        }
                    }
                }
            }
            code += 1;
            prev = len;
        }
    }

    /// Canonical first-code scan: resolves one symbol of length in
    /// `(from, max_len]`, mirroring the naive bit-at-a-time walk (shortest
    /// match wins; exhaustion and overflow map to the same errors).
    fn scan_decode(&self, reader: &mut BitReader<'_>, from: u32) -> Result<i16, DecodeError> {
        let window = reader.peek(self.max_len.max(1));
        for l in 1..=self.max_len {
            if l <= from || self.count[l as usize] == 0 {
                continue;
            }
            let code = window >> (self.max_len - l);
            let rel = code.wrapping_sub(self.first_code[l as usize]);
            if code >= self.first_code[l as usize] && rel < u64::from(self.count[l as usize]) {
                reader.consume(l)?;
                return Ok(self.syms[self.first_idx[l as usize] as usize + rel as usize]);
            }
        }
        // No code matches: the naive walk would keep pulling bits until it
        // ran out or exceeded MAX_CODE_LEN.
        if reader.nbits as usize + 8 * (reader.bytes.len() - reader.next) < MAX_CODE_LEN {
            Err(DecodeError::new("bitstream exhausted"))
        } else {
            Err(DecodeError::new("code length overflow"))
        }
    }

    /// Decodes one symbol.
    #[inline]
    fn decode_symbol(&self, reader: &mut BitReader<'_>) -> Result<i16, DecodeError> {
        let probe = reader.peek(ROOT_BITS);
        let mut entry = self.lut[probe as usize];
        if entry & SUB_FLAG != 0 {
            let width = (entry >> 26) & 0x1F;
            let offset = (entry & 0x03FF_FFFF) as usize;
            let idx = (reader.peek(ROOT_BITS + width) & mask(width)) as usize;
            entry = self.sub[offset + idx];
            if entry == 0 {
                // Pathological > ROOT+SUB-bit code: canonical scan.
                return self.scan_decode(reader, ROOT_BITS + width);
            }
        } else if entry == 0 {
            return self.scan_decode(reader, 0);
        }
        let len = entry >> 16;
        reader.consume(len)?;
        Ok(entry as u16 as i16)
    }
}

// ---------------------------------------------------------------------------
// Scratch.

/// Reusable workspace threaded through every engine entry point. One
/// instance per worker thread (or one per call site) keeps the steady-state
/// encode/decode loop allocation-free.
#[derive(Debug, Default)]
pub struct CodecScratch {
    hist: Histogram,
    tree: TreeScratch,
    lengths: Vec<(i16, u8)>,
    book: Codebook,
    dec: DecoderTables,
    /// `(run, value)` tokens of the combined codec.
    tokens: Vec<(u16, i16)>,
    /// Run lengths reinterpreted as i16 symbols.
    runs: Vec<i16>,
    /// Token values.
    values: Vec<i16>,
}

impl CodecScratch {
    /// A fresh workspace (flat tables eagerly sized; everything else grows
    /// to the high-water mark of the streams it sees).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the canonical codebook for `samples` into the internal
    /// workspace and returns it.
    fn build_book(&mut self, samples: &[i16]) {
        self.hist.count_samples(samples);
        build_lengths(&self.hist, &mut self.tree, &mut self.lengths);
        self.book.assign(&self.lengths);
    }

    // -- Huffman ----------------------------------------------------------

    /// Appends the full Huffman encoding of `samples` (header + payload) to
    /// `out`. Byte-identical to the naive `Huffman::encode`.
    pub(crate) fn huffman_append(&mut self, samples: &[i16], out: &mut Vec<u8>) {
        self.build_book(samples);
        self.book.append_header(samples.len(), out);
        let ok = self.book.append_payload(samples, out);
        debug_assert!(ok, "freshly built codebook covers every symbol");
    }

    /// Longest Huffman code length for `samples`.
    pub(crate) fn huffman_max_code_len(&mut self, samples: &[i16]) -> u8 {
        self.hist.count_samples(samples);
        build_lengths(&self.hist, &mut self.tree, &mut self.lengths);
        self.lengths.iter().map(|&(_, len)| len).max().unwrap_or(0)
    }

    /// Parses a Huffman header at the front of `bytes`.
    ///
    /// Returns `(payload offset, sample count)`; the header's table is left
    /// in `self.dec.lengths`.
    fn huffman_parse_header(&mut self, bytes: &[u8]) -> Result<(usize, usize), DecodeError> {
        let err = || DecodeError::new("huffman header truncated");
        let s = u32::from_le_bytes(bytes.get(..4).ok_or_else(err)?.try_into().expect("4 bytes"))
            as usize;
        // Each table entry occupies 3 header bytes; reject impossible symbol
        // counts before reserving table space.
        if s > bytes.len().saturating_sub(4) / 3 {
            return Err(DecodeError::new("symbol count exceeds header"));
        }
        self.dec.lengths.clear();
        // The histogram doubles as an O(1) seen-set for duplicate symbols
        // (decode never needs sample counts).
        self.hist.reset();
        let mut at = 4;
        let mut prev_len = 0u8;
        for _ in 0..s {
            let entry = bytes.get(at..at + 3).ok_or_else(err)?;
            let sym = i16::from_le_bytes([entry[0], entry[1]]);
            let len = entry[2];
            if len == 0 || usize::from(len) > MAX_CODE_LEN {
                return Err(DecodeError::new("invalid huffman code length"));
            }
            // Canonical headers are sorted by (length, symbol) and list each
            // symbol once; a decreasing length would underflow the canonical
            // code assignment, and a duplicate symbol would make decoding
            // ambiguous. Both guards mirror `Huffman::naive_decode`.
            if len < prev_len {
                return Err(DecodeError::new("huffman table lengths not sorted"));
            }
            if self.hist.count_of(sym) != 0 {
                return Err(DecodeError::new("duplicate symbol in huffman table"));
            }
            self.hist.add(sym, 1);
            prev_len = len;
            self.dec.lengths.push((sym, len));
            at += 3;
        }
        let count = u64::from_le_bytes(
            bytes
                .get(at..at + 8)
                .ok_or_else(err)?
                .try_into()
                .expect("8 bytes"),
        ) as usize;
        Ok((at + 8, count))
    }

    /// Appends the decoded samples of a Huffman stream to `out`.
    /// Accepts exactly the streams the naive decoder accepts and produces
    /// identical samples.
    pub(crate) fn huffman_decode_append(
        &mut self,
        bytes: &[u8],
        out: &mut Vec<i16>,
    ) -> Result<(), DecodeError> {
        let (at, count) = self.huffman_parse_header(bytes)?;
        if self.dec.lengths.is_empty() {
            return if count == 0 {
                Ok(())
            } else {
                Err(DecodeError::new("samples promised but no symbols"))
            };
        }
        // Every decoded sample consumes at least one payload bit, so `count`
        // can be sanity-checked against the stream before reserving space.
        let available_bits = (bytes.len() - at) * 8;
        if count > available_bits {
            return Err(DecodeError::new("sample count exceeds payload"));
        }
        self.dec.build();
        out.reserve(count);
        let mut reader = BitReader::new(&bytes[at..]);
        for _ in 0..count {
            out.push(self.dec.decode_symbol(&mut reader)?);
        }
        Ok(())
    }

    // -- Combined ---------------------------------------------------------

    /// Tokenizes `samples` into the internal `(run, value)` buffers.
    fn tokenize(&mut self, samples: &[i16]) {
        self.tokens.clear();
        scan_runs(samples, u16::MAX as usize, |run, value| {
            self.tokens.push((run as u16, value));
        });
        self.runs.clear();
        self.values.clear();
        for &(run, value) in &self.tokens {
            self.runs.push(run as i16);
            self.values.push(value);
        }
    }

    /// Appends the combined (Huffman-over-RLE-tokens) encoding of `samples`
    /// to `out`. Byte-identical to the naive `Combined::encode`.
    pub(crate) fn combined_append(&mut self, samples: &[i16], out: &mut Vec<u8>) {
        self.tokenize(samples);
        let len_at = out.len();
        out.extend_from_slice(&[0u8; 8]);
        let runs = std::mem::take(&mut self.runs);
        let values = std::mem::take(&mut self.values);
        let runs_start = out.len();
        self.huffman_append(&runs, out);
        let runs_len = (out.len() - runs_start) as u64;
        out[len_at..len_at + 8].copy_from_slice(&runs_len.to_le_bytes());
        self.huffman_append(&values, out);
        self.runs = runs;
        self.values = values;
    }

    /// Appends the decoded samples of a combined stream to `out`.
    pub(crate) fn combined_decode_append(
        &mut self,
        bytes: &[u8],
        out: &mut Vec<i16>,
    ) -> Result<(), DecodeError> {
        let header: [u8; 8] = bytes
            .get(..8)
            .ok_or_else(|| DecodeError::new("combined header truncated"))?
            .try_into()
            .expect("8 bytes");
        let runs_len = u64::from_le_bytes(header) as usize;
        let rest = &bytes[8..];
        if runs_len > rest.len() {
            return Err(DecodeError::new("combined run section truncated"));
        }
        let mut runs = std::mem::take(&mut self.runs);
        let mut values = std::mem::take(&mut self.values);
        runs.clear();
        values.clear();
        let result = self
            .huffman_decode_append(&rest[..runs_len], &mut runs)
            .and_then(|()| self.huffman_decode_append(&rest[runs_len..], &mut values))
            .and_then(|()| {
                if runs.len() != values.len() {
                    return Err(DecodeError::new("run/value section length mismatch"));
                }
                for (&run, &value) in runs.iter().zip(&values) {
                    let run = run as u16;
                    if run == 0 {
                        return Err(DecodeError::new("zero-length run"));
                    }
                    out.extend(std::iter::repeat_n(value, run as usize));
                }
                Ok(())
            });
        self.runs = runs;
        self.values = values;
        result
    }
}

// ---------------------------------------------------------------------------
// Single-pass analysis.

/// Compressed sizes of all three Table 2 codecs — plus the Huffman maximum
/// code length driving the decoder-latency model — computed from **one scan**
/// of the input stream (the naive path re-encodes the stream up to four
/// times to produce the same numbers).
///
/// Sizes are exact: the canonical header/payload layout makes every encoded
/// byte length a closed-form function of the histogram and code lengths, so
/// the ratios match a real encode bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecAnalysis {
    /// Input size in bits (16 per sample).
    pub raw_bits: usize,
    /// Huffman raw/encoded sizes.
    pub huffman: CompressionStats,
    /// Run-length raw/encoded sizes.
    pub run_length: CompressionStats,
    /// Combined (Huffman over RLE tokens) raw/encoded sizes.
    pub combined: CompressionStats,
    /// Longest Huffman code over the raw sample alphabet.
    pub max_code_len: u8,
}

impl CodecAnalysis {
    /// Analyzes `samples` using the thread-local scratch.
    #[must_use]
    pub fn of(samples: &[i16]) -> Self {
        super::with_scratch(|scratch| Self::compute(samples, scratch))
    }

    /// Analyzes `samples` into `scratch` (allocation-free after warm-up).
    #[must_use]
    pub fn compute(samples: &[i16], scratch: &mut CodecScratch) -> Self {
        let raw_bits = samples.len() * 16;
        // One pass over the input: histogram + RLE tokenization together.
        scratch.hist.reset();
        scratch.tokens.clear();
        {
            let hist = &mut scratch.hist;
            let tokens = &mut scratch.tokens;
            scan_runs(samples, u16::MAX as usize, |run, value| {
                hist.add(value, run as u64);
                tokens.push((run as u16, value));
            });
        }
        // Huffman over raw samples.
        build_lengths(&scratch.hist, &mut scratch.tree, &mut scratch.lengths);
        scratch.book.assign(&scratch.lengths);
        let max_code_len = scratch.book.max_code_len();
        let huffman_bytes = scratch.book.encoded_len(&scratch.hist);
        // Run-length: 4 bytes per token.
        let rle_bytes = scratch.tokens.len() * 4;
        // Combined: 8-byte section header + a Huffman section over the run
        // lengths + one over the values.
        let mut combined_bytes = 8;
        for part in 0..2 {
            scratch.hist.reset();
            for &(run, value) in &scratch.tokens {
                let sym = if part == 0 { run as i16 } else { value };
                scratch.hist.add(sym, 1);
            }
            build_lengths(&scratch.hist, &mut scratch.tree, &mut scratch.lengths);
            scratch.book.assign(&scratch.lengths);
            combined_bytes += scratch.book.encoded_len(&scratch.hist);
        }
        Self {
            raw_bits,
            huffman: CompressionStats {
                raw_bits,
                encoded_bits: huffman_bytes * 8,
            },
            run_length: CompressionStats {
                raw_bits,
                encoded_bits: rle_bytes * 8,
            },
            combined: CompressionStats {
                raw_bits,
                encoded_bits: combined_bytes * 8,
            },
            max_code_len,
        }
    }
}

// ---------------------------------------------------------------------------
// Codebook cache.

/// A cached canonical codebook pair for the combined codec's two sections.
#[derive(Debug)]
struct CachedCombined {
    runs: CachedBook,
    values: CachedBook,
}

/// One cached codebook plus the length of the stream it was built from
/// (a cheap guard against key misuse).
#[derive(Debug)]
struct CachedBook {
    lengths: Vec<(i16, u8)>,
    source_len: usize,
}

/// Canonical codebooks keyed by pulse-library entry, so repeated waveforms
/// across shots and multiplexed channels skip the histogram pass and the
/// tree build on every encode after the first.
///
/// Keys must identify the sample stream contents —
/// [`PulseStream::codec_cache_key`](crate::PulseStream::codec_cache_key)
/// provides a content hash. A key reused for *different* contents is
/// detected (missing symbol, or a changed stream length) and falls back to a
/// fresh build, keeping the output byte-identical to the naive oracle in
/// every case.
#[derive(Debug, Default)]
pub struct CodebookCache {
    huffman: HashMap<u64, CachedBook>,
    combined: HashMap<u64, CachedCombined>,
}

/// Widens a byte stream into the engine's `i16` symbol alphabet (symbols
/// `0..=255`), clearing `out` first. Byte-oriented consumers — the trace
/// crate's block payloads — use this to route raw bytes through the Huffman
/// engine and [`CodebookCache`] without a parallel byte-alphabet codepath.
pub fn bytes_to_symbols(bytes: &[u8], out: &mut Vec<i16>) {
    out.clear();
    out.extend(bytes.iter().map(|&b| i16::from(b)));
}

/// Narrows decoded symbols back into bytes, clearing `out` first. The
/// inverse of [`bytes_to_symbols`].
///
/// # Errors
///
/// Returns [`DecodeError`] when a symbol falls outside `0..=255` — a stream
/// that was never a byte stream, or a corrupt payload.
pub fn symbols_to_bytes(symbols: &[i16], out: &mut Vec<u8>) -> Result<(), DecodeError> {
    out.clear();
    out.reserve(symbols.len());
    for &s in symbols {
        let b = u8::try_from(s)
            .map_err(|_| DecodeError::new(format!("symbol {s} is not a byte (0..=255)")))?;
        out.push(b);
    }
    Ok(())
}

/// FNV-1a over the little-endian bytes of `samples` — a cheap content key
/// for [`CodebookCache`].
#[must_use]
pub fn codebook_key(samples: &[i16]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &s in samples {
        for byte in s.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash ^ (samples.len() as u64)
}

impl CodebookCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached Huffman codebooks (combined entries count once).
    #[must_use]
    pub fn len(&self) -> usize {
        self.huffman.len() + self.combined.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.huffman.is_empty() && self.combined.is_empty()
    }

    /// Huffman-encodes `samples` into `out` (clearing it first), reusing the
    /// codebook cached under `key` when possible. Byte-identical to
    /// `Huffman::encode`.
    pub fn huffman_encode_into(
        &mut self,
        key: u64,
        samples: &[i16],
        scratch: &mut CodecScratch,
        out: &mut Vec<u8>,
    ) {
        out.clear();
        if let Some(cached) = self.huffman.get(&key) {
            if cached.source_len == samples.len() {
                scratch.book.assign(&cached.lengths);
                scratch.book.append_header(samples.len(), out);
                if scratch.book.append_payload(samples, out) {
                    return;
                }
                // Key collision or mutated stream: rebuild below.
                out.clear();
            }
        }
        scratch.huffman_append(samples, out);
        self.huffman.insert(
            key,
            CachedBook {
                lengths: scratch.lengths.clone(),
                source_len: samples.len(),
            },
        );
    }

    /// Combined-encodes `samples` into `out` (clearing it first), reusing
    /// the two section codebooks cached under `key` when possible.
    /// Byte-identical to `Combined::encode`.
    pub fn combined_encode_into(
        &mut self,
        key: u64,
        samples: &[i16],
        scratch: &mut CodecScratch,
        out: &mut Vec<u8>,
    ) {
        out.clear();
        scratch.tokenize(samples);
        let runs = std::mem::take(&mut scratch.runs);
        let values = std::mem::take(&mut scratch.values);
        let mut hit = false;
        if let Some(cached) = self.combined.get(&key) {
            if cached.runs.source_len == runs.len() && cached.values.source_len == values.len() {
                hit = Self::append_section_pair(
                    &cached.runs.lengths,
                    &cached.values.lengths,
                    &runs,
                    &values,
                    scratch,
                    out,
                );
            }
        }
        if !hit {
            out.clear();
            let len_at = out.len();
            out.extend_from_slice(&[0u8; 8]);
            let runs_start = out.len();
            scratch.huffman_append(&runs, out);
            let runs_book = scratch.lengths.clone();
            let runs_len = (out.len() - runs_start) as u64;
            out[len_at..len_at + 8].copy_from_slice(&runs_len.to_le_bytes());
            scratch.huffman_append(&values, out);
            self.combined.insert(
                key,
                CachedCombined {
                    runs: CachedBook {
                        lengths: runs_book,
                        source_len: runs.len(),
                    },
                    values: CachedBook {
                        lengths: scratch.lengths.clone(),
                        source_len: values.len(),
                    },
                },
            );
        }
        scratch.runs = runs;
        scratch.values = values;
    }

    /// Appends both cached sections; `false` when either book misses a
    /// symbol (collision fallback).
    fn append_section_pair(
        runs_book: &[(i16, u8)],
        values_book: &[(i16, u8)],
        runs: &[i16],
        values: &[i16],
        scratch: &mut CodecScratch,
        out: &mut Vec<u8>,
    ) -> bool {
        let len_at = out.len();
        out.extend_from_slice(&[0u8; 8]);
        let runs_start = out.len();
        scratch.book.assign(runs_book);
        scratch.book.append_header(runs.len(), out);
        if !scratch.book.append_payload(runs, out) {
            return false;
        }
        let runs_len = (out.len() - runs_start) as u64;
        out[len_at..len_at + 8].copy_from_slice(&runs_len.to_le_bytes());
        scratch.book.assign(values_book);
        scratch.book.append_header(values.len(), out);
        scratch.book.append_payload(values, out)
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Codec, Combined, Huffman};
    use super::*;

    fn sparse() -> Vec<i16> {
        let mut v = Vec::new();
        for block in 0..12 {
            v.extend(std::iter::repeat_n(0i16, 400));
            v.extend((0..40).map(|k| (k as i16) * 113 + block));
        }
        v
    }

    #[test]
    fn engine_encode_matches_naive_huffman() {
        let data = sparse();
        let mut scratch = CodecScratch::new();
        let mut out = Vec::new();
        scratch.huffman_append(&data, &mut out);
        assert_eq!(out, Huffman.naive_encode(&data));
    }

    #[test]
    fn engine_encode_matches_naive_combined() {
        let data = sparse();
        let mut scratch = CodecScratch::new();
        let mut out = Vec::new();
        scratch.combined_append(&data, &mut out);
        assert_eq!(out, Combined.naive_encode(&data));
    }

    #[test]
    fn engine_decode_round_trips() {
        let data = sparse();
        let mut scratch = CodecScratch::new();
        let mut enc = Vec::new();
        let mut dec = Vec::new();
        scratch.huffman_append(&data, &mut enc);
        scratch.huffman_decode_append(&enc, &mut dec).unwrap();
        assert_eq!(dec, data);
        enc.clear();
        dec.clear();
        scratch.combined_append(&data, &mut enc);
        scratch.combined_decode_append(&enc, &mut dec).unwrap();
        assert_eq!(dec, data);
    }

    #[test]
    fn analysis_matches_real_encodes() {
        for data in [sparse(), Vec::new(), vec![7i16; 300], (0..500i16).collect()] {
            let a = CodecAnalysis::of(&data);
            assert_eq!(
                a.huffman.encoded_bits,
                Huffman.naive_encode(&data).len() * 8
            );
            assert_eq!(
                a.combined.encoded_bits,
                Combined.naive_encode(&data).len() * 8
            );
            assert_eq!(
                a.run_length.encoded_bits,
                super::super::RunLength.encode(&data).len() * 8
            );
            assert_eq!(a.max_code_len, Huffman::max_code_len(&data));
        }
    }

    #[test]
    fn single_symbol_and_empty_streams() {
        let mut scratch = CodecScratch::new();
        for data in [Vec::new(), vec![42i16; 77]] {
            let mut enc = Vec::new();
            let mut dec = Vec::new();
            scratch.huffman_append(&data, &mut enc);
            assert_eq!(enc, Huffman.naive_encode(&data));
            scratch.huffman_decode_append(&enc, &mut dec).unwrap();
            assert_eq!(dec, data);
        }
    }

    #[test]
    fn deep_codes_resolve_through_subtables() {
        // Exponential-ish frequencies force long codes past ROOT_BITS.
        let mut data = Vec::new();
        for k in 0..18u32 {
            data.extend(std::iter::repeat_n(k as i16, 1usize << k));
        }
        let mut scratch = CodecScratch::new();
        let mut enc = Vec::new();
        let mut dec = Vec::new();
        scratch.huffman_append(&data, &mut enc);
        assert_eq!(enc, Huffman.naive_encode(&data));
        assert!(scratch.huffman_max_code_len(&data) > 11);
        scratch.huffman_decode_append(&enc, &mut dec).unwrap();
        assert_eq!(dec, data);
    }

    #[test]
    fn cache_hits_are_byte_identical() {
        let data = sparse();
        let mut cache = CodebookCache::new();
        let mut scratch = CodecScratch::new();
        let key = codebook_key(&data);
        let mut first = Vec::new();
        let mut second = Vec::new();
        cache.huffman_encode_into(key, &data, &mut scratch, &mut first);
        cache.huffman_encode_into(key, &data, &mut scratch, &mut second);
        assert_eq!(first, Huffman.naive_encode(&data));
        assert_eq!(first, second);
        assert_eq!(cache.len(), 1);
        cache.combined_encode_into(key, &data, &mut scratch, &mut first);
        cache.combined_encode_into(key, &data, &mut scratch, &mut second);
        assert_eq!(first, Combined.naive_encode(&data));
        assert_eq!(first, second);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cache_key_collisions_fall_back_to_fresh_builds() {
        let a = sparse();
        let b: Vec<i16> = (0..600).map(|k| (k % 23) as i16 * 7).collect();
        let mut cache = CodebookCache::new();
        let mut scratch = CodecScratch::new();
        let mut out = Vec::new();
        // Deliberately reuse one key for two different streams.
        cache.huffman_encode_into(1, &a, &mut scratch, &mut out);
        assert_eq!(out, Huffman.naive_encode(&a));
        cache.huffman_encode_into(1, &b, &mut scratch, &mut out);
        assert_eq!(out, Huffman.naive_encode(&b));
        cache.combined_encode_into(1, &a, &mut scratch, &mut out);
        assert_eq!(out, Combined.naive_encode(&a));
        cache.combined_encode_into(1, &b, &mut scratch, &mut out);
        assert_eq!(out, Combined.naive_encode(&b));
    }

    #[test]
    fn byte_symbol_bridge_round_trips_and_rejects_non_bytes() {
        let bytes: Vec<u8> = (0u8..=255).chain([0, 255, 7]).collect();
        let mut symbols = vec![-1i16; 4]; // stale content must be cleared
        bytes_to_symbols(&bytes, &mut symbols);
        assert_eq!(symbols.len(), bytes.len());
        assert!(symbols.iter().all(|&s| (0..=255).contains(&s)));
        let mut back = vec![9u8; 2];
        symbols_to_bytes(&symbols, &mut back).unwrap();
        assert_eq!(back, bytes);

        let mut out = Vec::new();
        assert!(symbols_to_bytes(&[0, 256], &mut out).is_err());
        assert!(symbols_to_bytes(&[-1], &mut out).is_err());
    }

    #[test]
    fn codebook_key_depends_on_content_and_length() {
        assert_ne!(codebook_key(&[1, 2, 3]), codebook_key(&[1, 2, 4]));
        assert_ne!(codebook_key(&[0]), codebook_key(&[0, 0]));
        assert_eq!(codebook_key(&[5, -5]), codebook_key(&[5, -5]));
    }

    #[test]
    fn bitwriter_matches_manual_bits() {
        let mut out = Vec::new();
        let mut w = BitWriter::default();
        // 0b101 (3) + 0b0110 (4) + 0b1 (1) = 1010 1101 padded.
        w.push_code(&mut out, 0b101, 3);
        w.push_code(&mut out, 0b0110, 4);
        w.push_code(&mut out, 0b1, 1);
        w.finish(&mut out);
        assert_eq!(out, vec![0b1010_1101]);
    }

    #[test]
    fn bitreader_consume_errors_at_end() {
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek(8), 0xFF);
        r.consume(8).unwrap();
        assert!(r.consume(1).is_err());
        // Zero-padded peeks past the end are allowed.
        assert_eq!(r.peek(4), 0);
    }
}
