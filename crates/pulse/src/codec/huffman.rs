//! Canonical Huffman coding over 16-bit sample values.
//!
//! The encoded stream is self-describing:
//!
//! ```text
//! header:  u32 LE  number of distinct symbols S
//!          S × (i16 LE symbol, u8 code length)
//!          u64 LE  number of encoded samples
//! payload: MSB-first bitstream of canonical codes
//! ```
//!
//! Canonical codes are assigned by (length, symbol) order, so only lengths
//! need to be transmitted — this mirrors how a hardware Huffman table is
//! initialized.
//!
//! Two implementations share this format. [`Huffman::naive_encode`] /
//! [`Huffman::naive_decode`] are the reference pair: a `BinaryHeap` of
//! boxed tree nodes and a bit-at-a-time reader resolving codes through
//! per-length hash maps. The [`Codec`] trait impl routes through the
//! streaming [`engine`](super::engine) instead — flat-array histogram,
//! arena tree, word-buffered bit I/O, root-LUT decoder — which is pinned
//! byte-identical to the naive pair by the `codec_engine` proptests.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use super::{Codec, CodecScratch, DecodeError, MAX_CODE_LEN};

/// Canonical Huffman codec.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Huffman;

fn code_lengths(freqs: &HashMap<i16, u64>) -> Vec<(i16, u8)> {
    // Special cases: empty input and single-symbol alphabets.
    if freqs.is_empty() {
        return Vec::new();
    }
    if freqs.len() == 1 {
        let (&sym, _) = freqs.iter().next().expect("non-empty");
        return vec![(sym, 1)];
    }
    // Standard Huffman construction; node = (freq, tie-break id).
    #[derive(Debug)]
    enum Node {
        Leaf(i16),
        Internal(Box<Node>, Box<Node>),
    }
    let mut heap: BinaryHeap<Reverse<(u64, usize, usize)>> = BinaryHeap::new();
    let mut arena: Vec<Node> = Vec::new();
    let mut symbols: Vec<(&i16, &u64)> = freqs.iter().collect();
    symbols.sort(); // deterministic tie-breaking
    for (sym, freq) in symbols {
        let id = arena.len();
        arena.push(Node::Leaf(*sym));
        heap.push(Reverse((*freq, id, id)));
    }
    let mut placeholder = 0usize;
    while heap.len() > 1 {
        let Reverse((fa, _, ia)) = heap.pop().expect("len > 1");
        let Reverse((fb, _, ib)) = heap.pop().expect("len > 1");
        let a = std::mem::replace(&mut arena[ia], Node::Leaf(0));
        let b = std::mem::replace(&mut arena[ib], Node::Leaf(0));
        let id = arena.len();
        arena.push(Node::Internal(Box::new(a), Box::new(b)));
        placeholder += 1;
        heap.push(Reverse((fa + fb, usize::MAX - placeholder, id)));
    }
    let Reverse((_, _, root)) = heap.pop().expect("one root");
    let root = std::mem::replace(&mut arena[root], Node::Leaf(0));
    let mut out = Vec::new();
    let mut stack = vec![(root, 0u8)];
    while let Some((node, depth)) = stack.pop() {
        match node {
            Node::Leaf(sym) => out.push((sym, depth.max(1))),
            Node::Internal(a, b) => {
                stack.push((*a, depth + 1));
                stack.push((*b, depth + 1));
            }
        }
    }
    out.sort_by_key(|&(sym, len)| (len, sym));
    out
}

/// Assigns canonical codes to `(symbol, length)` pairs sorted by
/// `(length, symbol)`.
fn canonical_codes(lengths: &[(i16, u8)]) -> HashMap<i16, (u64, u8)> {
    let mut codes = HashMap::with_capacity(lengths.len());
    let mut code: u64 = 0;
    let mut prev_len: u8 = 0;
    for &(sym, len) in lengths {
        code <<= len - prev_len;
        codes.insert(sym, (code, len));
        code += 1;
        prev_len = len;
    }
    codes
}

#[derive(Debug, Default)]
struct BitWriter {
    bytes: Vec<u8>,
    bit_pos: u8,
}

impl BitWriter {
    fn push_code(&mut self, code: u64, len: u8) {
        for k in (0..len).rev() {
            let bit = (code >> k) & 1;
            if self.bit_pos == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.last_mut().expect("pushed");
            *last |= (bit as u8) << (7 - self.bit_pos);
            self.bit_pos = (self.bit_pos + 1) % 8;
        }
    }
}

#[derive(Debug)]
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize, // bit offset
}

impl BitReader<'_> {
    fn next_bit(&mut self) -> Result<u64, DecodeError> {
        let byte = self
            .bytes
            .get(self.pos / 8)
            .ok_or_else(|| DecodeError::new("bitstream exhausted"))?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Ok(u64::from(bit))
    }
}

impl Codec for Huffman {
    fn name(&self) -> &'static str {
        "huffman"
    }

    fn encode(&self, samples: &[i16]) -> Vec<u8> {
        super::with_scratch(|scratch| {
            let mut out = Vec::new();
            scratch.huffman_append(samples, &mut out);
            out
        })
    }

    fn decode(&self, bytes: &[u8]) -> Result<Vec<i16>, DecodeError> {
        super::with_scratch(|scratch| {
            let mut out = Vec::new();
            scratch.huffman_decode_append(bytes, &mut out)?;
            Ok(out)
        })
    }
}

impl Huffman {
    /// Encodes `samples` into `out` (cleared first) through the streaming
    /// engine: allocation-free in steady state once `scratch` and `out` have
    /// warmed up. Byte-identical to [`Huffman::naive_encode`].
    pub fn encode_into(&self, samples: &[i16], scratch: &mut CodecScratch, out: &mut Vec<u8>) {
        out.clear();
        scratch.huffman_append(samples, out);
    }

    /// Decodes `bytes` into `out` (cleared first) through the engine's
    /// root-LUT decoder: allocation-free in steady state, and accepts
    /// exactly the streams [`Huffman::naive_decode`] accepts.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when the byte stream is corrupt or truncated.
    pub fn decode_into(
        &self,
        bytes: &[u8],
        scratch: &mut CodecScratch,
        out: &mut Vec<i16>,
    ) -> Result<(), DecodeError> {
        out.clear();
        scratch.huffman_decode_append(bytes, out)
    }

    /// Reference encoder: `HashMap` histogram, boxed-node tree, bit-at-a-time
    /// writer. Kept as the bit-identity oracle for the engine.
    #[must_use]
    pub fn naive_encode(&self, samples: &[i16]) -> Vec<u8> {
        let mut freqs: HashMap<i16, u64> = HashMap::new();
        for &s in samples {
            *freqs.entry(s).or_insert(0) += 1;
        }
        let lengths = code_lengths(&freqs);
        let codes = canonical_codes(&lengths);
        let mut out = Vec::new();
        out.extend_from_slice(&(lengths.len() as u32).to_le_bytes());
        for &(sym, len) in &lengths {
            out.extend_from_slice(&sym.to_le_bytes());
            out.push(len);
        }
        out.extend_from_slice(&(samples.len() as u64).to_le_bytes());
        let mut writer = BitWriter::default();
        for &s in samples {
            let &(code, len) = codes.get(&s).expect("symbol in table");
            writer.push_code(code, len);
        }
        out.extend_from_slice(&writer.bytes);
        out
    }

    /// Reference decoder: per-length hash-map probe, one bit at a time. Kept
    /// as the acceptance oracle for the engine decoder.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when the byte stream is corrupt or truncated.
    pub fn naive_decode(&self, bytes: &[u8]) -> Result<Vec<i16>, DecodeError> {
        // Borrows straight from the input — the old version built a fresh
        // `Vec<u8>` per header read.
        fn take(bytes: &[u8], at: usize, n: usize) -> Result<&[u8], DecodeError> {
            bytes
                .get(at..at + n)
                .ok_or_else(|| DecodeError::new("huffman header truncated"))
        }
        let s = u32::from_le_bytes(take(bytes, 0, 4)?.try_into().expect("4 bytes")) as usize;
        // Each table entry occupies 3 header bytes; reject impossible symbol
        // counts before allocating.
        if s > bytes.len().saturating_sub(4) / 3 {
            return Err(DecodeError::new("symbol count exceeds header"));
        }
        let mut lengths: Vec<(i16, u8)> = Vec::with_capacity(s);
        let mut seen: HashSet<i16> = HashSet::with_capacity(s);
        let mut at = 4;
        let mut prev_len = 0u8;
        for _ in 0..s {
            let entry = take(bytes, at, 3)?;
            let sym = i16::from_le_bytes([entry[0], entry[1]]);
            let len = entry[2];
            if len == 0 || len as usize > MAX_CODE_LEN {
                return Err(DecodeError::new("invalid huffman code length"));
            }
            // Canonical headers are sorted by (length, symbol) and list each
            // symbol once; a decreasing length would underflow the canonical
            // code assignment, and a duplicate symbol would make decoding
            // ambiguous.
            if len < prev_len {
                return Err(DecodeError::new("huffman table lengths not sorted"));
            }
            if !seen.insert(sym) {
                return Err(DecodeError::new("duplicate symbol in huffman table"));
            }
            prev_len = len;
            lengths.push((sym, len));
            at += 3;
        }
        let count = u64::from_le_bytes(take(bytes, at, 8)?.try_into().expect("8 bytes")) as usize;
        at += 8;
        if s == 0 {
            return if count == 0 {
                Ok(Vec::new())
            } else {
                Err(DecodeError::new("samples promised but no symbols"))
            };
        }
        // Canonical decoding table: code → symbol, grouped by length.
        let codes = canonical_codes(&lengths);
        let mut by_len: Vec<HashMap<u64, i16>> = vec![HashMap::new(); MAX_CODE_LEN + 1];
        for (sym, (code, len)) in codes {
            by_len[len as usize].insert(code, sym);
        }
        let mut reader = BitReader {
            bytes: &bytes[at..],
            pos: 0,
        };
        // Every decoded sample consumes at least one payload bit, so `count`
        // can be sanity-checked against the stream before allocating —
        // otherwise a corrupt header could demand a huge allocation.
        let available_bits = (bytes.len() - at) * 8;
        if count > available_bits {
            return Err(DecodeError::new("sample count exceeds payload"));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let mut code: u64 = 0;
            let mut len = 0usize;
            loop {
                code = (code << 1) | reader.next_bit()?;
                len += 1;
                if len > MAX_CODE_LEN {
                    return Err(DecodeError::new("code length overflow"));
                }
                if let Some(&sym) = by_len[len].get(&code) {
                    out.push(sym);
                    break;
                }
            }
        }
        Ok(out)
    }

    /// Longest code length used for `samples` — the hardware decoder's
    /// critical path is proportional to this.
    #[must_use]
    pub fn max_code_len(samples: &[i16]) -> u8 {
        super::with_scratch(|scratch| scratch.huffman_max_code_len(samples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_simple() {
        let data: Vec<i16> = vec![1, 1, 1, 2, 2, 3, -7, 0, 0, 0, 0];
        let h = Huffman;
        assert_eq!(h.decode(&h.encode(&data)).unwrap(), data);
    }

    #[test]
    fn round_trip_single_symbol() {
        let data = vec![42i16; 500];
        let h = Huffman;
        assert_eq!(h.decode(&h.encode(&data)).unwrap(), data);
    }

    #[test]
    fn round_trip_empty() {
        let h = Huffman;
        assert_eq!(h.decode(&h.encode(&[])).unwrap(), Vec::<i16>::new());
    }

    #[test]
    fn trait_impl_matches_naive_oracle() {
        let mut data = vec![0i16; 700];
        data.extend((0..90).map(|k| (k % 13) * 41));
        let h = Huffman;
        let enc = h.encode(&data);
        assert_eq!(enc, h.naive_encode(&data));
        assert_eq!(h.decode(&enc).unwrap(), h.naive_decode(&enc).unwrap());
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 95 % zeros, a handful of pulse values.
        let mut data = vec![0i16; 1900];
        data.extend((0..100).map(|k| (k % 10) * 1000));
        let h = Huffman;
        let ratio = h.stats(&data).ratio();
        assert!(ratio > 5.0, "ratio {ratio}");
        assert_eq!(h.decode(&h.encode(&data)).unwrap(), data);
    }

    #[test]
    fn uniform_distribution_barely_compresses() {
        let data: Vec<i16> = (0..4096).map(|k| k as i16).collect();
        let h = Huffman;
        // 4096 distinct symbols → 12-bit codes vs 16-bit raw, ratio ≈ 1.33
        // minus header overhead.
        let ratio = h.stats(&data).ratio();
        assert!(ratio < 1.4, "ratio {ratio}");
        assert_eq!(h.decode(&h.encode(&data)).unwrap(), data);
    }

    #[test]
    fn frequent_symbols_get_shorter_codes() {
        let mut data = vec![7i16; 1000];
        data.extend([1i16, 2, 3, 4, 5].iter().copied());
        let mut freqs: HashMap<i16, u64> = HashMap::new();
        for &s in &data {
            *freqs.entry(s).or_insert(0) += 1;
        }
        let lengths: HashMap<i16, u8> = code_lengths(&freqs).into_iter().collect();
        let frequent = lengths[&7];
        for rare in [1i16, 2, 3, 4, 5] {
            assert!(lengths[&rare] >= frequent);
        }
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let lengths = vec![(0i16, 1u8), (1, 2), (2, 3), (3, 3)];
        let codes = canonical_codes(&lengths);
        let entries: Vec<(u64, u8)> = codes.values().copied().collect();
        for (i, &(ca, la)) in entries.iter().enumerate() {
            for &(cb, lb) in entries.iter().skip(i + 1) {
                let (short, slen, long, llen) = if la <= lb {
                    (ca, la, cb, lb)
                } else {
                    (cb, lb, ca, la)
                };
                assert_ne!(long >> (llen - slen), short, "prefix violation");
            }
        }
    }

    #[test]
    fn truncated_stream_errors() {
        let h = Huffman;
        let mut enc = h.encode(&[1i16, 2, 3, 1, 1, 1]);
        enc.truncate(enc.len() - 1);
        assert!(h.decode(&enc).is_err());
        assert!(h.naive_decode(&enc).is_err());
    }

    #[test]
    fn garbage_header_errors() {
        let h = Huffman;
        assert!(h.decode(&[255, 255, 255, 255]).is_err());
        assert!(h.naive_decode(&[255, 255, 255, 255]).is_err());
    }

    #[test]
    fn unsorted_header_lengths_error() {
        // Header claiming lengths [2, 1] would underflow the canonical code
        // assignment; both decoders must reject it instead of panicking.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&1i16.to_le_bytes());
        bytes.push(2);
        bytes.extend_from_slice(&2i16.to_le_bytes());
        bytes.push(1);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        let h = Huffman;
        assert!(h.decode(&bytes).is_err());
        assert!(h.naive_decode(&bytes).is_err());
    }

    #[test]
    fn duplicate_header_symbols_error() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&5i16.to_le_bytes());
        bytes.push(1);
        bytes.extend_from_slice(&5i16.to_le_bytes());
        bytes.push(2);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        let h = Huffman;
        assert!(h.decode(&bytes).is_err());
        assert!(h.naive_decode(&bytes).is_err());
    }

    #[test]
    fn max_code_len_reported() {
        assert_eq!(Huffman::max_code_len(&[]), 0);
        assert_eq!(Huffman::max_code_len(&[5, 5, 5]), 1);
        let mixed: Vec<i16> = vec![0, 0, 0, 0, 1, 2];
        assert!(Huffman::max_code_len(&mixed) >= 2);
    }

    #[test]
    fn deterministic_encoding() {
        let data: Vec<i16> = (0..257).map(|k| (k % 17) as i16).collect();
        let h = Huffman;
        assert_eq!(h.encode(&data), h.encode(&data));
    }
}
