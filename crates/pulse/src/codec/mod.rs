//! The three pulse compression schemes of Table 2.
//!
//! All codecs operate on 16-bit DAC sample streams and are *lossless* — the
//! decoder on the FPGA must reconstruct the calibrated pulse exactly, or gate
//! fidelity would suffer. The paper evaluates:
//!
//! * **Run-length** ([`RunLength`]): `(run, value)` tokens. Quantum pulse
//!   streams are mostly idle zeros, so this alone compresses well.
//! * **Huffman** ([`Huffman`]): canonical Huffman over sample values. Pulse
//!   sample alphabets are tiny (a few shapes, repeated), so codes are short.
//! * **Combined** ([`Combined`]): run-length tokens whose run counts and
//!   values are each Huffman-coded — the paper's decoder run-length-decodes
//!   first and then reconstructs values via the Huffman table.

mod huffman;
mod rle;
mod varint;

use std::error::Error;
use std::fmt;

pub use huffman::Huffman;
pub use rle::{rle_expand, rle_tokens, ByteRunLength, RunLength};
pub use varint::{read_varint, write_varint, MAX_VARINT_LEN};

/// Decoding failure (corrupt or truncated stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    message: String,
}

impl DecodeError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pulse decode error: {}", self.message)
    }
}

impl Error for DecodeError {}

/// A lossless pulse sample codec.
pub trait Codec {
    /// Short identifier used in reports ("huffman", "run-length", …).
    fn name(&self) -> &'static str;

    /// Compresses a sample stream.
    fn encode(&self, samples: &[i16]) -> Vec<u8>;

    /// Reconstructs the sample stream.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when the byte stream is corrupt or truncated.
    fn decode(&self, bytes: &[u8]) -> Result<Vec<i16>, DecodeError>;

    /// Compression statistics for a stream.
    fn stats(&self, samples: &[i16]) -> CompressionStats {
        let encoded = self.encode(samples);
        CompressionStats {
            raw_bits: samples.len() * 16,
            encoded_bits: encoded.len() * 8,
        }
    }
}

/// Raw-versus-encoded sizes of one compression run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressionStats {
    /// Input size in bits (16 per sample).
    pub raw_bits: usize,
    /// Output size in bits.
    pub encoded_bits: usize,
}

impl CompressionStats {
    /// Compression ratio `raw / encoded` (>1 means the codec helped).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.encoded_bits == 0 {
            return f64::INFINITY;
        }
        self.raw_bits as f64 / self.encoded_bits as f64
    }
}

/// The combined Huffman & run-length pipeline (§5.4).
///
/// The stream is first tokenized into `(run, value)` pairs; both the run
/// lengths and the values are then Huffman-coded (each with its own table —
/// run lengths concentrate on a handful of distinct values, and pulse
/// values on the calibrated waveform alphabet). The paper's decoder order
/// follows directly: "the pulses are first decoded using the run-length
/// decoder, and then the original pulses are reconstructed using the
/// Huffman table".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Combined;

impl Codec for Combined {
    fn name(&self) -> &'static str {
        "huffman+run-length"
    }

    fn encode(&self, samples: &[i16]) -> Vec<u8> {
        let tokens = rle::rle_tokens(samples);
        // Reinterpret the u16 run as an i16 symbol (pure bit pattern).
        let runs: Vec<i16> = tokens.iter().map(|&(r, _)| r as i16).collect();
        let values: Vec<i16> = tokens.iter().map(|&(_, v)| v).collect();
        let runs_enc = Huffman.encode(&runs);
        let values_enc = Huffman.encode(&values);
        let mut out = Vec::with_capacity(8 + runs_enc.len() + values_enc.len());
        out.extend_from_slice(&(runs_enc.len() as u64).to_le_bytes());
        out.extend_from_slice(&runs_enc);
        out.extend_from_slice(&values_enc);
        out
    }

    fn decode(&self, bytes: &[u8]) -> Result<Vec<i16>, DecodeError> {
        let header: [u8; 8] = bytes
            .get(..8)
            .ok_or_else(|| DecodeError::new("combined header truncated"))?
            .try_into()
            .expect("8 bytes");
        let runs_len = u64::from_le_bytes(header) as usize;
        let rest = &bytes[8..];
        if runs_len > rest.len() {
            return Err(DecodeError::new("combined run section truncated"));
        }
        let runs = Huffman.decode(&rest[..runs_len])?;
        let values = Huffman.decode(&rest[runs_len..])?;
        if runs.len() != values.len() {
            return Err(DecodeError::new("run/value section length mismatch"));
        }
        let tokens: Vec<(u16, i16)> = runs
            .into_iter()
            .map(|r| r as u16)
            .zip(values)
            .collect();
        rle::rle_expand(&tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse_stream() -> Vec<i16> {
        // A realistic control stream: the same 30 ns shaped pulse repeated
        // every 1 µs of idle (circuits reuse calibrated pulses), at 2 GSPS.
        let mut v = Vec::new();
        for _ in 0..20 {
            v.extend(std::iter::repeat_n(0i16, 970));
            v.extend((0..60).map(|k| (k as i16) * 137));
            v.extend(std::iter::repeat_n(0i16, 970));
        }
        v
    }

    #[test]
    fn combined_round_trip() {
        let data = sparse_stream();
        let c = Combined;
        assert_eq!(c.decode(&c.encode(&data)).unwrap(), data);
    }

    #[test]
    fn combined_beats_both_parts_on_sparse_data() {
        let data = sparse_stream();
        let h = Huffman.stats(&data).ratio();
        let r = RunLength.stats(&data).ratio();
        let c = Combined.stats(&data).ratio();
        assert!(c >= h, "combined {c} vs huffman {h}");
        assert!(c >= r * 0.8, "combined {c} should be near/above rle {r}");
        assert!(c > 4.0, "combined ratio too low: {c}");
    }

    #[test]
    fn stats_ratio_for_identity_sizes() {
        let s = CompressionStats {
            raw_bits: 160,
            encoded_bits: 80,
        };
        assert!((s.ratio() - 2.0).abs() < 1e-12);
        let z = CompressionStats {
            raw_bits: 160,
            encoded_bits: 0,
        };
        assert!(z.ratio().is_infinite());
    }

    #[test]
    fn combined_empty_round_trip() {
        let c = Combined;
        assert_eq!(c.decode(&c.encode(&[])).unwrap(), Vec::<i16>::new());
    }

    #[test]
    fn decode_error_display() {
        let e = DecodeError::new("truncated");
        assert_eq!(e.to_string(), "pulse decode error: truncated");
    }
}
