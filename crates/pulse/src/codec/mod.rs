//! The three pulse compression schemes of Table 2.
//!
//! All codecs operate on 16-bit DAC sample streams and are *lossless* — the
//! decoder on the FPGA must reconstruct the calibrated pulse exactly, or gate
//! fidelity would suffer. The paper evaluates:
//!
//! * **Run-length** ([`RunLength`]): `(run, value)` tokens. Quantum pulse
//!   streams are mostly idle zeros, so this alone compresses well.
//! * **Huffman** ([`Huffman`]): canonical Huffman over sample values. Pulse
//!   sample alphabets are tiny (a few shapes, repeated), so codes are short.
//! * **Combined** ([`Combined`]): run-length tokens whose run counts and
//!   values are each Huffman-coded — the paper's decoder run-length-decodes
//!   first and then reconstructs values via the Huffman table.
//!
//! Two layers implement the same wire formats. The `naive_*` methods on
//! [`Huffman`] and [`Combined`] are the original allocation-heavy reference
//! implementations, kept as bit-identity oracles. The [`Codec`] trait impls
//! route through the streaming [`engine`] — reusable [`CodecScratch`]
//! buffers, word-buffered bit I/O, a root-LUT decoder, single-pass
//! [`CodecAnalysis`], and a [`CodebookCache`] — which is byte-identical to
//! the oracles on every stream (proptest-pinned in `tests/codec_engine.rs`).

mod engine;
mod huffman;
mod rle;
mod varint;

use std::cell::RefCell;
use std::error::Error;
use std::fmt;

pub use engine::{
    bytes_to_symbols, codebook_key, symbols_to_bytes, CodebookCache, CodecAnalysis, CodecScratch,
};
pub use huffman::Huffman;
pub use rle::{rle_expand, rle_tokens, ByteRunLength, RunLength};
pub use varint::{read_varint, write_varint, MAX_VARINT_LEN};

/// Maximum admissible Huffman code length. With ≤ 65536 symbols, optimal
/// Huffman codes never exceed 63 bits for realistic inputs; we cap at 48 to
/// keep the decoders' length loops bounded.
pub const MAX_CODE_LEN: usize = 48;

thread_local! {
    /// Per-thread engine workspace backing the `Codec` trait impls, so the
    /// allocation-heavy naive structures are gone even for callers that never
    /// thread a [`CodecScratch`] explicitly (works for any `ARTERY_THREADS`).
    static SCRATCH: RefCell<CodecScratch> = RefCell::new(CodecScratch::new());
}

/// Runs `f` with this thread's shared codec scratch. Engine internals must
/// never call back into the `Codec` trait impls (that would re-borrow the
/// `RefCell`); they take `&mut CodecScratch` directly instead.
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut CodecScratch) -> R) -> R {
    SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

/// Decoding failure (corrupt or truncated stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    message: String,
}

impl DecodeError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pulse decode error: {}", self.message)
    }
}

impl Error for DecodeError {}

/// A lossless pulse sample codec.
pub trait Codec {
    /// Short identifier used in reports ("huffman", "run-length", …).
    fn name(&self) -> &'static str;

    /// Compresses a sample stream.
    fn encode(&self, samples: &[i16]) -> Vec<u8>;

    /// Reconstructs the sample stream.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when the byte stream is corrupt or truncated.
    fn decode(&self, bytes: &[u8]) -> Result<Vec<i16>, DecodeError>;

    /// Compression statistics for a stream.
    fn stats(&self, samples: &[i16]) -> CompressionStats {
        let encoded = self.encode(samples);
        CompressionStats {
            raw_bits: samples.len() * 16,
            encoded_bits: encoded.len() * 8,
        }
    }
}

/// Raw-versus-encoded sizes of one compression run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressionStats {
    /// Input size in bits (16 per sample).
    pub raw_bits: usize,
    /// Output size in bits.
    pub encoded_bits: usize,
}

impl CompressionStats {
    /// Compression ratio `raw / encoded` (>1 means the codec helped).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.encoded_bits == 0 {
            return f64::INFINITY;
        }
        self.raw_bits as f64 / self.encoded_bits as f64
    }
}

/// The combined Huffman & run-length pipeline (§5.4).
///
/// The stream is first tokenized into `(run, value)` pairs; both the run
/// lengths and the values are then Huffman-coded (each with its own table —
/// run lengths concentrate on a handful of distinct values, and pulse
/// values on the calibrated waveform alphabet). The paper's decoder order
/// follows directly: "the pulses are first decoded using the run-length
/// decoder, and then the original pulses are reconstructed using the
/// Huffman table".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Combined;

impl Codec for Combined {
    fn name(&self) -> &'static str {
        "huffman+run-length"
    }

    fn encode(&self, samples: &[i16]) -> Vec<u8> {
        with_scratch(|scratch| {
            let mut out = Vec::new();
            scratch.combined_append(samples, &mut out);
            out
        })
    }

    fn decode(&self, bytes: &[u8]) -> Result<Vec<i16>, DecodeError> {
        with_scratch(|scratch| {
            let mut out = Vec::new();
            scratch.combined_decode_append(bytes, &mut out)?;
            Ok(out)
        })
    }
}

impl Combined {
    /// Encodes `samples` into `out` (cleared first) through the streaming
    /// engine: allocation-free in steady state once `scratch` and `out` have
    /// warmed up. Byte-identical to [`Combined::naive_encode`].
    pub fn encode_into(&self, samples: &[i16], scratch: &mut CodecScratch, out: &mut Vec<u8>) {
        out.clear();
        scratch.combined_append(samples, out);
    }

    /// Decodes `bytes` into `out` (cleared first) through the engine.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when the byte stream is corrupt or truncated.
    pub fn decode_into(
        &self,
        bytes: &[u8],
        scratch: &mut CodecScratch,
        out: &mut Vec<i16>,
    ) -> Result<(), DecodeError> {
        out.clear();
        scratch.combined_decode_append(bytes, out)
    }

    /// Reference encoder composed from the naive Huffman oracle and the
    /// token helpers. Kept as the bit-identity oracle for the engine.
    #[must_use]
    pub fn naive_encode(&self, samples: &[i16]) -> Vec<u8> {
        let tokens = rle::rle_tokens(samples);
        // Reinterpret the u16 run as an i16 symbol (pure bit pattern).
        let runs: Vec<i16> = tokens.iter().map(|&(r, _)| r as i16).collect();
        let values: Vec<i16> = tokens.iter().map(|&(_, v)| v).collect();
        let runs_enc = Huffman.naive_encode(&runs);
        let values_enc = Huffman.naive_encode(&values);
        let mut out = Vec::with_capacity(8 + runs_enc.len() + values_enc.len());
        out.extend_from_slice(&(runs_enc.len() as u64).to_le_bytes());
        out.extend_from_slice(&runs_enc);
        out.extend_from_slice(&values_enc);
        out
    }

    /// Reference decoder composed from the naive Huffman oracle.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when the byte stream is corrupt or truncated.
    pub fn naive_decode(&self, bytes: &[u8]) -> Result<Vec<i16>, DecodeError> {
        let header: [u8; 8] = bytes
            .get(..8)
            .ok_or_else(|| DecodeError::new("combined header truncated"))?
            .try_into()
            .expect("8 bytes");
        let runs_len = u64::from_le_bytes(header) as usize;
        let rest = &bytes[8..];
        if runs_len > rest.len() {
            return Err(DecodeError::new("combined run section truncated"));
        }
        let runs = Huffman.naive_decode(&rest[..runs_len])?;
        let values = Huffman.naive_decode(&rest[runs_len..])?;
        if runs.len() != values.len() {
            return Err(DecodeError::new("run/value section length mismatch"));
        }
        let tokens: Vec<(u16, i16)> = runs.into_iter().map(|r| r as u16).zip(values).collect();
        rle::rle_expand(&tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse_stream() -> Vec<i16> {
        // A realistic control stream: the same 30 ns shaped pulse repeated
        // every 1 µs of idle (circuits reuse calibrated pulses), at 2 GSPS.
        let mut v = Vec::new();
        for _ in 0..20 {
            v.extend(std::iter::repeat_n(0i16, 970));
            v.extend((0..60).map(|k| (k as i16) * 137));
            v.extend(std::iter::repeat_n(0i16, 970));
        }
        v
    }

    #[test]
    fn combined_round_trip() {
        let data = sparse_stream();
        let c = Combined;
        assert_eq!(c.decode(&c.encode(&data)).unwrap(), data);
    }

    #[test]
    fn combined_trait_matches_naive_oracle() {
        let data = sparse_stream();
        let c = Combined;
        let enc = c.encode(&data);
        assert_eq!(enc, c.naive_encode(&data));
        assert_eq!(c.decode(&enc).unwrap(), c.naive_decode(&enc).unwrap());
    }

    #[test]
    fn combined_beats_both_parts_on_sparse_data() {
        let data = sparse_stream();
        let h = Huffman.stats(&data).ratio();
        let r = RunLength.stats(&data).ratio();
        let c = Combined.stats(&data).ratio();
        assert!(c >= h, "combined {c} vs huffman {h}");
        assert!(c >= r * 0.8, "combined {c} should be near/above rle {r}");
        assert!(c > 4.0, "combined ratio too low: {c}");
    }

    #[test]
    fn stats_ratio_for_identity_sizes() {
        let s = CompressionStats {
            raw_bits: 160,
            encoded_bits: 80,
        };
        assert!((s.ratio() - 2.0).abs() < 1e-12);
        let z = CompressionStats {
            raw_bits: 160,
            encoded_bits: 0,
        };
        assert!(z.ratio().is_infinite());
    }

    #[test]
    fn combined_empty_round_trip() {
        let c = Combined;
        assert_eq!(c.decode(&c.encode(&[])).unwrap(), Vec::<i16>::new());
    }

    #[test]
    fn combined_encode_into_reuses_buffers() {
        let data = sparse_stream();
        let c = Combined;
        let mut scratch = CodecScratch::new();
        let mut enc = Vec::new();
        let mut dec = Vec::new();
        c.encode_into(&data, &mut scratch, &mut enc);
        assert_eq!(enc, c.encode(&data));
        let cap = enc.capacity();
        c.encode_into(&data, &mut scratch, &mut enc);
        assert_eq!(enc.capacity(), cap);
        c.decode_into(&enc, &mut scratch, &mut dec).unwrap();
        assert_eq!(dec, data);
    }

    #[test]
    fn decode_error_display() {
        let e = DecodeError::new("truncated");
        assert_eq!(e.to_string(), "pulse decode error: truncated");
    }
}
