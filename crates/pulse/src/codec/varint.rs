//! LEB128 variable-length integers.
//!
//! Small non-negative integers dominate the codec side-channels (run
//! lengths, token counts, section sizes) and the recorded-trace format of
//! `artery-trace` (site ids, window indices, run-length streams). LEB128
//! stores them in one byte per 7 bits, little-endian, with the high bit of
//! each byte marking continuation — the same encoding protobuf and DWARF
//! use.

use super::DecodeError;

/// Maximum encoded length of a `u64` (⌈64 / 7⌉ bytes).
pub const MAX_VARINT_LEN: usize = 10;

/// Appends the LEB128 encoding of `value` to `out`.
///
/// # Examples
///
/// ```
/// use artery_pulse::codec::{read_varint, write_varint};
///
/// let mut buf = Vec::new();
/// write_varint(&mut buf, 300);
/// assert_eq!(buf, [0xAC, 0x02]);
/// let mut pos = 0;
/// assert_eq!(read_varint(&buf, &mut pos).unwrap(), 300);
/// assert_eq!(pos, 2);
/// ```
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one LEB128 integer from `bytes` starting at `*pos`, advancing
/// `*pos` past it.
///
/// # Errors
///
/// Returns [`DecodeError`] on a truncated stream or an encoding longer than
/// [`MAX_VARINT_LEN`] bytes (which cannot represent a `u64`).
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *bytes
            .get(*pos)
            .ok_or_else(|| DecodeError::new("varint truncated"))?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(DecodeError::new("varint overflows u64"));
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift >= 64 {
            return Err(DecodeError::new("varint too long"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: u64) {
        let mut buf = Vec::new();
        write_varint(&mut buf, v);
        assert!(buf.len() <= MAX_VARINT_LEN);
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos).unwrap(), v, "value {v}");
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn single_byte_values() {
        for v in 0..=127u64 {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(buf.len(), 1);
        }
        round_trip(0);
        round_trip(127);
    }

    #[test]
    fn multi_byte_values() {
        for v in [128u64, 300, 16_384, u64::from(u32::MAX), u64::MAX] {
            round_trip(v);
        }
    }

    #[test]
    fn boundary_widths() {
        // 2^7k boundaries flip the encoded width.
        for k in 1..9u32 {
            round_trip((1u64 << (7 * k)) - 1);
            round_trip(1u64 << (7 * k));
        }
    }

    #[test]
    fn sequential_reads_advance_position() {
        let mut buf = Vec::new();
        for v in [1u64, 500, 9] {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos).unwrap(), 1);
        assert_eq!(read_varint(&buf, &mut pos).unwrap(), 500);
        assert_eq!(read_varint(&buf, &mut pos).unwrap(), 9);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_stream_errors() {
        assert!(read_varint(&[], &mut 0).is_err());
        assert!(read_varint(&[0x80], &mut 0).is_err());
        assert!(read_varint(&[0xFF, 0xFF], &mut 0).is_err());
    }

    #[test]
    fn overlong_encoding_errors() {
        // Eleven continuation bytes can never terminate inside u64.
        let bytes = [0xFFu8; 11];
        assert!(read_varint(&bytes, &mut 0).is_err());
    }

    #[test]
    fn max_u64_uses_ten_bytes() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        assert_eq!(buf.len(), MAX_VARINT_LEN);
    }
}
