//! Control-pulse waveforms and the adaptive pulse sampling of §5.4.
//!
//! The ARTERY controller stores *pre-encoded* pulses in an on-FPGA library
//! and decodes them just before the DAC, trading a small decode latency for a
//! large reduction in AXI-bus bandwidth — which in turn lets one FPGA drive
//! many more DAC channels. This crate implements the full path:
//!
//! * [`Waveform`] / [`PulseShape`] — 16-bit DAC sample synthesis for the
//!   basis gate set (30 ns XY pulses, 60 ns CZ pulses, 2 µs readout pulses),
//! * [`codec`] — the three compression schemes of Table 2: Huffman,
//!   run-length, and the combined Huffman→run-length pipeline, all with
//!   exact round-trip decoding,
//! * [`PulseLibrary`] — the lookup table keyed by gate, plus circuit pulse
//!   stream assembly (gates separated by idle gaps compress extremely well —
//!   quantum pulse data is mostly zeros),
//! * [`bandwidth`] — the bandwidth / #DAC-per-FPGA / decode-latency model
//!   that regenerates Table 2.
//!
//! # Examples
//!
//! ```
//! use artery_pulse::{codec::Codec, codec::RunLength, PulseShape, Waveform};
//!
//! let wf = Waveform::synthesize(&PulseShape::xy_pulse(), 2.0);
//! let rl = RunLength;
//! let encoded = rl.encode(wf.samples());
//! assert_eq!(rl.decode(&encoded).unwrap(), wf.samples());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod codec;
mod library;
mod waveform;

pub use library::{PulseLibrary, PulseStream, StreamRealism};
pub use waveform::{PulseShape, Waveform};
