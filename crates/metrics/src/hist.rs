//! Deterministic merge-exact instruments: [`Histogram`], [`Counter`] and
//! [`Gauge`].
//!
//! The histogram's aggregation state is pure integers — fixed log-spaced
//! nanosecond buckets (16 one-ns linear buckets, then 16 sub-buckets per
//! power-of-two octave, HdrHistogram style) plus exact f64 min/max — so
//! [`Histogram::merge`] is *exactly* associative and commutative: u64
//! addition has no rounding and f64 min/max are order-independent. Any
//! shard partition merged in any order reproduces the sequential state
//! bit-for-bit, which is what lets the metrics layer inherit the
//! `ARTERY_THREADS` determinism contract without per-shot sample buffers.

use serde::{Deserialize, Serialize};

/// Number of one-nanosecond linear buckets covering `[0, 16)` ns.
const LINEAR_BUCKETS: usize = 16;
/// Sub-buckets per power-of-two octave above the linear range.
const SUB_BUCKETS: usize = 16;
/// Octaves above the linear range; the top octave ends at 2^32 ns (~4.3 s)
/// and everything larger saturates into the last bucket.
const OCTAVES: usize = 28;
/// Total number of histogram buckets.
pub const NUM_BUCKETS: usize = LINEAR_BUCKETS + SUB_BUCKETS * OCTAVES;

/// Maps a (sanitized, truncated-to-u64) nanosecond value to its bucket.
fn bucket_index(ns: f64) -> usize {
    let sanitized = if ns.is_finite() { ns.max(0.0) } else { 0.0 };
    let v = sanitized as u64;
    if v < LINEAR_BUCKETS as u64 {
        return v as usize;
    }
    // v >= 16, so the most significant bit is at position >= 4.
    let msb = 63 - v.leading_zeros() as usize;
    let shift = msb - 4;
    let sub = ((v >> shift) & (SUB_BUCKETS as u64 - 1)) as usize;
    (LINEAR_BUCKETS + SUB_BUCKETS * shift + sub).min(NUM_BUCKETS - 1)
}

/// Inclusive-exclusive `[lo, hi)` nanosecond bounds of a bucket.
fn bucket_bounds(index: usize) -> (f64, f64) {
    if index < LINEAR_BUCKETS {
        return (index as f64, (index + 1) as f64);
    }
    let shift = (index - LINEAR_BUCKETS) / SUB_BUCKETS;
    let sub = (index - LINEAR_BUCKETS) % SUB_BUCKETS;
    let lo = ((SUB_BUCKETS + sub) as u64) << shift;
    let width = 1u64 << shift;
    (lo as f64, (lo + width) as f64)
}

/// A latency histogram over fixed log-spaced nanosecond buckets.
///
/// Bucket widths are exact at 1 ns below 16 ns and stay within 1/16
/// (6.25 %) relative error above; quantiles interpolate linearly inside
/// the crossing bucket and are clamped to the exact observed min/max.
///
/// # Examples
///
/// ```
/// use artery_metrics::Histogram;
///
/// let mut h = Histogram::new();
/// for ns in [110.0, 140.0, 500.0, 3000.0] {
///     h.record(ns);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max_ns(), 3000.0);
/// assert!(h.p50() <= h.p90() && h.p90() <= h.p99());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Per-bucket sample counts, indexed by [`bucket_index`].
    counts: Vec<u64>,
    /// Total number of recorded samples.
    count: u64,
    /// Exact smallest recorded value (`+inf` when empty).
    min_ns: f64,
    /// Exact largest recorded value (`-inf` when empty).
    max_ns: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            min_ns: f64::INFINITY,
            max_ns: f64::NEG_INFINITY,
        }
    }

    /// Records one sample. Non-finite values are sanitized to 0 ns rather
    /// than poisoning min/max, and negatives clamp to 0.
    pub fn record(&mut self, ns: f64) {
        let sanitized = if ns.is_finite() { ns.max(0.0) } else { 0.0 };
        self.counts[bucket_index(sanitized)] += 1;
        self.count += 1;
        self.min_ns = self.min_ns.min(sanitized);
        self.max_ns = self.max_ns.max(sanitized);
    }

    /// Folds `other` into `self`. Exact: u64 bucket adds plus f64 min/max,
    /// so merging is associative and commutative.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Total number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact smallest recorded value, or 0.0 when empty.
    #[must_use]
    pub fn min_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min_ns
        }
    }

    /// Exact largest recorded value, or 0.0 when empty.
    #[must_use]
    pub fn max_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max_ns
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) by linear interpolation within
    /// the crossing bucket, clamped to the observed min/max. Returns 0.0
    /// when empty. Monotone non-decreasing in `q`.
    ///
    /// # Panics
    ///
    /// Panics unless `q` is in `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile rank must be in [0, 1]");
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let (lo, hi) = bucket_bounds(index);
                let frac = (target - seen) as f64 / c as f64;
                let v = lo + (hi - lo) * frac;
                return v.clamp(self.min_ns, self.max_ns);
            }
            seen += c;
        }
        self.max_ns
    }

    /// Median (50th-percentile) latency in nanoseconds.
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.quantile(0.5)
    }

    /// 90th-percentile latency in nanoseconds.
    #[must_use]
    pub fn p90(&self) -> f64 {
        self.quantile(0.9)
    }

    /// 99th-percentile (tail) latency in nanoseconds.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Serializable snapshot: quantile summary plus the sparse non-empty
    /// buckets in index order.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            min_ns: self.min_ns(),
            max_ns: self.max_ns(),
            p50: self.p50(),
            p90: self.p90(),
            p99: self.p99(),
            buckets: self
                .counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(index, &count)| {
                    let (lo_ns, hi_ns) = bucket_bounds(index);
                    BucketSnapshot {
                        index,
                        lo_ns,
                        hi_ns,
                        count,
                    }
                })
                .collect(),
        }
    }
}

/// One non-empty bucket in a [`HistogramSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketSnapshot {
    /// Bucket index in `[0, NUM_BUCKETS)`.
    pub index: usize,
    /// Inclusive lower bound in nanoseconds.
    pub lo_ns: f64,
    /// Exclusive upper bound in nanoseconds.
    pub hi_ns: f64,
    /// Samples that fell in this bucket.
    pub count: u64,
}

/// Serializable summary of a [`Histogram`]: exact extrema, interpolated
/// quantiles and the sparse bucket counts. Empty histograms report 0.0
/// extrema/quantiles (never non-finite values, which JSON cannot carry).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total recorded samples.
    pub count: u64,
    /// Exact smallest sample (0.0 when empty).
    pub min_ns: f64,
    /// Exact largest sample (0.0 when empty).
    pub max_ns: f64,
    /// Median latency in nanoseconds.
    pub p50: f64,
    /// 90th-percentile latency in nanoseconds.
    pub p90: f64,
    /// 99th-percentile latency in nanoseconds.
    pub p99: f64,
    /// Non-empty buckets in index order.
    pub buckets: Vec<BucketSnapshot>,
}

/// A merge-exact monotone event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Folds `other` into `self` (addition — associative and commutative).
    pub fn merge(&mut self, other: &Counter) {
        self.value += other.value;
    }
}

/// A last-value instrument whose merge keeps the maximum.
///
/// Taking the max (rather than "last write wins") is what makes shard
/// merges order-independent: the merged value is the same whichever shard
/// is folded first, so gauges stay inside the determinism contract.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Gauge {
    value: f64,
}

impl Gauge {
    /// A zeroed gauge.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value (single-writer use).
    pub fn set(&mut self, value: f64) {
        self.value = value;
    }

    /// Raises the value to `value` if larger; NaN is ignored.
    pub fn maximize(&mut self, value: f64) {
        if value > self.value {
            self.value = value;
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        self.value
    }

    /// Folds `other` into `self` by taking the maximum.
    pub fn merge(&mut self, other: &Gauge) {
        self.maximize(other.value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        // Every linear bucket maps to itself; the first octave continues
        // seamlessly at index 16.
        for v in 0..16u64 {
            assert_eq!(bucket_index(v as f64), v as usize);
        }
        assert_eq!(bucket_index(16.0), 16);
        assert_eq!(bucket_index(31.0), 31);
        assert_eq!(bucket_index(32.0), 32);
        let mut prev = 0;
        for v in 0..4096u64 {
            let idx = bucket_index(v as f64);
            assert!(idx >= prev, "index decreased at {v}");
            let (lo, hi) = bucket_bounds(idx);
            assert!(
                lo <= v as f64 && (v as f64) < hi,
                "{v} outside bucket [{lo}, {hi})"
            );
            prev = idx;
        }
    }

    #[test]
    fn degenerate_inputs_are_sanitized() {
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::INFINITY), 0);
        assert_eq!(bucket_index(-5.0), 0);
        // Values beyond the top octave saturate into the last bucket.
        assert_eq!(bucket_index(1e18), NUM_BUCKETS - 1);
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(-1.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min_ns(), 0.0);
        assert_eq!(h.max_ns(), 0.0);
    }

    #[test]
    fn single_sample_quantiles_collapse_to_the_sample() {
        let mut h = Histogram::new();
        h.record(100.0);
        assert_eq!(h.p50(), 100.0);
        assert_eq!(h.p90(), 100.0);
        assert_eq!(h.p99(), 100.0);
        assert_eq!(h.min_ns(), 100.0);
        assert_eq!(h.max_ns(), 100.0);
    }

    #[test]
    fn quantiles_bracket_the_distribution() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        // Log-bucketed quantiles are exact to bucket resolution (6.25 %).
        assert!((h.p50() - 500.0).abs() / 500.0 < 0.07, "p50 {}", h.p50());
        assert!((h.p90() - 900.0).abs() / 900.0 < 0.07, "p90 {}", h.p90());
        assert!((h.p99() - 990.0).abs() / 990.0 < 0.07, "p99 {}", h.p99());
        assert!(h.quantile(0.0) >= h.min_ns());
        assert_eq!(h.quantile(1.0), 1000.0);
    }

    #[test]
    fn merge_equals_sequential_recording() {
        let mut whole = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, ns) in [3.0, 17.0, 250.0, 2160.0, 110.0, 1e7].iter().enumerate() {
            whole.record(*ns);
            if i % 2 == 0 {
                a.record(*ns);
            } else {
                b.record(*ns);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
        // Merging an empty histogram is the identity.
        let mut id = whole.clone();
        id.merge(&Histogram::new());
        assert_eq!(id, whole);
    }

    #[test]
    fn counter_and_gauge_merge_deterministically() {
        let mut a = Counter::new();
        a.add(3);
        a.incr();
        let mut b = Counter::new();
        b.add(5);
        a.merge(&b);
        assert_eq!(a.get(), 9);

        let mut g = Gauge::new();
        g.set(2.0);
        g.maximize(1.0);
        assert_eq!(g.get(), 2.0);
        g.maximize(f64::NAN);
        assert_eq!(g.get(), 2.0);
        let mut h = Gauge::new();
        h.set(7.5);
        g.merge(&h);
        assert_eq!(g.get(), 7.5);
    }

    #[test]
    fn snapshot_reports_sparse_buckets_in_order() {
        let mut h = Histogram::new();
        h.record(100.0);
        h.record(100.0);
        h.record(3000.0);
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.buckets.len(), 2);
        assert!(snap.buckets[0].index < snap.buckets[1].index);
        assert_eq!(snap.buckets[0].count, 2);
        assert!(snap.buckets[0].lo_ns <= 100.0 && 100.0 < snap.buckets[0].hi_ns);
        // Empty histograms snapshot to all-zero summaries, not NaN/inf.
        let empty = Histogram::new().snapshot();
        assert_eq!(empty.min_ns, 0.0);
        assert_eq!(empty.max_ns, 0.0);
        assert_eq!(empty.p99, 0.0);
        assert!(empty.buckets.is_empty());
    }
}
