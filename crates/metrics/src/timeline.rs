//! Per-resolve event timelines.
//!
//! A [`ShotTimeline`] records the controller-side stages of one feedback
//! resolve — predict, trigger-fire, pre-execute, then commit or
//! rollback/recover — as `(stage, time)` pairs on a fixed-size inline
//! array. Timelines are `Copy`, allocation-free and cheap enough to build
//! on the hot path; the registry folds them into histograms immediately,
//! so none are retained per shot.

/// A controller-side stage of one feedback resolve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// The windowed predictor crossed its confidence threshold.
    Predict,
    /// The dynamic-timing trigger fired toward the pulse sequencer.
    TriggerFire,
    /// The predicted branch began pre-execution.
    PreExecute,
    /// The prediction matched the final readout; the branch committed.
    Commit,
    /// The prediction missed; the pre-executed branch was rolled back.
    Rollback,
    /// Recovery after a rollback completed (inverse + correct branch).
    Recover,
}

/// One timeline entry: a stage and when it happened, in nanoseconds from
/// readout start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineEvent {
    /// Which stage this entry marks.
    pub stage: Stage,
    /// Stage time in nanoseconds from the start of the readout pulse.
    pub at_ns: f64,
}

/// Maximum events one resolve can produce (predict, trigger-fire,
/// pre-execute, rollback, recover, commit).
pub const MAX_TIMELINE_EVENTS: usize = 6;

/// The recorded stage timeline of a single feedback resolve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShotTimeline {
    /// Feedback-site index this resolve belongs to.
    site: usize,
    /// End-to-end feedback latency charged for the resolve.
    latency_ns: f64,
    /// Number of valid entries in `events`.
    len: usize,
    /// Inline event storage; only `events[..len]` is meaningful.
    events: [TimelineEvent; MAX_TIMELINE_EVENTS],
}

impl ShotTimeline {
    /// An empty timeline for one resolve at `site` whose end-to-end
    /// feedback latency is `latency_ns`.
    #[must_use]
    pub fn new(site: usize, latency_ns: f64) -> Self {
        Self {
            site,
            latency_ns,
            len: 0,
            events: [TimelineEvent {
                stage: Stage::Commit,
                at_ns: 0.0,
            }; MAX_TIMELINE_EVENTS],
        }
    }

    /// Appends a stage marker.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_TIMELINE_EVENTS`] stages are pushed —
    /// a resolve can only pass through each stage once.
    pub fn push(&mut self, stage: Stage, at_ns: f64) {
        assert!(
            self.len < MAX_TIMELINE_EVENTS,
            "timeline overflow: a resolve has at most {MAX_TIMELINE_EVENTS} stages"
        );
        self.events[self.len] = TimelineEvent { stage, at_ns };
        self.len += 1;
    }

    /// Feedback-site index this resolve belongs to.
    #[must_use]
    pub fn site(&self) -> usize {
        self.site
    }

    /// End-to-end feedback latency charged for the resolve.
    #[must_use]
    pub fn latency_ns(&self) -> f64 {
        self.latency_ns
    }

    /// The recorded stage markers, in push order.
    #[must_use]
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events[..self.len]
    }

    /// Whether the timeline contains `stage`.
    #[must_use]
    pub fn has(&self, stage: Stage) -> bool {
        self.events().iter().any(|e| e.stage == stage)
    }

    /// The time of the first marker for `stage`, if present.
    #[must_use]
    pub fn stage_at(&self, stage: Stage) -> Option<f64> {
        self.events()
            .iter()
            .find(|e| e.stage == stage)
            .map(|e| e.at_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timelines_record_stages_in_order() {
        let mut t = ShotTimeline::new(3, 500.0);
        assert!(t.events().is_empty());
        t.push(Stage::Predict, 110.0);
        t.push(Stage::TriggerFire, 110.0);
        t.push(Stage::PreExecute, 202.0);
        t.push(Stage::Commit, 500.0);
        assert_eq!(t.site(), 3);
        assert_eq!(t.latency_ns(), 500.0);
        assert_eq!(t.events().len(), 4);
        assert_eq!(t.events()[0].stage, Stage::Predict);
        assert!(t.has(Stage::Commit));
        assert!(!t.has(Stage::Rollback));
        assert_eq!(t.stage_at(Stage::PreExecute), Some(202.0));
        assert_eq!(t.stage_at(Stage::Recover), None);
    }

    #[test]
    #[should_panic(expected = "timeline overflow")]
    fn overflowing_the_inline_storage_panics() {
        let mut t = ShotTimeline::new(0, 0.0);
        for _ in 0..=MAX_TIMELINE_EVENTS {
            t.push(Stage::Commit, 0.0);
        }
    }
}
