//! Per-site aggregation of shot timelines into histograms and counters,
//! plus the serializable snapshot types.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::hist::{Counter, Gauge, Histogram, HistogramSnapshot};
use crate::timeline::{ShotTimeline, Stage};

/// Snapshot schema version; bump on any structural change so downstream
/// readers of `BENCH_metrics.json` can detect incompatibility.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Aggregated observability state for one feedback site.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SiteMetrics {
    /// End-to-end feedback latency of every resolve.
    pub latency_ns: Histogram,
    /// Latency of resolves that committed a correct prediction.
    pub commit_latency_ns: Histogram,
    /// Latency of resolves that mispredicted (rollback + recovery).
    pub mispredict_latency_ns: Histogram,
    /// Time the dynamic-timing trigger fired, for early-commit analysis.
    pub trigger_fire_ns: Histogram,
    /// Total resolves observed.
    pub resolved: Counter,
    /// Resolves whose prediction committed correctly.
    pub committed: Counter,
    /// Resolves whose prediction was wrong (rolled back).
    pub mispredicted: Counter,
    /// Rollbacks that completed recovery.
    pub recovered: Counter,
    /// Resolves that fell back to the sequential path (no prediction).
    pub sequential: Counter,
    /// Worst end-to-end latency seen at this site.
    pub peak_latency_ns: Gauge,
}

impl SiteMetrics {
    /// Folds one resolve timeline into the aggregates.
    pub fn observe(&mut self, timeline: &ShotTimeline) {
        self.resolved.incr();
        self.latency_ns.record(timeline.latency_ns());
        self.peak_latency_ns.maximize(timeline.latency_ns());
        if let Some(at_ns) = timeline.stage_at(Stage::TriggerFire) {
            self.trigger_fire_ns.record(at_ns);
        }
        let predicted = timeline.has(Stage::Predict);
        if predicted && timeline.has(Stage::Commit) {
            self.committed.incr();
            self.commit_latency_ns.record(timeline.latency_ns());
        }
        if timeline.has(Stage::Rollback) {
            self.mispredicted.incr();
            self.mispredict_latency_ns.record(timeline.latency_ns());
        }
        if timeline.has(Stage::Recover) {
            self.recovered.incr();
        }
        if !predicted {
            self.sequential.incr();
        }
    }

    /// Folds `other` into `self`; exact, order-independent.
    pub fn merge(&mut self, other: &SiteMetrics) {
        self.latency_ns.merge(&other.latency_ns);
        self.commit_latency_ns.merge(&other.commit_latency_ns);
        self.mispredict_latency_ns
            .merge(&other.mispredict_latency_ns);
        self.trigger_fire_ns.merge(&other.trigger_fire_ns);
        self.resolved.merge(&other.resolved);
        self.committed.merge(&other.committed);
        self.mispredicted.merge(&other.mispredicted);
        self.recovered.merge(&other.recovered);
        self.sequential.merge(&other.sequential);
        self.peak_latency_ns.merge(&other.peak_latency_ns);
    }
}

/// Per-site metrics aggregation for one run (or one shard of a run).
///
/// Sites live in a `BTreeMap`, so iteration — and therefore snapshots —
/// is in site order regardless of observation order. Combined with the
/// merge-exact instruments this makes shard-merged registries bit-identical
/// to a sequential run under any `ARTERY_THREADS`.
///
/// # Examples
///
/// ```
/// use artery_metrics::{MetricsRegistry, ShotTimeline, Stage};
///
/// let mut registry = MetricsRegistry::new();
/// let mut t = ShotTimeline::new(0, 202.0);
/// t.push(Stage::Predict, 110.0);
/// t.push(Stage::TriggerFire, 110.0);
/// t.push(Stage::PreExecute, 202.0);
/// t.push(Stage::Commit, 202.0);
/// registry.observe(&t);
/// let site = registry.site(0).unwrap();
/// assert_eq!(site.resolved.get(), 1);
/// assert_eq!(site.committed.get(), 1);
/// assert_eq!(site.latency_ns.p50(), 202.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    sites: BTreeMap<usize, SiteMetrics>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one resolve timeline into its site's aggregates.
    pub fn observe(&mut self, timeline: &ShotTimeline) {
        self.sites
            .entry(timeline.site())
            .or_default()
            .observe(timeline);
    }

    /// The aggregates for one site, if it has been observed.
    #[must_use]
    pub fn site(&self, site: usize) -> Option<&SiteMetrics> {
        self.sites.get(&site)
    }

    /// All observed sites in ascending site order.
    pub fn sites(&self) -> impl Iterator<Item = (usize, &SiteMetrics)> {
        self.sites.iter().map(|(&site, metrics)| (site, metrics))
    }

    /// Number of observed sites.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether no timeline has been observed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Folds `other` into `self`. The result is the per-site union of
    /// the exact instrument merges, so any merge order (or partition)
    /// yields the same registry.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (&site, metrics) in &other.sites {
            self.sites.entry(site).or_default().merge(metrics);
        }
    }

    /// A serializable snapshot of every site, labelled `label`, with
    /// sites in ascending order.
    #[must_use]
    pub fn snapshot(&self, label: &str) -> GroupSnapshot {
        GroupSnapshot {
            label: label.to_string(),
            sites: self
                .sites
                .iter()
                .map(|(&site, m)| SiteSnapshot {
                    site,
                    resolved: m.resolved.get(),
                    committed: m.committed.get(),
                    mispredicted: m.mispredicted.get(),
                    recovered: m.recovered.get(),
                    sequential: m.sequential.get(),
                    peak_latency_ns: m.peak_latency_ns.get(),
                    latency: m.latency_ns.snapshot(),
                    commit_latency: m.commit_latency_ns.snapshot(),
                    mispredict_latency: m.mispredict_latency_ns.snapshot(),
                    trigger_fire: m.trigger_fire_ns.snapshot(),
                })
                .collect(),
        }
    }
}

/// Serializable aggregates of one feedback site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteSnapshot {
    /// Feedback-site index.
    pub site: usize,
    /// Total resolves observed.
    pub resolved: u64,
    /// Resolves whose prediction committed correctly.
    pub committed: u64,
    /// Resolves whose prediction was wrong (rolled back).
    pub mispredicted: u64,
    /// Rollbacks that completed recovery.
    pub recovered: u64,
    /// Resolves that fell back to the sequential path.
    pub sequential: u64,
    /// Worst end-to-end latency seen at this site.
    pub peak_latency_ns: f64,
    /// End-to-end feedback latency distribution.
    pub latency: HistogramSnapshot,
    /// Latency distribution of correct commits.
    pub commit_latency: HistogramSnapshot,
    /// Latency distribution of mispredicted resolves.
    pub mispredict_latency: HistogramSnapshot,
    /// Trigger-fire time distribution.
    pub trigger_fire: HistogramSnapshot,
}

/// One labelled registry snapshot (a workload, a trace shard, …).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSnapshot {
    /// Group label, e.g. the workload name.
    pub label: String,
    /// Per-site aggregates in ascending site order.
    pub sites: Vec<SiteSnapshot>,
}

/// The top-level snapshot document written to `BENCH_metrics.json`.
///
/// Deliberately contains no environment-dependent fields (thread counts,
/// timestamps, host names): the document is a pure function of the
/// workload and configuration, so runs under different `ARTERY_THREADS`
/// serialize byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Schema version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Labelled registry snapshots.
    pub groups: Vec<GroupSnapshot>,
    /// Fairness/backpressure counters of the shot scheduler that produced
    /// the groups, when the producer ran a multi-tenant job queue. The
    /// counters are a pure function of the submitted queue (see
    /// [`crate::scheduler`]), so including them keeps the document
    /// byte-identical for any `ARTERY_THREADS`. A `None` field is skipped
    /// entirely when serializing (see the hand-written [`Serialize`] impl
    /// below), so pre-scheduler documents serialize unchanged — an
    /// additive extension, hence no [`SNAPSHOT_VERSION`] bump.
    pub scheduler: Option<crate::scheduler::SchedulerSnapshot>,
}

// Hand-written (rather than derived) so the optional `scheduler` field is
// *omitted* when absent instead of serialized as `null`: documents written
// before the scheduler existed must keep byte-identical JSON.
impl Serialize for MetricsSnapshot {
    fn to_json_value(&self) -> serde::Value {
        let mut obj = serde::Map::new();
        obj.insert("version", self.version.to_json_value());
        obj.insert("groups", self.groups.to_json_value());
        if let Some(scheduler) = &self.scheduler {
            obj.insert("scheduler", scheduler.to_json_value());
        }
        serde::Value::Object(obj)
    }
}

impl Deserialize for MetricsSnapshot {
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v.expect_object("MetricsSnapshot")?;
        Ok(Self {
            version: Deserialize::from_json_value(obj.field("version", "MetricsSnapshot")?)?,
            groups: Deserialize::from_json_value(obj.field("groups", "MetricsSnapshot")?)?,
            scheduler: match obj.get("scheduler") {
                Some(value) => Some(Deserialize::from_json_value(value)?),
                None => None,
            },
        })
    }
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsSnapshot {
    /// An empty snapshot at the current schema version.
    #[must_use]
    pub fn new() -> Self {
        Self {
            version: SNAPSHOT_VERSION,
            groups: Vec::new(),
            scheduler: None,
        }
    }

    /// Appends one labelled group.
    pub fn push(&mut self, group: GroupSnapshot) {
        self.groups.push(group);
    }

    /// Deterministic pretty-printed JSON rendering. Byte-identical for
    /// equal snapshots: struct field order is fixed by the schema and
    /// all maps were flattened into ordered vectors.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics snapshots always serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn committed_timeline(site: usize, latency_ns: f64) -> ShotTimeline {
        let mut t = ShotTimeline::new(site, latency_ns);
        t.push(Stage::Predict, 110.0);
        t.push(Stage::TriggerFire, 110.0);
        t.push(Stage::PreExecute, 202.0);
        t.push(Stage::Commit, latency_ns);
        t
    }

    fn mispredicted_timeline(site: usize, latency_ns: f64) -> ShotTimeline {
        let mut t = ShotTimeline::new(site, latency_ns);
        t.push(Stage::Predict, 140.0);
        t.push(Stage::TriggerFire, 140.0);
        t.push(Stage::PreExecute, 232.0);
        t.push(Stage::Rollback, 2160.0);
        t.push(Stage::Recover, latency_ns);
        t
    }

    fn sequential_timeline(site: usize, latency_ns: f64) -> ShotTimeline {
        let mut t = ShotTimeline::new(site, latency_ns);
        t.push(Stage::Commit, latency_ns);
        t
    }

    #[test]
    fn observe_classifies_commit_rollback_and_sequential() {
        let mut reg = MetricsRegistry::new();
        reg.observe(&committed_timeline(2, 500.0));
        reg.observe(&mispredicted_timeline(2, 3000.0));
        reg.observe(&sequential_timeline(0, 100.0));

        let s2 = reg.site(2).unwrap();
        assert_eq!(s2.resolved.get(), 2);
        assert_eq!(s2.committed.get(), 1);
        assert_eq!(s2.mispredicted.get(), 1);
        assert_eq!(s2.recovered.get(), 1);
        assert_eq!(s2.sequential.get(), 0);
        assert_eq!(s2.latency_ns.count(), 2);
        assert_eq!(s2.commit_latency_ns.count(), 1);
        assert_eq!(s2.mispredict_latency_ns.count(), 1);
        assert_eq!(s2.trigger_fire_ns.count(), 2);
        assert_eq!(s2.peak_latency_ns.get(), 3000.0);

        let s0 = reg.site(0).unwrap();
        assert_eq!(s0.sequential.get(), 1);
        assert_eq!(s0.committed.get(), 0);
        assert_eq!(s0.trigger_fire_ns.count(), 0);

        // Sites iterate in ascending order for deterministic snapshots.
        let order: Vec<usize> = reg.sites().map(|(site, _)| site).collect();
        assert_eq!(order, vec![0, 2]);
    }

    #[test]
    fn shard_merge_equals_sequential_observation() {
        let timelines = [
            committed_timeline(0, 202.0),
            sequential_timeline(1, 2190.0),
            mispredicted_timeline(0, 3000.0),
            committed_timeline(1, 320.0),
            committed_timeline(0, 260.0),
        ];
        let mut whole = MetricsRegistry::new();
        for t in &timelines {
            whole.observe(t);
        }
        // Round-robin shard split, merged in shard order — and reversed.
        let mut shards = vec![MetricsRegistry::new(), MetricsRegistry::new()];
        for (i, t) in timelines.iter().enumerate() {
            shards[i % 2].observe(t);
        }
        let mut forward = MetricsRegistry::new();
        for s in &shards {
            forward.merge(s);
        }
        let mut backward = MetricsRegistry::new();
        for s in shards.iter().rev() {
            backward.merge(s);
        }
        assert_eq!(forward, whole);
        assert_eq!(backward, whole);
        assert_eq!(forward.snapshot("x").sites, whole.snapshot("x").sites);
    }

    #[test]
    fn snapshot_serialization_is_deterministic() {
        let mut reg = MetricsRegistry::new();
        reg.observe(&committed_timeline(1, 500.0));
        let mut snap = MetricsSnapshot::new();
        snap.push(reg.snapshot("unit"));
        let a = snap.to_json_string();
        let b = snap.clone().to_json_string();
        assert_eq!(a, b);
        // And the document round-trips through serde exactly.
        let back: MetricsSnapshot = serde_json::from_str(&a).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.version, SNAPSHOT_VERSION);
    }
}
