//! Snapshot export: the [`MetricsSink`] trait and its two built-ins.
//!
//! Sinks sit entirely off the hot path: the harness aggregates into
//! registries while running, takes one [`MetricsSnapshot`] at the end and
//! hands it to a sink. [`NullSink`] is the default and makes the whole
//! export a no-op; [`JsonSink`] pretty-prints to a file (this is how
//! `run_all` produces `BENCH_metrics.json`).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::registry::MetricsSnapshot;

/// Destination for a finished metrics snapshot.
pub trait MetricsSink {
    /// Exports one snapshot.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the underlying destination.
    fn export(&mut self, snapshot: &MetricsSnapshot) -> io::Result<()>;
}

/// The default sink: discards every snapshot.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl MetricsSink for NullSink {
    fn export(&mut self, _snapshot: &MetricsSnapshot) -> io::Result<()> {
        Ok(())
    }
}

/// Writes snapshots as deterministic pretty-printed JSON to a file,
/// replacing any previous contents.
#[derive(Debug, Clone)]
pub struct JsonSink {
    path: PathBuf,
}

impl JsonSink {
    /// A sink writing to `path`.
    pub fn new(path: impl AsRef<Path>) -> Self {
        Self {
            path: path.as_ref().to_path_buf(),
        }
    }

    /// The destination path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl MetricsSink for JsonSink {
    fn export(&mut self, snapshot: &MetricsSnapshot) -> io::Result<()> {
        fs::write(&self.path, snapshot.to_json_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{ShotTimeline, Stage};
    use crate::MetricsRegistry;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut reg = MetricsRegistry::new();
        let mut t = ShotTimeline::new(0, 150.0);
        t.push(Stage::Commit, 150.0);
        reg.observe(&t);
        let mut snap = MetricsSnapshot::new();
        snap.push(reg.snapshot("sink-test"));
        snap
    }

    #[test]
    fn null_sink_accepts_everything() {
        let snap = sample_snapshot();
        NullSink.export(&snap).unwrap();
        // Works through the trait object the harness passes around.
        let sink: &mut dyn MetricsSink = &mut NullSink;
        sink.export(&snap).unwrap();
    }

    #[test]
    fn json_sink_round_trips_through_the_file() {
        let snap = sample_snapshot();
        let path = std::env::temp_dir().join("artery-metrics-sink-test.json");
        let mut sink = JsonSink::new(&path);
        assert_eq!(sink.path(), path.as_path());
        sink.export(&snap).unwrap();
        let bytes = fs::read_to_string(&path).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&bytes).unwrap();
        assert_eq!(back, snap);
        let _ = fs::remove_file(&path);
        // Empty groups serialize fine too.
        let empty = MetricsSnapshot::new();
        assert!(empty.groups.is_empty());
        let parsed: MetricsSnapshot = serde_json::from_str(&empty.to_json_string()).unwrap();
        assert_eq!(parsed, empty);
    }
}
