//! `artery-metrics` — allocation-conscious observability for the ARTERY
//! feedback pipeline.
//!
//! ARTERY's headline claims are *distributions*, not means: feedback
//! latency under dynamic timing, mispredict/recovery frequency, per-site
//! commit rates. This crate records them without giving up the repo's
//! determinism contract:
//!
//! - [`Histogram`], [`Counter`] and [`Gauge`] keep pure-integer (or exact
//!   min/max) aggregation state, so `merge` is exactly associative and
//!   commutative — shard-merged metrics are bit-identical to a sequential
//!   run under any `ARTERY_THREADS`.
//! - [`ShotTimeline`] captures one resolve's stage markers (predict →
//!   trigger-fire → pre-execute → commit | rollback → recover) on a
//!   `Copy`, allocation-free inline array.
//! - [`MetricsRegistry`] folds timelines into per-site aggregates in
//!   site order and snapshots them into serializable documents.
//! - [`MetricsSink`] abstracts export: [`NullSink`] (the default; the
//!   disabled path costs nothing) and [`JsonSink`] (how `run_all` writes
//!   `BENCH_metrics.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod qec;
pub mod registry;
pub mod replaymeter;
pub mod scheduler;
pub mod sink;
pub mod timeline;

pub use hist::{BucketSnapshot, Counter, Gauge, Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use qec::{QecDistanceSnapshot, QecSnapshot, QecWindowCounters, QEC_SNAPSHOT_VERSION};
pub use registry::{
    GroupSnapshot, MetricsRegistry, MetricsSnapshot, SiteMetrics, SiteSnapshot, SNAPSHOT_VERSION,
};
pub use replaymeter::{
    BlockReplayCounters, DistillCounters, TraceReplaySnapshot, REPLAY_SNAPSHOT_VERSION,
};
pub use scheduler::{QueueCounters, SchedulerSnapshot, TenantCounters, SCHEDULER_SNAPSHOT_VERSION};
pub use sink::{JsonSink, MetricsSink, NullSink};
pub use timeline::{ShotTimeline, Stage, TimelineEvent, MAX_TIMELINE_EVENTS};
