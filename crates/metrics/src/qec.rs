//! Deterministic QEC decode counters for `BENCH_qec.json`.
//!
//! The fig12d harness streams d = 3/5/7 memory shots through the
//! sliding-window cluster-then-match decoder and aggregates what the
//! decoder *did*: detection events, component shapes, window
//! commit/rollback traffic, logical outcomes. Every field here is a pure
//! function of the submitted shots (u64 counters and merge-exact
//! [`HistogramSnapshot`]s folded in chunk order), so the snapshot
//! serializes byte-identically for any `ARTERY_THREADS` — same contract as
//! [`SchedulerSnapshot`](crate::SchedulerSnapshot). Wall-clock decode
//! timings are deliberately *not* part of this type; they ride in the
//! timing section of `BENCH_qec.json` that is exempt from byte-comparison.

use serde::{Deserialize, Serialize};

use crate::hist::HistogramSnapshot;

/// QEC snapshot schema version; bump on any structural change so
/// downstream readers of `BENCH_qec.json` can detect incompatibility.
pub const QEC_SNAPSHOT_VERSION: u32 = 1;

/// Streaming sliding-window decoder counters (summed across shots).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QecWindowCounters {
    /// Components whose corrections were committed (settled or flushed).
    pub commits: u64,
    /// Tentative components invalidated by a late syndrome bit.
    pub rollbacks: u64,
    /// Speculative decodes of not-yet-settled components.
    pub tentative_decodes: u64,
}

/// Decode-shape counters of one code distance's memory run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QecDistanceSnapshot {
    /// Code distance.
    pub distance: u64,
    /// Noisy extraction cycles per shot.
    pub cycles: u64,
    /// Monte-Carlo shots.
    pub shots: u64,
    /// Shots ending in a logical X flip.
    pub logical_errors: u64,
    /// `logical_errors / shots`.
    pub logical_error_rate: f64,
    /// Total detection events across shots.
    pub detection_events: u64,
    /// Total connected components across shots.
    pub components: u64,
    /// Components beyond the exact-DP limit (decoded by internal chunking).
    pub oversized_components: u64,
    /// Distribution of detection events per shot (unit: events, not ns).
    pub events_per_shot: HistogramSnapshot,
    /// Distribution of events per component (unit: events, not ns).
    pub component_size: HistogramSnapshot,
    /// Sliding-window commit/rollback traffic.
    pub window: QecWindowCounters,
}

/// Deterministic decode-shape snapshot of one fig12d QEC run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QecSnapshot {
    /// Schema version ([`QEC_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// X-error probability per data qubit per cycle.
    pub p_data: f64,
    /// Syndrome-bit misread probability per cycle.
    pub p_meas: f64,
    /// Per-distance counters in ascending-distance order.
    pub distances: Vec<QecDistanceSnapshot>,
}

impl QecSnapshot {
    /// An empty snapshot at the current schema version.
    #[must_use]
    pub fn new(p_data: f64, p_meas: f64) -> Self {
        Self {
            version: QEC_SNAPSHOT_VERSION,
            p_data,
            p_meas,
            distances: Vec::new(),
        }
    }

    /// Deterministic pretty-printed JSON rendering; byte-identical for
    /// equal snapshots.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(self).expect("qec snapshots always serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn sample() -> QecSnapshot {
        let mut events = Histogram::new();
        events.record(4.0);
        events.record(9.0);
        let mut sizes = Histogram::new();
        sizes.record(2.0);
        let mut snap = QecSnapshot::new(0.004, 0.004);
        snap.distances.push(QecDistanceSnapshot {
            distance: 5,
            cycles: 10,
            shots: 2,
            logical_errors: 1,
            logical_error_rate: 0.5,
            detection_events: 13,
            components: 6,
            oversized_components: 0,
            events_per_shot: events.snapshot(),
            component_size: sizes.snapshot(),
            window: QecWindowCounters {
                commits: 6,
                rollbacks: 1,
                tentative_decodes: 14,
            },
        });
        snap
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let snap = sample();
        let json = snap.to_json_string();
        assert_eq!(json, snap.clone().to_json_string());
        let back: QecSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn version_is_pinned() {
        let snap = sample();
        assert_eq!(snap.version, QEC_SNAPSHOT_VERSION);
        assert!(snap.to_json_string().contains("\"version\""));
    }

    #[test]
    fn histograms_carry_counts() {
        let snap = sample();
        assert_eq!(snap.distances[0].events_per_shot.count, 2);
        assert_eq!(snap.distances[0].component_size.count, 1);
    }
}
