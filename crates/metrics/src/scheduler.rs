//! Deterministic fairness/backpressure counters of the shot scheduler.
//!
//! The work-stealing scheduler in `artery-bench` serves a queue of
//! heterogeneous jobs owned by different tenants. Two kinds of numbers fall
//! out of a run:
//!
//! - **Fairness/backpressure counters** — how the queue was composed: jobs,
//!   chunks and shots per tenant, and the queue's high-water depth. These
//!   are a pure function of the submitted queue (never of the worker count
//!   or the steal interleaving), so they may be serialized into
//!   byte-compared artifacts like `BENCH_metrics.json`. They live here, as
//!   [`SchedulerSnapshot`].
//! - **Steal telemetry** — which worker ran what and how often workers
//!   stole. Those numbers *are* scheduling-dependent, so the scheduler
//!   keeps them out of this snapshot entirely; harnesses print them to
//!   stdout instead.
//!
//! Keeping the two apart is what lets the snapshot ride inside
//! [`MetricsSnapshot`](crate::MetricsSnapshot) without breaking the
//! "byte-identical for any `ARTERY_THREADS`" contract.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Scheduler snapshot schema version; bump on any structural change so
/// downstream readers of `BENCH_metrics.json` can detect incompatibility.
pub const SCHEDULER_SNAPSHOT_VERSION: u32 = 1;

/// Fairness counters of one tenant's share of a job queue.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantCounters {
    /// Tenant name.
    pub tenant: String,
    /// Jobs the tenant submitted.
    pub jobs: u64,
    /// Chunks the tenant's jobs were split into — the unit of scheduling,
    /// and therefore the tenant's share of worker time.
    pub chunks: u64,
    /// Measured shots across the tenant's jobs.
    pub shots: u64,
    /// Largest single chunk of the tenant (scheduling granularity bound:
    /// no other tenant can be starved for longer than one chunk).
    pub max_chunk_shots: u64,
}

/// Queue-level backpressure counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueCounters {
    /// Jobs accepted into the queue.
    pub jobs: u64,
    /// Total chunks enqueued.
    pub chunks: u64,
    /// Total measured shots across all jobs.
    pub shots: u64,
    /// Distinct tenants in the queue.
    pub tenants: u64,
    /// High-water queue depth in chunks. Jobs enqueue every chunk at
    /// submission, so this equals `chunks` — recorded explicitly so the
    /// schema survives a move to incremental admission.
    pub max_queue_depth: u64,
}

/// Deterministic fairness/backpressure snapshot of one scheduler run.
///
/// Every field is a pure function of the submitted job queue; two runs of
/// the same queue serialize byte-identically for any worker count and any
/// steal order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerSnapshot {
    /// Schema version ([`SCHEDULER_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Queue-level counters.
    pub queue: QueueCounters,
    /// Per-tenant counters in ascending tenant-name order.
    pub tenants: Vec<TenantCounters>,
}

impl SchedulerSnapshot {
    /// Builds a snapshot from `(tenant, chunks, shots, max_chunk_shots)`
    /// job descriptions, aggregating per tenant in name order.
    #[must_use]
    pub fn from_jobs<'a, I>(jobs: I) -> Self
    where
        I: IntoIterator<Item = (&'a str, u64, u64, u64)>,
    {
        let mut tenants: BTreeMap<&str, TenantCounters> = BTreeMap::new();
        let mut queue = QueueCounters {
            jobs: 0,
            chunks: 0,
            shots: 0,
            tenants: 0,
            max_queue_depth: 0,
        };
        for (tenant, chunks, shots, max_chunk_shots) in jobs {
            queue.jobs += 1;
            queue.chunks += chunks;
            queue.shots += shots;
            let entry = tenants.entry(tenant).or_insert_with(|| TenantCounters {
                tenant: tenant.to_string(),
                jobs: 0,
                chunks: 0,
                shots: 0,
                max_chunk_shots: 0,
            });
            entry.jobs += 1;
            entry.chunks += chunks;
            entry.shots += shots;
            entry.max_chunk_shots = entry.max_chunk_shots.max(max_chunk_shots);
        }
        queue.tenants = tenants.len() as u64;
        queue.max_queue_depth = queue.chunks;
        Self {
            version: SCHEDULER_SNAPSHOT_VERSION,
            queue,
            tenants: tenants.into_values().collect(),
        }
    }

    /// Deterministic pretty-printed JSON rendering; byte-identical for
    /// equal snapshots.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(self).expect("scheduler snapshots always serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_jobs_aggregates_per_tenant_in_name_order() {
        let snap = SchedulerSnapshot::from_jobs([
            ("zeta", 4, 100, 25),
            ("alpha", 2, 10, 5),
            ("zeta", 1, 7, 7),
        ]);
        assert_eq!(snap.version, SCHEDULER_SNAPSHOT_VERSION);
        assert_eq!(snap.queue.jobs, 3);
        assert_eq!(snap.queue.chunks, 7);
        assert_eq!(snap.queue.shots, 117);
        assert_eq!(snap.queue.tenants, 2);
        assert_eq!(snap.queue.max_queue_depth, 7);
        let names: Vec<&str> = snap.tenants.iter().map(|t| t.tenant.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
        assert_eq!(snap.tenants[1].jobs, 2);
        assert_eq!(snap.tenants[1].chunks, 5);
        assert_eq!(snap.tenants[1].shots, 107);
        assert_eq!(snap.tenants[1].max_chunk_shots, 25);
    }

    #[test]
    fn empty_queue_snapshot_is_all_zeros() {
        let snap = SchedulerSnapshot::from_jobs([]);
        assert_eq!(snap.queue.jobs, 0);
        assert_eq!(snap.queue.chunks, 0);
        assert_eq!(snap.queue.max_queue_depth, 0);
        assert!(snap.tenants.is_empty());
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let snap = SchedulerSnapshot::from_jobs([("a", 3, 30, 10)]);
        let json = snap.to_json_string();
        assert_eq!(json, snap.clone().to_json_string());
        let back: SchedulerSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
