//! Deterministic counters of trace-v2 block replay and SimPoint
//! distillation.
//!
//! Like the scheduler's fairness counters ([`crate::SchedulerSnapshot`]),
//! everything here is a pure function of the recorded corpus and the
//! distillation parameters — never of worker counts, steal interleavings
//! or wall time — so the snapshot may ride inside byte-compared artifacts
//! (the `trace_eval --distill` reproducibility smoke compares it across
//! `ARTERY_THREADS=1` and `=8`). Wall-clock numbers (replay seconds,
//! decode MB/s) are reported separately in `BENCH_trace.json`, which is
//! *not* byte-compared.

use serde::{Deserialize, Serialize};

/// Replay snapshot schema version; bump on any structural change so
/// downstream readers can detect incompatibility.
pub const REPLAY_SNAPSHOT_VERSION: u32 = 1;

/// Counters of one trace-v2 block decode + replay pass.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockReplayCounters {
    /// Blocks decoded across all traces.
    pub blocks: u64,
    /// Events decoded out of those blocks.
    pub block_events: u64,
    /// Compressed trace bytes (whole v2 files, framing included).
    pub compressed_bytes: u64,
    /// Uncompressed block payload bytes (decode-throughput denominator).
    pub raw_bytes: u64,
    /// Replay jobs submitted to the scheduler.
    pub replay_jobs: u64,
    /// Scheduler chunks those jobs fanned into.
    pub replay_chunks: u64,
    /// Events replayed, summed over every (configuration, event) pair.
    pub replayed_events: u64,
}

impl BlockReplayCounters {
    /// Compression ratio of the recorded corpus (raw / compressed; 0 when
    /// nothing was recorded).
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            0.0
        } else {
            self.raw_bytes as f64 / self.compressed_bytes as f64
        }
    }
}

/// Counters of one SimPoint distillation pass.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistillCounters {
    /// Windows the corpus was sliced into (all traces).
    pub windows: u64,
    /// Fixed window size in events.
    pub window_events: u64,
    /// Clusters actually used (≤ the requested k).
    pub clusters: u64,
    /// Representative windows emitted.
    pub representatives: u64,
    /// Lloyd iterations until convergence, summed over traces.
    pub kmeans_iterations: u64,
    /// Events inside representative windows.
    pub replayed_events: u64,
    /// Events in the full measured corpus.
    pub total_events: u64,
}

impl DistillCounters {
    /// Fraction of corpus events a distilled replay touches.
    #[must_use]
    pub fn replayed_fraction(&self) -> f64 {
        if self.total_events == 0 {
            0.0
        } else {
            self.replayed_events as f64 / self.total_events as f64
        }
    }
}

/// Deterministic snapshot of a replay (+ optional distillation) run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceReplaySnapshot {
    /// Schema version ([`REPLAY_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Block decode + replay counters.
    pub replay: BlockReplayCounters,
    /// Distillation counters; `None` for full-corpus-only runs.
    pub distill: Option<DistillCounters>,
}

impl TraceReplaySnapshot {
    /// Wraps the counters under the current schema version.
    #[must_use]
    pub fn new(replay: BlockReplayCounters, distill: Option<DistillCounters>) -> Self {
        Self {
            version: REPLAY_SNAPSHOT_VERSION,
            replay,
            distill,
        }
    }

    /// Deterministic pretty-printed JSON rendering; byte-identical for
    /// equal snapshots.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(self).expect("replay snapshots always serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominators() {
        let replay = BlockReplayCounters::default();
        assert_eq!(replay.compression_ratio(), 0.0);
        let distill = DistillCounters::default();
        assert_eq!(distill.replayed_fraction(), 0.0);

        let replay = BlockReplayCounters {
            compressed_bytes: 50,
            raw_bytes: 200,
            ..BlockReplayCounters::default()
        };
        assert_eq!(replay.compression_ratio(), 4.0);
        let distill = DistillCounters {
            replayed_events: 25,
            total_events: 100,
            ..DistillCounters::default()
        };
        assert_eq!(distill.replayed_fraction(), 0.25);
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let snap = TraceReplaySnapshot::new(
            BlockReplayCounters {
                blocks: 12,
                block_events: 600,
                compressed_bytes: 4_000,
                raw_bytes: 20_000,
                replay_jobs: 9,
                replay_chunks: 40,
                replayed_events: 5_400,
            },
            Some(DistillCounters {
                windows: 24,
                window_events: 25,
                clusters: 3,
                representatives: 3,
                kmeans_iterations: 7,
                replayed_events: 75,
                total_events: 600,
            }),
        );
        assert_eq!(snap.version, REPLAY_SNAPSHOT_VERSION);
        let json = snap.to_json_string();
        assert_eq!(json, snap.clone().to_json_string());
        let back: TraceReplaySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
