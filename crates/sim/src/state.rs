//! Dense state-vector representation.

use artery_circuit::{Gate, GateMatrix, Qubit};
use artery_num::Complex64;
use rand::Rng;

/// A pure quantum state over `n` qubits as `2^n` complex amplitudes.
///
/// Basis ordering: qubit 0 is the **least significant bit** of the basis
/// index, so `|q_{n-1} … q_1 q_0⟩` maps to index `Σ q_k·2^k`.
///
/// # Examples
///
/// ```
/// use artery_circuit::{Gate, Qubit};
/// use artery_sim::StateVector;
///
/// let mut psi = StateVector::zero(2);
/// psi.apply_gate(Gate::X, &[Qubit(1)]);
/// assert!((psi.probability_of(0b10) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<Complex64>,
}

impl StateVector {
    /// The all-zeros state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics when `num_qubits` exceeds 26 (the dense representation would
    /// exceed a gigabyte of amplitudes).
    #[must_use]
    pub fn zero(num_qubits: usize) -> Self {
        assert!(num_qubits <= 26, "state vector too large: {num_qubits} qubits");
        let mut amps = vec![Complex64::ZERO; 1 << num_qubits];
        amps[0] = Complex64::ONE;
        Self { num_qubits, amps }
    }

    /// A computational basis state `|index⟩`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range for `num_qubits`.
    #[must_use]
    pub fn basis(num_qubits: usize, index: usize) -> Self {
        let mut s = Self::zero(num_qubits);
        assert!(index < s.amps.len(), "basis index out of range");
        s.amps[0] = Complex64::ZERO;
        s.amps[index] = Complex64::ONE;
        s
    }

    /// Number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Amplitude of basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    #[must_use]
    pub fn amplitude(&self, index: usize) -> Complex64 {
        self.amps[index]
    }

    /// Probability of observing basis state `index` on a full measurement.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    #[must_use]
    pub fn probability_of(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// Squared norm of the state (1 for a normalized state).
    #[must_use]
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Rescales the state to unit norm.
    ///
    /// # Panics
    ///
    /// Panics when the state is (numerically) zero.
    pub fn normalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        assert!(n > 1e-300, "cannot normalize a zero state");
        for a in &mut self.amps {
            *a = *a / n;
        }
    }

    /// Applies a one-qubit matrix to qubit `q`.
    fn apply_one(&mut self, m: &[[Complex64; 2]; 2], q: Qubit) {
        let bit = 1usize << q.0;
        for base in 0..self.amps.len() {
            if base & bit == 0 {
                let other = base | bit;
                let a0 = self.amps[base];
                let a1 = self.amps[other];
                self.amps[base] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[other] = m[1][0] * a0 + m[1][1] * a1;
            }
        }
    }

    /// Applies a two-qubit matrix; `q0` is the matrix's high-order bit,
    /// matching [`Gate::matrix`].
    fn apply_two(&mut self, m: &[[Complex64; 4]; 4], q0: Qubit, q1: Qubit) {
        let b0 = 1usize << q0.0;
        let b1 = 1usize << q1.0;
        for base in 0..self.amps.len() {
            if base & b0 == 0 && base & b1 == 0 {
                let idx = [base, base | b1, base | b0, base | b0 | b1];
                let a: Vec<Complex64> = idx.iter().map(|&i| self.amps[i]).collect();
                for (r, &i) in idx.iter().enumerate() {
                    self.amps[i] = (0..4).map(|c| m[r][c] * a[c]).sum();
                }
            }
        }
    }

    /// Applies `gate` to the listed qubits.
    ///
    /// # Panics
    ///
    /// Panics on qubit-count mismatch or out-of-range qubits.
    pub fn apply_gate(&mut self, gate: Gate, qubits: &[Qubit]) {
        for q in qubits {
            assert!(q.0 < self.num_qubits, "qubit {q} out of range");
        }
        match gate.matrix() {
            GateMatrix::One(m) => {
                assert_eq!(qubits.len(), 1);
                self.apply_one(&m, qubits[0]);
            }
            GateMatrix::Two(m) => {
                assert_eq!(qubits.len(), 2);
                self.apply_two(&m, qubits[0], qubits[1]);
            }
        }
    }

    /// Applies a raw one-qubit matrix (used by noise channels; not
    /// necessarily unitary — callers renormalize).
    pub fn apply_matrix1(&mut self, m: &[[Complex64; 2]; 2], q: Qubit) {
        assert!(q.0 < self.num_qubits, "qubit {q} out of range");
        self.apply_one(m, q);
    }

    /// Probability that measuring qubit `q` yields 1.
    ///
    /// # Panics
    ///
    /// Panics when `q` is out of range.
    #[must_use]
    pub fn prob_one(&self, q: Qubit) -> f64 {
        assert!(q.0 < self.num_qubits, "qubit {q} out of range");
        let bit = 1usize << q.0;
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & bit != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Projectively measures qubit `q`, collapsing the state, and returns the
    /// outcome.
    pub fn measure(&mut self, q: Qubit, rng: &mut impl Rng) -> bool {
        let p1 = self.prob_one(q);
        let outcome = rng.gen::<f64>() < p1;
        self.collapse(q, outcome);
        outcome
    }

    /// Forces qubit `q` into the given outcome (project + renormalize).
    ///
    /// # Panics
    ///
    /// Panics when the outcome has zero probability.
    pub fn collapse(&mut self, q: Qubit, outcome: bool) {
        let bit = 1usize << q.0;
        for (i, a) in self.amps.iter_mut().enumerate() {
            let is_one = i & bit != 0;
            if is_one != outcome {
                *a = Complex64::ZERO;
            }
        }
        self.normalize();
    }

    /// Resets qubit `q` to `|0⟩` by measuring and flipping if needed.
    pub fn reset(&mut self, q: Qubit, rng: &mut impl Rng) {
        if self.measure(q, rng) {
            self.apply_gate(Gate::X, &[q]);
        }
    }

    /// State fidelity `|⟨self|other⟩|²`.
    ///
    /// # Panics
    ///
    /// Panics when the qubit counts differ.
    #[must_use]
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(
            self.num_qubits, other.num_qubits,
            "fidelity between states of different sizes"
        );
        let inner: Complex64 = self
            .amps
            .iter()
            .zip(other.amps.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum();
        inner.norm_sqr()
    }

    /// Expectation value of Pauli Z on qubit `q` (`+1` for `|0⟩`, `−1` for
    /// `|1⟩`).
    #[must_use]
    pub fn expectation_z(&self, q: Qubit) -> f64 {
        1.0 - 2.0 * self.prob_one(q)
    }

    /// Samples a full computational-basis measurement without collapsing.
    #[must_use]
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let r: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            acc += a.norm_sqr();
            if r < acc {
                return i;
            }
        }
        self.amps.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_num::approx_eq;
    use artery_num::rng::rng_for;
    use std::f64::consts::PI;

    #[test]
    fn zero_state_is_normalized() {
        let s = StateVector::zero(3);
        assert!(approx_eq(s.norm_sqr(), 1.0, 1e-12));
        assert_eq!(s.probability_of(0), 1.0);
    }

    #[test]
    fn x_flips_basis() {
        let mut s = StateVector::zero(2);
        s.apply_gate(Gate::X, &[Qubit(0)]);
        assert!(approx_eq(s.probability_of(0b01), 1.0, 1e-12));
        s.apply_gate(Gate::X, &[Qubit(1)]);
        assert!(approx_eq(s.probability_of(0b11), 1.0, 1e-12));
    }

    #[test]
    fn hadamard_superposition_and_norm() {
        let mut s = StateVector::zero(1);
        s.apply_gate(Gate::H, &[Qubit(0)]);
        assert!(approx_eq(s.prob_one(Qubit(0)), 0.5, 1e-12));
        assert!(approx_eq(s.norm_sqr(), 1.0, 1e-12));
    }

    #[test]
    fn bell_pair_correlations() {
        let mut s = StateVector::zero(2);
        s.apply_gate(Gate::H, &[Qubit(0)]);
        s.apply_gate(Gate::CNOT, &[Qubit(0), Qubit(1)]);
        assert!(approx_eq(s.probability_of(0b00), 0.5, 1e-12));
        assert!(approx_eq(s.probability_of(0b11), 0.5, 1e-12));
        assert!(approx_eq(s.probability_of(0b01), 0.0, 1e-12));
    }

    #[test]
    fn cnot_control_is_first_qubit() {
        // |10⟩ (q1=1, q0=0): control q0 = 0 → no flip.
        let mut s = StateVector::basis(2, 0b10);
        s.apply_gate(Gate::CNOT, &[Qubit(0), Qubit(1)]);
        assert!(approx_eq(s.probability_of(0b10), 1.0, 1e-12));
        // |01⟩ (q0=1): control set → target q1 flips → |11⟩.
        let mut s = StateVector::basis(2, 0b01);
        s.apply_gate(Gate::CNOT, &[Qubit(0), Qubit(1)]);
        assert!(approx_eq(s.probability_of(0b11), 1.0, 1e-12));
    }

    #[test]
    fn cz_phase_only_on_11() {
        let mut s = StateVector::basis(2, 0b11);
        s.apply_gate(Gate::CZ, &[Qubit(0), Qubit(1)]);
        assert!(approx_eq(s.amplitude(0b11).re, -1.0, 1e-12));
        let mut s = StateVector::basis(2, 0b01);
        s.apply_gate(Gate::CZ, &[Qubit(0), Qubit(1)]);
        assert!(approx_eq(s.amplitude(0b01).re, 1.0, 1e-12));
    }

    #[test]
    fn rotation_composition_equals_sum() {
        let mut a = StateVector::zero(1);
        a.apply_gate(Gate::RX(0.4), &[Qubit(0)]);
        a.apply_gate(Gate::RX(0.6), &[Qubit(0)]);
        let mut b = StateVector::zero(1);
        b.apply_gate(Gate::RX(1.0), &[Qubit(0)]);
        assert!(approx_eq(a.fidelity(&b), 1.0, 1e-12));
    }

    #[test]
    fn measurement_collapses() {
        let mut rng = rng_for("test/measure");
        let mut s = StateVector::zero(1);
        s.apply_gate(Gate::H, &[Qubit(0)]);
        let outcome = s.measure(Qubit(0), &mut rng);
        let p1 = s.prob_one(Qubit(0));
        assert!(approx_eq(p1, f64::from(u8::from(outcome)), 1e-12));
    }

    #[test]
    fn measurement_statistics_match_amplitudes() {
        let mut rng = rng_for("test/stats");
        let mut ones = 0usize;
        const N: usize = 4000;
        for _ in 0..N {
            let mut s = StateVector::zero(1);
            s.apply_gate(Gate::RY(PI / 3.0), &[Qubit(0)]);
            if s.measure(Qubit(0), &mut rng) {
                ones += 1;
            }
        }
        // sin²(π/6) = 0.25; binomial std ≈ 0.007.
        let freq = ones as f64 / N as f64;
        assert!((freq - 0.25).abs() < 0.03, "freq = {freq}");
    }

    #[test]
    fn reset_always_gives_zero() {
        let mut rng = rng_for("test/reset");
        for _ in 0..16 {
            let mut s = StateVector::zero(1);
            s.apply_gate(Gate::H, &[Qubit(0)]);
            s.reset(Qubit(0), &mut rng);
            assert!(approx_eq(s.prob_one(Qubit(0)), 0.0, 1e-12));
        }
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let a = StateVector::basis(2, 0);
        let b = StateVector::basis(2, 3);
        assert!(approx_eq(a.fidelity(&b), 0.0, 1e-12));
        assert!(approx_eq(a.fidelity(&a), 1.0, 1e-12));
    }

    #[test]
    fn expectation_z_signs() {
        let s = StateVector::zero(1);
        assert!(approx_eq(s.expectation_z(Qubit(0)), 1.0, 1e-12));
        let s = StateVector::basis(1, 1);
        assert!(approx_eq(s.expectation_z(Qubit(0)), -1.0, 1e-12));
    }

    #[test]
    fn sample_respects_distribution() {
        let mut rng = rng_for("test/sample");
        let mut s = StateVector::zero(2);
        s.apply_gate(Gate::X, &[Qubit(1)]);
        for _ in 0..32 {
            assert_eq!(s.sample(&mut rng), 0b10);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gate_on_out_of_range_qubit_panics() {
        let mut s = StateVector::zero(1);
        s.apply_gate(Gate::X, &[Qubit(5)]);
    }

    #[test]
    #[should_panic(expected = "different sizes")]
    fn fidelity_size_mismatch_panics() {
        let _ = StateVector::zero(1).fidelity(&StateVector::zero(2));
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut s = StateVector::basis(2, 0b01);
        s.apply_gate(Gate::Swap, &[Qubit(0), Qubit(1)]);
        assert!(approx_eq(s.probability_of(0b10), 1.0, 1e-12));
    }
}
