//! Dense state-vector representation.
//!
//! Gate application is the innermost loop of every experiment harness, so it
//! is throughput-engineered: instead of scanning all `2^n` indices and
//! testing bits, the loops split the index space into contiguous strides
//! around the target qubit's bit, and the gates the workloads actually use
//! (Pauli flips, phase/diagonal gates, CNOT/CZ/SWAP permutations) dispatch
//! to specialized kernels that avoid complex multiplies entirely. The
//! generic dense-matrix path is kept as the reference implementation — see
//! [`StateVector::apply_gate_generic`] — and the kernels are property-tested
//! amplitude-for-amplitude against it (`tests/kernels.rs`).

use std::f64::consts::FRAC_PI_4;

use artery_circuit::{Gate, GateMatrix, Matrix2, Qubit};
use artery_num::Complex64;
use rand::Rng;

/// Width of the manually lane-split inner loops (an array-of-4 `f64x4`
/// stand-in: four independent `Complex64` lanes per iteration, no unstable
/// SIMD features). Every lane performs exactly the scalar arithmetic, so
/// lane-splitting never changes a bit — except where a reduction must be
/// reassociated, which only [`StateVector::prob_one_lanes`] does (and
/// documents).
const LANES: usize = 4;

/// Visits every basis index whose `lo` and `hi` bits are both clear, in
/// increasing order. `lo` and `hi` must be distinct powers of two with
/// `lo < hi`; the visited indices are the canonical bases of the 4-element
/// amplitude groups of a two-qubit gate.
#[inline]
fn for_each_pair_base(len: usize, lo: usize, hi: usize, mut f: impl FnMut(usize)) {
    debug_assert!(lo < hi && lo.is_power_of_two() && hi.is_power_of_two());
    let mut outer = 0;
    while outer < len {
        let mut mid = outer;
        while mid < outer + hi {
            for base in mid..mid + lo {
                f(base);
            }
            mid += lo << 1;
        }
        outer += hi << 1;
    }
}

/// A pure quantum state over `n` qubits as `2^n` complex amplitudes.
///
/// Basis ordering: qubit 0 is the **least significant bit** of the basis
/// index, so `|q_{n-1} … q_1 q_0⟩` maps to index `Σ q_k·2^k`.
///
/// # Examples
///
/// ```
/// use artery_circuit::{Gate, Qubit};
/// use artery_sim::StateVector;
///
/// let mut psi = StateVector::zero(2);
/// psi.apply_gate(Gate::X, &[Qubit(1)]);
/// assert!((psi.probability_of(0b10) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<Complex64>,
}

impl StateVector {
    /// The all-zeros state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics when `num_qubits` exceeds 26 (the dense representation would
    /// exceed a gigabyte of amplitudes).
    #[must_use]
    pub fn zero(num_qubits: usize) -> Self {
        assert!(
            num_qubits <= 26,
            "state vector too large: {num_qubits} qubits"
        );
        let mut amps = vec![Complex64::ZERO; 1 << num_qubits];
        amps[0] = Complex64::ONE;
        Self { num_qubits, amps }
    }

    /// A computational basis state `|index⟩`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range for `num_qubits`.
    #[must_use]
    pub fn basis(num_qubits: usize, index: usize) -> Self {
        let mut s = Self::zero(num_qubits);
        assert!(index < s.amps.len(), "basis index out of range");
        s.amps[0] = Complex64::ZERO;
        s.amps[index] = Complex64::ONE;
        s
    }

    /// Number of qubits.
    #[inline]
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Amplitude of basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    #[inline]
    #[must_use]
    pub fn amplitude(&self, index: usize) -> Complex64 {
        self.amps[index]
    }

    /// Probability of observing basis state `index` on a full measurement.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    #[inline]
    #[must_use]
    pub fn probability_of(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// Squared norm of the state (1 for a normalized state).
    #[must_use]
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Rescales the state to unit norm with a single reciprocal multiply.
    ///
    /// # Panics
    ///
    /// Panics when the state is (numerically) zero.
    pub fn normalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        assert!(n > 1e-300, "cannot normalize a zero state");
        let inv = 1.0 / n;
        for a in &mut self.amps {
            *a = a.scale(inv);
        }
    }

    /// Applies a one-qubit matrix to qubit `q` — the generic strided path.
    ///
    /// The index space splits into blocks of `2·bit` amplitudes whose lower
    /// half has the qubit's bit clear and whose upper half has it set, so the
    /// pair loop walks two contiguous slices instead of testing a bit per
    /// index.
    fn apply_one(&mut self, m: &[[Complex64; 2]; 2], q: Qubit) {
        let bit = 1usize << q.0;
        let span = bit << 1;
        let mut base = 0;
        while base < self.amps.len() {
            let (zeros, ones) = self.amps[base..base + span].split_at_mut(bit);
            for (a0, a1) in zeros.iter_mut().zip(ones.iter_mut()) {
                let x0 = *a0;
                let x1 = *a1;
                *a0 = m[0][0] * x0 + m[0][1] * x1;
                *a1 = m[1][0] * x0 + m[1][1] * x1;
            }
            base += span;
        }
    }

    /// Applies a two-qubit matrix; `q0` is the matrix's high-order bit,
    /// matching [`Gate::matrix`]. Generic strided path: the 4-element
    /// amplitude groups are enumerated without scanning or allocating.
    ///
    /// # Panics
    ///
    /// Panics when `q0 == q1`.
    fn apply_two(&mut self, m: &[[Complex64; 4]; 4], q0: Qubit, q1: Qubit) {
        let b0 = 1usize << q0.0;
        let b1 = 1usize << q1.0;
        assert_ne!(b0, b1, "two-qubit gate requires distinct qubits");
        let (lo, hi) = if b0 < b1 { (b0, b1) } else { (b1, b0) };
        let amps = &mut self.amps;
        for_each_pair_base(amps.len(), lo, hi, |base| {
            let idx = [base, base | b1, base | b0, base | b0 | b1];
            let a = [amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]];
            for (r, &i) in idx.iter().enumerate() {
                amps[i] = m[r][0] * a[0] + m[r][1] * a[1] + m[r][2] * a[2] + m[r][3] * a[3];
            }
        });
    }

    /// Pauli-X kernel: swaps the two contiguous halves of every pair block.
    fn apply_x_kernel(&mut self, q: Qubit) {
        let bit = 1usize << q.0;
        let span = bit << 1;
        let mut base = 0;
        while base < self.amps.len() {
            let (zeros, ones) = self.amps[base..base + span].split_at_mut(bit);
            zeros.swap_with_slice(ones);
            base += span;
        }
    }

    /// Pauli-Y kernel: `|0⟩ ↦ −i·a1`, `|1⟩ ↦ i·a0` — a swap plus component
    /// shuffles, no complex multiplies.
    fn apply_y_kernel(&mut self, q: Qubit) {
        let bit = 1usize << q.0;
        let span = bit << 1;
        let mut base = 0;
        while base < self.amps.len() {
            let (zeros, ones) = self.amps[base..base + span].split_at_mut(bit);
            for (a0, a1) in zeros.iter_mut().zip(ones.iter_mut()) {
                let x0 = *a0;
                let x1 = *a1;
                *a0 = Complex64::new(x1.im, -x1.re);
                *a1 = Complex64::new(-x0.im, x0.re);
            }
            base += span;
        }
    }

    /// Diagonal kernel `diag(p0, p1)` for the RZ/phase family. When `p0` is
    /// exactly 1 (Z, S, S†, T, T†) only the `|1⟩` half of each block is
    /// touched.
    fn apply_diag_kernel(&mut self, p0: Complex64, p1: Complex64, q: Qubit) {
        let bit = 1usize << q.0;
        let span = bit << 1;
        let phase_only = p0 == Complex64::ONE;
        let mut base = 0;
        while base < self.amps.len() {
            if !phase_only {
                for a in &mut self.amps[base..base + bit] {
                    *a = p0 * *a;
                }
            }
            for a in &mut self.amps[base + bit..base + span] {
                *a = p1 * *a;
            }
            base += span;
        }
    }

    /// CZ kernel: negates the amplitudes whose index has both bits set.
    fn apply_cz_kernel(&mut self, q0: Qubit, q1: Qubit) {
        let b0 = 1usize << q0.0;
        let b1 = 1usize << q1.0;
        assert_ne!(b0, b1, "two-qubit gate requires distinct qubits");
        let (lo, hi) = if b0 < b1 { (b0, b1) } else { (b1, b0) };
        let both = b0 | b1;
        let amps = &mut self.amps;
        for_each_pair_base(amps.len(), lo, hi, |base| {
            let i = base | both;
            amps[i] = -amps[i];
        });
    }

    /// CNOT permutation kernel: where the control bit is set, swap the
    /// target pair.
    fn apply_cnot_kernel(&mut self, control: Qubit, target: Qubit) {
        let bc = 1usize << control.0;
        let bt = 1usize << target.0;
        assert_ne!(bc, bt, "two-qubit gate requires distinct qubits");
        let (lo, hi) = if bc < bt { (bc, bt) } else { (bt, bc) };
        let amps = &mut self.amps;
        for_each_pair_base(amps.len(), lo, hi, |base| {
            amps.swap(base | bc, base | bc | bt);
        });
    }

    /// SWAP permutation kernel: exchanges the `|01⟩` and `|10⟩` amplitudes
    /// of every group.
    fn apply_swap_kernel(&mut self, q0: Qubit, q1: Qubit) {
        let b0 = 1usize << q0.0;
        let b1 = 1usize << q1.0;
        assert_ne!(b0, b1, "two-qubit gate requires distinct qubits");
        let (lo, hi) = if b0 < b1 { (b0, b1) } else { (b1, b0) };
        let amps = &mut self.amps;
        for_each_pair_base(amps.len(), lo, hi, |base| {
            amps.swap(base | b0, base | b1);
        });
    }

    /// Validates a gate's qubit operands against this state.
    fn check_qubits(&self, gate: Gate, qubits: &[Qubit]) {
        for q in qubits {
            assert!(q.0 < self.num_qubits, "qubit {q} out of range");
        }
        assert_eq!(
            qubits.len(),
            gate.num_qubits(),
            "gate {gate} expects {} qubit operand(s)",
            gate.num_qubits()
        );
    }

    /// Applies `gate` to the listed qubits.
    ///
    /// Dispatches to a specialized kernel when one exists (Pauli flips, the
    /// diagonal RZ/phase family, CZ/CNOT/SWAP permutations) and falls back to
    /// the generic dense-matrix path otherwise (RX, RY, H).
    ///
    /// # Panics
    ///
    /// Panics on qubit-count mismatch, out-of-range qubits, or duplicate
    /// qubits on a two-qubit gate.
    pub fn apply_gate(&mut self, gate: Gate, qubits: &[Qubit]) {
        self.check_qubits(gate, qubits);
        match gate {
            Gate::X => self.apply_x_kernel(qubits[0]),
            Gate::Y => self.apply_y_kernel(qubits[0]),
            Gate::Z => self.apply_diag_kernel(Complex64::ONE, -Complex64::ONE, qubits[0]),
            Gate::S => self.apply_diag_kernel(Complex64::ONE, Complex64::i(), qubits[0]),
            Gate::Sdg => self.apply_diag_kernel(Complex64::ONE, -Complex64::i(), qubits[0]),
            Gate::T => {
                self.apply_diag_kernel(Complex64::ONE, Complex64::cis(FRAC_PI_4), qubits[0]);
            }
            Gate::Tdg => {
                self.apply_diag_kernel(Complex64::ONE, Complex64::cis(-FRAC_PI_4), qubits[0]);
            }
            Gate::RZ(t) => {
                self.apply_diag_kernel(
                    Complex64::cis(-t / 2.0),
                    Complex64::cis(t / 2.0),
                    qubits[0],
                );
            }
            Gate::CZ => self.apply_cz_kernel(qubits[0], qubits[1]),
            Gate::CNOT => self.apply_cnot_kernel(qubits[0], qubits[1]),
            Gate::Swap => self.apply_swap_kernel(qubits[0], qubits[1]),
            Gate::RX(_) | Gate::RY(_) | Gate::H => {
                let GateMatrix::One(m) = gate.matrix() else {
                    unreachable!("one-qubit gate with a two-qubit matrix")
                };
                self.apply_one(&m, qubits[0]);
            }
        }
    }

    /// Applies `gate` through the generic dense-matrix path, bypassing every
    /// specialized kernel.
    ///
    /// Semantically identical to [`Self::apply_gate`]; kept public as the
    /// oracle the kernels are property-tested (`tests/kernels.rs`) and
    /// benchmarked (`benches/kernels.rs`) against.
    ///
    /// # Panics
    ///
    /// Panics on qubit-count mismatch, out-of-range qubits, or duplicate
    /// qubits on a two-qubit gate.
    pub fn apply_gate_generic(&mut self, gate: Gate, qubits: &[Qubit]) {
        self.check_qubits(gate, qubits);
        match gate.matrix() {
            GateMatrix::One(m) => self.apply_one(&m, qubits[0]),
            GateMatrix::Two(m) => self.apply_two(&m, qubits[0], qubits[1]),
        }
    }

    /// Applies a raw one-qubit matrix (used by noise channels; not
    /// necessarily unitary — callers renormalize).
    ///
    /// # Panics
    ///
    /// Panics when `q` is out of range.
    pub fn apply_matrix1(&mut self, m: &[[Complex64; 2]; 2], q: Qubit) {
        assert!(q.0 < self.num_qubits, "qubit {q} out of range");
        self.apply_one(m, q);
    }

    /// Applies a fused single-qubit run — a `FusedOp::Run1`'s precomputed
    /// composed matrix — to qubit `q` in **one** strided pass. A run of
    /// *k* gates costs one matrix application per amplitude pair instead
    /// of *k* kernel dispatches, dividing both the arithmetic and the
    /// memory traffic by the run length.
    ///
    /// Agrees with applying the run's gates one [`Self::apply_gate`] at a
    /// time to ~1 ulp per gate (the composed matrix rounds once where the
    /// sequential path rounds per gate); `tests/fusion.rs` pins the bound
    /// at 1e-12 against the generic oracle.
    ///
    /// # Panics
    ///
    /// Panics when `q` is out of range.
    pub fn apply_fused_one(&mut self, m: &Matrix2, q: Qubit) {
        assert!(q.0 < self.num_qubits, "qubit {q} out of range");
        self.apply_one(m, q);
    }

    /// Applies a fused diagonal chain — a `FusedOp::DiagSweep`'s
    /// precomputed phase table over its distinct `qubits` (sorted
    /// ascending; bit `j` of a table index is `qubits[j]`'s bit) — in
    /// **one** full-state sweep: one table lookup per contiguous run of
    /// `2^qubits[0].0` amplitudes and one multiply per amplitude, however
    /// many gates the chain held. Entries that are exactly 1 skip the
    /// multiply, matching the phase-gate kernels' untouched-amplitude
    /// behaviour.
    ///
    /// Same equivalence contract as [`Self::apply_fused_one`]: ~1 ulp per
    /// fused gate versus the sequential sweep, pinned by
    /// `tests/fusion.rs`.
    ///
    /// # Panics
    ///
    /// Panics when `qubits` is empty or not strictly ascending, any qubit
    /// is out of range, or `table.len() != 2^qubits.len()`.
    pub fn apply_diag_sweep(&mut self, qubits: &[Qubit], table: &[Complex64]) {
        assert!(!qubits.is_empty(), "diagonal sweep over no qubits");
        for w in qubits.windows(2) {
            assert!(w[0].0 < w[1].0, "sweep qubits must be strictly ascending");
        }
        let last = qubits[qubits.len() - 1];
        assert!(last.0 < self.num_qubits, "qubit {last} out of range");
        assert_eq!(
            table.len(),
            1usize << qubits.len(),
            "phase table size mismatch"
        );
        let lo = 1usize << qubits[0].0;
        // Incremental table-index tracking: walking base in steps of `lo`
        // flips a handful of bits per step (1 + carries), so instead of
        // regathering all m qubit bits per run, XOR-toggle the table-index
        // bit of every *changed* sweep qubit — O(flipped bits) ≈ O(1)
        // amortized per run.
        let mut mask = 0usize;
        let mut map = [0u8; 64];
        for (j, q) in qubits.iter().enumerate() {
            mask |= 1usize << q.0;
            map[q.0] = j as u8;
        }
        if lo == 1 {
            // Qubit 0 is in the sweep: every amplitude is its own run, so
            // the slice loop and the exact-1 skip are pure overhead. Walk
            // pairs instead — within a pair only the qubit-0 table bit
            // differs, so the XOR chain runs once per two amplitudes and
            // the two (unconditional) multiplies pipeline.
            let b0 = 1usize << map[0];
            let hi_mask = mask & !1;
            let mut t = 0usize;
            for (pair, chunk) in self.amps.chunks_exact_mut(2).enumerate() {
                chunk[0] = table[t] * chunk[0];
                chunk[1] = table[t ^ b0] * chunk[1];
                let base = pair << 1;
                let mut diff = (base ^ (base + 2)) & hi_mask;
                while diff != 0 {
                    let b = diff.trailing_zeros() as usize;
                    t ^= 1usize << map[b];
                    diff &= diff - 1;
                }
            }
            return;
        }
        let len = self.amps.len();
        let mut t = 0usize;
        let mut base = 0;
        while base < len {
            let p = table[t];
            if p != Complex64::ONE {
                for a in &mut self.amps[base..base + lo] {
                    *a = p * *a;
                }
            }
            let next = base + lo;
            let mut diff = (base ^ next) & mask;
            while diff != 0 {
                let b = diff.trailing_zeros() as usize;
                t ^= 1usize << map[b];
                diff &= diff - 1;
            }
            base = next;
        }
    }

    /// Resets the state to `|0…0⟩` **in place** — no allocation, same
    /// capacity. This is what lets a cached shot buffer replay a fused
    /// program with a zero-allocation steady state.
    pub fn reset_zero(&mut self) {
        for a in &mut self.amps {
            *a = Complex64::ZERO;
        }
        self.amps[0] = Complex64::ONE;
    }

    /// Probability that measuring qubit `q` yields 1 — a fused strided sum
    /// over the `|1⟩` halves, no per-index bit test.
    ///
    /// # Panics
    ///
    /// Panics when `q` is out of range.
    #[inline]
    #[must_use]
    pub fn prob_one(&self, q: Qubit) -> f64 {
        assert!(q.0 < self.num_qubits, "qubit {q} out of range");
        let bit = 1usize << q.0;
        let span = bit << 1;
        let mut p = 0.0;
        let mut base = bit;
        while base < self.amps.len() {
            for a in &self.amps[base..base + bit] {
                p += a.norm_sqr();
            }
            base += span;
        }
        p
    }

    /// Lane-split variant of [`Self::prob_one`]: four independent partial
    /// sums over the `|1⟩` halves, combined pairwise at the end.
    ///
    /// Unlike the fused gate kernels this **reassociates a reduction**, so
    /// the result can differ from `prob_one` in the last ulp — which is why
    /// the executor's measurement path keeps the sequential sum (its RNG
    /// comparisons must stay bit-identical to the unfused path) and this
    /// variant exists for throughput-only callers and the benches.
    ///
    /// # Panics
    ///
    /// Panics when `q` is out of range.
    #[must_use]
    pub fn prob_one_lanes(&self, q: Qubit) -> f64 {
        assert!(q.0 < self.num_qubits, "qubit {q} out of range");
        let bit = 1usize << q.0;
        let span = bit << 1;
        let mut acc = [0.0f64; LANES];
        let mut base = bit;
        while base < self.amps.len() {
            let ones = &self.amps[base..base + bit];
            let mut k = 0;
            while k + LANES <= bit {
                for l in 0..LANES {
                    acc[l] += ones[k + l].norm_sqr();
                }
                k += LANES;
            }
            for a in &ones[k..] {
                acc[0] += a.norm_sqr();
            }
            base += span;
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3])
    }

    /// Projectively measures qubit `q`, collapsing the state, and returns the
    /// outcome.
    pub fn measure(&mut self, q: Qubit, rng: &mut impl Rng) -> bool {
        let p1 = self.prob_one(q);
        let outcome = rng.gen::<f64>() < p1;
        self.collapse(q, outcome);
        outcome
    }

    /// Forces qubit `q` into the given outcome (project + renormalize).
    ///
    /// # Panics
    ///
    /// Panics when `q` is out of range or the outcome has zero probability.
    pub fn collapse(&mut self, q: Qubit, outcome: bool) {
        assert!(q.0 < self.num_qubits, "qubit {q} out of range");
        let bit = 1usize << q.0;
        let span = bit << 1;
        // Zero the discarded half of every pair block, then renormalize.
        let mut base = if outcome { 0 } else { bit };
        while base < self.amps.len() {
            for a in &mut self.amps[base..base + bit] {
                *a = Complex64::ZERO;
            }
            base += span;
        }
        self.normalize();
    }

    /// Resets qubit `q` to `|0⟩` by measuring and flipping if needed.
    pub fn reset(&mut self, q: Qubit, rng: &mut impl Rng) {
        if self.measure(q, rng) {
            self.apply_gate(Gate::X, &[q]);
        }
    }

    /// State fidelity `|⟨self|other⟩|²`.
    ///
    /// # Panics
    ///
    /// Panics when the qubit counts differ.
    #[must_use]
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(
            self.num_qubits, other.num_qubits,
            "fidelity between states of different sizes"
        );
        let inner: Complex64 = self
            .amps
            .iter()
            .zip(other.amps.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum();
        inner.norm_sqr()
    }

    /// Expectation value of Pauli Z on qubit `q` (`+1` for `|0⟩`, `−1` for
    /// `|1⟩`).
    #[must_use]
    pub fn expectation_z(&self, q: Qubit) -> f64 {
        1.0 - 2.0 * self.prob_one(q)
    }

    /// Samples a full computational-basis measurement without collapsing.
    #[must_use]
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let r: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            acc += a.norm_sqr();
            if r < acc {
                return i;
            }
        }
        self.amps.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_num::approx_eq;
    use artery_num::rng::rng_for;
    use std::f64::consts::PI;

    #[test]
    fn zero_state_is_normalized() {
        let s = StateVector::zero(3);
        assert!(approx_eq(s.norm_sqr(), 1.0, 1e-12));
        assert_eq!(s.probability_of(0), 1.0);
    }

    #[test]
    fn x_flips_basis() {
        let mut s = StateVector::zero(2);
        s.apply_gate(Gate::X, &[Qubit(0)]);
        assert!(approx_eq(s.probability_of(0b01), 1.0, 1e-12));
        s.apply_gate(Gate::X, &[Qubit(1)]);
        assert!(approx_eq(s.probability_of(0b11), 1.0, 1e-12));
    }

    #[test]
    fn hadamard_superposition_and_norm() {
        let mut s = StateVector::zero(1);
        s.apply_gate(Gate::H, &[Qubit(0)]);
        assert!(approx_eq(s.prob_one(Qubit(0)), 0.5, 1e-12));
        assert!(approx_eq(s.norm_sqr(), 1.0, 1e-12));
    }

    #[test]
    fn bell_pair_correlations() {
        let mut s = StateVector::zero(2);
        s.apply_gate(Gate::H, &[Qubit(0)]);
        s.apply_gate(Gate::CNOT, &[Qubit(0), Qubit(1)]);
        assert!(approx_eq(s.probability_of(0b00), 0.5, 1e-12));
        assert!(approx_eq(s.probability_of(0b11), 0.5, 1e-12));
        assert!(approx_eq(s.probability_of(0b01), 0.0, 1e-12));
    }

    #[test]
    fn cnot_control_is_first_qubit() {
        // |10⟩ (q1=1, q0=0): control q0 = 0 → no flip.
        let mut s = StateVector::basis(2, 0b10);
        s.apply_gate(Gate::CNOT, &[Qubit(0), Qubit(1)]);
        assert!(approx_eq(s.probability_of(0b10), 1.0, 1e-12));
        // |01⟩ (q0=1): control set → target q1 flips → |11⟩.
        let mut s = StateVector::basis(2, 0b01);
        s.apply_gate(Gate::CNOT, &[Qubit(0), Qubit(1)]);
        assert!(approx_eq(s.probability_of(0b11), 1.0, 1e-12));
    }

    #[test]
    fn cz_phase_only_on_11() {
        let mut s = StateVector::basis(2, 0b11);
        s.apply_gate(Gate::CZ, &[Qubit(0), Qubit(1)]);
        assert!(approx_eq(s.amplitude(0b11).re, -1.0, 1e-12));
        let mut s = StateVector::basis(2, 0b01);
        s.apply_gate(Gate::CZ, &[Qubit(0), Qubit(1)]);
        assert!(approx_eq(s.amplitude(0b01).re, 1.0, 1e-12));
    }

    #[test]
    fn rotation_composition_equals_sum() {
        let mut a = StateVector::zero(1);
        a.apply_gate(Gate::RX(0.4), &[Qubit(0)]);
        a.apply_gate(Gate::RX(0.6), &[Qubit(0)]);
        let mut b = StateVector::zero(1);
        b.apply_gate(Gate::RX(1.0), &[Qubit(0)]);
        assert!(approx_eq(a.fidelity(&b), 1.0, 1e-12));
    }

    #[test]
    fn measurement_collapses() {
        let mut rng = rng_for("test/measure");
        let mut s = StateVector::zero(1);
        s.apply_gate(Gate::H, &[Qubit(0)]);
        let outcome = s.measure(Qubit(0), &mut rng);
        let p1 = s.prob_one(Qubit(0));
        assert!(approx_eq(p1, f64::from(u8::from(outcome)), 1e-12));
    }

    #[test]
    fn measurement_statistics_match_amplitudes() {
        let mut rng = rng_for("test/stats");
        let mut ones = 0usize;
        const N: usize = 4000;
        for _ in 0..N {
            let mut s = StateVector::zero(1);
            s.apply_gate(Gate::RY(PI / 3.0), &[Qubit(0)]);
            if s.measure(Qubit(0), &mut rng) {
                ones += 1;
            }
        }
        // sin²(π/6) = 0.25; binomial std ≈ 0.007.
        let freq = ones as f64 / N as f64;
        assert!((freq - 0.25).abs() < 0.03, "freq = {freq}");
    }

    #[test]
    fn reset_always_gives_zero() {
        let mut rng = rng_for("test/reset");
        for _ in 0..16 {
            let mut s = StateVector::zero(1);
            s.apply_gate(Gate::H, &[Qubit(0)]);
            s.reset(Qubit(0), &mut rng);
            assert!(approx_eq(s.prob_one(Qubit(0)), 0.0, 1e-12));
        }
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let a = StateVector::basis(2, 0);
        let b = StateVector::basis(2, 3);
        assert!(approx_eq(a.fidelity(&b), 0.0, 1e-12));
        assert!(approx_eq(a.fidelity(&a), 1.0, 1e-12));
    }

    #[test]
    fn expectation_z_signs() {
        let s = StateVector::zero(1);
        assert!(approx_eq(s.expectation_z(Qubit(0)), 1.0, 1e-12));
        let s = StateVector::basis(1, 1);
        assert!(approx_eq(s.expectation_z(Qubit(0)), -1.0, 1e-12));
    }

    #[test]
    fn sample_respects_distribution() {
        let mut rng = rng_for("test/sample");
        let mut s = StateVector::zero(2);
        s.apply_gate(Gate::X, &[Qubit(1)]);
        for _ in 0..32 {
            assert_eq!(s.sample(&mut rng), 0b10);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gate_on_out_of_range_qubit_panics() {
        let mut s = StateVector::zero(1);
        s.apply_gate(Gate::X, &[Qubit(5)]);
    }

    #[test]
    #[should_panic(expected = "different sizes")]
    fn fidelity_size_mismatch_panics() {
        let _ = StateVector::zero(1).fidelity(&StateVector::zero(2));
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut s = StateVector::basis(2, 0b01);
        s.apply_gate(Gate::Swap, &[Qubit(0), Qubit(1)]);
        assert!(approx_eq(s.probability_of(0b10), 1.0, 1e-12));
    }

    #[test]
    #[should_panic(expected = "distinct qubits")]
    fn duplicate_qubits_on_two_qubit_gate_panic() {
        let mut s = StateVector::zero(2);
        s.apply_gate(Gate::CZ, &[Qubit(1), Qubit(1)]);
    }

    /// A fixed entangled state exercising every amplitude.
    fn scrambled(num_qubits: usize) -> StateVector {
        let mut s = StateVector::zero(num_qubits);
        for q in 0..num_qubits {
            s.apply_gate(Gate::H, &[Qubit(q)]);
            s.apply_gate(Gate::RX(0.37 + 0.51 * q as f64), &[Qubit(q)]);
            s.apply_gate(Gate::RZ(1.0 - 0.23 * q as f64), &[Qubit(q)]);
        }
        for q in 1..num_qubits {
            s.apply_gate(Gate::CNOT, &[Qubit(q - 1), Qubit(q)]);
        }
        s
    }

    fn assert_states_close(a: &StateVector, b: &StateVector, context: &str) {
        for i in 0..a.amps.len() {
            let d = a.amplitude(i) - b.amplitude(i);
            assert!(
                d.norm() < 1e-12,
                "{context}: amplitude {i} differs by {}",
                d.norm()
            );
        }
    }

    #[test]
    fn specialized_kernels_match_generic_path() {
        let one_qubit = [
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::RZ(0.71),
            Gate::RZ(-2.3),
        ];
        for g in one_qubit {
            for q in [0usize, 2, 3] {
                let mut fast = scrambled(4);
                let mut slow = fast.clone();
                fast.apply_gate(g, &[Qubit(q)]);
                slow.apply_gate_generic(g, &[Qubit(q)]);
                assert_states_close(&fast, &slow, &format!("{g} on q{q}"));
            }
        }
        let two_qubit = [Gate::CZ, Gate::CNOT, Gate::Swap];
        for g in two_qubit {
            for (a, b) in [(0usize, 1usize), (1, 3), (3, 0), (2, 1)] {
                let mut fast = scrambled(4);
                let mut slow = fast.clone();
                fast.apply_gate(g, &[Qubit(a), Qubit(b)]);
                slow.apply_gate_generic(g, &[Qubit(a), Qubit(b)]);
                assert_states_close(&fast, &slow, &format!("{g} on ({a},{b})"));
            }
        }
    }

    #[test]
    fn prob_one_matches_bitwise_sum() {
        let s = scrambled(5);
        for q in 0..5 {
            let bit = 1usize << q;
            let direct: f64 = (0..s.amps.len())
                .filter(|i| i & bit != 0)
                .map(|i| s.probability_of(i))
                .sum();
            assert!(approx_eq(s.prob_one(Qubit(q)), direct, 1e-12));
        }
    }

    #[test]
    fn normalize_uses_exact_reciprocal_scaling() {
        let mut s = scrambled(3);
        for a in &mut s.amps {
            *a = a.scale(3.7);
        }
        s.normalize();
        assert!(approx_eq(s.norm_sqr(), 1.0, 1e-12));
    }

    fn assert_states_bit_identical(a: &StateVector, b: &StateVector, context: &str) {
        for i in 0..a.amps.len() {
            let (x, y) = (a.amplitude(i), b.amplitude(i));
            assert!(
                x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                "{context}: amplitude {i} differs bitwise: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn fused_run_matches_sequential_gates() {
        use artery_circuit::{CircuitBuilder, FusedOp, FusedProgram};
        let runs: [&[Gate]; 4] = [
            &[Gate::H, Gate::T, Gate::H],
            &[Gate::RX(0.4), Gate::RZ(-1.3), Gate::RY(2.2), Gate::S],
            &[Gate::X, Gate::Y, Gate::Z, Gate::Sdg, Gate::Tdg],
            &[Gate::RZ(0.0), Gate::RZ(-0.0), Gate::T],
        ];
        for (r, gates) in runs.iter().enumerate() {
            for q in 0..4 {
                let mut b = CircuitBuilder::new(4);
                for g in gates.iter() {
                    b.gate(*g, &[Qubit(q)]);
                }
                let program = FusedProgram::fuse(&b.build());
                let [FusedOp::Run1 { matrix, .. }] = program.ops() else {
                    panic!("expected one fused run, got {:?}", program.ops());
                };
                let mut fused = scrambled(4);
                let mut seq = fused.clone();
                fused.apply_fused_one(matrix, Qubit(q));
                for g in gates.iter() {
                    seq.apply_gate(*g, &[Qubit(q)]);
                }
                assert_states_close(&fused, &seq, &format!("run {r} on q{q}"));
            }
        }
    }

    #[test]
    fn diag_sweep_matches_sequential_gates() {
        use artery_circuit::{CircuitBuilder, FusedOp, FusedProgram};
        // A mixed chain of phase gates and CZs over 4 qubits.
        let mut b = CircuitBuilder::new(4);
        b.gate(Gate::S, &[Qubit(0)]);
        b.gate(Gate::CZ, &[Qubit(1), Qubit(3)]);
        b.gate(Gate::RZ(0.9), &[Qubit(2)]);
        b.gate(Gate::Tdg, &[Qubit(3)]);
        b.gate(Gate::CZ, &[Qubit(0), Qubit(2)]);
        b.gate(Gate::Z, &[Qubit(1)]);
        b.gate(Gate::RZ(-0.0), &[Qubit(0)]);
        let circuit = b.build();
        let program = FusedProgram::fuse(&circuit);
        let [FusedOp::DiagSweep { qubits, table, .. }] = program.ops() else {
            panic!("expected one diag sweep, got {:?}", program.ops());
        };
        let mut fused = scrambled(4);
        let mut seq = fused.clone();
        fused.apply_diag_sweep(qubits, table);
        for inst in circuit.instructions() {
            if let artery_circuit::Instruction::Gate(app) = inst {
                seq.apply_gate(app.gate, &app.qubits);
            }
        }
        assert_states_close(&fused, &seq, "diag sweep");
    }

    #[test]
    fn reset_zero_restores_ground_state_in_place() {
        let mut s = scrambled(3);
        s.reset_zero();
        let z = StateVector::zero(3);
        assert_states_bit_identical(&s, &z, "reset_zero");
    }

    #[test]
    fn prob_one_lanes_agrees_with_prob_one() {
        let s = scrambled(5);
        for q in 0..5 {
            let a = s.prob_one(Qubit(q));
            let b = s.prob_one_lanes(Qubit(q));
            assert!(approx_eq(a, b, 1e-14), "q{q}: {a} vs {b}");
        }
    }
}
