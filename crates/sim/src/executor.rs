//! Circuit execution with pluggable feedback timing.
//!
//! The executor advances a single global clock. Every instruction (i) lets
//! all qubits idle-decay for its duration and (ii) applies the operation plus
//! its gate noise. Feedback instructions additionally consult a
//! [`FeedbackHandler`], which decides how long the feedback blocks the
//! program and which *wasted* pulses (pre-executed-then-undone gates of a
//! misprediction) were physically played. This is where ARTERY and the
//! baseline controllers differ; the quantum semantics are identical thanks to
//! the pre-execution equivalence theorem (paper appendix), so both plug into
//! the same executor.

use artery_circuit::{BranchOp, Circuit, Feedback, FeedbackSite, GateApp, Instruction, Qubit};
use rand::rngs::StdRng;

use crate::noise::NoiseModel;
use crate::state::StateVector;

/// Outcome of resolving one feedback instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct Resolution {
    /// Wall-clock time the feedback blocks the program, from readout start
    /// until the branch's effect is complete, in nanoseconds.
    pub latency_ns: f64,
    /// Pulses that were physically played but cancelled out (pre-executed
    /// branch plus its inverse on a misprediction). They contribute gate
    /// noise but no net unitary.
    pub wasted_pulses: Vec<GateApp>,
    /// The branch the controller predicted, if it predicted at all.
    pub predicted: Option<bool>,
}

impl Resolution {
    /// A plain sequential resolution with the given latency.
    #[must_use]
    pub fn sequential(latency_ns: f64) -> Self {
        Self {
            latency_ns,
            wasted_pulses: Vec::new(),
            predicted: None,
        }
    }

    /// Whether the prediction (if any) matched `reported`.
    #[must_use]
    pub fn correct(&self, reported: bool) -> Option<bool> {
        self.predicted.map(|p| p == reported)
    }
}

/// Decides feedback timing; implemented by the ARTERY engine and by every
/// baseline controller.
pub trait FeedbackHandler {
    /// Resolves the feedback at `fb` whose hardware-reported outcome is
    /// `reported`.
    fn resolve(&mut self, fb: &Feedback, reported: bool, rng: &mut StdRng) -> Resolution;
}

/// The conventional controller: wait for the full readout, then for the
/// classical processing pipeline, then execute the branch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequentialHandler {
    /// Readout pulse duration in nanoseconds.
    pub readout_ns: f64,
    /// Classical processing latency (ADC + classify + pulse prep + DAC).
    pub processing_ns: f64,
}

impl Default for SequentialHandler {
    /// QubiC-like defaults: 2 µs readout + 150 ns processing (§2.2).
    fn default() -> Self {
        Self {
            readout_ns: 2000.0,
            processing_ns: 150.0,
        }
    }
}

impl FeedbackHandler for SequentialHandler {
    fn resolve(&mut self, fb: &Feedback, reported: bool, _rng: &mut StdRng) -> Resolution {
        let branch_ns = fb.branch_duration_ns(reported);
        Resolution::sequential(self.readout_ns + self.processing_ns + branch_ns)
    }
}

/// Everything a single shot produced.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Final (collapsed, noisy) state, unless the executor was configured
    /// with [`Executor::without_final_state`] — copying the full state vector
    /// every shot dominates small-circuit throughput, so runners that only
    /// read latencies opt out. Use [`RunRecord::state`] when the state is
    /// known to be kept.
    pub final_state: Option<StateVector>,
    /// Classical register contents, indexed by `Clbit`.
    pub clbits: Vec<bool>,
    /// Reported outcome of every feedback site, in execution order.
    pub feedback_outcomes: Vec<(FeedbackSite, bool)>,
    /// Per-site feedback latency, in execution order.
    pub feedback_latencies_ns: Vec<f64>,
    /// Number of feedbacks whose prediction was wrong (sequential handlers
    /// contribute zero).
    pub mispredictions: usize,
    /// Number of feedbacks that were predicted at all.
    pub predictions: usize,
    /// Total wall-clock time of the shot in nanoseconds.
    pub total_ns: f64,
}

impl RunRecord {
    /// Sum of all feedback latencies, in microseconds — the quantity of
    /// Table 1.
    #[must_use]
    pub fn total_feedback_us(&self) -> f64 {
        self.feedback_latencies_ns.iter().sum::<f64>() / 1000.0
    }

    /// The final state of the shot.
    ///
    /// # Panics
    ///
    /// Panics when the executor was configured with
    /// [`Executor::without_final_state`].
    #[must_use]
    pub fn state(&self) -> &StateVector {
        self.final_state
            .as_ref()
            .expect("final state was discarded (Executor::without_final_state)")
    }
}

/// Runs circuits under a [`NoiseModel`].
#[derive(Debug, Clone)]
pub struct Executor {
    noise: NoiseModel,
    readout_ns: f64,
    /// Optional per-qubit T1 override, nanoseconds (index = qubit).
    t1_map_ns: Option<Vec<f64>>,
    /// Whether [`RunRecord::final_state`] gets a copy of the state.
    keep_final_state: bool,
}

impl Executor {
    /// Creates an executor with a 2 µs readout (the paper's default).
    #[must_use]
    pub fn new(noise: NoiseModel) -> Self {
        Self {
            noise,
            readout_ns: 2000.0,
            t1_map_ns: None,
            keep_final_state: true,
        }
    }

    /// Overrides the readout pulse duration (nanoseconds).
    #[must_use]
    pub fn with_readout_ns(mut self, readout_ns: f64) -> Self {
        self.readout_ns = readout_ns;
        self
    }

    /// Skips the per-shot copy of the final state into
    /// [`RunRecord::final_state`]. Latency-only runners use this; everything
    /// else about the shot (RNG stream, clbits, latencies) is unchanged.
    #[must_use]
    pub fn without_final_state(mut self) -> Self {
        self.keep_final_state = false;
        self
    }

    /// Installs a per-qubit T1 map (nanoseconds); qubits beyond the map's
    /// length keep the global model's T1. See
    /// [`DeviceCalibration::paper_t1_map_ns`](crate::DeviceCalibration::paper_t1_map_ns).
    #[must_use]
    pub fn with_t1_map(mut self, t1_map_ns: Vec<f64>) -> Self {
        self.t1_map_ns = Some(t1_map_ns);
        self
    }

    /// The active noise model.
    #[must_use]
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    fn idle_all(&self, state: &mut StateVector, dt_ns: f64, rng: &mut StdRng) {
        if dt_ns <= 0.0 {
            return;
        }
        for q in 0..state.num_qubits() {
            match self.t1_map_ns.as_ref().and_then(|m| m.get(q)) {
                Some(&t1) => {
                    let per_qubit = NoiseModel {
                        t1_ns: t1,
                        ..self.noise
                    };
                    per_qubit.idle(state, Qubit(q), dt_ns, rng);
                }
                None => self.noise.idle(state, Qubit(q), dt_ns, rng),
            }
        }
    }

    fn apply_gate_app(&self, state: &mut StateVector, g: &GateApp, rng: &mut StdRng) -> f64 {
        let dt = g.gate.duration_ns();
        self.idle_all(state, dt, rng);
        state.apply_gate(g.gate, &g.qubits);
        self.noise.gate_noise(state, &g.qubits, rng);
        dt
    }

    fn apply_branch_op(
        &self,
        state: &mut StateVector,
        op: &BranchOp,
        clbits: &mut [bool],
        rng: &mut StdRng,
    ) -> f64 {
        match op {
            BranchOp::Gate(g) => self.apply_gate_app(state, g, rng),
            BranchOp::Reset(q) => {
                state.reset(*q, rng);
                artery_circuit::XY_PULSE_NS
            }
            BranchOp::Measure(q, c) => {
                let true_outcome = state.measure(*q, rng);
                let reported = self.noise.readout_flip(true_outcome, rng);
                if let Some(slot) = clbits.get_mut(c.0) {
                    *slot = reported;
                }
                self.readout_ns
            }
        }
    }

    /// Executes one shot of `circuit` starting from `|0…0⟩`.
    ///
    /// Feedback timing and misprediction bookkeeping are delegated to
    /// `handler`.
    pub fn run<H: FeedbackHandler + ?Sized>(
        &mut self,
        circuit: &Circuit,
        handler: &mut H,
        rng: &mut StdRng,
    ) -> RunRecord {
        let mut state = StateVector::zero(circuit.num_qubits());
        self.run_from(&mut state, circuit, handler, rng)
    }

    /// Executes one shot with a *scripted* measurement record: the `script`
    /// provides the reported outcome of every `Measure` and `Feedback`
    /// instruction in program order. The state is collapsed toward the
    /// scripted outcome whenever it has non-negligible probability (an
    /// impossible outcome falls back to sampling).
    ///
    /// This is the reference arm of the conditional-fidelity protocol: run
    /// noisily, replay the same measurement record noiselessly, and compare
    /// the final states.
    ///
    /// # Panics
    ///
    /// Panics when the script is shorter than the number of measurement
    /// events.
    pub fn run_scripted<H: FeedbackHandler + ?Sized>(
        &mut self,
        circuit: &Circuit,
        handler: &mut H,
        script: &[bool],
        rng: &mut StdRng,
    ) -> RunRecord {
        let mut state = StateVector::zero(circuit.num_qubits());
        self.exec(&mut state, circuit, handler, rng, Some(script))
    }

    /// Executes one shot of `circuit` on an existing state (used when a
    /// workload prepares a custom initial state).
    ///
    /// # Panics
    ///
    /// Panics when `state` has fewer qubits than `circuit` requires.
    pub fn run_from<H: FeedbackHandler + ?Sized>(
        &mut self,
        state: &mut StateVector,
        circuit: &Circuit,
        handler: &mut H,
        rng: &mut StdRng,
    ) -> RunRecord {
        self.exec(state, circuit, handler, rng, None)
    }

    fn scripted_measure(state: &mut StateVector, q: Qubit, forced: bool, rng: &mut StdRng) -> bool {
        let p1 = state.prob_one(q);
        let p_forced = if forced { p1 } else { 1.0 - p1 };
        if p_forced > 1e-9 {
            state.collapse(q, forced);
            forced
        } else {
            state.measure(q, rng)
        }
    }

    fn exec<H: FeedbackHandler + ?Sized>(
        &mut self,
        state: &mut StateVector,
        circuit: &Circuit,
        handler: &mut H,
        rng: &mut StdRng,
        script: Option<&[bool]>,
    ) -> RunRecord {
        assert!(
            state.num_qubits() >= circuit.num_qubits(),
            "state too small for circuit"
        );
        let mut cursor = 0usize;
        let next_scripted = |cursor: &mut usize| -> Option<bool> {
            script.map(|s| {
                let v = *s
                    .get(*cursor)
                    .unwrap_or_else(|| panic!("script too short at event {cursor:?}"));
                *cursor += 1;
                v
            })
        };
        let mut clbits = vec![false; circuit.num_clbits()];
        let mut feedback_outcomes = Vec::new();
        let mut feedback_latencies = Vec::new();
        let mut mispredictions = 0usize;
        let mut predictions = 0usize;
        let mut total_ns = 0.0f64;

        for inst in circuit.instructions() {
            match inst {
                Instruction::Gate(g) => {
                    total_ns += self.apply_gate_app(state, g, rng);
                }
                Instruction::Measure(q, c) => {
                    self.idle_all(state, self.readout_ns, rng);
                    clbits[c.0] = match next_scripted(&mut cursor) {
                        Some(forced) => Self::scripted_measure(state, *q, forced, rng),
                        None => {
                            let true_outcome = state.measure(*q, rng);
                            self.noise.readout_flip(true_outcome, rng)
                        }
                    };
                    total_ns += self.readout_ns;
                }
                Instruction::Reset(q) => {
                    state.reset(*q, rng);
                }
                Instruction::Feedback(fb) => {
                    let forced = next_scripted(&mut cursor);
                    let (latency, reported) = self.run_feedback(
                        state,
                        fb,
                        handler,
                        &mut clbits,
                        rng,
                        &mut predictions,
                        &mut mispredictions,
                        forced,
                    );
                    clbits[fb.cbit.0] = reported;
                    feedback_outcomes.push((fb.site, reported));
                    feedback_latencies.push(latency);
                    total_ns += latency;
                }
            }
        }

        RunRecord {
            final_state: self.keep_final_state.then(|| state.clone()),
            clbits,
            feedback_outcomes,
            feedback_latencies_ns: feedback_latencies,
            mispredictions,
            predictions,
            total_ns,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_feedback<H: FeedbackHandler + ?Sized>(
        &self,
        state: &mut StateVector,
        fb: &Feedback,
        handler: &mut H,
        clbits: &mut [bool],
        rng: &mut StdRng,
        predictions: &mut usize,
        mispredictions: &mut usize,
        forced: Option<bool>,
    ) -> (f64, bool) {
        // Collapse at readout start; the resonator entangles immediately.
        let reported = match forced {
            Some(outcome) => Self::scripted_measure(state, fb.measured, outcome, rng),
            None => {
                let true_outcome = state.measure(fb.measured, rng);
                self.noise.readout_flip(true_outcome, rng)
            }
        };
        let res = handler.resolve(fb, reported, rng);
        if let Some(correct) = res.correct(reported) {
            *predictions += 1;
            if !correct {
                *mispredictions += 1;
            }
        }
        // All qubits decay while the program is blocked on the feedback.
        self.idle_all(state, res.latency_ns, rng);
        // The selected branch is applied for real (equivalence theorem: the
        // pre-execute/undo dance nets out to exactly this).
        for op in fb.branch(reported) {
            self.apply_branch_op(state, op, clbits, rng);
        }
        // Wasted pulses contribute gate noise only.
        for pulse in &res.wasted_pulses {
            self.noise.gate_noise(state, &pulse.qubits, rng);
        }
        (res.latency_ns, reported)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_circuit::{CircuitBuilder, Gate};
    use artery_num::rng::rng_for;

    fn reset_circuit() -> Circuit {
        let mut b = CircuitBuilder::new(1);
        b.gate(Gate::X, &[Qubit(0)]);
        b.feedback(Qubit(0)).on_one(Gate::X, &[Qubit(0)]).finish();
        b.build()
    }

    #[test]
    fn sequential_reset_flips_excited_qubit() {
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut handler = SequentialHandler::default();
        let mut rng = rng_for("exec/reset");
        let rec = exec.run(&reset_circuit(), &mut handler, &mut rng);
        assert!(rec.state().prob_one(Qubit(0)) < 1e-9);
        assert_eq!(
            rec.feedback_outcomes,
            vec![(artery_circuit::FeedbackSite(0), true)]
        );
        assert!((rec.total_feedback_us() - 2.18).abs() < 1e-9); // 2 µs + 150 ns + 30 ns X
    }

    #[test]
    fn sequential_handler_reports_no_predictions() {
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut handler = SequentialHandler::default();
        let mut rng = rng_for("exec/nopred");
        let rec = exec.run(&reset_circuit(), &mut handler, &mut rng);
        assert_eq!(rec.predictions, 0);
        assert_eq!(rec.mispredictions, 0);
    }

    #[test]
    fn branch_zero_runs_when_outcome_zero() {
        let mut b = CircuitBuilder::new(2);
        // Measured qubit stays |0⟩ → branch0 applies X on q1.
        b.feedback(Qubit(0)).on_zero(Gate::X, &[Qubit(1)]).finish();
        let c = b.build();
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("exec/branch0");
        let rec = exec.run(&c, &mut SequentialHandler::default(), &mut rng);
        assert!(rec.state().prob_one(Qubit(1)) > 1.0 - 1e-9);
        assert!(!rec.clbits[0]);
    }

    #[test]
    fn readout_error_selects_wrong_branch() {
        let noise = NoiseModel {
            readout_error: 1.0,
            ..NoiseModel::noiseless()
        };
        let mut exec = Executor::new(noise);
        let mut rng = rng_for("exec/flip");
        // Qubit is |0⟩ but reported 1 → branch1 fires.
        let mut b = CircuitBuilder::new(2);
        b.feedback(Qubit(0)).on_one(Gate::X, &[Qubit(1)]).finish();
        let rec = exec.run(&b.build(), &mut SequentialHandler::default(), &mut rng);
        assert!(rec.clbits[0]);
        assert!(rec.state().prob_one(Qubit(1)) > 1.0 - 1e-9);
    }

    #[test]
    fn custom_handler_latency_and_waste_accounted() {
        struct Fast;
        impl FeedbackHandler for Fast {
            fn resolve(&mut self, fb: &Feedback, reported: bool, _rng: &mut StdRng) -> Resolution {
                Resolution {
                    latency_ns: 1000.0,
                    wasted_pulses: vec![GateApp::new(Gate::X, &[fb.measured])],
                    predicted: Some(!reported), // always wrong
                }
            }
        }
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("exec/custom");
        let rec = exec.run(&reset_circuit(), &mut Fast, &mut rng);
        assert_eq!(rec.predictions, 1);
        assert_eq!(rec.mispredictions, 1);
        assert!((rec.feedback_latencies_ns[0] - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn total_time_includes_gates_and_feedback() {
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("exec/time");
        let rec = exec.run(
            &reset_circuit(),
            &mut SequentialHandler::default(),
            &mut rng,
        );
        // 30 ns X + (2000 + 150 + 30) feedback.
        assert!((rec.total_ns - 2210.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_run_preserves_norm() {
        let mut exec = Executor::new(NoiseModel::paper_device());
        let mut rng = rng_for("exec/norm");
        let mut b = CircuitBuilder::new(3);
        b.gate(Gate::H, &[Qubit(0)]);
        b.gate(Gate::CNOT, &[Qubit(0), Qubit(1)]);
        b.feedback(Qubit(0)).on_one(Gate::X, &[Qubit(2)]).finish();
        let rec = exec.run(&b.build(), &mut SequentialHandler::default(), &mut rng);
        assert!(artery_num::approx_eq(rec.state().norm_sqr(), 1.0, 1e-9));
    }

    #[test]
    fn run_from_allows_larger_state() {
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("exec/larger");
        let mut state = StateVector::zero(3);
        let mut b = CircuitBuilder::new(2);
        b.gate(Gate::X, &[Qubit(0)]);
        let rec = exec.run_from(
            &mut state,
            &b.build(),
            &mut SequentialHandler::default(),
            &mut rng,
        );
        assert!(rec.state().prob_one(Qubit(0)) > 1.0 - 1e-9);
        assert_eq!(rec.state().num_qubits(), 3);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn run_from_rejects_small_state() {
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("exec/small");
        let mut state = StateVector::zero(1);
        let b = {
            let mut b = CircuitBuilder::new(2);
            b.gate(Gate::X, &[Qubit(1)]);
            b.build()
        };
        let _ = exec.run_from(&mut state, &b, &mut SequentialHandler::default(), &mut rng);
    }

    #[test]
    fn branch_measure_writes_clbit() {
        let mut b = CircuitBuilder::new(2);
        b.gate(Gate::X, &[Qubit(1)]);
        b.gate(Gate::X, &[Qubit(0)]);
        let _pre = b.measure(Qubit(1)); // occupies clbit 0... allocated first
        b.feedback(Qubit(0))
            .op_on_one(artery_circuit::BranchOp::Measure(
                Qubit(1),
                artery_circuit::Clbit(0),
            ))
            .finish();
        let c = b.build();
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("exec/branchmeasure");
        let rec = exec.run(&c, &mut SequentialHandler::default(), &mut rng);
        assert!(rec.clbits[0]); // q1 is |1⟩ both times it is measured
    }

    #[test]
    fn scripted_run_follows_the_script() {
        // A superposed qubit would normally give random outcomes; the script
        // pins them.
        let mut b = CircuitBuilder::new(2);
        b.gate(Gate::H, &[Qubit(0)]);
        b.feedback(Qubit(0)).on_one(Gate::X, &[Qubit(1)]).finish();
        let c = b.build();
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("exec/scripted");
        for &forced in &[false, true, true, false] {
            let rec = exec.run_scripted(&c, &mut SequentialHandler::default(), &[forced], &mut rng);
            assert_eq!(rec.clbits[0], forced);
            let p1 = rec.state().prob_one(Qubit(1));
            assert!((p1 - f64::from(u8::from(forced))).abs() < 1e-9);
        }
    }

    #[test]
    fn scripted_replay_reproduces_noisy_record() {
        // The reference arm of the conditional-fidelity protocol: replaying
        // a noiseless shot's record noiselessly reproduces its final state.
        let mut b = CircuitBuilder::new(3);
        b.gate(Gate::H, &[Qubit(0)]);
        b.gate(Gate::CNOT, &[Qubit(0), Qubit(1)]);
        b.feedback(Qubit(0)).on_one(Gate::X, &[Qubit(2)]).finish();
        let c = b.build();
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("exec/replay");
        let noisy = exec.run(&c, &mut SequentialHandler::default(), &mut rng);
        let script: Vec<bool> = noisy.feedback_outcomes.iter().map(|&(_, o)| o).collect();
        let replay = exec.run_scripted(&c, &mut SequentialHandler::default(), &script, &mut rng);
        assert!(replay.state().fidelity(noisy.state()) > 1.0 - 1e-9);
    }

    #[test]
    fn impossible_scripted_outcome_falls_back_to_sampling() {
        let mut b = CircuitBuilder::new(1);
        // Qubit stays |0⟩; script demands 1, which has zero probability.
        b.feedback(Qubit(0)).finish();
        let c = b.build();
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("exec/impossible");
        let rec = exec.run_scripted(&c, &mut SequentialHandler::default(), &[true], &mut rng);
        assert!(!rec.clbits[0]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn per_qubit_t1_map_differentiates_decay() {
        // Qubit 0 has a very short T1, qubit 1 an effectively infinite one;
        // both start in |1⟩ and idle through a long feedback.
        let noise = NoiseModel {
            t1_ns: 1e12,
            ..NoiseModel::noiseless()
        };
        let mut exec = Executor::new(noise).with_t1_map(vec![500.0, 1e12]);
        let mut b = CircuitBuilder::new(3);
        b.gate(Gate::X, &[Qubit(0)]);
        b.gate(Gate::X, &[Qubit(1)]);
        b.feedback(Qubit(2)).finish(); // blocks everyone for ~2 µs
        let c = b.build();
        let mut rng = rng_for("exec/t1map");
        let mut survived = [0usize; 2];
        const N: usize = 300;
        for _ in 0..N {
            let rec = exec.run(&c, &mut SequentialHandler::default(), &mut rng);
            for q in 0..2 {
                survived[q] += usize::from(rec.state().prob_one(Qubit(q)) > 0.5);
            }
        }
        // T1 = 500 ns over ~2.15 µs → survival ≈ e^{-4.3} ≈ 1.4 %.
        assert!(
            survived[0] < N / 5,
            "short-T1 qubit survived {} times",
            survived[0]
        );
        assert_eq!(survived[1], N, "long-T1 qubit must not decay");
    }

    #[test]
    fn t1_map_sampling_stays_in_paper_range() {
        let mut rng = rng_for("exec/t1range");
        let map = crate::DeviceCalibration::paper_t1_map_ns(18, &mut rng);
        assert_eq!(map.len(), 18);
        for &t1 in &map {
            assert!((110_000.0..=140_000.0).contains(&t1));
        }
    }

    #[test]
    fn without_final_state_changes_nothing_but_the_state() {
        let mut keep = Executor::new(NoiseModel::paper_device());
        let mut drop = Executor::new(NoiseModel::paper_device()).without_final_state();
        let c = reset_circuit();
        let kept = keep.run(
            &c,
            &mut SequentialHandler::default(),
            &mut rng_for("exec/keep"),
        );
        let dropped = drop.run(
            &c,
            &mut SequentialHandler::default(),
            &mut rng_for("exec/keep"),
        );
        assert!(kept.final_state.is_some());
        assert!(dropped.final_state.is_none());
        assert_eq!(kept.clbits, dropped.clbits);
        assert_eq!(kept.feedback_outcomes, dropped.feedback_outcomes);
        assert_eq!(kept.feedback_latencies_ns, dropped.feedback_latencies_ns);
        assert_eq!(kept.total_ns, dropped.total_ns);
    }

    #[test]
    #[should_panic(expected = "final state was discarded")]
    fn discarded_state_accessor_panics() {
        let mut exec = Executor::new(NoiseModel::noiseless()).without_final_state();
        let mut rng = rng_for("exec/discarded");
        let rec = exec.run(
            &reset_circuit(),
            &mut SequentialHandler::default(),
            &mut rng,
        );
        let _ = rec.state();
    }

    #[test]
    #[should_panic(expected = "script too short")]
    fn short_script_panics() {
        let mut b = CircuitBuilder::new(1);
        b.feedback(Qubit(0)).finish();
        let c = b.build();
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("exec/shortscript");
        let _ = exec.run_scripted(&c, &mut SequentialHandler::default(), &[], &mut rng);
    }
}
