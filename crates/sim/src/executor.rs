//! Circuit execution with pluggable feedback timing.
//!
//! The executor advances a single global clock. Every instruction (i) lets
//! all qubits idle-decay for its duration and (ii) applies the operation plus
//! its gate noise. Feedback instructions additionally consult a
//! [`FeedbackHandler`], which decides how long the feedback blocks the
//! program and which *wasted* pulses (pre-executed-then-undone gates of a
//! misprediction) were physically played. This is where ARTERY and the
//! baseline controllers differ; the quantum semantics are identical thanks to
//! the pre-execution equivalence theorem (paper appendix), so both plug into
//! the same executor.

use artery_circuit::{
    BranchOp, Circuit, Feedback, FeedbackSite, FusedOp, FusedProgram, GateApp, Instruction, Qubit,
};
use rand::rngs::StdRng;

use crate::noise::NoiseModel;
use crate::state::StateVector;

/// Outcome of resolving one feedback instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct Resolution {
    /// Wall-clock time the feedback blocks the program, from readout start
    /// until the branch's effect is complete, in nanoseconds.
    pub latency_ns: f64,
    /// Pulses that were physically played but cancelled out (pre-executed
    /// branch plus its inverse on a misprediction). They contribute gate
    /// noise but no net unitary.
    pub wasted_pulses: Vec<GateApp>,
    /// The branch the controller predicted, if it predicted at all.
    pub predicted: Option<bool>,
}

impl Resolution {
    /// A plain sequential resolution with the given latency.
    #[must_use]
    pub fn sequential(latency_ns: f64) -> Self {
        Self {
            latency_ns,
            wasted_pulses: Vec::new(),
            predicted: None,
        }
    }

    /// Whether the prediction (if any) matched `reported`.
    #[must_use]
    pub fn correct(&self, reported: bool) -> Option<bool> {
        self.predicted.map(|p| p == reported)
    }
}

/// Decides feedback timing; implemented by the ARTERY engine and by every
/// baseline controller.
pub trait FeedbackHandler {
    /// Resolves the feedback at `fb` whose hardware-reported outcome is
    /// `reported`.
    fn resolve(&mut self, fb: &Feedback, reported: bool, rng: &mut StdRng) -> Resolution;
}

/// The conventional controller: wait for the full readout, then for the
/// classical processing pipeline, then execute the branch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequentialHandler {
    /// Readout pulse duration in nanoseconds.
    pub readout_ns: f64,
    /// Classical processing latency (ADC + classify + pulse prep + DAC).
    pub processing_ns: f64,
}

impl Default for SequentialHandler {
    /// QubiC-like defaults: 2 µs readout + 150 ns processing (§2.2).
    fn default() -> Self {
        Self {
            readout_ns: 2000.0,
            processing_ns: 150.0,
        }
    }
}

impl FeedbackHandler for SequentialHandler {
    fn resolve(&mut self, fb: &Feedback, reported: bool, _rng: &mut StdRng) -> Resolution {
        let branch_ns = fb.branch_duration_ns(reported);
        Resolution::sequential(self.readout_ns + self.processing_ns + branch_ns)
    }
}

/// Everything a single shot produced.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Final (collapsed, noisy) state, unless the executor was configured
    /// with [`Executor::without_final_state`] — copying the full state vector
    /// every shot dominates small-circuit throughput, so runners that only
    /// read latencies opt out. Use [`RunRecord::state`] when the state is
    /// known to be kept.
    pub final_state: Option<StateVector>,
    /// Classical register contents, indexed by `Clbit`.
    pub clbits: Vec<bool>,
    /// Reported outcome of every feedback site, in execution order.
    pub feedback_outcomes: Vec<(FeedbackSite, bool)>,
    /// Per-site feedback latency, in execution order.
    pub feedback_latencies_ns: Vec<f64>,
    /// Number of feedbacks whose prediction was wrong (sequential handlers
    /// contribute zero).
    pub mispredictions: usize,
    /// Number of feedbacks that were predicted at all.
    pub predictions: usize,
    /// Total wall-clock time of the shot in nanoseconds.
    pub total_ns: f64,
}

impl RunRecord {
    /// Sum of all feedback latencies, in microseconds — the quantity of
    /// Table 1.
    #[must_use]
    pub fn total_feedback_us(&self) -> f64 {
        self.feedback_latencies_ns.iter().sum::<f64>() / 1000.0
    }

    /// The final state of the shot.
    ///
    /// # Panics
    ///
    /// Panics when the executor was configured with
    /// [`Executor::without_final_state`].
    #[must_use]
    pub fn state(&self) -> &StateVector {
        self.final_state
            .as_ref()
            .expect("final state was discarded (Executor::without_final_state)")
    }
}

/// Reusable per-shot storage for [`Executor::run_fused_with`].
///
/// A steady-state shot loop allocates nothing: the state vector is reset in
/// place and the outcome/latency vectors keep their capacity across shots.
/// Create once per (program, shard) and reuse for every warm-up and measured
/// shot.
#[derive(Debug, Clone)]
pub struct ShotBuffers {
    state: StateVector,
    clbits: Vec<bool>,
    outcomes: Vec<(FeedbackSite, bool)>,
    latencies: Vec<f64>,
}

impl ShotBuffers {
    /// Allocates buffers sized for `program`.
    #[must_use]
    pub fn for_program(program: &FusedProgram) -> Self {
        Self::new(program.num_qubits(), program.num_clbits())
    }

    /// Allocates buffers for a register of `num_qubits` qubits and
    /// `num_clbits` classical bits.
    #[must_use]
    pub fn new(num_qubits: usize, num_clbits: usize) -> Self {
        Self {
            state: StateVector::zero(num_qubits),
            clbits: vec![false; num_clbits],
            outcomes: Vec::new(),
            latencies: Vec::new(),
        }
    }

    /// The final state of the most recent shot.
    #[must_use]
    pub fn state(&self) -> &StateVector {
        &self.state
    }

    /// Classical register contents of the most recent shot.
    #[must_use]
    pub fn clbits(&self) -> &[bool] {
        &self.clbits
    }

    /// Reported outcome of every feedback site of the most recent shot, in
    /// execution order.
    #[must_use]
    pub fn feedback_outcomes(&self) -> &[(FeedbackSite, bool)] {
        &self.outcomes
    }

    /// Per-site feedback latency of the most recent shot, in execution order.
    #[must_use]
    pub fn feedback_latencies_ns(&self) -> &[f64] {
        &self.latencies
    }

    /// Sum of all feedback latencies in microseconds — identical summation
    /// order to [`RunRecord::total_feedback_us`].
    #[must_use]
    pub fn total_feedback_us(&self) -> f64 {
        self.latencies.iter().sum::<f64>() / 1000.0
    }

    /// Resets every buffer in place for the next shot, without shrinking
    /// capacity.
    fn reset(&mut self) {
        self.state.reset_zero();
        self.clbits.fill(false);
        self.outcomes.clear();
        self.latencies.clear();
    }
}

/// The scalar bookkeeping of one fused shot; everything vector-shaped lives
/// in the caller's [`ShotBuffers`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusedShotSummary {
    /// Number of feedbacks whose prediction was wrong.
    pub mispredictions: usize,
    /// Number of feedbacks that were predicted at all.
    pub predictions: usize,
    /// Total wall-clock time of the shot in nanoseconds.
    pub total_ns: f64,
}

/// Runs circuits under a [`NoiseModel`].
#[derive(Debug, Clone)]
pub struct Executor {
    noise: NoiseModel,
    readout_ns: f64,
    /// Optional per-qubit T1 override, nanoseconds (index = qubit).
    t1_map_ns: Option<Vec<f64>>,
    /// Whether [`RunRecord::final_state`] gets a copy of the state.
    keep_final_state: bool,
}

impl Executor {
    /// Creates an executor with a 2 µs readout (the paper's default).
    #[must_use]
    pub fn new(noise: NoiseModel) -> Self {
        Self {
            noise,
            readout_ns: 2000.0,
            t1_map_ns: None,
            keep_final_state: true,
        }
    }

    /// Overrides the readout pulse duration (nanoseconds).
    #[must_use]
    pub fn with_readout_ns(mut self, readout_ns: f64) -> Self {
        self.readout_ns = readout_ns;
        self
    }

    /// Skips the per-shot copy of the final state into
    /// [`RunRecord::final_state`]. Latency-only runners use this; everything
    /// else about the shot (RNG stream, clbits, latencies) is unchanged.
    #[must_use]
    pub fn without_final_state(mut self) -> Self {
        self.keep_final_state = false;
        self
    }

    /// Installs a per-qubit T1 map (nanoseconds); qubits beyond the map's
    /// length keep the global model's T1. See
    /// [`DeviceCalibration::paper_t1_map_ns`](crate::DeviceCalibration::paper_t1_map_ns).
    #[must_use]
    pub fn with_t1_map(mut self, t1_map_ns: Vec<f64>) -> Self {
        self.t1_map_ns = Some(t1_map_ns);
        self
    }

    /// The active noise model.
    #[must_use]
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    fn idle_all(&self, state: &mut StateVector, dt_ns: f64, rng: &mut StdRng) {
        if dt_ns <= 0.0 {
            return;
        }
        for q in 0..state.num_qubits() {
            match self.t1_map_ns.as_ref().and_then(|m| m.get(q)) {
                Some(&t1) => {
                    let per_qubit = NoiseModel {
                        t1_ns: t1,
                        ..self.noise
                    };
                    per_qubit.idle(state, Qubit(q), dt_ns, rng);
                }
                None => self.noise.idle(state, Qubit(q), dt_ns, rng),
            }
        }
    }

    fn apply_gate_app(&self, state: &mut StateVector, g: &GateApp, rng: &mut StdRng) -> f64 {
        let dt = g.gate.duration_ns();
        self.idle_all(state, dt, rng);
        state.apply_gate(g.gate, &g.qubits);
        self.noise.gate_noise(state, &g.qubits, rng);
        dt
    }

    fn apply_branch_op(
        &self,
        state: &mut StateVector,
        op: &BranchOp,
        clbits: &mut [bool],
        rng: &mut StdRng,
    ) -> f64 {
        match op {
            BranchOp::Gate(g) => self.apply_gate_app(state, g, rng),
            BranchOp::Reset(q) => {
                state.reset(*q, rng);
                artery_circuit::XY_PULSE_NS
            }
            BranchOp::Measure(q, c) => {
                let true_outcome = state.measure(*q, rng);
                let reported = self.noise.readout_flip(true_outcome, rng);
                if let Some(slot) = clbits.get_mut(c.0) {
                    *slot = reported;
                }
                self.readout_ns
            }
        }
    }

    /// Executes one shot of `circuit` starting from `|0…0⟩`.
    ///
    /// Feedback timing and misprediction bookkeeping are delegated to
    /// `handler`.
    pub fn run<H: FeedbackHandler + ?Sized>(
        &mut self,
        circuit: &Circuit,
        handler: &mut H,
        rng: &mut StdRng,
    ) -> RunRecord {
        let mut state = StateVector::zero(circuit.num_qubits());
        self.run_from(&mut state, circuit, handler, rng)
    }

    /// Executes one shot with a *scripted* measurement record: the `script`
    /// provides the reported outcome of every `Measure` and `Feedback`
    /// instruction in program order. The state is collapsed toward the
    /// scripted outcome whenever it has non-negligible probability (an
    /// impossible outcome falls back to sampling).
    ///
    /// This is the reference arm of the conditional-fidelity protocol: run
    /// noisily, replay the same measurement record noiselessly, and compare
    /// the final states.
    ///
    /// # Panics
    ///
    /// Panics when the script is shorter than the number of measurement
    /// events.
    pub fn run_scripted<H: FeedbackHandler + ?Sized>(
        &mut self,
        circuit: &Circuit,
        handler: &mut H,
        script: &[bool],
        rng: &mut StdRng,
    ) -> RunRecord {
        let mut state = StateVector::zero(circuit.num_qubits());
        self.exec(&mut state, circuit, handler, rng, Some(script))
    }

    /// Executes one shot of `circuit` on an existing state (used when a
    /// workload prepares a custom initial state).
    ///
    /// # Panics
    ///
    /// Panics when `state` has fewer qubits than `circuit` requires.
    pub fn run_from<H: FeedbackHandler + ?Sized>(
        &mut self,
        state: &mut StateVector,
        circuit: &Circuit,
        handler: &mut H,
        rng: &mut StdRng,
    ) -> RunRecord {
        self.exec(state, circuit, handler, rng, None)
    }

    /// Whether [`Self::run_fused`] may use the batched kernels.
    ///
    /// The fast path elides the per-gate `idle_all`/`gate_noise` calls, which
    /// is bit-identical to per-gate execution only when those channels are
    /// guaranteed no-ops that consume no randomness
    /// ([`NoiseModel::trivial_for_gates`]) and no per-qubit T1 map is
    /// installed (the map makes `idle` draw RNG even when the global model
    /// would not). Readout error is fine either way: `readout_flip` runs
    /// identically on both paths.
    #[must_use]
    pub fn fused_fast_path(&self) -> bool {
        self.t1_map_ns.is_none() && self.noise.trivial_for_gates()
    }

    /// Executes one shot of a pre-analyzed [`FusedProgram`] starting from
    /// `|0…0⟩`.
    ///
    /// The **classical record** — clbits, feedback outcomes, latencies,
    /// prediction counters, `total_ns` — is bit-identical to [`Self::run`]
    /// on the source circuit with the same RNG state: the RNG stream is
    /// drawn identically (fused groups consume none on the fast path, just
    /// like the trivially-noisy per-gate path), and the clock advances per
    /// original gate via each group's retained `gates`. Final-state
    /// amplitudes agree to ~1 ulp per fused gate (composed matrices and
    /// phase tables round once where sequential kernels round per gate);
    /// under a noise model where the gate-time channels are non-trivial the
    /// executor falls back to per-gate execution of the recorded gates and
    /// is then bit-identical throughout.
    pub fn run_fused<H: FeedbackHandler + ?Sized>(
        &mut self,
        program: &FusedProgram,
        handler: &mut H,
        rng: &mut StdRng,
    ) -> RunRecord {
        let mut buffers = ShotBuffers::for_program(program);
        let summary = self.exec_fused(program, handler, rng, &mut buffers);
        RunRecord {
            final_state: self.keep_final_state.then(|| buffers.state.clone()),
            clbits: buffers.clbits,
            feedback_outcomes: buffers.outcomes,
            feedback_latencies_ns: buffers.latencies,
            mispredictions: summary.mispredictions,
            predictions: summary.predictions,
            total_ns: summary.total_ns,
        }
    }

    /// Executes one shot of a pre-analyzed [`FusedProgram`] reusing
    /// `buffers` — the zero-allocation steady state of a shot loop.
    ///
    /// The buffers are reset in place at the start of the shot; afterwards
    /// they hold the shot's final state, clbits, feedback outcomes and
    /// latencies, and the returned [`FusedShotSummary`] carries the scalar
    /// counters. Semantics are exactly those of [`Self::run_fused`].
    ///
    /// # Panics
    ///
    /// Panics when `buffers` was sized for a different register shape.
    pub fn run_fused_with<H: FeedbackHandler + ?Sized>(
        &mut self,
        program: &FusedProgram,
        handler: &mut H,
        rng: &mut StdRng,
        buffers: &mut ShotBuffers,
    ) -> FusedShotSummary {
        self.exec_fused(program, handler, rng, buffers)
    }

    fn exec_fused<H: FeedbackHandler + ?Sized>(
        &mut self,
        program: &FusedProgram,
        handler: &mut H,
        rng: &mut StdRng,
        buffers: &mut ShotBuffers,
    ) -> FusedShotSummary {
        assert!(
            buffers.state.num_qubits() >= program.num_qubits(),
            "state too small for circuit"
        );
        assert_eq!(
            buffers.clbits.len(),
            program.num_clbits(),
            "clbit buffer sized for a different program"
        );
        buffers.reset();
        let fast = self.fused_fast_path();
        let mut mispredictions = 0usize;
        let mut predictions = 0usize;
        let mut total_ns = 0.0f64;

        for op in program.ops() {
            match op {
                FusedOp::Run1 {
                    qubit,
                    matrix,
                    gates,
                } => {
                    if fast {
                        buffers.state.apply_fused_one(matrix, *qubit);
                        for g in gates {
                            total_ns += g.gate.duration_ns();
                        }
                    } else {
                        for g in gates {
                            total_ns += self.apply_gate_app(&mut buffers.state, g, rng);
                        }
                    }
                }
                FusedOp::DiagSweep {
                    qubits,
                    table,
                    gates,
                } => {
                    if fast {
                        buffers.state.apply_diag_sweep(qubits, table);
                        for g in gates {
                            total_ns += g.gate.duration_ns();
                        }
                    } else {
                        for g in gates {
                            total_ns += self.apply_gate_app(&mut buffers.state, g, rng);
                        }
                    }
                }
                FusedOp::Inst(inst) => match inst {
                    Instruction::Gate(g) => {
                        if fast {
                            // idle_all/gate_noise are guaranteed no-ops here,
                            // so only the kernel and the clock remain.
                            buffers.state.apply_gate(g.gate, &g.qubits);
                            total_ns += g.gate.duration_ns();
                        } else {
                            total_ns += self.apply_gate_app(&mut buffers.state, g, rng);
                        }
                    }
                    Instruction::Measure(q, c) => {
                        if !fast {
                            self.idle_all(&mut buffers.state, self.readout_ns, rng);
                        }
                        let true_outcome = buffers.state.measure(*q, rng);
                        buffers.clbits[c.0] = self.noise.readout_flip(true_outcome, rng);
                        total_ns += self.readout_ns;
                    }
                    Instruction::Reset(q) => {
                        buffers.state.reset(*q, rng);
                    }
                    Instruction::Feedback(fb) => {
                        let (latency, reported) = self.run_feedback(
                            &mut buffers.state,
                            fb,
                            handler,
                            &mut buffers.clbits,
                            rng,
                            &mut predictions,
                            &mut mispredictions,
                            None,
                        );
                        buffers.clbits[fb.cbit.0] = reported;
                        buffers.outcomes.push((fb.site, reported));
                        buffers.latencies.push(latency);
                        total_ns += latency;
                    }
                },
            }
        }

        FusedShotSummary {
            mispredictions,
            predictions,
            total_ns,
        }
    }

    fn scripted_measure(state: &mut StateVector, q: Qubit, forced: bool, rng: &mut StdRng) -> bool {
        let p1 = state.prob_one(q);
        let p_forced = if forced { p1 } else { 1.0 - p1 };
        if p_forced > 1e-9 {
            state.collapse(q, forced);
            forced
        } else {
            state.measure(q, rng)
        }
    }

    fn exec<H: FeedbackHandler + ?Sized>(
        &mut self,
        state: &mut StateVector,
        circuit: &Circuit,
        handler: &mut H,
        rng: &mut StdRng,
        script: Option<&[bool]>,
    ) -> RunRecord {
        assert!(
            state.num_qubits() >= circuit.num_qubits(),
            "state too small for circuit"
        );
        let mut cursor = 0usize;
        let next_scripted = |cursor: &mut usize| -> Option<bool> {
            script.map(|s| {
                let v = *s
                    .get(*cursor)
                    .unwrap_or_else(|| panic!("script too short at event {cursor:?}"));
                *cursor += 1;
                v
            })
        };
        let mut clbits = vec![false; circuit.num_clbits()];
        let mut feedback_outcomes = Vec::new();
        let mut feedback_latencies = Vec::new();
        let mut mispredictions = 0usize;
        let mut predictions = 0usize;
        let mut total_ns = 0.0f64;

        for inst in circuit.instructions() {
            match inst {
                Instruction::Gate(g) => {
                    total_ns += self.apply_gate_app(state, g, rng);
                }
                Instruction::Measure(q, c) => {
                    self.idle_all(state, self.readout_ns, rng);
                    clbits[c.0] = match next_scripted(&mut cursor) {
                        Some(forced) => Self::scripted_measure(state, *q, forced, rng),
                        None => {
                            let true_outcome = state.measure(*q, rng);
                            self.noise.readout_flip(true_outcome, rng)
                        }
                    };
                    total_ns += self.readout_ns;
                }
                Instruction::Reset(q) => {
                    state.reset(*q, rng);
                }
                Instruction::Feedback(fb) => {
                    let forced = next_scripted(&mut cursor);
                    let (latency, reported) = self.run_feedback(
                        state,
                        fb,
                        handler,
                        &mut clbits,
                        rng,
                        &mut predictions,
                        &mut mispredictions,
                        forced,
                    );
                    clbits[fb.cbit.0] = reported;
                    feedback_outcomes.push((fb.site, reported));
                    feedback_latencies.push(latency);
                    total_ns += latency;
                }
            }
        }

        RunRecord {
            final_state: self.keep_final_state.then(|| state.clone()),
            clbits,
            feedback_outcomes,
            feedback_latencies_ns: feedback_latencies,
            mispredictions,
            predictions,
            total_ns,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_feedback<H: FeedbackHandler + ?Sized>(
        &self,
        state: &mut StateVector,
        fb: &Feedback,
        handler: &mut H,
        clbits: &mut [bool],
        rng: &mut StdRng,
        predictions: &mut usize,
        mispredictions: &mut usize,
        forced: Option<bool>,
    ) -> (f64, bool) {
        // Collapse at readout start; the resonator entangles immediately.
        let reported = match forced {
            Some(outcome) => Self::scripted_measure(state, fb.measured, outcome, rng),
            None => {
                let true_outcome = state.measure(fb.measured, rng);
                self.noise.readout_flip(true_outcome, rng)
            }
        };
        let res = handler.resolve(fb, reported, rng);
        if let Some(correct) = res.correct(reported) {
            *predictions += 1;
            if !correct {
                *mispredictions += 1;
            }
        }
        // All qubits decay while the program is blocked on the feedback.
        self.idle_all(state, res.latency_ns, rng);
        // The selected branch is applied for real (equivalence theorem: the
        // pre-execute/undo dance nets out to exactly this).
        for op in fb.branch(reported) {
            self.apply_branch_op(state, op, clbits, rng);
        }
        // Wasted pulses contribute gate noise only.
        for pulse in &res.wasted_pulses {
            self.noise.gate_noise(state, &pulse.qubits, rng);
        }
        (res.latency_ns, reported)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_circuit::{CircuitBuilder, Gate};
    use artery_num::rng::rng_for;

    fn reset_circuit() -> Circuit {
        let mut b = CircuitBuilder::new(1);
        b.gate(Gate::X, &[Qubit(0)]);
        b.feedback(Qubit(0)).on_one(Gate::X, &[Qubit(0)]).finish();
        b.build()
    }

    #[test]
    fn sequential_reset_flips_excited_qubit() {
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut handler = SequentialHandler::default();
        let mut rng = rng_for("exec/reset");
        let rec = exec.run(&reset_circuit(), &mut handler, &mut rng);
        assert!(rec.state().prob_one(Qubit(0)) < 1e-9);
        assert_eq!(
            rec.feedback_outcomes,
            vec![(artery_circuit::FeedbackSite(0), true)]
        );
        assert!((rec.total_feedback_us() - 2.18).abs() < 1e-9); // 2 µs + 150 ns + 30 ns X
    }

    #[test]
    fn sequential_handler_reports_no_predictions() {
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut handler = SequentialHandler::default();
        let mut rng = rng_for("exec/nopred");
        let rec = exec.run(&reset_circuit(), &mut handler, &mut rng);
        assert_eq!(rec.predictions, 0);
        assert_eq!(rec.mispredictions, 0);
    }

    #[test]
    fn branch_zero_runs_when_outcome_zero() {
        let mut b = CircuitBuilder::new(2);
        // Measured qubit stays |0⟩ → branch0 applies X on q1.
        b.feedback(Qubit(0)).on_zero(Gate::X, &[Qubit(1)]).finish();
        let c = b.build();
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("exec/branch0");
        let rec = exec.run(&c, &mut SequentialHandler::default(), &mut rng);
        assert!(rec.state().prob_one(Qubit(1)) > 1.0 - 1e-9);
        assert!(!rec.clbits[0]);
    }

    #[test]
    fn readout_error_selects_wrong_branch() {
        let noise = NoiseModel {
            readout_error: 1.0,
            ..NoiseModel::noiseless()
        };
        let mut exec = Executor::new(noise);
        let mut rng = rng_for("exec/flip");
        // Qubit is |0⟩ but reported 1 → branch1 fires.
        let mut b = CircuitBuilder::new(2);
        b.feedback(Qubit(0)).on_one(Gate::X, &[Qubit(1)]).finish();
        let rec = exec.run(&b.build(), &mut SequentialHandler::default(), &mut rng);
        assert!(rec.clbits[0]);
        assert!(rec.state().prob_one(Qubit(1)) > 1.0 - 1e-9);
    }

    #[test]
    fn custom_handler_latency_and_waste_accounted() {
        struct Fast;
        impl FeedbackHandler for Fast {
            fn resolve(&mut self, fb: &Feedback, reported: bool, _rng: &mut StdRng) -> Resolution {
                Resolution {
                    latency_ns: 1000.0,
                    wasted_pulses: vec![GateApp::new(Gate::X, &[fb.measured])],
                    predicted: Some(!reported), // always wrong
                }
            }
        }
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("exec/custom");
        let rec = exec.run(&reset_circuit(), &mut Fast, &mut rng);
        assert_eq!(rec.predictions, 1);
        assert_eq!(rec.mispredictions, 1);
        assert!((rec.feedback_latencies_ns[0] - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn total_time_includes_gates_and_feedback() {
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("exec/time");
        let rec = exec.run(
            &reset_circuit(),
            &mut SequentialHandler::default(),
            &mut rng,
        );
        // 30 ns X + (2000 + 150 + 30) feedback.
        assert!((rec.total_ns - 2210.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_run_preserves_norm() {
        let mut exec = Executor::new(NoiseModel::paper_device());
        let mut rng = rng_for("exec/norm");
        let mut b = CircuitBuilder::new(3);
        b.gate(Gate::H, &[Qubit(0)]);
        b.gate(Gate::CNOT, &[Qubit(0), Qubit(1)]);
        b.feedback(Qubit(0)).on_one(Gate::X, &[Qubit(2)]).finish();
        let rec = exec.run(&b.build(), &mut SequentialHandler::default(), &mut rng);
        assert!(artery_num::approx_eq(rec.state().norm_sqr(), 1.0, 1e-9));
    }

    #[test]
    fn run_from_allows_larger_state() {
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("exec/larger");
        let mut state = StateVector::zero(3);
        let mut b = CircuitBuilder::new(2);
        b.gate(Gate::X, &[Qubit(0)]);
        let rec = exec.run_from(
            &mut state,
            &b.build(),
            &mut SequentialHandler::default(),
            &mut rng,
        );
        assert!(rec.state().prob_one(Qubit(0)) > 1.0 - 1e-9);
        assert_eq!(rec.state().num_qubits(), 3);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn run_from_rejects_small_state() {
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("exec/small");
        let mut state = StateVector::zero(1);
        let b = {
            let mut b = CircuitBuilder::new(2);
            b.gate(Gate::X, &[Qubit(1)]);
            b.build()
        };
        let _ = exec.run_from(&mut state, &b, &mut SequentialHandler::default(), &mut rng);
    }

    #[test]
    fn branch_measure_writes_clbit() {
        let mut b = CircuitBuilder::new(2);
        b.gate(Gate::X, &[Qubit(1)]);
        b.gate(Gate::X, &[Qubit(0)]);
        let _pre = b.measure(Qubit(1)); // occupies clbit 0... allocated first
        b.feedback(Qubit(0))
            .op_on_one(artery_circuit::BranchOp::Measure(
                Qubit(1),
                artery_circuit::Clbit(0),
            ))
            .finish();
        let c = b.build();
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("exec/branchmeasure");
        let rec = exec.run(&c, &mut SequentialHandler::default(), &mut rng);
        assert!(rec.clbits[0]); // q1 is |1⟩ both times it is measured
    }

    #[test]
    fn scripted_run_follows_the_script() {
        // A superposed qubit would normally give random outcomes; the script
        // pins them.
        let mut b = CircuitBuilder::new(2);
        b.gate(Gate::H, &[Qubit(0)]);
        b.feedback(Qubit(0)).on_one(Gate::X, &[Qubit(1)]).finish();
        let c = b.build();
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("exec/scripted");
        for &forced in &[false, true, true, false] {
            let rec = exec.run_scripted(&c, &mut SequentialHandler::default(), &[forced], &mut rng);
            assert_eq!(rec.clbits[0], forced);
            let p1 = rec.state().prob_one(Qubit(1));
            assert!((p1 - f64::from(u8::from(forced))).abs() < 1e-9);
        }
    }

    #[test]
    fn scripted_replay_reproduces_noisy_record() {
        // The reference arm of the conditional-fidelity protocol: replaying
        // a noiseless shot's record noiselessly reproduces its final state.
        let mut b = CircuitBuilder::new(3);
        b.gate(Gate::H, &[Qubit(0)]);
        b.gate(Gate::CNOT, &[Qubit(0), Qubit(1)]);
        b.feedback(Qubit(0)).on_one(Gate::X, &[Qubit(2)]).finish();
        let c = b.build();
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("exec/replay");
        let noisy = exec.run(&c, &mut SequentialHandler::default(), &mut rng);
        let script: Vec<bool> = noisy.feedback_outcomes.iter().map(|&(_, o)| o).collect();
        let replay = exec.run_scripted(&c, &mut SequentialHandler::default(), &script, &mut rng);
        assert!(replay.state().fidelity(noisy.state()) > 1.0 - 1e-9);
    }

    #[test]
    fn impossible_scripted_outcome_falls_back_to_sampling() {
        let mut b = CircuitBuilder::new(1);
        // Qubit stays |0⟩; script demands 1, which has zero probability.
        b.feedback(Qubit(0)).finish();
        let c = b.build();
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("exec/impossible");
        let rec = exec.run_scripted(&c, &mut SequentialHandler::default(), &[true], &mut rng);
        assert!(!rec.clbits[0]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn per_qubit_t1_map_differentiates_decay() {
        // Qubit 0 has a very short T1, qubit 1 an effectively infinite one;
        // both start in |1⟩ and idle through a long feedback.
        let noise = NoiseModel {
            t1_ns: 1e12,
            ..NoiseModel::noiseless()
        };
        let mut exec = Executor::new(noise).with_t1_map(vec![500.0, 1e12]);
        let mut b = CircuitBuilder::new(3);
        b.gate(Gate::X, &[Qubit(0)]);
        b.gate(Gate::X, &[Qubit(1)]);
        b.feedback(Qubit(2)).finish(); // blocks everyone for ~2 µs
        let c = b.build();
        let mut rng = rng_for("exec/t1map");
        let mut survived = [0usize; 2];
        const N: usize = 300;
        for _ in 0..N {
            let rec = exec.run(&c, &mut SequentialHandler::default(), &mut rng);
            for q in 0..2 {
                survived[q] += usize::from(rec.state().prob_one(Qubit(q)) > 0.5);
            }
        }
        // T1 = 500 ns over ~2.15 µs → survival ≈ e^{-4.3} ≈ 1.4 %.
        assert!(
            survived[0] < N / 5,
            "short-T1 qubit survived {} times",
            survived[0]
        );
        assert_eq!(survived[1], N, "long-T1 qubit must not decay");
    }

    #[test]
    fn t1_map_sampling_stays_in_paper_range() {
        let mut rng = rng_for("exec/t1range");
        let map = crate::DeviceCalibration::paper_t1_map_ns(18, &mut rng);
        assert_eq!(map.len(), 18);
        for &t1 in &map {
            assert!((110_000.0..=140_000.0).contains(&t1));
        }
    }

    #[test]
    fn without_final_state_changes_nothing_but_the_state() {
        let mut keep = Executor::new(NoiseModel::paper_device());
        let mut drop = Executor::new(NoiseModel::paper_device()).without_final_state();
        let c = reset_circuit();
        let kept = keep.run(
            &c,
            &mut SequentialHandler::default(),
            &mut rng_for("exec/keep"),
        );
        let dropped = drop.run(
            &c,
            &mut SequentialHandler::default(),
            &mut rng_for("exec/keep"),
        );
        assert!(kept.final_state.is_some());
        assert!(dropped.final_state.is_none());
        assert_eq!(kept.clbits, dropped.clbits);
        assert_eq!(kept.feedback_outcomes, dropped.feedback_outcomes);
        assert_eq!(kept.feedback_latencies_ns, dropped.feedback_latencies_ns);
        assert_eq!(kept.total_ns, dropped.total_ns);
    }

    #[test]
    #[should_panic(expected = "final state was discarded")]
    fn discarded_state_accessor_panics() {
        let mut exec = Executor::new(NoiseModel::noiseless()).without_final_state();
        let mut rng = rng_for("exec/discarded");
        let rec = exec.run(
            &reset_circuit(),
            &mut SequentialHandler::default(),
            &mut rng,
        );
        let _ = rec.state();
    }

    /// A fusible workload: one-qubit runs, a diagonal chain, a CNOT and a
    /// feedback with branches on both outcomes.
    fn fusible_circuit() -> Circuit {
        let mut b = CircuitBuilder::new(3);
        b.gate(Gate::H, &[Qubit(0)]);
        b.gate(Gate::RX(0.7), &[Qubit(0)]);
        b.gate(Gate::T, &[Qubit(0)]);
        b.gate(Gate::S, &[Qubit(1)]);
        b.gate(Gate::CZ, &[Qubit(1), Qubit(2)]);
        b.gate(Gate::RZ(0.3), &[Qubit(2)]);
        b.gate(Gate::CNOT, &[Qubit(0), Qubit(1)]);
        b.gate(Gate::H, &[Qubit(2)]);
        b.gate(Gate::RY(1.1), &[Qubit(2)]);
        b.feedback(Qubit(2))
            .on_one(Gate::X, &[Qubit(2)])
            .on_zero(Gate::RZ(0.4), &[Qubit(1)])
            .finish();
        b.build()
    }

    /// The half of the fused-execution contract that holds under composed
    /// matrices: every classical observable is bit-identical.
    fn assert_classical_records_bit_identical(a: &RunRecord, b: &RunRecord, context: &str) {
        assert_eq!(a.clbits, b.clbits, "{context}: clbits");
        assert_eq!(
            a.feedback_outcomes, b.feedback_outcomes,
            "{context}: outcomes"
        );
        assert_eq!(
            a.feedback_latencies_ns, b.feedback_latencies_ns,
            "{context}: latencies"
        );
        assert_eq!(
            a.mispredictions, b.mispredictions,
            "{context}: mispredictions"
        );
        assert_eq!(a.predictions, b.predictions, "{context}: predictions");
        assert_eq!(
            a.total_ns.to_bits(),
            b.total_ns.to_bits(),
            "{context}: total_ns {} vs {}",
            a.total_ns,
            b.total_ns
        );
    }

    /// Classical record bit-identical, state amplitudes within 1e-12 — the
    /// fused-fast-path contract.
    fn assert_records_equivalent(a: &RunRecord, b: &RunRecord, context: &str) {
        assert_classical_records_bit_identical(a, b, context);
        let (sa, sb) = (a.state(), b.state());
        for i in 0..1usize << sa.num_qubits() {
            let d = sa.amplitude(i) - sb.amplitude(i);
            assert!(
                d.norm() < 1e-12,
                "{context}: amplitude {i} differs by {}",
                d.norm()
            );
        }
    }

    /// Everything bit-identical, state included — holds whenever fused
    /// execution takes the per-gate fallback (noisy models).
    fn assert_records_bit_identical(a: &RunRecord, b: &RunRecord, context: &str) {
        assert_classical_records_bit_identical(a, b, context);
        let (sa, sb) = (a.state(), b.state());
        for i in 0..1usize << sa.num_qubits() {
            let (x, y) = (sa.amplitude(i), sb.amplitude(i));
            assert!(
                x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                "{context}: amplitude {i} differs bitwise: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn fused_run_matches_unfused_run() {
        let circuit = fusible_circuit();
        let program = FusedProgram::fuse(&circuit);
        assert!(program.fused_gate_count() > 0, "circuit must actually fuse");
        for shot in 0..16 {
            let mut plain = Executor::new(NoiseModel::noiseless());
            let mut fused = Executor::new(NoiseModel::noiseless());
            let label = format!("exec/fused{shot}");
            let a = plain.run(
                &circuit,
                &mut SequentialHandler::default(),
                &mut rng_for(&label),
            );
            let b = fused.run_fused(
                &program,
                &mut SequentialHandler::default(),
                &mut rng_for(&label),
            );
            assert_records_equivalent(&a, &b, &label);
        }
    }

    #[test]
    fn fused_run_with_readout_error_stays_equivalent() {
        // Readout error consumes RNG on both paths; the fast path must still
        // be taken and still agree.
        let noise = NoiseModel {
            readout_error: 0.4,
            ..NoiseModel::noiseless()
        };
        assert!(Executor::new(noise).fused_fast_path());
        let circuit = fusible_circuit();
        let program = FusedProgram::fuse(&circuit);
        for shot in 0..16 {
            let label = format!("exec/fusedro{shot}");
            let a = Executor::new(noise).run(
                &circuit,
                &mut SequentialHandler::default(),
                &mut rng_for(&label),
            );
            let b = Executor::new(noise).run_fused(
                &program,
                &mut SequentialHandler::default(),
                &mut rng_for(&label),
            );
            assert_records_equivalent(&a, &b, &label);
        }
    }

    #[test]
    fn fused_run_falls_back_under_noise_and_still_matches() {
        let noise = NoiseModel::paper_device();
        assert!(!Executor::new(noise).fused_fast_path());
        let circuit = fusible_circuit();
        let program = FusedProgram::fuse(&circuit);
        for shot in 0..8 {
            let label = format!("exec/fusednoisy{shot}");
            let a = Executor::new(noise).run(
                &circuit,
                &mut SequentialHandler::default(),
                &mut rng_for(&label),
            );
            let b = Executor::new(noise).run_fused(
                &program,
                &mut SequentialHandler::default(),
                &mut rng_for(&label),
            );
            assert_records_bit_identical(&a, &b, &label);
        }
    }

    #[test]
    fn t1_map_disables_the_fast_path() {
        let exec = Executor::new(NoiseModel::noiseless()).with_t1_map(vec![500.0]);
        assert!(!exec.fused_fast_path());
        assert!(Executor::new(NoiseModel::noiseless()).fused_fast_path());
    }

    #[test]
    fn shot_buffers_reuse_reproduces_fresh_runs() {
        let circuit = fusible_circuit();
        let program = FusedProgram::fuse(&circuit);
        let mut buffers = ShotBuffers::for_program(&program);
        let mut reused = Executor::new(NoiseModel::noiseless());
        for shot in 0..8 {
            let label = format!("exec/buffers{shot}");
            let summary = reused.run_fused_with(
                &program,
                &mut SequentialHandler::default(),
                &mut rng_for(&label),
                &mut buffers,
            );
            let fresh = Executor::new(NoiseModel::noiseless()).run_fused(
                &program,
                &mut SequentialHandler::default(),
                &mut rng_for(&label),
            );
            assert_eq!(buffers.clbits(), fresh.clbits.as_slice(), "{label}");
            assert_eq!(
                buffers.feedback_outcomes(),
                fresh.feedback_outcomes,
                "{label}"
            );
            assert_eq!(
                buffers.feedback_latencies_ns(),
                fresh.feedback_latencies_ns,
                "{label}"
            );
            assert_eq!(
                summary.total_ns.to_bits(),
                fresh.total_ns.to_bits(),
                "{label}"
            );
            assert_eq!(summary.predictions, fresh.predictions, "{label}");
            assert_eq!(summary.mispredictions, fresh.mispredictions, "{label}");
            assert!(
                (buffers.total_feedback_us() - fresh.total_feedback_us()).abs() == 0.0,
                "{label}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "clbit buffer sized for a different program")]
    fn mismatched_buffers_panic() {
        let program = FusedProgram::fuse(&fusible_circuit());
        let mut buffers = ShotBuffers::new(3, 7);
        let mut rng = rng_for("exec/badbuffers");
        let _ = Executor::new(NoiseModel::noiseless()).run_fused_with(
            &program,
            &mut SequentialHandler::default(),
            &mut rng,
            &mut buffers,
        );
    }

    #[test]
    #[should_panic(expected = "script too short")]
    fn short_script_panics() {
        let mut b = CircuitBuilder::new(1);
        b.feedback(Qubit(0)).finish();
        let c = b.build();
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("exec/shortscript");
        let _ = exec.run_scripted(&c, &mut SequentialHandler::default(), &[], &mut rng);
    }
}
