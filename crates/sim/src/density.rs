//! Exact density-matrix evolution for validating the trajectory method.
//!
//! The executor simulates noise by *sampling* one Kraus branch per channel
//! (Monte-Carlo trajectories) — fast, but only correct on average. This
//! module evolves the full density matrix `ρ` through the same channels
//! exactly, so the trajectory implementation can be checked against ground
//! truth (see the `trajectory_matches_exact_*` tests and
//! `tests/end_to_end.rs`). Dense `4^n` storage limits it to small registers,
//! which is all validation needs.

use artery_circuit::{Gate, GateMatrix, Qubit};
use artery_num::Complex64;

use crate::state::StateVector;

/// A mixed quantum state over `n` qubits: a `2^n × 2^n` density matrix.
///
/// Basis ordering matches [`StateVector`]: qubit 0 is the least significant
/// bit of the basis index.
///
/// # Examples
///
/// ```
/// use artery_circuit::{Gate, Qubit};
/// use artery_sim::DensityMatrix;
///
/// let mut rho = DensityMatrix::zero(1);
/// rho.apply_gate(Gate::H, &[Qubit(0)]);
/// rho.dephase(Qubit(0), 0.5); // fully dephasing channel
/// assert!((rho.purity() - 0.5).abs() < 1e-12); // maximally mixed
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    num_qubits: usize,
    dim: usize,
    /// Row-major `dim × dim` entries.
    rho: Vec<Complex64>,
}

impl DensityMatrix {
    /// The pure state `|0…0⟩⟨0…0|`.
    ///
    /// # Panics
    ///
    /// Panics when `num_qubits` exceeds 12 (the dense matrix would exceed
    /// 256 MiB).
    #[must_use]
    pub fn zero(num_qubits: usize) -> Self {
        assert!(num_qubits <= 12, "density matrix too large");
        let dim = 1 << num_qubits;
        let mut rho = vec![Complex64::ZERO; dim * dim];
        rho[0] = Complex64::ONE;
        Self {
            num_qubits,
            dim,
            rho,
        }
    }

    /// The pure state `|ψ⟩⟨ψ|` of a state vector.
    #[must_use]
    pub fn from_state(psi: &StateVector) -> Self {
        let n = psi.num_qubits();
        let dim = 1 << n;
        let mut rho = vec![Complex64::ZERO; dim * dim];
        for r in 0..dim {
            for c in 0..dim {
                rho[r * dim + c] = psi.amplitude(r) * psi.amplitude(c).conj();
            }
        }
        Self {
            num_qubits: n,
            dim,
            rho,
        }
    }

    /// Number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    fn at(&self, r: usize, c: usize) -> Complex64 {
        self.rho[r * self.dim + c]
    }

    /// Trace of the matrix (1 for a normalized state).
    #[must_use]
    pub fn trace(&self) -> Complex64 {
        (0..self.dim).map(|i| self.at(i, i)).sum()
    }

    /// Purity `Tr(ρ²)`: 1 for pure states, `1/2^n` for the maximally mixed
    /// state.
    #[must_use]
    pub fn purity(&self) -> f64 {
        let mut acc = Complex64::ZERO;
        for r in 0..self.dim {
            for c in 0..self.dim {
                acc += self.at(r, c) * self.at(c, r);
            }
        }
        acc.re
    }

    /// Applies `ρ → AρA†` for a one-qubit operator `a` on qubit `q`,
    /// accumulating into `out` (used to sum Kraus branches).
    fn accumulate_conjugated(&self, a: &[[Complex64; 2]; 2], q: Qubit, out: &mut [Complex64]) {
        let bit = 1usize << q.0;
        // left = A ρ (acts on row index), computed into a scratch matrix.
        let mut left = vec![Complex64::ZERO; self.dim * self.dim];
        for r in 0..self.dim {
            let (r0, r1) = (r & !bit, r | bit);
            let row_bit = usize::from(r & bit != 0);
            for c in 0..self.dim {
                left[r * self.dim + c] =
                    a[row_bit][0] * self.at(r0, c) + a[row_bit][1] * self.at(r1, c);
            }
        }
        // out += left A† (acts on column index).
        for r in 0..self.dim {
            for c in 0..self.dim {
                let (c0, c1) = (c & !bit, c | bit);
                let col_bit = usize::from(c & bit != 0);
                out[r * self.dim + c] += left[r * self.dim + c0] * a[col_bit][0].conj()
                    + left[r * self.dim + c1] * a[col_bit][1].conj();
            }
        }
    }

    /// Applies a one-qubit Kraus channel `{K_k}` to qubit `q` exactly:
    /// `ρ → Σ_k K_k ρ K_k†`.
    pub fn apply_kraus1(&mut self, kraus: &[[[Complex64; 2]; 2]], q: Qubit) {
        assert!(q.0 < self.num_qubits, "qubit {q} out of range");
        let mut out = vec![Complex64::ZERO; self.dim * self.dim];
        for k in kraus {
            self.accumulate_conjugated(k, q, &mut out);
        }
        self.rho = out;
    }

    /// Applies a unitary gate exactly.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or out-of-range qubits.
    pub fn apply_gate(&mut self, gate: Gate, qubits: &[Qubit]) {
        match gate.matrix() {
            GateMatrix::One(m) => {
                assert_eq!(qubits.len(), 1, "gate arity");
                self.apply_kraus1(&[m], qubits[0]);
            }
            GateMatrix::Two(m) => {
                assert_eq!(qubits.len(), 2, "gate arity");
                self.apply_unitary2(&m, qubits[0], qubits[1]);
            }
        }
    }

    /// Applies a two-qubit unitary (`q0` is the matrix's high-order bit,
    /// matching [`Gate::matrix`]).
    fn apply_unitary2(&mut self, m: &[[Complex64; 4]; 4], q0: Qubit, q1: Qubit) {
        assert!(q0.0 < self.num_qubits && q1.0 < self.num_qubits);
        let b0 = 1usize << q0.0;
        let b1 = 1usize << q1.0;
        let local = |idx: usize| -> usize {
            (usize::from(idx & b0 != 0) << 1) | usize::from(idx & b1 != 0)
        };
        let base_of = |idx: usize, lo: usize| -> usize {
            let mut out = idx & !b0 & !b1;
            if lo & 0b10 != 0 {
                out |= b0;
            }
            if lo & 0b01 != 0 {
                out |= b1;
            }
            out
        };
        // U ρ on rows.
        let mut left = vec![Complex64::ZERO; self.dim * self.dim];
        for r in 0..self.dim {
            let lr = local(r);
            for c in 0..self.dim {
                let mut acc = Complex64::ZERO;
                for (k, coeff) in m[lr].iter().enumerate() {
                    acc += *coeff * self.at(base_of(r, k), c);
                }
                left[r * self.dim + c] = acc;
            }
        }
        // (Uρ) U† on columns.
        let mut out = vec![Complex64::ZERO; self.dim * self.dim];
        for r in 0..self.dim {
            for c in 0..self.dim {
                let lc = local(c);
                let mut acc = Complex64::ZERO;
                for k in 0..4 {
                    acc += left[r * self.dim + base_of(c, k)] * m[lc][k].conj();
                }
                out[r * self.dim + c] = acc;
            }
        }
        self.rho = out;
    }

    /// Exact amplitude-damping channel with decay probability `p`.
    pub fn amplitude_damp(&mut self, q: Qubit, p: f64) {
        let s = (1.0 - p).sqrt();
        let sp = p.sqrt();
        let z = Complex64::ZERO;
        let k0 = [[Complex64::ONE, z], [z, Complex64::new(s, 0.0)]];
        let k1 = [[z, Complex64::new(sp, 0.0)], [z, z]];
        self.apply_kraus1(&[k0, k1], q);
    }

    /// Exact dephasing channel: applies Z with probability `p`.
    pub fn dephase(&mut self, q: Qubit, p: f64) {
        let z = Complex64::ZERO;
        let a = (1.0 - p).sqrt();
        let b = p.sqrt();
        let k0 = [[Complex64::new(a, 0.0), z], [z, Complex64::new(a, 0.0)]];
        let k1 = [[Complex64::new(b, 0.0), z], [z, Complex64::new(-b, 0.0)]];
        self.apply_kraus1(&[k0, k1], q);
    }

    /// Exact depolarizing channel: X, Y or Z each with probability `p/3`.
    pub fn depolarize(&mut self, q: Qubit, p: f64) {
        let z = Complex64::ZERO;
        let i = Complex64::i();
        let w = |x: f64| Complex64::new(x, 0.0);
        let s0 = (1.0 - p).sqrt();
        let s = (p / 3.0).sqrt();
        let k0 = [[w(s0), z], [z, w(s0)]];
        let kx = [[z, w(s)], [w(s), z]];
        let ky = [[z, -i * s], [i * s, z]];
        let kz = [[w(s), z], [z, w(-s)]];
        self.apply_kraus1(&[k0, kx, ky, kz], q);
    }

    /// Probability that measuring qubit `q` yields 1.
    #[must_use]
    pub fn prob_one(&self, q: Qubit) -> f64 {
        let bit = 1usize << q.0;
        (0..self.dim)
            .filter(|i| i & bit != 0)
            .map(|i| self.at(i, i).re)
            .sum()
    }

    /// Expectation value of Z on qubit `q`.
    #[must_use]
    pub fn expectation_z(&self, q: Qubit) -> f64 {
        1.0 - 2.0 * self.prob_one(q)
    }

    /// Fidelity `⟨ψ|ρ|ψ⟩` against a pure state.
    ///
    /// # Panics
    ///
    /// Panics on size mismatch.
    #[must_use]
    pub fn fidelity_with_pure(&self, psi: &StateVector) -> f64 {
        assert_eq!(psi.num_qubits(), self.num_qubits, "size mismatch");
        let mut acc = Complex64::ZERO;
        for r in 0..self.dim {
            for c in 0..self.dim {
                acc += psi.amplitude(r).conj() * self.at(r, c) * psi.amplitude(c);
            }
        }
        acc.re
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseModel;
    use artery_num::approx_eq;
    use artery_num::rng::rng_for;

    #[test]
    fn pure_state_round_trip() {
        let mut psi = StateVector::zero(2);
        psi.apply_gate(Gate::H, &[Qubit(0)]);
        psi.apply_gate(Gate::CNOT, &[Qubit(0), Qubit(1)]);
        let rho = DensityMatrix::from_state(&psi);
        assert!(approx_eq(rho.trace().re, 1.0, 1e-12));
        assert!(approx_eq(rho.purity(), 1.0, 1e-12));
        assert!(approx_eq(rho.fidelity_with_pure(&psi), 1.0, 1e-12));
    }

    #[test]
    fn gates_match_state_vector() {
        let gates: Vec<(Gate, Vec<Qubit>)> = vec![
            (Gate::H, vec![Qubit(0)]),
            (Gate::RY(0.7), vec![Qubit(1)]),
            (Gate::CNOT, vec![Qubit(0), Qubit(1)]),
            (Gate::CZ, vec![Qubit(1), Qubit(2)]),
            (Gate::RX(-1.2), vec![Qubit(2)]),
            (Gate::Swap, vec![Qubit(0), Qubit(2)]),
        ];
        let mut psi = StateVector::zero(3);
        let mut rho = DensityMatrix::zero(3);
        for (g, qs) in gates {
            psi.apply_gate(g, &qs);
            rho.apply_gate(g, &qs);
        }
        assert!(approx_eq(rho.fidelity_with_pure(&psi), 1.0, 1e-10));
        for q in 0..3 {
            assert!(approx_eq(
                rho.prob_one(Qubit(q)),
                psi.prob_one(Qubit(q)),
                1e-10
            ));
        }
    }

    #[test]
    fn amplitude_damping_exact_population() {
        let mut rho = DensityMatrix::zero(1);
        rho.apply_gate(Gate::X, &[Qubit(0)]);
        rho.amplitude_damp(Qubit(0), 0.3);
        assert!(approx_eq(rho.prob_one(Qubit(0)), 0.7, 1e-12));
        assert!(approx_eq(rho.trace().re, 1.0, 1e-12));
    }

    #[test]
    fn full_dephasing_mixes_plus_state() {
        let mut rho = DensityMatrix::zero(1);
        rho.apply_gate(Gate::H, &[Qubit(0)]);
        rho.dephase(Qubit(0), 0.5);
        assert!(approx_eq(rho.purity(), 0.5, 1e-12));
        // Populations untouched.
        assert!(approx_eq(rho.prob_one(Qubit(0)), 0.5, 1e-12));
    }

    #[test]
    fn depolarizing_preserves_trace_and_shrinks_purity() {
        let mut rho = DensityMatrix::zero(1);
        rho.apply_gate(Gate::RY(0.9), &[Qubit(0)]);
        let before = rho.purity();
        rho.depolarize(Qubit(0), 0.2);
        assert!(approx_eq(rho.trace().re, 1.0, 1e-12));
        assert!(rho.purity() < before);
    }

    #[test]
    fn trajectory_matches_exact_amplitude_damping() {
        // Monte-Carlo trajectories of the executor's damping channel must
        // average to the exact channel.
        let p = 0.25;
        let mut exact = DensityMatrix::zero(1);
        exact.apply_gate(Gate::RY(1.1), &[Qubit(0)]);
        exact.amplitude_damp(Qubit(0), p);

        // idle() with dt such that 1 − e^{−dt/T1} = p.
        let t1 = 1000.0;
        let dt = -t1 * (1.0f64 - p).ln();
        let model = NoiseModel {
            t1_ns: t1,
            ..NoiseModel::noiseless()
        };
        let mut rng = rng_for("density/mc");
        let mut mean_p1 = 0.0;
        let mut mean_x = 0.0;
        const N: usize = 6000;
        for _ in 0..N {
            let mut psi = StateVector::zero(1);
            psi.apply_gate(Gate::RY(1.1), &[Qubit(0)]);
            model.idle(&mut psi, Qubit(0), dt, &mut rng);
            mean_p1 += psi.prob_one(Qubit(0));
            // ⟨X⟩ via fidelity trick: measure in X basis.
            let mut rot = psi.clone();
            rot.apply_gate(Gate::H, &[Qubit(0)]);
            mean_x += 1.0 - 2.0 * rot.prob_one(Qubit(0));
        }
        mean_p1 /= N as f64;
        mean_x /= N as f64;
        let exact_p1 = exact.prob_one(Qubit(0));
        // Exact ⟨X⟩ = 2·Re ρ01.
        let exact_x = 2.0 * exact.at(0, 1).re;
        assert!(
            (mean_p1 - exact_p1).abs() < 0.02,
            "population: MC {mean_p1:.4} vs exact {exact_p1:.4}"
        );
        assert!(
            (mean_x - exact_x).abs() < 0.03,
            "coherence: MC {mean_x:.4} vs exact {exact_x:.4}"
        );
    }

    #[test]
    fn trajectory_matches_exact_depolarizing() {
        let p = 0.3;
        let mut exact = DensityMatrix::zero(1);
        exact.apply_gate(Gate::RY(0.8), &[Qubit(0)]);
        exact.depolarize(Qubit(0), p);

        let model = NoiseModel {
            depol_1q: p,
            ..NoiseModel::noiseless()
        };
        let mut rng = rng_for("density/depol");
        let mut mean_p1 = 0.0;
        const N: usize = 6000;
        for _ in 0..N {
            let mut psi = StateVector::zero(1);
            psi.apply_gate(Gate::RY(0.8), &[Qubit(0)]);
            model.gate_noise(&mut psi, &[Qubit(0)], &mut rng);
            mean_p1 += psi.prob_one(Qubit(0));
        }
        mean_p1 /= N as f64;
        let exact_p1 = exact.prob_one(Qubit(0));
        assert!(
            (mean_p1 - exact_p1).abs() < 0.02,
            "MC {mean_p1:.4} vs exact {exact_p1:.4}"
        );
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_register_panics() {
        let _ = DensityMatrix::zero(13);
    }
}
