//! Stochastic noise channels and the paper's device calibration.
//!
//! The trajectory method samples one Kraus branch per channel application, so
//! a pure state stays pure and a single shot stays O(2^n). Averaged over
//! shots this reproduces the density-matrix evolution of the corresponding
//! channels.

use artery_circuit::{Gate, Qubit};
use artery_num::Complex64;
use rand::Rng;

use crate::state::StateVector;

/// Calibration numbers of the paper's 18-qubit Xmon device (§6.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceCalibration {
    /// Relaxation time T1 in microseconds (paper: 110–140 µs; we use the
    /// midpoint).
    pub t1_us: f64,
    /// Dephasing time T2 in microseconds (not reported; superconducting
    /// devices typically have T2 ≲ T1, we use T1).
    pub t2_us: f64,
    /// Single-qubit gate fidelity (paper: 99.94 %).
    pub fidelity_1q: f64,
    /// Two-qubit gate fidelity (paper: 99.7 %).
    pub fidelity_2q: f64,
    /// Readout assignment fidelity (paper: 99.0 %).
    pub fidelity_readout: f64,
    /// Readout pulse duration in nanoseconds (paper: 2 µs).
    pub readout_ns: f64,
}

impl DeviceCalibration {
    /// Samples a per-qubit T1 map uniformly over the paper's reported range
    /// (110–140 µs), in nanoseconds — the evaluation platform's qubits are
    /// not identical, and idle-error accounting can respect that via
    /// [`Executor::with_t1_map`](crate::Executor::with_t1_map).
    #[must_use]
    pub fn paper_t1_map_ns(num_qubits: usize, rng: &mut impl Rng) -> Vec<f64> {
        (0..num_qubits)
            .map(|_| rng.gen_range(110_000.0..=140_000.0))
            .collect()
    }

    /// The paper's evaluation platform.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            t1_us: 125.0,
            t2_us: 125.0,
            fidelity_1q: 0.9994,
            fidelity_2q: 0.997,
            fidelity_readout: 0.99,
            readout_ns: 2000.0,
        }
    }

    /// Google's surface-code experiment parameters (used for Fig. 12b/c;
    /// the paper states its QEC noise parameters are "consistent with
    /// Google" [42]).
    #[must_use]
    pub fn google_qec() -> Self {
        Self {
            t1_us: 20.0,
            t2_us: 30.0,
            fidelity_1q: 0.999,
            fidelity_2q: 0.994,
            fidelity_readout: 0.98,
            readout_ns: 500.0,
        }
    }
}

/// The stochastic noise model applied during execution.
///
/// All probabilities are per-application; idle decay is exponential in the
/// elapsed time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// T1 in nanoseconds (`f64::INFINITY` disables amplitude damping).
    pub t1_ns: f64,
    /// T2 in nanoseconds (`f64::INFINITY` disables dephasing).
    pub t2_ns: f64,
    /// Depolarizing probability per single-qubit gate.
    pub depol_1q: f64,
    /// Depolarizing probability per two-qubit gate (applied to both qubits).
    pub depol_2q: f64,
    /// Probability of misreporting a readout outcome.
    pub readout_error: f64,
}

impl NoiseModel {
    /// A perfectly clean device.
    #[must_use]
    pub fn noiseless() -> Self {
        Self {
            t1_ns: f64::INFINITY,
            t2_ns: f64::INFINITY,
            depol_1q: 0.0,
            depol_2q: 0.0,
            readout_error: 0.0,
        }
    }

    /// Derives the stochastic model from calibration numbers.
    ///
    /// Gate infidelity is attributed entirely to depolarizing noise
    /// (`p = (1 − F)·d/(d−½)` simplified to `p = 1 − F` scaled by 3/2 for
    /// single-qubit and 5/4 for two-qubit channels — the standard
    /// average-fidelity relation).
    #[must_use]
    pub fn from_calibration(cal: &DeviceCalibration) -> Self {
        Self {
            t1_ns: cal.t1_us * 1000.0,
            t2_ns: cal.t2_us * 1000.0,
            depol_1q: (1.0 - cal.fidelity_1q) * 1.5,
            depol_2q: (1.0 - cal.fidelity_2q) * 1.25,
            readout_error: 1.0 - cal.fidelity_readout,
        }
    }

    /// The paper's device as a noise model.
    #[must_use]
    pub fn paper_device() -> Self {
        Self::from_calibration(&DeviceCalibration::paper())
    }

    /// Returns `true` when the gate-time channels are guaranteed no-ops that
    /// consume **no randomness**: `idle` draws from the RNG only when `t1_ns`
    /// is finite or `t2_ns` is finite with positive pure-dephasing rate, and
    /// `gate_noise`/`depolarize` only when the depolarizing probability is
    /// positive.
    ///
    /// The fused executor fast path ([`crate::Executor::run_fused`]) relies
    /// on this to skip `idle`/`gate_noise` calls entirely while keeping the
    /// RNG stream bit-identical to per-gate execution. Readout error is
    /// deliberately **not** part of the predicate — `readout_flip` may
    /// consume RNG and is always invoked by both paths.
    #[must_use]
    pub fn trivial_for_gates(&self) -> bool {
        !self.t1_ns.is_finite()
            && !self.t2_ns.is_finite()
            && self.depol_1q <= 0.0
            && self.depol_2q <= 0.0
    }

    /// Applies idle decay (amplitude damping + pure dephasing) to one qubit
    /// for `dt_ns` nanoseconds using trajectory sampling.
    pub fn idle(&self, state: &mut StateVector, q: Qubit, dt_ns: f64, rng: &mut impl Rng) {
        if dt_ns <= 0.0 {
            return;
        }
        if self.t1_ns.is_finite() {
            let p_decay = 1.0 - (-dt_ns / self.t1_ns).exp();
            self.amplitude_damping(state, q, p_decay, rng);
        }
        if self.t2_ns.is_finite() {
            // Pure dephasing rate: 1/Tφ = 1/T2 − 1/(2 T1).
            let inv_tphi = 1.0 / self.t2_ns
                - if self.t1_ns.is_finite() {
                    0.5 / self.t1_ns
                } else {
                    0.0
                };
            if inv_tphi > 0.0 {
                let p_phase = 0.5 * (1.0 - (-dt_ns * inv_tphi).exp());
                if rng.gen::<f64>() < p_phase {
                    state.apply_gate(Gate::Z, &[q]);
                }
            }
        }
    }

    /// Trajectory-sampled amplitude damping with decay probability `p`.
    fn amplitude_damping(&self, state: &mut StateVector, q: Qubit, p: f64, rng: &mut impl Rng) {
        if p <= 0.0 {
            return;
        }
        // Jump probability = p · P(|1⟩).
        let p1 = state.prob_one(q);
        if rng.gen::<f64>() < p * p1 {
            // Jump: |1⟩ → |0⟩.
            state.collapse(q, true);
            state.apply_gate(Gate::X, &[q]);
        } else {
            // No-jump Kraus operator K0 = diag(1, √(1−p)), then renormalize.
            let m = [
                [Complex64::ONE, Complex64::ZERO],
                [Complex64::ZERO, Complex64::new((1.0 - p).sqrt(), 0.0)],
            ];
            state.apply_matrix1(&m, q);
            state.normalize();
        }
    }

    /// Applies depolarizing noise after a gate on the given qubits.
    pub fn gate_noise(&self, state: &mut StateVector, qubits: &[Qubit], rng: &mut impl Rng) {
        let p = if qubits.len() >= 2 {
            self.depol_2q
        } else {
            self.depol_1q
        };
        for &q in qubits {
            self.depolarize(state, q, p, rng);
        }
    }

    /// Single-qubit depolarizing channel with probability `p`.
    pub fn depolarize(&self, state: &mut StateVector, q: Qubit, p: f64, rng: &mut impl Rng) {
        if p > 0.0 && rng.gen::<f64>() < p {
            match rng.gen_range(0..3) {
                0 => state.apply_gate(Gate::X, &[q]),
                1 => state.apply_gate(Gate::Y, &[q]),
                _ => state.apply_gate(Gate::Z, &[q]),
            }
        }
    }

    /// Applies the readout assignment error to a true outcome, returning the
    /// reported outcome.
    #[must_use]
    pub fn readout_flip(&self, outcome: bool, rng: &mut impl Rng) -> bool {
        if self.readout_error > 0.0 && rng.gen::<f64>() < self.readout_error {
            !outcome
        } else {
            outcome
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_num::rng::rng_for;

    #[test]
    fn noiseless_idle_is_identity() {
        let mut rng = rng_for("noise/idle0");
        let model = NoiseModel::noiseless();
        let mut s = StateVector::zero(1);
        s.apply_gate(Gate::H, &[Qubit(0)]);
        let before = s.clone();
        model.idle(&mut s, Qubit(0), 1e6, &mut rng);
        assert!(s.fidelity(&before) > 1.0 - 1e-12);
    }

    #[test]
    fn t1_decays_excited_population() {
        let mut rng = rng_for("noise/t1");
        let model = NoiseModel {
            t1_ns: 1000.0,
            ..NoiseModel::noiseless()
        };
        const N: usize = 2000;
        let mut ones = 0usize;
        for _ in 0..N {
            let mut s = StateVector::basis(1, 1);
            model.idle(&mut s, Qubit(0), 1000.0, &mut rng);
            if s.prob_one(Qubit(0)) > 0.5 {
                ones += 1;
            }
        }
        let surv = ones as f64 / N as f64;
        let expected = (-1.0f64).exp(); // ≈ 0.368
        assert!(
            (surv - expected).abs() < 0.04,
            "survival {surv} vs {expected}"
        );
    }

    #[test]
    fn t1_leaves_ground_state_alone() {
        let mut rng = rng_for("noise/ground");
        let model = NoiseModel {
            t1_ns: 100.0,
            ..NoiseModel::noiseless()
        };
        let mut s = StateVector::zero(1);
        model.idle(&mut s, Qubit(0), 1e5, &mut rng);
        assert!(s.prob_one(Qubit(0)) < 1e-12);
    }

    #[test]
    fn dephasing_destroys_coherence_on_average() {
        let mut rng = rng_for("noise/t2");
        let model = NoiseModel {
            t2_ns: 500.0,
            ..NoiseModel::noiseless()
        };
        // |+⟩ dephases: averaged over shots, ⟨X⟩ shrinks. Track the sign of
        // the X expectation through fidelity with |+⟩.
        let mut plus = StateVector::zero(1);
        plus.apply_gate(Gate::H, &[Qubit(0)]);
        let mut fid_sum = 0.0;
        const N: usize = 2000;
        for _ in 0..N {
            let mut s = plus.clone();
            model.idle(&mut s, Qubit(0), 500.0, &mut rng);
            fid_sum += s.fidelity(&plus);
        }
        let avg = fid_sum / N as f64;
        // E[F] = 1 − p_phase = ½(1 + e^{-1}) ≈ 0.684.
        let expected = 0.5 * (1.0 + (-1.0f64).exp());
        assert!((avg - expected).abs() < 0.04, "avg fidelity {avg}");
    }

    #[test]
    fn depolarizing_probability_respected() {
        let mut rng = rng_for("noise/depol");
        let model = NoiseModel {
            depol_1q: 1.0,
            ..NoiseModel::noiseless()
        };
        // p = 1 always applies a random Pauli; on |0⟩ an X or Y flips it.
        let mut flips = 0usize;
        const N: usize = 3000;
        for _ in 0..N {
            let mut s = StateVector::zero(1);
            model.gate_noise(&mut s, &[Qubit(0)], &mut rng);
            if s.prob_one(Qubit(0)) > 0.5 {
                flips += 1;
            }
        }
        let frac = flips as f64 / N as f64;
        assert!((frac - 2.0 / 3.0).abs() < 0.04, "flip fraction {frac}");
    }

    #[test]
    fn readout_flip_rate() {
        let mut rng = rng_for("noise/readout");
        let model = NoiseModel {
            readout_error: 0.25,
            ..NoiseModel::noiseless()
        };
        let mut flipped = 0usize;
        const N: usize = 4000;
        for _ in 0..N {
            if model.readout_flip(false, &mut rng) {
                flipped += 1;
            }
        }
        let rate = flipped as f64 / N as f64;
        assert!((rate - 0.25).abs() < 0.03, "flip rate {rate}");
    }

    #[test]
    fn trivial_for_gates_tracks_gate_channels_only() {
        assert!(NoiseModel::noiseless().trivial_for_gates());
        // Readout error alone keeps the gate channels trivial.
        let readout_only = NoiseModel {
            readout_error: 0.05,
            ..NoiseModel::noiseless()
        };
        assert!(readout_only.trivial_for_gates());
        for broken in [
            NoiseModel {
                t1_ns: 1e5,
                ..NoiseModel::noiseless()
            },
            NoiseModel {
                t2_ns: 1e5,
                ..NoiseModel::noiseless()
            },
            NoiseModel {
                depol_1q: 1e-4,
                ..NoiseModel::noiseless()
            },
            NoiseModel {
                depol_2q: 1e-3,
                ..NoiseModel::noiseless()
            },
        ] {
            assert!(!broken.trivial_for_gates(), "{broken:?}");
        }
        assert!(!NoiseModel::paper_device().trivial_for_gates());
    }

    #[test]
    fn calibration_conversion() {
        let m = NoiseModel::paper_device();
        assert!(artery_num::approx_eq(m.t1_ns, 125_000.0, 1e-9));
        assert!(artery_num::approx_eq(m.readout_error, 0.01, 1e-12));
        assert!(m.depol_2q > m.depol_1q);
    }

    #[test]
    fn norm_preserved_through_noise() {
        let mut rng = rng_for("noise/norm");
        let model = NoiseModel::from_calibration(&DeviceCalibration::google_qec());
        let mut s = StateVector::zero(3);
        s.apply_gate(Gate::H, &[Qubit(0)]);
        s.apply_gate(Gate::CNOT, &[Qubit(0), Qubit(1)]);
        for _ in 0..50 {
            model.idle(&mut s, Qubit(0), 100.0, &mut rng);
            model.gate_noise(&mut s, &[Qubit(1), Qubit(2)], &mut rng);
            assert!(artery_num::approx_eq(s.norm_sqr(), 1.0, 1e-9));
        }
    }
}
