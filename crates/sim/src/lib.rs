//! Noisy state-vector simulation of dynamic quantum circuits.
//!
//! The paper evaluates fidelity by simulating its benchmarks under a
//! calibrated noise model (T1/T2 relaxation, depolarizing gate errors and
//! readout assignment errors — §6.1 uses Qiskit for this; we implement the
//! same Monte-Carlo trajectory method natively). The crate provides
//!
//! * [`StateVector`] — a dense `2^n` amplitude vector with gate application,
//!   measurement collapse and fidelity computation,
//! * [`NoiseModel`] / [`DeviceCalibration`] — the stochastic error channels
//!   and the paper's device numbers,
//! * [`Executor`] — runs a [`Circuit`](artery_circuit::Circuit), delegating
//!   feedback timing to a [`FeedbackHandler`] so the ARTERY engine and the
//!   baselines plug in their own latency behaviour.
//!
//! # Examples
//!
//! Simulate a Bell pair noiselessly:
//!
//! ```
//! use artery_circuit::{CircuitBuilder, Gate, Qubit};
//! use artery_sim::{Executor, NoiseModel, SequentialHandler, StateVector};
//!
//! let mut b = CircuitBuilder::new(2);
//! b.gate(Gate::H, &[Qubit(0)]);
//! b.gate(Gate::CNOT, &[Qubit(0), Qubit(1)]);
//! let circuit = b.build();
//!
//! let mut exec = Executor::new(NoiseModel::noiseless());
//! let mut handler = SequentialHandler::default();
//! let mut rng = artery_num::rng::rng_for("doc/bell");
//! let record = exec.run(&circuit, &mut handler, &mut rng);
//! let p11 = record.state().probability_of(0b11);
//! assert!((p11 - 0.5).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod density;
mod executor;
mod noise;
mod state;

pub use density::DensityMatrix;
pub use executor::{
    Executor, FeedbackHandler, FusedShotSummary, Resolution, RunRecord, SequentialHandler,
    ShotBuffers,
};
pub use noise::{DeviceCalibration, NoiseModel};
pub use state::StateVector;
