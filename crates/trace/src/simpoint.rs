//! SimPoint-style corpus distillation.
//!
//! Replaying a nine-config panel and a predictor zoo over millions of
//! recorded shots repeats a lot of near-identical work: shot behavior at a
//! feedback site is phase-like, so most windows of the corpus look like a
//! few recurring patterns. Following the SimPoint methodology (pick
//! representative simulation slices by clustering per-slice feature
//! vectors, then weight each representative by its cluster's population),
//! this module:
//!
//! 1. slices a recording into fixed-size event [`windows`],
//! 2. extracts a per-window branch-outcome/decision/IQ/latency
//!    [`features`] vector (configuration-independent: only recorded
//!    quantities enter),
//! 3. clusters the z-score-normalized vectors with a seeded, fully
//!    deterministic [`kmeans`] (farthest-first init, lowest-index
//!    tie-breaks, sequential Lloyd iterations — identical output for any
//!    machine and any `ARTERY_THREADS`), and
//! 4. emits one weighted [`Representative`] window per cluster.
//!
//! Replaying only the representatives and scaling each window's statistics
//! by its weight ([`WeightedStats`]) estimates the full-corpus aggregates
//! at a fraction of the replay cost; `trace_eval --distill` asserts the
//! distilled leaderboards *rank identically* to the full-corpus run. The
//! trace-v2 history seeds ([`history_at_boundaries`](crate::history_at_boundaries))
//! make window replays exact: a representative's per-event outcomes are bit
//! for bit those of the sequential whole-corpus replay.

use artery_core::ShotStats;

use crate::event::TraceEvent;

/// Number of per-window features.
pub const FEATURE_DIM: usize = 8;

/// Hard floor on Lloyd iterations before giving up on convergence.
const MAX_ITERS: usize = 128;

/// One contiguous event window `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First event index.
    pub start: usize,
    /// One past the last event index.
    pub end: usize,
}

impl Window {
    /// Events in the window.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the window is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// One representative window and the population it stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Representative {
    /// Index into the distillation's window list.
    pub window: usize,
    /// Windows in the cluster this representative stands for (its own
    /// window included).
    pub weight: u64,
}

/// The outcome of distilling a recording.
#[derive(Debug, Clone, PartialEq)]
pub struct Distillation {
    /// The fixed window size used (the trailing window may be larger: it
    /// absorbs the remainder).
    pub window_events: usize,
    /// All windows, in event order.
    pub windows: Vec<Window>,
    /// Cluster assignment per window.
    pub assignments: Vec<usize>,
    /// Representatives, sorted by window index.
    pub representatives: Vec<Representative>,
    /// Clusters actually used (≤ the requested k).
    pub k: usize,
    /// Lloyd iterations until convergence.
    pub iterations: usize,
}

impl Distillation {
    /// Fraction of corpus events a representative-only replay touches.
    #[must_use]
    pub fn replayed_fraction(&self) -> f64 {
        let total: usize = self.windows.iter().map(Window::len).sum();
        if total == 0 {
            return 0.0;
        }
        let replayed: usize = self
            .representatives
            .iter()
            .map(|r| self.windows[r.window].len())
            .sum();
        replayed as f64 / total as f64
    }
}

/// Slices `total_events` into windows of `window_events`; the last window
/// absorbs any remainder so no event is dropped.
///
/// # Panics
///
/// Panics when `window_events` is zero.
#[must_use]
pub fn windows(total_events: usize, window_events: usize) -> Vec<Window> {
    assert!(window_events > 0, "windows must hold at least one event");
    if total_events == 0 {
        return Vec::new();
    }
    let count = (total_events / window_events).max(1);
    let mut out = Vec::with_capacity(count);
    for w in 0..count {
        let start = w * window_events;
        let end = if w + 1 == count {
            total_events
        } else {
            start + window_events
        };
        out.push(Window { start, end });
    }
    out
}

/// Per-window feature vectors: reported-1 rate, live commit rate, live
/// mispredict rate, mean live decision window, mean live latency, mean
/// state-stream length, state-1 density, mean IQ magnitude. Every input is
/// a *recorded* quantity, so the features — and everything clustered from
/// them — are independent of whatever configuration later replays the
/// trace.
#[must_use]
pub fn features(events: &[TraceEvent], windows: &[Window]) -> Vec<[f64; FEATURE_DIM]> {
    windows
        .iter()
        .map(|w| {
            let evs = &events[w.start..w.end];
            let n = evs.len().max(1) as f64;
            let mut reported = 0f64;
            let mut committed = 0f64;
            let mut mispredicted = 0f64;
            let mut window_sum = 0f64;
            let mut latency_sum = 0f64;
            let mut state_len = 0f64;
            let mut state_ones = 0f64;
            let mut iq_mag = 0f64;
            let mut iq_points = 0f64;
            for ev in evs {
                reported += f64::from(ev.reported);
                if let Some(d) = ev.decision {
                    committed += 1.0;
                    mispredicted += f64::from(d.branch != ev.reported);
                    window_sum += d.window as f64;
                }
                latency_sum += ev.latency_ns;
                state_len += ev.states.len() as f64;
                state_ones += ev.states.iter().filter(|&&s| s).count() as f64;
                for &(i, q) in &ev.iq {
                    iq_mag += f64::from(i).hypot(f64::from(q));
                    iq_points += 1.0;
                }
            }
            [
                reported / n,
                committed / n,
                if committed > 0.0 {
                    mispredicted / committed
                } else {
                    0.0
                },
                if committed > 0.0 {
                    window_sum / committed
                } else {
                    0.0
                },
                latency_sum / n,
                state_len / n,
                if state_len > 0.0 {
                    state_ones / state_len
                } else {
                    0.0
                },
                if iq_points > 0.0 {
                    iq_mag / iq_points
                } else {
                    0.0
                },
            ]
        })
        .collect()
}

/// Z-score normalizes each feature dimension in place (constant dimensions
/// collapse to zero), so no unit dominates the distance metric.
fn normalize(features: &mut [[f64; FEATURE_DIM]]) {
    let n = features.len() as f64;
    if features.is_empty() {
        return;
    }
    for d in 0..FEATURE_DIM {
        let mean = features.iter().map(|f| f[d]).sum::<f64>() / n;
        let var = features.iter().map(|f| (f[d] - mean).powi(2)).sum::<f64>() / n;
        let sd = var.sqrt();
        for f in features.iter_mut() {
            f[d] = if sd > 0.0 { (f[d] - mean) / sd } else { 0.0 };
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn dist2(a: &[f64; FEATURE_DIM], b: &[f64; FEATURE_DIM]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

/// Seeded deterministic k-means: the first centroid is drawn from
/// `seed` via SplitMix64, the rest by farthest-first traversal (maximum
/// distance to the nearest chosen centroid, ties to the lowest index), then
/// sequential Lloyd iterations with lowest-index tie-breaking. No
/// parallelism, no ambient randomness: the same inputs produce the same
/// clustering on every machine and thread count.
///
/// Returns `(assignments, iterations)`. `k` is clamped to the number of
/// points.
#[must_use]
pub fn kmeans(features: &[[f64; FEATURE_DIM]], k: usize, seed: u64) -> (Vec<usize>, usize) {
    let n = features.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let k = k.clamp(1, n);

    // Farthest-first init from a seeded starting point.
    let mut state = seed;
    let first = (splitmix64(&mut state) % n as u64) as usize;
    let mut centroids: Vec<[f64; FEATURE_DIM]> = vec![features[first]];
    let mut nearest: Vec<f64> = features
        .iter()
        .map(|f| dist2(f, &features[first]))
        .collect();
    while centroids.len() < k {
        let mut best = 0usize;
        let mut best_d = -1.0f64;
        for (i, &d) in nearest.iter().enumerate() {
            if d > best_d {
                best_d = d;
                best = i;
            }
        }
        centroids.push(features[best]);
        for (i, f) in features.iter().enumerate() {
            let d = dist2(f, centroids.last().expect("just pushed"));
            if d < nearest[i] {
                nearest[i] = d;
            }
        }
    }

    let mut assignments = vec![0usize; n];
    let mut iterations = 0usize;
    for _ in 0..MAX_ITERS {
        iterations += 1;
        // Assign: nearest centroid, ties to the lowest centroid index.
        let mut changed = false;
        for (i, f) in features.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = dist2(f, &centroids[0]);
            for (c, centroid) in centroids.iter().enumerate().skip(1) {
                let d = dist2(f, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        if !changed && iterations > 1 {
            break;
        }
        // Update: per-cluster means; an emptied cluster keeps its centroid.
        let mut sums = vec![[0f64; FEATURE_DIM]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (i, f) in features.iter().enumerate() {
            let c = assignments[i];
            counts[c] += 1;
            for d in 0..FEATURE_DIM {
                sums[c][d] += f[d];
            }
        }
        for (c, centroid) in centroids.iter_mut().enumerate() {
            if counts[c] > 0 {
                for d in 0..FEATURE_DIM {
                    centroid[d] = sums[c][d] / counts[c] as f64;
                }
            }
        }
    }
    (assignments, iterations)
}

/// Distills `events` into weighted representative windows: slice, extract
/// features, cluster with [`kmeans`] under `seed`, then pick each cluster's
/// member closest to its mean (ties to the lowest window index) weighted by
/// the cluster population.
///
/// # Panics
///
/// Panics when `window_events` or `k` is zero.
#[must_use]
pub fn distill(events: &[TraceEvent], window_events: usize, k: usize, seed: u64) -> Distillation {
    assert!(k > 0, "distillation needs at least one cluster");
    let windows = windows(events.len(), window_events);
    let mut feats = features(events, &windows);
    normalize(&mut feats);
    let (assignments, iterations) = kmeans(&feats, k, seed);
    let clusters = assignments.iter().copied().max().map_or(0, |m| m + 1);

    // Cluster means over the normalized features.
    let mut sums = vec![[0f64; FEATURE_DIM]; clusters];
    let mut counts = vec![0u64; clusters];
    for (i, f) in feats.iter().enumerate() {
        let c = assignments[i];
        counts[c] += 1;
        for d in 0..FEATURE_DIM {
            sums[c][d] += f[d];
        }
    }
    let mut representatives = Vec::new();
    for c in 0..clusters {
        if counts[c] == 0 {
            continue;
        }
        let mut mean = [0f64; FEATURE_DIM];
        for d in 0..FEATURE_DIM {
            mean[d] = sums[c][d] / counts[c] as f64;
        }
        let mut best: Option<(usize, f64)> = None;
        for (i, f) in feats.iter().enumerate() {
            if assignments[i] != c {
                continue;
            }
            let d = dist2(f, &mean);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        let (window, _) = best.expect("non-empty cluster");
        representatives.push(Representative {
            window,
            weight: counts[c],
        });
    }
    representatives.sort_unstable_by_key(|r| r.window);
    let k_used = representatives.len();
    Distillation {
        window_events,
        windows,
        assignments,
        representatives,
        k: k_used,
        iterations,
    }
}

/// Weighted aggregation of per-window replay statistics: each
/// representative window's [`ShotStats`] enter scaled by the population the
/// window stands for, estimating the full-corpus aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WeightedStats {
    resolved: f64,
    committed: f64,
    correct: f64,
    latency_sum: f64,
    window_sum: f64,
}

impl WeightedStats {
    /// An empty aggregate.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one window's statistics in at `weight` copies.
    pub fn add(&mut self, weight: u64, stats: &ShotStats) {
        let w = weight as f64;
        self.resolved += w * stats.resolved as f64;
        self.committed += w * stats.committed as f64;
        self.correct += w * stats.correct as f64;
        self.latency_sum += w * stats.latency_ns.mean() * stats.latency_ns.len() as f64;
        self.window_sum += w * stats.decision_window.mean() * stats.decision_window.len() as f64;
    }

    /// Weighted resolved-feedback count.
    #[must_use]
    pub fn resolved(&self) -> f64 {
        self.resolved
    }

    /// Weighted commit rate.
    #[must_use]
    pub fn commit_rate(&self) -> f64 {
        if self.resolved > 0.0 {
            self.committed / self.resolved
        } else {
            0.0
        }
    }

    /// Weighted prediction accuracy over committed feedbacks.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.committed > 0.0 {
            self.correct / self.committed
        } else {
            1.0
        }
    }

    /// Weighted mean feedback latency, ns.
    #[must_use]
    pub fn mean_latency_ns(&self) -> f64 {
        if self.resolved > 0.0 {
            self.latency_sum / self.resolved
        } else {
            0.0
        }
    }

    /// Weighted mean committed decision window.
    #[must_use]
    pub fn mean_window(&self) -> f64 {
        if self.committed > 0.0 {
            self.window_sum / self.committed
        } else {
            0.0
        }
    }

    /// Weighted mispredictions per 1 000 resolved feedbacks.
    #[must_use]
    pub fn mispredicts_per_1k(&self) -> f64 {
        if self.resolved > 0.0 {
            1000.0 * (self.committed - self.correct) / self.resolved
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_circuit::analysis::PreExecCase;
    use artery_circuit::FeedbackSite;
    use artery_core::SiteOutcome;

    fn synthetic_events(n: usize) -> Vec<TraceEvent> {
        (0..n)
            .map(|i| {
                // Two alternating phases so clustering has real structure.
                let phase = (i / 16) % 2;
                TraceEvent {
                    site: i % 2,
                    case: PreExecCase::Independent,
                    reported: (i + phase) % 3 == 0,
                    states: vec![phase == 0; 4 + phase],
                    iq: vec![(i as f32 % 7.0, phase as f32)],
                    p_history: 0.5,
                    decision: (phase == 0).then_some(crate::RecordedDecision {
                        window: 2 + (i % 2),
                        branch: i % 3 == 0,
                    }),
                    latency_ns: if phase == 0 { 400.0 } else { 900.0 },
                    branch0_ns: 0.0,
                    branch1_ns: 30.0,
                }
            })
            .collect()
    }

    #[test]
    fn windows_cover_every_event_exactly_once() {
        let w = windows(23, 5);
        assert_eq!(w.len(), 4);
        assert_eq!(w[0], Window { start: 0, end: 5 });
        assert_eq!(w[3], Window { start: 15, end: 23 }); // absorbs remainder
        assert!(windows(0, 5).is_empty());
        assert_eq!(windows(3, 5), vec![Window { start: 0, end: 3 }]);
    }

    #[test]
    fn distillation_is_deterministic_and_weights_cover_all_windows() {
        let events = synthetic_events(160);
        let a = distill(&events, 8, 4, 42);
        let b = distill(&events, 8, 4, 42);
        assert_eq!(a, b, "same seed must reproduce the distillation exactly");
        assert_eq!(a.windows.len(), 20);
        assert!(a.k <= 4 && a.k >= 1);
        assert_eq!(a.representatives.len(), a.k);
        let total_weight: u64 = a.representatives.iter().map(|r| r.weight).sum();
        assert_eq!(total_weight, a.windows.len() as u64);
        assert!(a.replayed_fraction() < 1.0);
        assert!(a.replayed_fraction() > 0.0);
        // Representatives are sorted and belong to distinct clusters.
        for pair in a.representatives.windows(2) {
            assert!(pair[0].window < pair[1].window);
        }
    }

    #[test]
    fn two_phase_corpus_clusters_by_phase() {
        let events = synthetic_events(160);
        let d = distill(&events, 16, 2, 7);
        // Windows alternate phase A / phase B; the two clusters must
        // separate them perfectly.
        let first = d.assignments[0];
        for (w, &c) in d.assignments.iter().enumerate() {
            if w % 2 == 0 {
                assert_eq!(c, first, "window {w}");
            } else {
                assert_ne!(c, first, "window {w}");
            }
        }
    }

    #[test]
    fn weighted_stats_with_unit_weights_match_plain_merging() {
        let mut plain = ShotStats::default();
        let mut weighted = WeightedStats::new();
        let mut per_window = ShotStats::default();
        for i in 0..40u64 {
            let outcome = SiteOutcome {
                site: FeedbackSite(0),
                window: (i % 3 == 0).then_some(2),
                predicted: (i % 3 == 0).then_some(i % 6 == 0),
                reported: i % 2 == 0,
                latency_ns: 300.0 + i as f64,
            };
            plain.record(&outcome);
            per_window.record(&outcome);
            if i % 10 == 9 {
                weighted.add(1, &per_window);
                per_window = ShotStats::default();
            }
        }
        assert_eq!(weighted.resolved(), plain.resolved as f64);
        assert!((weighted.commit_rate() - plain.commit_rate()).abs() < 1e-12);
        assert!((weighted.accuracy() - plain.accuracy()).abs() < 1e-12);
        assert!((weighted.mean_latency_ns() - plain.latency_ns.mean()).abs() < 1e-9);
        assert!((weighted.mean_window() - plain.decision_window.mean()).abs() < 1e-12);
    }

    #[test]
    fn kmeans_clamps_k_and_handles_tiny_inputs() {
        let feats = vec![[0.0; FEATURE_DIM], [1.0; FEATURE_DIM]];
        let (assign, _) = kmeans(&feats, 10, 3);
        assert_eq!(assign.len(), 2);
        assert_ne!(assign[0], assign[1]);
        let (empty, iters) = kmeans(&[], 3, 1);
        assert!(empty.is_empty());
        assert_eq!(iters, 0);
    }
}
