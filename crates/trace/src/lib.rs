//! Recorded shot traces and trace-driven predictor evaluation.
//!
//! Live evaluation of a predictor configuration re-runs the state-vector
//! simulator and the readout synthesizer for every shot — fine for one
//! configuration, wasteful for a grid of them. This crate applies the
//! classic branch-predictor-championship workflow to quantum feedback:
//!
//! 1. **Record** ([`TraceRecorder`]): a drop-in
//!    [`FeedbackHandler`](artery_sim::FeedbackHandler) wrapping
//!    [`ArteryController`](artery_core::ArteryController) that streams every
//!    resolved feedback — window states, IQ trajectory, prior, reported
//!    branch, live decision and latency — to a [`TraceWriter`].
//! 2. **Store** ([`TraceWriter`]/[`TraceReader`]): a versioned compact
//!    binary format ([`MAGIC`] + [`FORMAT_VERSION`]); window-state streams
//!    are run-length coded with the LEB128 varints of `artery-pulse`'s codec
//!    layer, floats are stored as exact IEEE-754 bit patterns, and every
//!    record is length-framed for streaming and truncation detection.
//! 3. **Replay** ([`Replayer`]): re-drive any predictor configuration —
//!    threshold grids, table ablations, retrained calibrations — over the
//!    recorded events without touching the simulator. Replaying the
//!    recorded configuration reproduces the live run's committed windows,
//!    predictions, accuracy and latencies bit-for-bit, because record and
//!    replay share the controller's decision, latency and bookkeeping code.
//!
//! Two storage formats coexist behind one reader. v1 ([`TraceWriter`]) is
//! the flat frame-per-event stream. v2 ([`TraceWriterV2`]) routes blocks of
//! events through the `artery-pulse` codec engine (cached codebooks,
//! zero-alloc scratch paths), stores a per-block history snapshot so every
//! block is *independently replayable*, and closes with a trailer block
//! index plus a seekable tail — [`TraceBlocks`] opens a multi-GB trace and
//! decodes any block without touching the rest. [`TraceReader`] negotiates
//! the version at open time, so v1 traces keep decoding byte-for-byte.
//!
//! Replay parallelism follows from the v2 seeds: history evolution depends
//! only on the recorded outcome stream, never the replayed configuration,
//! so seeding a [`Replayer`] from a block (or [`history_at_boundaries`])
//! snapshot and replaying that block reproduces the sequential whole-trace
//! outcomes bit for bit. The `trace_eval` harness fans blocks out as
//! deterministic scheduler chunks on that basis.
//!
//! On top of v2 sits SimPoint-style corpus distillation ([`simpoint`]):
//! slice the recording into fixed-size windows, cluster per-window feature
//! vectors with a seeded deterministic k-means, and replay only weighted
//! representative windows — the hour-scale panel sweep becomes seconds
//! while preserving the leaderboard ordering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod format;
mod recorder;
mod replay;
pub mod simpoint;
mod v2;

pub use event::{RecordedDecision, TraceEvent, TraceHeader};
pub use format::{TraceError, TraceReader, TraceWriter, FORMAT_VERSION, FORMAT_VERSION_V2, MAGIC};
pub use recorder::{EventSink, TraceRecorder};
pub use replay::{history_at_boundaries, Replayer};
pub use v2::{
    BlockScratch, DecodedBlock, HistoryCount, TraceBlocks, TraceWriterV2, DEFAULT_EVENTS_PER_BLOCK,
    TRAILER_MAGIC,
};
