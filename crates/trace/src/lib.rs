//! Recorded shot traces and trace-driven predictor evaluation.
//!
//! Live evaluation of a predictor configuration re-runs the state-vector
//! simulator and the readout synthesizer for every shot — fine for one
//! configuration, wasteful for a grid of them. This crate applies the
//! classic branch-predictor-championship workflow to quantum feedback:
//!
//! 1. **Record** ([`TraceRecorder`]): a drop-in
//!    [`FeedbackHandler`](artery_sim::FeedbackHandler) wrapping
//!    [`ArteryController`](artery_core::ArteryController) that streams every
//!    resolved feedback — window states, IQ trajectory, prior, reported
//!    branch, live decision and latency — to a [`TraceWriter`].
//! 2. **Store** ([`TraceWriter`]/[`TraceReader`]): a versioned compact
//!    binary format ([`MAGIC`] + [`FORMAT_VERSION`]); window-state streams
//!    are run-length coded with the LEB128 varints of `artery-pulse`'s codec
//!    layer, floats are stored as exact IEEE-754 bit patterns, and every
//!    record is length-framed for streaming and truncation detection.
//! 3. **Replay** ([`Replayer`]): re-drive any predictor configuration —
//!    threshold grids, table ablations, retrained calibrations — over the
//!    recorded events without touching the simulator. Replaying the
//!    recorded configuration reproduces the live run's committed windows,
//!    predictions, accuracy and latencies bit-for-bit, because record and
//!    replay share the controller's decision, latency and bookkeeping code.
//!
//! Events are independent between shots, so traces shard trivially: the
//! `trace_eval` harness in `artery-bench` fans a configuration panel across
//! OS threads, one shard per worker, and merges
//! [`ShotStats`](artery_core::ShotStats) deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod format;
mod recorder;
mod replay;

pub use event::{RecordedDecision, TraceEvent, TraceHeader};
pub use format::{TraceError, TraceReader, TraceWriter, FORMAT_VERSION, MAGIC};
pub use recorder::TraceRecorder;
pub use replay::Replayer;
