//! Recording feedback handler: a drop-in wrapper around
//! [`ArteryController`] that streams every resolved feedback to a
//! [`TraceWriter`] while behaving identically to the bare controller.

use std::io::Write;

use artery_circuit::Feedback;
use artery_core::ArteryController;
use artery_sim::{FeedbackHandler, Resolution};
use rand::rngs::StdRng;

use crate::event::TraceEvent;
use crate::format::{TraceError, TraceWriter};
use crate::v2::TraceWriterV2;

/// Anything the recorder can stream events into: the v1 [`TraceWriter`],
/// the blocked v2 [`TraceWriterV2`], or a test double. Both shipped writers
/// buffer through reusable scratch, so recording stays zero-alloc in steady
/// state regardless of the format chosen.
pub trait EventSink {
    /// What [`Self::finish`] dismantles into (the underlying byte sink for
    /// the shipped writers).
    type Output;

    /// Appends one event.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] when the underlying sink fails.
    fn write_event(&mut self, event: &TraceEvent) -> Result<(), TraceError>;

    /// Number of events written so far.
    fn events_written(&self) -> u64;

    /// Completes the stream and returns the underlying output.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] when the final flush fails.
    fn finish(self) -> Result<Self::Output, TraceError>;
}

impl<W: Write> EventSink for TraceWriter<W> {
    type Output = W;

    fn write_event(&mut self, event: &TraceEvent) -> Result<(), TraceError> {
        TraceWriter::write_event(self, event)
    }

    fn events_written(&self) -> u64 {
        TraceWriter::events_written(self)
    }

    fn finish(self) -> Result<W, TraceError> {
        TraceWriter::finish(self)
    }
}

impl<W: Write> EventSink for TraceWriterV2<W> {
    type Output = W;

    fn write_event(&mut self, event: &TraceEvent) -> Result<(), TraceError> {
        TraceWriterV2::write_event(self, event)
    }

    fn events_written(&self) -> u64 {
        TraceWriterV2::events_written(self)
    }

    fn finish(self) -> Result<W, TraceError> {
        TraceWriterV2::finish(self)
    }
}

/// A [`FeedbackHandler`] that records every resolution it forwards to the
/// wrapped [`ArteryController`].
///
/// The recorder delegates to
/// [`ArteryController::resolve_traced`], the same code path
/// [`FeedbackHandler::resolve`] uses on the bare controller, so a recorded
/// run is *the* live run — identical latencies, statistics and RNG
/// consumption — plus a trace on the side.
///
/// # Examples
///
/// ```
/// use artery_core::{ArteryConfig, ArteryController, Calibration};
/// use artery_sim::{Executor, NoiseModel};
/// use artery_trace::{TraceHeader, TraceReader, TraceRecorder, TraceWriter};
///
/// let config = ArteryConfig::default();
/// let mut rng = artery_num::rng::rng_for("doc/trace");
/// let calibration = Calibration::train(&config, &mut rng);
/// let circuit = artery_workloads::active_reset(1);
///
/// let controller = ArteryController::new(&circuit, &config, &calibration);
/// let header = TraceHeader::new(&config, "doc: active reset");
/// let writer = TraceWriter::new(Vec::new(), &header).unwrap();
/// let mut recorder = TraceRecorder::new(controller, writer);
///
/// let mut exec = Executor::new(NoiseModel::noiseless());
/// for _ in 0..3 {
///     exec.run(&circuit, &mut recorder, &mut rng);
/// }
///
/// let (_controller, bytes) = recorder.finish().unwrap();
/// let events = TraceReader::new(bytes.as_slice()).unwrap().read_all().unwrap();
/// assert_eq!(events.len(), 3);
/// ```
#[derive(Debug)]
pub struct TraceRecorder<'a, S: EventSink> {
    controller: ArteryController<'a>,
    writer: S,
    keep_iq: bool,
}

impl<'a, S: EventSink> TraceRecorder<'a, S> {
    /// Wraps `controller`, streaming events to `writer` — any [`EventSink`]:
    /// a v1 [`TraceWriter`] or a v2 [`TraceWriterV2`]. IQ trajectories are
    /// recorded by default (see [`Self::without_iq`]).
    #[must_use]
    pub fn new(controller: ArteryController<'a>, writer: S) -> Self {
        Self {
            controller,
            writer,
            keep_iq: true,
        }
    }

    /// Drops IQ trajectories from recorded events, roughly halving the trace
    /// size. Window states — all a [`crate::Replayer`] needs — are always
    /// kept; only trajectory-consuming baselines (e.g. the FNN) lose their
    /// input.
    #[must_use]
    pub fn without_iq(mut self) -> Self {
        self.keep_iq = false;
        self
    }

    /// The wrapped controller.
    #[must_use]
    pub fn controller(&self) -> &ArteryController<'a> {
        &self.controller
    }

    /// Mutable access to the wrapped controller (threshold overrides,
    /// history seeding, stat resets).
    pub fn controller_mut(&mut self) -> &mut ArteryController<'a> {
        &mut self.controller
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn events_recorded(&self) -> u64 {
        self.writer.events_written()
    }

    /// Flushes the trace and dismantles the recorder into the controller and
    /// the writer's output.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] when the final flush fails.
    pub fn finish(self) -> Result<(ArteryController<'a>, S::Output), TraceError> {
        let sink = self.writer.finish()?;
        Ok((self.controller, sink))
    }
}

impl<S: EventSink> FeedbackHandler for TraceRecorder<'_, S> {
    fn resolve(&mut self, fb: &Feedback, reported: bool, rng: &mut StdRng) -> Resolution {
        let (resolution, trace) = self.controller.resolve_traced(fb, reported, rng);
        let event = TraceEvent::from_resolve(trace, self.keep_iq);
        // `FeedbackHandler::resolve` is infallible; a dead sink mid-run
        // cannot be handled gracefully, so fail loudly.
        self.writer
            .write_event(&event)
            .expect("trace sink failed while recording");
        resolution
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceHeader;
    use crate::format::TraceReader;
    use artery_core::{ArteryConfig, Calibration};
    use artery_num::rng::rng_for;
    use artery_sim::{Executor, NoiseModel};

    fn calibration(config: &ArteryConfig) -> Calibration {
        Calibration::train(config, &mut rng_for("trace/rec-cal"))
    }

    #[test]
    fn recorded_run_matches_bare_controller() {
        let config = ArteryConfig {
            train_pulses: 400,
            ..ArteryConfig::paper()
        };
        let cal = calibration(&config);
        let circuit = artery_workloads::qrw(2);
        let mut exec = Executor::new(NoiseModel::noiseless());

        // Bare controller run.
        let mut bare = ArteryController::new(&circuit, &config, &cal);
        let mut rng = rng_for("trace/rec-run");
        for _ in 0..25 {
            let _ = exec.run(&circuit, &mut bare, &mut rng);
        }

        // Identical run through the recorder (same seed, same executor).
        let controller = ArteryController::new(&circuit, &config, &cal);
        let writer = TraceWriter::new(Vec::new(), &TraceHeader::new(&config, "unit/qrw")).unwrap();
        let mut recorder = TraceRecorder::new(controller, writer);
        let mut rng = rng_for("trace/rec-run");
        for _ in 0..25 {
            let _ = exec.run(&circuit, &mut recorder, &mut rng);
        }

        assert_eq!(recorder.events_recorded(), bare.stats().resolved);
        let (recorded, bytes) = recorder.finish().unwrap();
        assert_eq!(recorded.stats(), bare.stats());

        let reader = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.header().label, "unit/qrw");
        let events = reader.read_all().unwrap();
        assert_eq!(events.len() as u64, bare.stats().resolved);
        // Predicting sites carry the full window stream and IQ trajectory.
        for ev in &events {
            assert!(!ev.states.is_empty());
            assert_eq!(ev.states.len(), ev.iq.len());
        }
    }

    #[test]
    fn v2_recording_decodes_identically_to_v1() {
        let config = ArteryConfig {
            train_pulses: 400,
            ..ArteryConfig::paper()
        };
        let cal = calibration(&config);
        let circuit = artery_workloads::qrw(2);
        let mut exec = Executor::new(NoiseModel::noiseless());
        let header = TraceHeader::new(&config, "unit/v2-rec").with_shots(15);

        let mut v1 = TraceRecorder::new(
            ArteryController::new(&circuit, &config, &cal),
            TraceWriter::new(Vec::new(), &header).unwrap(),
        );
        let mut rng = rng_for("trace/rec-v2");
        for _ in 0..15 {
            let _ = exec.run(&circuit, &mut v1, &mut rng);
        }
        let (_, v1_bytes) = v1.finish().unwrap();

        let mut v2 = TraceRecorder::new(
            ArteryController::new(&circuit, &config, &cal),
            crate::TraceWriterV2::new(Vec::new(), &header)
                .unwrap()
                .with_events_per_block(8),
        );
        let mut rng = rng_for("trace/rec-v2");
        for _ in 0..15 {
            let _ = exec.run(&circuit, &mut v2, &mut rng);
        }
        let (_, v2_bytes) = v2.finish().unwrap();

        let v1_events = TraceReader::new(v1_bytes.as_slice())
            .unwrap()
            .read_all()
            .unwrap();
        assert!(!v1_events.is_empty());
        let v2_reader = TraceReader::new(v2_bytes.as_slice()).unwrap();
        assert_eq!(v2_reader.header().shots, 15);
        assert_eq!(v2_reader.read_all().unwrap(), v1_events);
    }

    #[test]
    fn without_iq_strips_trajectories_only() {
        let config = ArteryConfig {
            train_pulses: 400,
            ..ArteryConfig::paper()
        };
        let cal = calibration(&config);
        let circuit = artery_workloads::active_reset(1);
        let mut exec = Executor::new(NoiseModel::noiseless());

        let controller = ArteryController::new(&circuit, &config, &cal);
        let writer = TraceWriter::new(Vec::new(), &TraceHeader::new(&config, "unit/lean")).unwrap();
        let mut recorder = TraceRecorder::new(controller, writer).without_iq();
        let mut rng = rng_for("trace/rec-lean");
        for _ in 0..10 {
            let _ = exec.run(&circuit, &mut recorder, &mut rng);
        }
        let (_, bytes) = recorder.finish().unwrap();
        let events = TraceReader::new(bytes.as_slice())
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(events.len(), 10);
        for ev in &events {
            assert!(ev.iq.is_empty());
            assert!(!ev.states.is_empty());
        }
    }
}
