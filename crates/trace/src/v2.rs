//! Trace format v2: codec-compressed, independently replayable blocks.
//!
//! Layout:
//!
//! ```text
//! MAGIC (8 bytes: "ARTERYTR")
//! format version (u16 LE, = 2)
//! header segment:  varint byte length + v1 header body + varint shot count
//! block segments:  varint byte length + block body, repeated
//! trailer segment: varint byte length + trailer body (the block index)
//! tail: trailer-segment file offset (u64 LE) + TRAILER MAGIC ("ARTERYIX")
//! ```
//!
//! A block body is:
//!
//! ```text
//! kind byte (0)
//! varint event count
//! varint uncompressed payload length
//! FNV-1a checksum of the uncompressed payload (u64 LE)
//! history seed: varint site count, then per site
//!               varint site / varint ones / varint total
//! payload: Huffman stream (artery-pulse codec engine) of the
//!          concatenated v1 event frames, bytes widened to i16 symbols
//! ```
//!
//! The trailer body is `kind byte (1)`, varint total event count, varint
//! block count, then per block a varint offset delta (absolute file offset
//! of the block segment, delta-coded) and a varint event count. The tail
//! lets a reader with random access find the trailer by seeking 16 bytes
//! from the end — that plus the index makes a multi-GB trace seekable.
//!
//! **Blocks are independently replayable, not merely decodable.** History
//! evolution depends only on the recorded `(site, reported)` stream — never
//! on the replayed configuration — so the seed stored in each block header
//! is exactly the [`HistoryTracker`](artery_core::predictor::HistoryTracker)
//! state any replay of any configuration reaches at the block boundary.
//! Seeding a [`Replayer`](crate::Replayer) from it and replaying one block
//! therefore reproduces, bit for bit, the per-event outcomes a sequential
//! whole-trace replay computes — which is what lets `trace_eval` fan blocks
//! out as scheduler chunks and still stay byte-identical for any
//! `ARTERY_THREADS`.
//!
//! All compression goes through the PR 5 codec engine:
//! [`CodebookCache::huffman_encode_into`] with content-keyed codebooks, and
//! the zero-alloc `encode_into`/`decode_into` scratch paths.

use std::collections::BTreeMap;
use std::io::{Read, Write};

use artery_pulse::codec::{
    bytes_to_symbols, codebook_key, read_varint, symbols_to_bytes, write_varint, CodebookCache,
    CodecScratch, Huffman,
};

use crate::event::{TraceEvent, TraceHeader};
use crate::format::{
    decode_event, decode_header_body_v2, encode_event_into, encode_header_body_v2,
    read_frame_capped, varint_len, TraceError, FORMAT_VERSION_V2, MAGIC,
};

/// Magic closing the tail: the last eight bytes of every v2 trace.
pub const TRAILER_MAGIC: [u8; 8] = *b"ARTERYIX";

/// Default number of events per block.
pub const DEFAULT_EVENTS_PER_BLOCK: usize = 256;

const SEGMENT_BLOCK: u8 = 0;
const SEGMENT_TRAILER: u8 = 1;

/// Segment cap: a block bundles hundreds of events, so it gets a larger
/// allowance than v1's single-event frames (256 MiB).
const MAX_SEGMENT_BYTES: u64 = 1 << 28;

/// Cap on a block's uncompressed payload, guarding decode allocations.
const MAX_BLOCK_RAW_BYTES: u64 = 1 << 28;

/// Cap on index/seed entry counts, guarding against corrupt headers.
const MAX_ENTRIES: u64 = 1 << 24;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// One site's exact history counters — a block-boundary snapshot entry.
///
/// Restoring every entry via
/// [`Replayer::seed_history_counts`](crate::Replayer::seed_history_counts)
/// reproduces the priors a sequential replay sees at that boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoryCount {
    /// Feedback site index.
    pub site: usize,
    /// Observed 1-outcomes at the site so far.
    pub ones: u64,
    /// Total observed outcomes at the site so far.
    pub total: u64,
}

/// A decoded block: its events plus the history snapshot taken at its
/// first event.
#[derive(Debug, Clone)]
pub struct DecodedBlock {
    /// The block's events, in recording order.
    pub events: Vec<TraceEvent>,
    /// History counters at the block's first event, sorted by site.
    pub history: Vec<HistoryCount>,
    /// Uncompressed payload size in bytes (decode-throughput accounting).
    pub raw_bytes: usize,
}

/// Reusable decode workspace threaded through block decodes, mirroring the
/// codec engine's scratch idiom.
#[derive(Debug, Default)]
pub struct BlockScratch {
    codec: CodecScratch,
    symbols: Vec<i16>,
    raw: Vec<u8>,
}

impl BlockScratch {
    /// An empty workspace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

// ---------------------------------------------------------------------------
// Writer.

#[derive(Debug)]
struct IndexEntry {
    /// Absolute file offset of the block segment.
    offset: u64,
    /// Events in the block.
    events: u64,
}

/// Streaming v2 trace writer: buffers events into blocks, compresses each
/// block through the codec engine, and closes the stream with the block
/// index and tail.
///
/// Event bodies, block payloads, history seeds and segment frames are all
/// built in reusable scratch buffers; once they reach their high-water
/// sizes (and the [`CodebookCache`] has seen the block's codebook), the
/// steady-state write path performs no per-event heap allocation — pinned
/// by the `trace_zero_alloc` counting-allocator test.
#[derive(Debug)]
pub struct TraceWriterV2<W: Write> {
    sink: W,
    /// Bytes written so far (absolute file offset of the next segment).
    offset: u64,
    events: u64,
    events_per_block: usize,
    /// Events buffered in the currently open block.
    block_events: u64,
    /// Concatenated v1 event frames of the open block.
    block_raw: Vec<u8>,
    /// Serialized history snapshot taken when the open block started.
    seed_buf: Vec<u8>,
    /// Per-event body scratch.
    body: Vec<u8>,
    /// Per-event state-run scratch.
    runs: Vec<u64>,
    /// Frame-length varint scratch.
    len_buf: Vec<u8>,
    /// Assembled segment body scratch.
    seg: Vec<u8>,
    /// Compressed payload scratch.
    enc: Vec<u8>,
    /// Byte → i16 symbol scratch.
    symbols: Vec<i16>,
    scratch: CodecScratch,
    cache: CodebookCache,
    /// Running history counters (ascending site order for deterministic
    /// seed serialization).
    history: BTreeMap<usize, (u64, u64)>,
    index: Vec<IndexEntry>,
}

impl<W: Write> TraceWriterV2<W> {
    /// Starts a v2 trace on `sink`, writing magic, version and `header`
    /// (including its advisory shot count).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] when the sink fails.
    pub fn new(mut sink: W, header: &TraceHeader) -> Result<Self, TraceError> {
        sink.write_all(&MAGIC)?;
        sink.write_all(&FORMAT_VERSION_V2.to_le_bytes())?;
        let header_body = encode_header_body_v2(header);
        let mut len_buf = Vec::with_capacity(artery_pulse::codec::MAX_VARINT_LEN);
        write_varint(&mut len_buf, header_body.len() as u64);
        sink.write_all(&len_buf)?;
        sink.write_all(&header_body)?;
        let offset = 10 + len_buf.len() as u64 + header_body.len() as u64;
        Ok(Self {
            sink,
            offset,
            events: 0,
            events_per_block: DEFAULT_EVENTS_PER_BLOCK,
            block_events: 0,
            block_raw: Vec::new(),
            seed_buf: Vec::new(),
            body: Vec::new(),
            runs: Vec::new(),
            len_buf,
            seg: Vec::new(),
            enc: Vec::new(),
            symbols: Vec::new(),
            scratch: CodecScratch::new(),
            cache: CodebookCache::new(),
            history: BTreeMap::new(),
            index: Vec::new(),
        })
    }

    /// Sets the block size. Must be called before the first event.
    ///
    /// # Panics
    ///
    /// Panics when `events_per_block` is zero or events were written.
    #[must_use]
    pub fn with_events_per_block(mut self, events_per_block: usize) -> Self {
        assert!(events_per_block > 0, "a block must hold at least one event");
        assert_eq!(self.events, 0, "block size is fixed after the first event");
        self.events_per_block = events_per_block;
        self
    }

    /// Appends one event, flushing a block segment when it fills.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] when the sink fails.
    pub fn write_event(&mut self, event: &TraceEvent) -> Result<(), TraceError> {
        if self.block_events == 0 {
            self.snapshot_seed();
        }
        encode_event_into(event, &mut self.body, &mut self.runs);
        self.len_buf.clear();
        write_varint(&mut self.len_buf, self.body.len() as u64);
        self.block_raw.extend_from_slice(&self.len_buf);
        self.block_raw.extend_from_slice(&self.body);
        let entry = self.history.entry(event.site).or_insert((0, 0));
        entry.0 += u64::from(event.reported);
        entry.1 += 1;
        self.block_events += 1;
        self.events += 1;
        if self.block_events as usize >= self.events_per_block {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Number of events written so far.
    #[must_use]
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Flushes the open block (if any), writes the trailer index and the
    /// tail, then returns the sink.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] when the sink fails.
    pub fn finish(mut self) -> Result<W, TraceError> {
        if self.block_events > 0 {
            self.flush_block()?;
        }
        let trailer_offset = self.offset;
        self.seg.clear();
        self.seg.push(SEGMENT_TRAILER);
        write_varint(&mut self.seg, self.events);
        write_varint(&mut self.seg, self.index.len() as u64);
        let mut prev = 0u64;
        for entry in &self.index {
            write_varint(&mut self.seg, entry.offset - prev);
            prev = entry.offset;
            write_varint(&mut self.seg, entry.events);
        }
        self.write_segment()?;
        self.sink.write_all(&trailer_offset.to_le_bytes())?;
        self.sink.write_all(&TRAILER_MAGIC)?;
        self.sink.flush()?;
        Ok(self.sink)
    }

    /// Serializes the running history counters into `seed_buf` — the state
    /// every replay reaches at the block boundary about to open.
    fn snapshot_seed(&mut self) {
        self.seed_buf.clear();
        write_varint(&mut self.seed_buf, self.history.len() as u64);
        for (&site, &(ones, total)) in &self.history {
            write_varint(&mut self.seed_buf, site as u64);
            write_varint(&mut self.seed_buf, ones);
            write_varint(&mut self.seed_buf, total);
        }
    }

    fn flush_block(&mut self) -> Result<(), TraceError> {
        bytes_to_symbols(&self.block_raw, &mut self.symbols);
        let key = codebook_key(&self.symbols);
        self.cache
            .huffman_encode_into(key, &self.symbols, &mut self.scratch, &mut self.enc);
        self.seg.clear();
        self.seg.push(SEGMENT_BLOCK);
        write_varint(&mut self.seg, self.block_events);
        write_varint(&mut self.seg, self.block_raw.len() as u64);
        self.seg
            .extend_from_slice(&fnv1a64(&self.block_raw).to_le_bytes());
        self.seg.extend_from_slice(&self.seed_buf);
        self.seg.extend_from_slice(&self.enc);
        self.index.push(IndexEntry {
            offset: self.offset,
            events: self.block_events,
        });
        self.write_segment()?;
        self.block_raw.clear();
        self.block_events = 0;
        Ok(())
    }

    fn write_segment(&mut self) -> Result<(), TraceError> {
        self.len_buf.clear();
        write_varint(&mut self.len_buf, self.seg.len() as u64);
        self.sink.write_all(&self.len_buf)?;
        self.sink.write_all(&self.seg)?;
        self.offset += self.len_buf.len() as u64 + self.seg.len() as u64;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Block decoding (shared by the streaming reader and the seekable view).

fn decode_block_body(body: &[u8], scratch: &mut BlockScratch) -> Result<DecodedBlock, TraceError> {
    let mut pos = 0usize;
    let kind = *body
        .get(pos)
        .ok_or_else(|| TraceError::corrupt("empty segment"))?;
    pos += 1;
    if kind != SEGMENT_BLOCK {
        return Err(TraceError::corrupt(format!(
            "expected a block segment, found kind {kind}"
        )));
    }
    let event_count = read_varint(body, &mut pos)?;
    if event_count > MAX_ENTRIES {
        return Err(TraceError::corrupt("block event count exceeds the cap"));
    }
    let raw_len = read_varint(body, &mut pos)?;
    if raw_len > MAX_BLOCK_RAW_BYTES {
        return Err(TraceError::corrupt("block payload length exceeds the cap"));
    }
    let checksum_bytes = body
        .get(pos..pos + 8)
        .ok_or_else(|| TraceError::corrupt("block checksum truncated"))?;
    let checksum = u64::from_le_bytes(checksum_bytes.try_into().expect("length checked"));
    pos += 8;

    let seed_count = read_varint(body, &mut pos)?;
    if seed_count > MAX_ENTRIES {
        return Err(TraceError::corrupt("block seed count exceeds the cap"));
    }
    let mut history = Vec::with_capacity(seed_count as usize);
    let mut prev_site: Option<usize> = None;
    for _ in 0..seed_count {
        let site = usize::try_from(read_varint(body, &mut pos)?)
            .map_err(|_| TraceError::corrupt("seed site exceeds usize"))?;
        let ones = read_varint(body, &mut pos)?;
        let total = read_varint(body, &mut pos)?;
        if ones > total {
            return Err(TraceError::corrupt("seed ones exceed total"));
        }
        if prev_site.is_some_and(|p| p >= site) {
            return Err(TraceError::corrupt("seed sites are not strictly ascending"));
        }
        prev_site = Some(site);
        history.push(HistoryCount { site, ones, total });
    }

    Huffman
        .decode_into(&body[pos..], &mut scratch.codec, &mut scratch.symbols)
        .map_err(|e| TraceError::corrupt(format!("block payload: {e}")))?;
    symbols_to_bytes(&scratch.symbols, &mut scratch.raw)
        .map_err(|e| TraceError::corrupt(format!("block payload: {e}")))?;
    if scratch.raw.len() as u64 != raw_len {
        return Err(TraceError::corrupt(format!(
            "block payload decompressed to {} bytes, header declares {raw_len}",
            scratch.raw.len()
        )));
    }
    if fnv1a64(&scratch.raw) != checksum {
        return Err(TraceError::corrupt("block checksum mismatch"));
    }

    let mut events = Vec::with_capacity(event_count as usize);
    let mut raw_pos = 0usize;
    for _ in 0..event_count {
        let frame_len = read_varint(&scratch.raw, &mut raw_pos)?;
        let frame = scratch
            .raw
            .get(raw_pos..raw_pos + frame_len as usize)
            .ok_or_else(|| TraceError::corrupt("block event frame truncated"))?;
        raw_pos += frame_len as usize;
        events.push(decode_event(frame)?);
    }
    if raw_pos != scratch.raw.len() {
        return Err(TraceError::corrupt("trailing bytes in block payload"));
    }
    Ok(DecodedBlock {
        events,
        history,
        raw_bytes: scratch.raw.len(),
    })
}

// ---------------------------------------------------------------------------
// Streaming reader state (used by `TraceReader` for v2 sources).

/// v2 streaming state: decodes one block at a time, then validates the
/// trailer index (offsets and event counts must match the blocks actually
/// read) and the 16-byte tail.
#[derive(Debug)]
pub(crate) struct V2Stream {
    pending: std::vec::IntoIter<TraceEvent>,
    scratch: BlockScratch,
    finished: bool,
    /// Absolute file offset of the next segment.
    offset: u64,
    /// Blocks read so far: (segment offset, event count).
    blocks: Vec<(u64, u64)>,
    events_decoded: u64,
}

impl V2Stream {
    pub(crate) fn new(offset_after_header: u64) -> Self {
        Self {
            pending: Vec::new().into_iter(),
            scratch: BlockScratch::new(),
            finished: false,
            offset: offset_after_header,
            blocks: Vec::new(),
            events_decoded: 0,
        }
    }

    pub(crate) fn next_event<R: Read>(
        &mut self,
        src: &mut R,
    ) -> Result<Option<TraceEvent>, TraceError> {
        loop {
            if let Some(ev) = self.pending.next() {
                return Ok(Some(ev));
            }
            if self.finished {
                return Ok(None);
            }
            let segment = read_frame_capped(src, "segment", MAX_SEGMENT_BYTES)?
                .ok_or_else(|| TraceError::corrupt("trace ends without a trailer"))?;
            let segment_offset = self.offset;
            self.offset += varint_len(segment.len() as u64) + segment.len() as u64;
            match segment.first() {
                Some(&SEGMENT_BLOCK) => {
                    let block = decode_block_body(&segment, &mut self.scratch)?;
                    self.blocks
                        .push((segment_offset, block.events.len() as u64));
                    self.events_decoded += block.events.len() as u64;
                    self.pending = block.events.into_iter();
                }
                Some(&SEGMENT_TRAILER) => {
                    self.check_trailer(&segment, segment_offset)?;
                    self.check_tail(src, segment_offset)?;
                    self.finished = true;
                }
                Some(&kind) => {
                    return Err(TraceError::corrupt(format!("unknown segment kind {kind}")));
                }
                None => return Err(TraceError::corrupt("empty segment")),
            }
        }
    }

    fn check_trailer(&self, body: &[u8], _offset: u64) -> Result<(), TraceError> {
        let index = decode_trailer_body(body)?;
        if index.total_events != self.events_decoded {
            return Err(TraceError::corrupt(format!(
                "trailer declares {} events, blocks held {}",
                index.total_events, self.events_decoded
            )));
        }
        if index.entries.len() != self.blocks.len() {
            return Err(TraceError::corrupt(format!(
                "trailer indexes {} blocks, stream held {}",
                index.entries.len(),
                self.blocks.len()
            )));
        }
        for (entry, &(offset, events)) in index.entries.iter().zip(&self.blocks) {
            if entry.offset != offset || entry.events != events {
                return Err(TraceError::corrupt("trailer index disagrees with blocks"));
            }
        }
        Ok(())
    }

    fn check_tail<R: Read>(&self, src: &mut R, trailer_offset: u64) -> Result<(), TraceError> {
        let mut tail = [0u8; 16];
        src.read_exact(&mut tail).map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => TraceError::corrupt("tail truncated"),
            _ => TraceError::Io(e),
        })?;
        let declared = u64::from_le_bytes(tail[..8].try_into().expect("length checked"));
        if declared != trailer_offset {
            return Err(TraceError::corrupt(format!(
                "tail points at offset {declared}, trailer is at {trailer_offset}"
            )));
        }
        if tail[8..] != TRAILER_MAGIC {
            return Err(TraceError::corrupt("bad trailer magic"));
        }
        let mut extra = [0u8; 1];
        match src.read(&mut extra) {
            Ok(0) => Ok(()),
            Ok(_) => Err(TraceError::corrupt("trailing bytes after trace tail")),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(()),
            Err(e) => Err(TraceError::Io(e)),
        }
    }
}

// ---------------------------------------------------------------------------
// Trailer decoding + the seekable block view.

struct TrailerIndex {
    total_events: u64,
    entries: Vec<IndexEntry>,
}

fn decode_trailer_body(body: &[u8]) -> Result<TrailerIndex, TraceError> {
    let mut pos = 0usize;
    let kind = *body
        .get(pos)
        .ok_or_else(|| TraceError::corrupt("empty trailer segment"))?;
    pos += 1;
    if kind != SEGMENT_TRAILER {
        return Err(TraceError::corrupt(format!(
            "expected a trailer segment, found kind {kind}"
        )));
    }
    let total_events = read_varint(body, &mut pos)?;
    let block_count = read_varint(body, &mut pos)?;
    if block_count > MAX_ENTRIES {
        return Err(TraceError::corrupt("trailer block count exceeds the cap"));
    }
    let mut entries = Vec::with_capacity(block_count as usize);
    let mut prev = 0u64;
    let mut indexed_events = 0u64;
    for _ in 0..block_count {
        let delta = read_varint(body, &mut pos)?;
        let offset = prev
            .checked_add(delta)
            .ok_or_else(|| TraceError::corrupt("trailer offset overflows"))?;
        prev = offset;
        let events = read_varint(body, &mut pos)?;
        indexed_events += events;
        entries.push(IndexEntry { offset, events });
    }
    if pos != body.len() {
        return Err(TraceError::corrupt("trailing bytes in trailer segment"));
    }
    if indexed_events != total_events {
        return Err(TraceError::corrupt(
            "trailer event counts disagree with the total",
        ));
    }
    Ok(TrailerIndex {
        total_events,
        entries,
    })
}

/// Random-access view over an in-memory v2 trace: opens via the tail and
/// the trailer index, then decodes any block independently — the fan-out
/// surface the scheduler-backed replay jobs use.
#[derive(Debug)]
pub struct TraceBlocks<'a> {
    bytes: &'a [u8],
    header: TraceHeader,
    total_events: u64,
    index: Vec<IndexEntry>,
    /// Prefix sums: global index of each block's first event.
    event_offsets: Vec<u64>,
}

impl<'a> TraceBlocks<'a> {
    /// Opens a v2 trace from its full byte image, validating magic,
    /// version, header, tail and trailer index.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Corrupt`] when the image is not a well-formed
    /// v2 trace.
    pub fn open(bytes: &'a [u8]) -> Result<Self, TraceError> {
        if bytes.len() < 10 || bytes[..8] != MAGIC {
            return Err(TraceError::corrupt("bad magic — not an ARTERY trace"));
        }
        let version = u16::from_le_bytes(bytes[8..10].try_into().expect("length checked"));
        if version != FORMAT_VERSION_V2 {
            return Err(TraceError::corrupt(format!(
                "block view requires trace format version {FORMAT_VERSION_V2}, found {version}"
            )));
        }
        let mut pos = 10usize;
        let header_len = read_varint(bytes, &mut pos)?;
        let header_body = bytes
            .get(pos..pos + header_len as usize)
            .ok_or_else(|| TraceError::corrupt("header frame truncated"))?;
        let header = decode_header_body_v2(header_body)?;

        if bytes.len() < 16 {
            return Err(TraceError::corrupt("tail truncated"));
        }
        let tail = &bytes[bytes.len() - 16..];
        if tail[8..] != TRAILER_MAGIC {
            return Err(TraceError::corrupt("bad trailer magic"));
        }
        let trailer_offset = u64::from_le_bytes(tail[..8].try_into().expect("length checked"));
        let mut tpos = usize::try_from(trailer_offset)
            .ok()
            .filter(|&o| o < bytes.len() - 16)
            .ok_or_else(|| TraceError::corrupt("tail trailer offset out of range"))?;
        let trailer_len = read_varint(bytes, &mut tpos)?;
        let trailer_body = bytes
            .get(tpos..tpos + trailer_len as usize)
            .ok_or_else(|| TraceError::corrupt("trailer segment truncated"))?;
        if tpos + trailer_len as usize != bytes.len() - 16 {
            return Err(TraceError::corrupt("bytes between trailer and tail"));
        }
        let index = decode_trailer_body(trailer_body)?;
        let mut event_offsets = Vec::with_capacity(index.entries.len());
        let mut running = 0u64;
        for entry in &index.entries {
            event_offsets.push(running);
            running += entry.events;
        }
        Ok(Self {
            bytes,
            header,
            total_events: index.total_events,
            index: index.entries,
            event_offsets,
        })
    }

    /// The trace header.
    #[must_use]
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Number of blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the trace holds no blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Total events across all blocks.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Events in block `i`.
    #[must_use]
    pub fn block_events(&self, i: usize) -> u64 {
        self.index[i].events
    }

    /// Global index of block `i`'s first event.
    #[must_use]
    pub fn event_offset(&self, i: usize) -> u64 {
        self.event_offsets[i]
    }

    /// Decodes block `i` independently of every other block.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Corrupt`] when the block fails its checksum or
    /// is otherwise malformed.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn decode_block(
        &self,
        i: usize,
        scratch: &mut BlockScratch,
    ) -> Result<DecodedBlock, TraceError> {
        let entry = &self.index[i];
        let mut pos = usize::try_from(entry.offset)
            .ok()
            .filter(|&o| o < self.bytes.len())
            .ok_or_else(|| TraceError::corrupt("block offset out of range"))?;
        let seg_len = read_varint(self.bytes, &mut pos)?;
        if seg_len > MAX_SEGMENT_BYTES {
            return Err(TraceError::corrupt("block segment exceeds the cap"));
        }
        let body = self
            .bytes
            .get(pos..pos + seg_len as usize)
            .ok_or_else(|| TraceError::corrupt("block segment truncated"))?;
        let block = decode_block_body(body, scratch)?;
        if block.events.len() as u64 != entry.events {
            return Err(TraceError::corrupt(format!(
                "block {i} holds {} events, index declares {}",
                block.events.len(),
                entry.events
            )));
        }
        Ok(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceReader;
    use crate::Replayer;
    use artery_circuit::analysis::PreExecCase;
    use artery_core::{ArteryConfig, Calibration};
    use artery_num::rng::rng_for;

    fn sample_header() -> TraceHeader {
        TraceHeader::new(&ArteryConfig::paper(), "unit/v2").with_shots(7)
    }

    fn sample_events(n: usize) -> Vec<TraceEvent> {
        (0..n)
            .map(|i| TraceEvent {
                site: i % 3,
                case: if i % 5 == 4 {
                    PreExecCase::NotPreExecutable
                } else {
                    PreExecCase::Independent
                },
                reported: i % 2 == 0,
                states: (0..6).map(|w| (w + i) % 4 != 0).collect(),
                iq: if i % 2 == 0 {
                    vec![(i as f32, -(i as f32) / 2.0)]
                } else {
                    Vec::new()
                },
                p_history: 0.5 + (i as f64) / 64.0,
                decision: (i % 3 == 0).then_some(crate::RecordedDecision {
                    window: i % 6,
                    branch: i % 4 == 0,
                }),
                latency_ns: 400.0 + i as f64,
                branch0_ns: 0.0,
                branch1_ns: 30.0,
            })
            .collect()
    }

    fn write_v2(events: &[TraceEvent], per_block: usize) -> Vec<u8> {
        let mut w = TraceWriterV2::new(Vec::new(), &sample_header())
            .unwrap()
            .with_events_per_block(per_block);
        for ev in events {
            w.write_event(ev).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn v2_round_trips_through_the_streaming_reader() {
        let events = sample_events(23);
        let bytes = write_v2(&events, 5);
        let reader = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.version(), FORMAT_VERSION_V2);
        assert_eq!(reader.header(), &sample_header());
        assert_eq!(reader.header().shots, 7);
        let decoded = reader.read_all().unwrap();
        assert_eq!(decoded, events);
    }

    #[test]
    fn empty_v2_trace_round_trips() {
        let bytes = write_v2(&[], 4);
        let reader = TraceReader::new(bytes.as_slice()).unwrap();
        assert!(reader.read_all().unwrap().is_empty());
        let blocks = TraceBlocks::open(&bytes).unwrap();
        assert!(blocks.is_empty());
        assert_eq!(blocks.total_events(), 0);
    }

    #[test]
    fn block_view_decodes_blocks_independently() {
        let events = sample_events(23);
        let bytes = write_v2(&events, 5);
        let blocks = TraceBlocks::open(&bytes).unwrap();
        assert_eq!(blocks.len(), 5); // 4 full blocks + a 3-event remainder
        assert_eq!(blocks.total_events(), 23);
        assert_eq!(blocks.block_events(4), 3);
        let mut scratch = BlockScratch::new();
        // Decode out of order: blocks must not depend on one another.
        let mut decoded = vec![Vec::new(); blocks.len()];
        for i in [3usize, 0, 4, 2, 1] {
            let block = blocks.decode_block(i, &mut scratch).unwrap();
            assert!(block.raw_bytes > 0);
            decoded[i] = block.events;
        }
        let flat: Vec<TraceEvent> = decoded.into_iter().flatten().collect();
        assert_eq!(flat, events);
        assert_eq!(blocks.event_offset(2), 10);
    }

    #[test]
    fn block_history_seeds_match_a_sequential_replay() {
        let config = ArteryConfig {
            train_pulses: 400,
            ..ArteryConfig::paper()
        };
        let cal = Calibration::train(&config, &mut rng_for("v2/seed-cal"));
        let events = sample_events(23);
        let bytes = write_v2(&events, 5);
        let blocks = TraceBlocks::open(&bytes).unwrap();
        let mut scratch = BlockScratch::new();

        // Sequential whole-trace replay as the oracle.
        let mut oracle = Replayer::new(&cal, &config);
        let oracle_outcomes: Vec<_> = events.iter().map(|ev| oracle.replay_event(ev)).collect();

        // Each block, replayed independently from its stored seed, must
        // reproduce the oracle's per-event outcomes bit for bit.
        for i in 0..blocks.len() {
            let block = blocks.decode_block(i, &mut scratch).unwrap();
            let mut replay = Replayer::new(&cal, &config);
            replay.seed_history_counts(&block.history);
            let start = blocks.event_offset(i) as usize;
            for (j, ev) in block.events.iter().enumerate() {
                let out = replay.replay_event(ev);
                assert_eq!(out, oracle_outcomes[start + j], "block {i} event {j}");
            }
        }
    }

    #[test]
    fn corrupted_block_payload_is_rejected() {
        let events = sample_events(12);
        let mut bytes = write_v2(&events, 4);
        let blocks = TraceBlocks::open(&bytes).unwrap();
        assert_eq!(blocks.len(), 3);
        drop(blocks);
        // Flip one byte in the middle of the stream (inside a block
        // segment, past header and first block framing).
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let corrupt_streaming = TraceReader::new(bytes.as_slice())
            .and_then(|r| r.read_all())
            .is_err();
        let corrupt_seek = match TraceBlocks::open(&bytes) {
            Err(_) => true,
            Ok(view) => {
                let mut scratch = BlockScratch::new();
                (0..view.len()).any(|i| view.decode_block(i, &mut scratch).is_err())
            }
        };
        assert!(
            corrupt_streaming && corrupt_seek,
            "a flipped byte must fail both read paths"
        );
    }

    #[test]
    fn truncated_tail_is_rejected() {
        let events = sample_events(6);
        let bytes = write_v2(&events, 4);
        let err = TraceReader::new(&bytes[..bytes.len() - 1])
            .and_then(|r| r.read_all())
            .unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)), "{err}");
        assert!(TraceBlocks::open(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn trailing_garbage_after_tail_is_rejected() {
        let events = sample_events(6);
        let mut bytes = write_v2(&events, 4);
        bytes.push(0);
        let err = TraceReader::new(bytes.as_slice())
            .and_then(|r| r.read_all())
            .unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn v1_reader_path_is_untouched_by_negotiation() {
        let events = sample_events(9);
        let mut w = crate::TraceWriter::new(Vec::new(), &sample_header()).unwrap();
        for ev in events.iter() {
            w.write_event(ev).unwrap();
        }
        let bytes = w.finish().unwrap();
        let reader = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.version(), crate::FORMAT_VERSION);
        // v1 cannot carry the shot hint; it decodes as unknown.
        assert_eq!(reader.header().shots, 0);
        assert_eq!(reader.read_all().unwrap(), events);
    }
}
