//! The in-memory representation of one recorded feedback resolution.

use artery_circuit::analysis::PreExecCase;
use artery_core::{ArteryConfig, ResolveTrace};

/// The decision the live predictor committed to, if it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordedDecision {
    /// Demodulation window at which the predictor crossed θ.
    pub window: usize,
    /// The branch it committed to.
    pub branch: bool,
}

/// One recorded feedback resolution — everything a replay needs to re-drive
/// an arbitrary predictor configuration over the shot, plus the live run's
/// own decision and latency for equivalence checking.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Feedback site index within the circuit.
    pub site: usize,
    /// The §3 pre-execution case of the site.
    pub case: PreExecCase,
    /// The branch the hardware reported at readout end.
    pub reported: bool,
    /// Per-window preliminary classifications of the in-flight readout pulse
    /// (empty for case-4 sites, which never predict).
    pub states: Vec<bool>,
    /// Cumulative IQ trajectory at each window boundary, stored at `f32`
    /// precision (sufficient for trajectory-consuming baselines; empty when
    /// the recorder drops IQ to shrink the trace).
    pub iq: Vec<(f32, f32)>,
    /// Historical prior `P_history_1` the live predictor saw.
    pub p_history: f64,
    /// The live predictor's commitment, if any.
    pub decision: Option<RecordedDecision>,
    /// Feedback latency the live run charged, ns.
    pub latency_ns: f64,
    /// Branch-0 pulse duration, ns.
    pub branch0_ns: f64,
    /// Branch-1 pulse duration, ns.
    pub branch1_ns: f64,
}

impl TraceEvent {
    /// Converts the controller's [`ResolveTrace`] into a trace event,
    /// optionally keeping the IQ trajectory.
    #[must_use]
    pub fn from_resolve(trace: ResolveTrace, keep_iq: bool) -> Self {
        let decision = match (trace.window, trace.predicted) {
            (Some(window), Some(branch)) => Some(RecordedDecision { window, branch }),
            _ => None,
        };
        Self {
            site: trace.site.0,
            case: trace.case,
            reported: trace.reported,
            states: trace.states,
            iq: if keep_iq {
                trace
                    .iq
                    .iter()
                    .map(|&(i, q)| (i as f32, q as f32))
                    .collect()
            } else {
                Vec::new()
            },
            p_history: trace.p_history,
            decision,
            latency_ns: trace.latency_ns,
            branch0_ns: trace.branch0_ns,
            branch1_ns: trace.branch1_ns,
        }
    }
}

/// Trace-file header: the configuration the recording controller ran with
/// and a free-form label (workload name, shot count, …).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceHeader {
    /// Configuration of the recording controller. Replaying this exact
    /// configuration reproduces the live run bit-for-bit.
    pub config: ArteryConfig,
    /// Free-form description of the recorded corpus.
    pub label: String,
    /// Advisory shot count of the recording (0 = unknown). Readers use it
    /// to pre-size event buffers; it is stored by trace format v2 and
    /// silently dropped by v1, which predates the field.
    pub shots: u64,
}

impl TraceHeader {
    /// Builds a header for `config` with a descriptive label and an unknown
    /// shot count.
    #[must_use]
    pub fn new(config: &ArteryConfig, label: impl Into<String>) -> Self {
        Self {
            config: *config,
            label: label.into(),
            shots: 0,
        }
    }

    /// Sets the advisory shot count (see [`Self::shots`]).
    #[must_use]
    pub fn with_shots(mut self, shots: u64) -> Self {
        self.shots = shots;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_circuit::FeedbackSite;

    #[test]
    fn from_resolve_pairs_the_decision() {
        let base = ResolveTrace {
            site: FeedbackSite(3),
            case: PreExecCase::Independent,
            states: vec![true, false, true],
            iq: vec![(0.25, -1.5), (0.5, -1.0), (0.75, -0.5)],
            p_history: 0.625,
            reported: true,
            predicted: Some(true),
            window: Some(2),
            latency_ns: 412.0,
            branch0_ns: 0.0,
            branch1_ns: 30.0,
        };
        let ev = TraceEvent::from_resolve(base.clone(), true);
        assert_eq!(ev.site, 3);
        assert_eq!(
            ev.decision,
            Some(RecordedDecision {
                window: 2,
                branch: true,
            })
        );
        assert_eq!(ev.iq.len(), 3);
        assert_eq!(ev.iq[0], (0.25, -1.5));

        let no_iq = TraceEvent::from_resolve(base.clone(), false);
        assert!(no_iq.iq.is_empty());
        assert_eq!(no_iq.states, base.states);

        let undecided = TraceEvent::from_resolve(
            ResolveTrace {
                predicted: None,
                window: None,
                ..base
            },
            true,
        );
        assert_eq!(undecided.decision, None);
    }
}
