//! The versioned binary trace format (v1 layout + version negotiation).
//!
//! v1 layout:
//!
//! ```text
//! MAGIC (8 bytes: "ARTERYTR")
//! format version (u16 LE)
//! header frame:  varint byte length + header body
//! event frames:  varint byte length + event body, repeated until EOF
//! ```
//!
//! Framing every record with its byte length lets the reader stream events
//! one at a time, detect truncation precisely, and (in future versions) skip
//! records it does not understand. Inside a frame the encoding reuses the
//! LEB128 varint primitive of `artery-pulse`'s codec layer; the per-window
//! state stream — the bulk of every event — is run-length encoded as
//! alternating varint run lengths, mirroring the pulse codecs' RLE idiom.
//! Floating-point fields are stored as IEEE-754 bit patterns (little-endian),
//! so every value round-trips exactly.
//!
//! Format v2 (see [`crate::v2`]) shares the magic, the version word, the
//! header body and the per-event body encoding, but groups events into
//! codec-compressed, independently replayable blocks with a trailing block
//! index. [`TraceReader`] negotiates the version at open time and reads
//! both formats; v1 bytes decode exactly as they always did.

use std::io::{Read, Write};

use artery_circuit::analysis::PreExecCase;
use artery_core::ArteryConfig;
use artery_pulse::codec::{read_varint, write_varint, DecodeError};

use crate::event::{RecordedDecision, TraceEvent, TraceHeader};

/// File magic: the first eight bytes of every trace.
pub const MAGIC: [u8; 8] = *b"ARTERYTR";

/// Format version 1 — the flat frame-per-event layout [`TraceWriter`]
/// writes. [`TraceReader`] reads it byte-for-byte alongside v2.
pub const FORMAT_VERSION: u16 = 1;

/// Format version 2 — the blocked, codec-compressed layout
/// [`TraceWriterV2`](crate::TraceWriterV2) writes.
pub const FORMAT_VERSION_V2: u16 = 2;

/// Upper bound on a single frame, guarding `Vec` allocations against
/// corrupt length fields (16 MiB — three orders of magnitude above any
/// real event).
const MAX_FRAME_BYTES: u64 = 1 << 24;

/// Upper bound on decoded per-event sequence lengths (window states, IQ
/// points); real readouts have at most a few hundred windows.
const MAX_SEQUENCE_LEN: u64 = 1 << 20;

/// Failure while writing or reading a trace.
#[derive(Debug)]
pub enum TraceError {
    /// The underlying sink or source failed.
    Io(std::io::Error),
    /// The byte stream is not a valid trace: bad magic, unsupported
    /// version, truncated frame, or inconsistent fields.
    Corrupt(String),
}

impl TraceError {
    pub(crate) fn corrupt(message: impl Into<String>) -> Self {
        Self::Corrupt(message.into())
    }
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "trace i/o error: {e}"),
            Self::Corrupt(m) => write!(f, "corrupt trace: {m}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<DecodeError> for TraceError {
    fn from(e: DecodeError) -> Self {
        Self::Corrupt(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Little-endian IEEE-754 scalar helpers.

fn push_f64(out: &mut Vec<u8>, value: f64) {
    out.extend_from_slice(&value.to_bits().to_le_bytes());
}

fn push_f32(out: &mut Vec<u8>, value: f32) {
    out.extend_from_slice(&value.to_bits().to_le_bytes());
}

fn take<const N: usize>(bytes: &[u8], pos: &mut usize, what: &str) -> Result<[u8; N], TraceError> {
    let slice = bytes
        .get(*pos..*pos + N)
        .ok_or_else(|| TraceError::corrupt(format!("{what} truncated")))?;
    *pos += N;
    Ok(slice.try_into().expect("length checked"))
}

fn read_f64(bytes: &[u8], pos: &mut usize, what: &str) -> Result<f64, TraceError> {
    Ok(f64::from_bits(u64::from_le_bytes(take::<8>(
        bytes, pos, what,
    )?)))
}

fn read_f32(bytes: &[u8], pos: &mut usize, what: &str) -> Result<f32, TraceError> {
    Ok(f32::from_bits(u32::from_le_bytes(take::<4>(
        bytes, pos, what,
    )?)))
}

fn read_len(bytes: &[u8], pos: &mut usize, what: &str) -> Result<usize, TraceError> {
    let v = read_varint(bytes, pos)?;
    usize::try_from(v).map_err(|_| TraceError::corrupt(format!("{what} exceeds usize")))
}

// ---------------------------------------------------------------------------
// Streaming frame primitives.

/// Reads one byte, distinguishing clean EOF (`None`) from failure.
fn read_byte<R: Read>(src: &mut R) -> Result<Option<u8>, TraceError> {
    let mut buf = [0u8; 1];
    loop {
        match src.read(&mut buf) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(buf[0])),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(TraceError::Io(e)),
        }
    }
}

/// Reads a frame-length varint from the stream. `None` only when the stream
/// ends exactly at a frame boundary; a partial varint is corruption.
fn read_frame_len<R: Read>(src: &mut R) -> Result<Option<u64>, TraceError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = match read_byte(src)? {
            Some(b) => b,
            None if shift == 0 => return Ok(None),
            None => return Err(TraceError::corrupt("frame length truncated")),
        };
        let group = u64::from(byte & 0x7f);
        if shift >= 64 || (shift == 63 && group > 1) {
            return Err(TraceError::corrupt("frame length varint overflows u64"));
        }
        value |= group << shift;
        if byte & 0x80 == 0 {
            return Ok(Some(value));
        }
        shift += 7;
    }
}

/// Reads one length-prefixed frame; `None` at clean EOF.
pub(crate) fn read_frame<R: Read>(src: &mut R, what: &str) -> Result<Option<Vec<u8>>, TraceError> {
    read_frame_capped(src, what, MAX_FRAME_BYTES)
}

/// [`read_frame`] with an explicit length cap (v2 block segments bundle
/// hundreds of events, so they get a larger allowance than single frames).
pub(crate) fn read_frame_capped<R: Read>(
    src: &mut R,
    what: &str,
    cap: u64,
) -> Result<Option<Vec<u8>>, TraceError> {
    let len = match read_frame_len(src)? {
        None => return Ok(None),
        Some(l) => l,
    };
    if len > cap {
        return Err(TraceError::corrupt(format!(
            "{what} frame length {len} exceeds the {cap}-byte cap"
        )));
    }
    let mut frame = vec![0u8; len as usize];
    src.read_exact(&mut frame).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => TraceError::corrupt(format!("{what} frame truncated")),
        _ => TraceError::Io(e),
    })?;
    Ok(Some(frame))
}

/// Encoded length of a LEB128 varint, for offset bookkeeping.
pub(crate) fn varint_len(value: u64) -> u64 {
    let bits = 64 - u64::from(value.leading_zeros());
    bits.max(1).div_ceil(7)
}

pub(crate) fn write_frame<W: Write>(sink: &mut W, body: &[u8]) -> Result<(), TraceError> {
    let mut len = Vec::with_capacity(artery_pulse::codec::MAX_VARINT_LEN);
    write_varint(&mut len, body.len() as u64);
    sink.write_all(&len)?;
    sink.write_all(body)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Header body.

const HEADER_FLAG_HISTORY: u8 = 1;
const HEADER_FLAG_TRAJECTORY: u8 = 1 << 1;

pub(crate) fn encode_header_body(header: &TraceHeader) -> Vec<u8> {
    let c = &header.config;
    let mut out = Vec::with_capacity(64 + header.label.len());
    push_f64(&mut out, c.window_ns);
    push_f64(&mut out, c.theta);
    push_f64(&mut out, c.route_ns);
    push_f64(&mut out, c.readout_ns);
    write_varint(&mut out, c.k as u64);
    write_varint(&mut out, c.time_buckets as u64);
    write_varint(&mut out, c.train_pulses as u64);
    let mut flags = 0u8;
    if c.use_history {
        flags |= HEADER_FLAG_HISTORY;
    }
    if c.use_trajectory {
        flags |= HEADER_FLAG_TRAJECTORY;
    }
    out.push(flags);
    write_varint(&mut out, header.label.len() as u64);
    out.extend_from_slice(header.label.as_bytes());
    out
}

/// The v2 header body: the v1 fields followed by the advisory shot count.
pub(crate) fn encode_header_body_v2(header: &TraceHeader) -> Vec<u8> {
    let mut out = encode_header_body(header);
    write_varint(&mut out, header.shots);
    out
}

pub(crate) fn decode_header_body(bytes: &[u8]) -> Result<TraceHeader, TraceError> {
    let mut pos = 0;
    let header = decode_header_fields(bytes, &mut pos)?;
    if pos != bytes.len() {
        return Err(TraceError::corrupt("trailing bytes in header frame"));
    }
    Ok(header)
}

pub(crate) fn decode_header_body_v2(bytes: &[u8]) -> Result<TraceHeader, TraceError> {
    let mut pos = 0;
    let mut header = decode_header_fields(bytes, &mut pos)?;
    header.shots = read_varint(bytes, &mut pos)?;
    if pos != bytes.len() {
        return Err(TraceError::corrupt("trailing bytes in header frame"));
    }
    Ok(header)
}

fn decode_header_fields(bytes: &[u8], pos: &mut usize) -> Result<TraceHeader, TraceError> {
    let window_ns = read_f64(bytes, pos, "header window_ns")?;
    let theta = read_f64(bytes, pos, "header theta")?;
    let route_ns = read_f64(bytes, pos, "header route_ns")?;
    let readout_ns = read_f64(bytes, pos, "header readout_ns")?;
    let k = read_len(bytes, pos, "header k")?;
    let time_buckets = read_len(bytes, pos, "header time_buckets")?;
    let train_pulses = read_len(bytes, pos, "header train_pulses")?;
    let [flags] = take::<1>(bytes, pos, "header flags")?;
    if flags & !(HEADER_FLAG_HISTORY | HEADER_FLAG_TRAJECTORY) != 0 {
        return Err(TraceError::corrupt("reserved header flag bit set"));
    }
    let label_len = read_len(bytes, pos, "header label length")?;
    let label_bytes = bytes
        .get(*pos..*pos + label_len)
        .ok_or_else(|| TraceError::corrupt("header label truncated"))?;
    *pos += label_len;
    let label = String::from_utf8(label_bytes.to_vec())
        .map_err(|_| TraceError::corrupt("header label is not UTF-8"))?;
    Ok(TraceHeader {
        config: ArteryConfig {
            window_ns,
            k,
            theta,
            time_buckets,
            train_pulses,
            use_history: flags & HEADER_FLAG_HISTORY != 0,
            use_trajectory: flags & HEADER_FLAG_TRAJECTORY != 0,
            route_ns,
            readout_ns,
        },
        label,
        shots: 0,
    })
}

// ---------------------------------------------------------------------------
// Event body.

const EVENT_FLAG_REPORTED: u8 = 1;
const EVENT_FLAG_DECIDED: u8 = 1 << 1;
const EVENT_FLAG_BRANCH: u8 = 1 << 2;
const EVENT_FLAG_FIRST_STATE: u8 = 1 << 3;
const EVENT_FLAG_IQ: u8 = 1 << 4;
const EVENT_CASE_SHIFT: u8 = 5;

fn case_code(case: PreExecCase) -> u8 {
    match case {
        PreExecCase::Independent => 0,
        PreExecCase::AncillaRemap => 1,
        PreExecCase::OnMeasuredQubit => 2,
        PreExecCase::NotPreExecutable => 3,
    }
}

fn case_from_code(code: u8) -> PreExecCase {
    match code {
        0 => PreExecCase::Independent,
        1 => PreExecCase::AncillaRemap,
        2 => PreExecCase::OnMeasuredQubit,
        _ => PreExecCase::NotPreExecutable,
    }
}

/// Collapses a bool stream into alternating run lengths in `runs` (cleared
/// first), starting from the value of the first element (empty stream → no
/// runs). Scratch-reusing core of [`bool_runs`], mirroring the pulse codec
/// engine's `*_into` idiom.
fn bool_runs_into(states: &[bool], runs: &mut Vec<u64>) {
    runs.clear();
    let Some(&first) = states.first() else {
        return;
    };
    let mut current = first;
    let mut len = 0u64;
    for &s in states {
        if s == current {
            len += 1;
        } else {
            runs.push(len);
            current = s;
            len = 1;
        }
    }
    runs.push(len);
}

/// Allocating wrapper over [`bool_runs_into`], kept for the unit tests.
#[cfg(test)]
fn bool_runs(states: &[bool]) -> Vec<u64> {
    let mut runs = Vec::new();
    bool_runs_into(states, &mut runs);
    runs
}

/// Allocating wrapper over [`encode_event_into`], kept for the unit tests.
#[cfg(test)]
fn encode_event(ev: &TraceEvent) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + 8 * ev.iq.len());
    let mut runs = Vec::new();
    encode_event_into(ev, &mut out, &mut runs);
    out
}

/// Encodes one event body into `out` (cleared first), using `runs` as the
/// state-run scratch: allocation-free once both buffers have warmed up to
/// their high-water sizes. [`TraceWriter`] threads its own scratch through
/// here so long recording runs stop allocating per event.
pub(crate) fn encode_event_into(ev: &TraceEvent, out: &mut Vec<u8>, runs: &mut Vec<u64>) {
    out.clear();
    let mut flags = 0u8;
    if ev.reported {
        flags |= EVENT_FLAG_REPORTED;
    }
    if let Some(d) = ev.decision {
        flags |= EVENT_FLAG_DECIDED;
        if d.branch {
            flags |= EVENT_FLAG_BRANCH;
        }
    }
    if ev.states.first() == Some(&true) {
        flags |= EVENT_FLAG_FIRST_STATE;
    }
    if !ev.iq.is_empty() {
        flags |= EVENT_FLAG_IQ;
    }
    flags |= case_code(ev.case) << EVENT_CASE_SHIFT;
    out.push(flags);
    write_varint(out, ev.site as u64);
    bool_runs_into(&ev.states, runs);
    write_varint(out, runs.len() as u64);
    for &r in runs.iter() {
        write_varint(out, r);
    }
    if let Some(d) = ev.decision {
        write_varint(out, d.window as u64);
    }
    push_f64(out, ev.p_history);
    push_f64(out, ev.latency_ns);
    push_f64(out, ev.branch0_ns);
    push_f64(out, ev.branch1_ns);
    if !ev.iq.is_empty() {
        write_varint(out, ev.iq.len() as u64);
        for &(i, q) in &ev.iq {
            push_f32(out, i);
            push_f32(out, q);
        }
    }
}

pub(crate) fn decode_event(bytes: &[u8]) -> Result<TraceEvent, TraceError> {
    let mut pos = 0;
    let [flags] = take::<1>(bytes, &mut pos, "event flags")?;
    let reported = flags & EVENT_FLAG_REPORTED != 0;
    let decided = flags & EVENT_FLAG_DECIDED != 0;
    let branch = flags & EVENT_FLAG_BRANCH != 0;
    let first_state = flags & EVENT_FLAG_FIRST_STATE != 0;
    let has_iq = flags & EVENT_FLAG_IQ != 0;
    let case = case_from_code((flags >> EVENT_CASE_SHIFT) & 0b11);
    if flags & 0x80 != 0 {
        return Err(TraceError::corrupt("reserved event flag bit set"));
    }
    if !decided && branch {
        return Err(TraceError::corrupt("branch flag set without a decision"));
    }
    let site = read_len(bytes, &mut pos, "event site")?;

    let run_count = read_len(bytes, &mut pos, "event run count")?;
    if first_state && run_count == 0 {
        return Err(TraceError::corrupt("state flag set on an empty stream"));
    }
    let mut states = Vec::new();
    let mut value = first_state;
    let mut total = 0u64;
    for _ in 0..run_count {
        let run = read_varint(bytes, &mut pos)?;
        if run == 0 {
            return Err(TraceError::corrupt("zero-length state run"));
        }
        total += run;
        if total > MAX_SEQUENCE_LEN {
            return Err(TraceError::corrupt("state stream exceeds the length cap"));
        }
        states.extend(std::iter::repeat_n(value, run as usize));
        value = !value;
    }

    let decision = if decided {
        let window = read_len(bytes, &mut pos, "event decision window")?;
        Some(RecordedDecision { window, branch })
    } else {
        None
    };

    let p_history = read_f64(bytes, &mut pos, "event p_history")?;
    let latency_ns = read_f64(bytes, &mut pos, "event latency")?;
    let branch0_ns = read_f64(bytes, &mut pos, "event branch0")?;
    let branch1_ns = read_f64(bytes, &mut pos, "event branch1")?;

    let iq = if has_iq {
        let n = read_varint(bytes, &mut pos)?;
        if n == 0 {
            return Err(TraceError::corrupt("IQ flag set on an empty trajectory"));
        }
        if n > MAX_SEQUENCE_LEN {
            return Err(TraceError::corrupt("IQ trajectory exceeds the length cap"));
        }
        let mut iq = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let i = read_f32(bytes, &mut pos, "event IQ point")?;
            let q = read_f32(bytes, &mut pos, "event IQ point")?;
            iq.push((i, q));
        }
        iq
    } else {
        Vec::new()
    };

    if pos != bytes.len() {
        return Err(TraceError::corrupt("trailing bytes in event frame"));
    }
    Ok(TraceEvent {
        site,
        case,
        reported,
        states,
        iq,
        p_history,
        decision,
        latency_ns,
        branch0_ns,
        branch1_ns,
    })
}

// ---------------------------------------------------------------------------
// Writer / reader.

/// Streaming trace writer: emits the magic, version and header on
/// construction, then one frame per event.
///
/// Event bodies, state runs and frame-length varints are built in reusable
/// scratch buffers, so a long recording run performs no per-event heap
/// allocation once the buffers reach their high-water sizes. The bytes
/// written are identical to the scratch-free v1 encoder.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    events: u64,
    /// Reusable event-body buffer.
    body: Vec<u8>,
    /// Reusable state-run scratch for [`encode_event_into`].
    runs: Vec<u64>,
    /// Reusable frame-length varint buffer.
    len_buf: Vec<u8>,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace on `sink`, writing magic, version and `header`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] when the sink fails.
    pub fn new(mut sink: W, header: &TraceHeader) -> Result<Self, TraceError> {
        sink.write_all(&MAGIC)?;
        sink.write_all(&FORMAT_VERSION.to_le_bytes())?;
        write_frame(&mut sink, &encode_header_body(header))?;
        Ok(Self {
            sink,
            events: 0,
            body: Vec::new(),
            runs: Vec::new(),
            len_buf: Vec::with_capacity(artery_pulse::codec::MAX_VARINT_LEN),
        })
    }

    /// Appends one event frame.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] when the sink fails.
    pub fn write_event(&mut self, event: &TraceEvent) -> Result<(), TraceError> {
        encode_event_into(event, &mut self.body, &mut self.runs);
        self.len_buf.clear();
        write_varint(&mut self.len_buf, self.body.len() as u64);
        self.sink.write_all(&self.len_buf)?;
        self.sink.write_all(&self.body)?;
        self.events += 1;
        Ok(())
    }

    /// Number of events written so far.
    #[must_use]
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Flushes and returns the sink.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] when the flush fails.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Streaming trace reader: validates the magic, negotiates the format
/// version ([`FORMAT_VERSION`] or [`FORMAT_VERSION_V2`]), decodes the
/// header, then yields events one at a time. v1 streams decode through the
/// original frame-per-event path byte-for-byte; v2 streams decompress one
/// block at a time and validate the trailer index and tail on the way out.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    src: R,
    header: TraceHeader,
    events: u64,
    version: u16,
    /// Block-streaming state; `Some` exactly when `version` is v2.
    v2: Option<crate::v2::V2Stream>,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace, validating magic and format version and decoding the
    /// header.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Corrupt`] on a bad magic, an unsupported
    /// version or a malformed header, and [`TraceError::Io`] when the
    /// source fails.
    pub fn new(mut src: R) -> Result<Self, TraceError> {
        let mut magic = [0u8; 8];
        src.read_exact(&mut magic).map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => TraceError::corrupt("magic truncated"),
            _ => TraceError::Io(e),
        })?;
        if magic != MAGIC {
            return Err(TraceError::corrupt("bad magic — not an ARTERY trace"));
        }
        let mut version = [0u8; 2];
        src.read_exact(&mut version).map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => TraceError::corrupt("version truncated"),
            _ => TraceError::Io(e),
        })?;
        let version = u16::from_le_bytes(version);
        if version != FORMAT_VERSION && version != FORMAT_VERSION_V2 {
            return Err(TraceError::corrupt(format!(
                "unsupported trace format version {version} \
                 (this library reads versions {FORMAT_VERSION} and {FORMAT_VERSION_V2})"
            )));
        }
        let header_frame = read_frame(&mut src, "header")?
            .ok_or_else(|| TraceError::corrupt("missing header frame"))?;
        let (header, v2) = if version == FORMAT_VERSION {
            (decode_header_body(&header_frame)?, None)
        } else {
            let after_header =
                10 + varint_len(header_frame.len() as u64) + header_frame.len() as u64;
            (
                decode_header_body_v2(&header_frame)?,
                Some(crate::v2::V2Stream::new(after_header)),
            )
        };
        Ok(Self {
            src,
            header,
            events: 0,
            version,
            v2,
        })
    }

    /// The trace header.
    #[must_use]
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// The negotiated format version of the open trace.
    #[must_use]
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Number of events decoded so far.
    #[must_use]
    pub fn events_read(&self) -> u64 {
        self.events
    }

    /// Decodes the next event; `None` at clean end of trace.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Corrupt`] on a malformed or truncated frame and
    /// [`TraceError::Io`] when the source fails.
    pub fn next_event(&mut self) -> Result<Option<TraceEvent>, TraceError> {
        let next = match self.v2.as_mut() {
            Some(stream) => stream.next_event(&mut self.src)?,
            None => match read_frame(&mut self.src, "event")? {
                None => None,
                Some(frame) => Some(decode_event(&frame)?),
            },
        };
        if next.is_some() {
            self.events += 1;
        }
        Ok(next)
    }

    /// Drains the remaining events into a vector, pre-sized from the
    /// header's advisory shot count when it is known.
    ///
    /// # Errors
    ///
    /// Propagates the first decode failure.
    pub fn read_all(mut self) -> Result<Vec<TraceEvent>, TraceError> {
        // Each shot resolves at least one feedback; cap the hint so a
        // corrupt header cannot force a huge allocation.
        let hint = usize::try_from(self.header.shots.min(MAX_SEQUENCE_LEN)).unwrap_or(0);
        let mut events = Vec::with_capacity(hint);
        while let Some(ev) = self.next_event()? {
            events.push(ev);
        }
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> TraceHeader {
        TraceHeader::new(&ArteryConfig::paper(), "unit/format")
    }

    fn sample_event() -> TraceEvent {
        TraceEvent {
            site: 5,
            case: PreExecCase::AncillaRemap,
            reported: true,
            states: vec![false, false, true, true, true, false],
            iq: vec![(0.5, -0.25), (1.0, -0.5), (1.5, -0.75)],
            p_history: 0.8125,
            decision: Some(RecordedDecision {
                window: 4,
                branch: true,
            }),
            latency_ns: 512.5,
            branch0_ns: 0.0,
            branch1_ns: 30.0,
        }
    }

    fn round_trip(events: &[TraceEvent]) -> (TraceHeader, Vec<TraceEvent>) {
        let mut w = TraceWriter::new(Vec::new(), &sample_header()).unwrap();
        for ev in events {
            w.write_event(ev).unwrap();
        }
        let bytes = w.finish().unwrap();
        let r = TraceReader::new(bytes.as_slice()).unwrap();
        let header = r.header().clone();
        (header, r.read_all().unwrap())
    }

    #[test]
    fn header_and_events_round_trip() {
        let events = vec![
            sample_event(),
            TraceEvent {
                decision: None,
                iq: Vec::new(),
                ..sample_event()
            },
            TraceEvent {
                states: Vec::new(),
                iq: Vec::new(),
                case: PreExecCase::NotPreExecutable,
                decision: None,
                ..sample_event()
            },
            TraceEvent {
                states: vec![true],
                reported: false,
                ..sample_event()
            },
        ];
        let (header, decoded) = round_trip(&events);
        assert_eq!(header, sample_header());
        assert_eq!(decoded, events);
    }

    #[test]
    fn empty_trace_round_trips() {
        let (header, decoded) = round_trip(&[]);
        assert_eq!(header.config, ArteryConfig::paper());
        assert!(decoded.is_empty());
    }

    #[test]
    fn trace_opens_with_magic_and_version() {
        let w = TraceWriter::new(Vec::new(), &sample_header()).unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(&bytes[..8], b"ARTERYTR");
        assert_eq!(&bytes[8..10], &1u16.to_le_bytes());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let w = TraceWriter::new(Vec::new(), &sample_header()).unwrap();
        let mut bytes = w.finish().unwrap();
        bytes[0] = b'X';
        let err = TraceReader::new(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)), "{err}");
    }

    #[test]
    fn future_version_is_rejected_naming_both_supported_versions() {
        let w = TraceWriter::new(Vec::new(), &sample_header()).unwrap();
        let mut bytes = w.finish().unwrap();
        bytes[8..10].copy_from_slice(&3u16.to_le_bytes());
        let err = TraceReader::new(bytes.as_slice()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("version 3"), "{msg}");
        assert!(msg.contains("versions 1 and 2"), "{msg}");
    }

    #[test]
    fn varint_len_matches_the_encoder() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(varint_len(v), buf.len() as u64, "value {v}");
        }
    }

    #[test]
    fn truncated_event_frame_is_corrupt() {
        let mut w = TraceWriter::new(Vec::new(), &sample_header()).unwrap();
        w.write_event(&sample_event()).unwrap();
        let bytes = w.finish().unwrap();
        let mut r = TraceReader::new(&bytes[..bytes.len() - 3]).unwrap();
        let err = r.next_event().unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)), "{err}");
    }

    #[test]
    fn trailing_garbage_in_event_is_corrupt() {
        let mut body = encode_event(&sample_event());
        body.push(0);
        let err = decode_event(&body).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn run_length_encoding_is_compact() {
        // 66 windows of a typical shot: one long run + a short tail run.
        let mut states = vec![false; 60];
        states.extend_from_slice(&[true; 6]);
        let ev = TraceEvent {
            states,
            iq: Vec::new(),
            ..sample_event()
        };
        let body = encode_event(&ev);
        // flags + site + run bookkeeping + decision + 4 f64s: far below one
        // byte per window.
        assert!(body.len() < 45, "event body is {} bytes", body.len());
    }

    #[test]
    fn writer_scratch_path_matches_standalone_encoder() {
        let events = [
            sample_event(),
            TraceEvent {
                states: Vec::new(),
                iq: Vec::new(),
                decision: None,
                ..sample_event()
            },
            TraceEvent {
                states: vec![true; 40],
                ..sample_event()
            },
        ];
        let mut w = TraceWriter::new(Vec::new(), &sample_header()).unwrap();
        for ev in &events {
            w.write_event(ev).unwrap();
        }
        let via_writer = w.finish().unwrap();
        // The scratch-free path: frame each standalone-encoded body.
        let mut expected = Vec::new();
        expected.extend_from_slice(&MAGIC);
        expected.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        write_frame(&mut expected, &encode_header_body(&sample_header())).unwrap();
        for ev in &events {
            write_frame(&mut expected, &encode_event(ev)).unwrap();
        }
        assert_eq!(via_writer, expected);
    }

    #[test]
    fn bool_runs_alternate() {
        assert_eq!(bool_runs(&[]), Vec::<u64>::new());
        assert_eq!(bool_runs(&[true]), vec![1]);
        assert_eq!(bool_runs(&[false, false, true]), vec![2, 1]);
        assert_eq!(bool_runs(&[true, false, false, true]), vec![1, 2, 1]);
    }

    #[test]
    fn all_cases_round_trip_through_flags() {
        for case in [
            PreExecCase::Independent,
            PreExecCase::AncillaRemap,
            PreExecCase::OnMeasuredQubit,
            PreExecCase::NotPreExecutable,
        ] {
            assert_eq!(case_from_code(case_code(case)), case);
            let ev = TraceEvent {
                case,
                ..sample_event()
            };
            assert_eq!(decode_event(&encode_event(&ev)).unwrap(), ev);
        }
    }
}
