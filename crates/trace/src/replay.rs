//! Trace-driven predictor evaluation — CBP-style replay.
//!
//! A [`Replayer`] re-drives an arbitrary predictor configuration over a
//! recorded event stream without touching the state-vector simulator or the
//! readout synthesizer: the expensive physics (pulse synthesis, windowed
//! demodulation, preliminary classification) was paid once at record time
//! and is replayed from the stored window states. What *is* recomputed per
//! event is exactly what a configuration change can alter — the historical
//! prior, the Bayesian fusion walk across windows, the threshold decision
//! and the resulting latency.
//!
//! Replaying the recorded configuration reproduces the live run bit-for-bit:
//! the replayer calls the same
//! [`BranchPredictor::predict_states`](artery_core::BranchPredictor::predict_states),
//! [`feedback_latency_ns`] and [`ShotStats::record`] the live controller
//! uses, and re-derives the history prior from the recorded reported-outcome
//! stream (history updates are deterministic, so the priors match exactly).

use std::collections::HashMap;

use artery_circuit::FeedbackSite;
use artery_core::predictor::HistoryTracker;
use artery_core::{
    feedback_latency_ns, ArteryConfig, BranchPredictor, Calibration, ShotStats, SiteOutcome,
};
use artery_hw::ControllerTiming;

use crate::event::TraceEvent;
use crate::v2::HistoryCount;

/// History counters at each of `starts` (ascending event indices), computed
/// by scanning the recorded `(site, reported)` stream once.
///
/// History evolution is configuration-independent, so seeding a fresh
/// [`Replayer`] (or any other replayer) with the snapshot for index `s` and
/// replaying `events[s..]` reproduces a sequential whole-stream replay's
/// outcomes from `s` onward, bit for bit. This is the in-memory analog of
/// the per-block seeds trace v2 stores on disk, used to cut replay ranges
/// at arbitrary boundaries (warm-up splits, SimPoint windows).
///
/// # Panics
///
/// Panics when `starts` is not ascending or indexes past `events.len()`.
#[must_use]
pub fn history_at_boundaries(events: &[TraceEvent], starts: &[usize]) -> Vec<Vec<HistoryCount>> {
    let mut tracker: std::collections::BTreeMap<usize, (u64, u64)> =
        std::collections::BTreeMap::new();
    let mut snapshots = Vec::with_capacity(starts.len());
    let mut next = 0usize;
    for (b, &start) in starts.iter().enumerate() {
        assert!(start >= next, "boundary {b} is not ascending");
        assert!(start <= events.len(), "boundary {b} is out of range");
        for ev in &events[next..start] {
            let entry = tracker.entry(ev.site).or_insert((0, 0));
            entry.0 += u64::from(ev.reported);
            entry.1 += 1;
        }
        next = start;
        snapshots.push(
            tracker
                .iter()
                .map(|(&site, &(ones, total))| HistoryCount { site, ones, total })
                .collect(),
        );
    }
    snapshots
}

/// Re-drives one predictor configuration over recorded trace events.
///
/// # Examples
///
/// ```
/// use artery_core::{ArteryConfig, ArteryController, Calibration};
/// use artery_sim::{Executor, NoiseModel};
/// use artery_trace::{Replayer, TraceHeader, TraceReader, TraceRecorder, TraceWriter};
///
/// let config = ArteryConfig::default();
/// let mut rng = artery_num::rng::rng_for("doc/replay");
/// let calibration = Calibration::train(&config, &mut rng);
/// let circuit = artery_workloads::active_reset(1);
///
/// // Record a short live run.
/// let controller = ArteryController::new(&circuit, &config, &calibration);
/// let writer = TraceWriter::new(Vec::new(), &TraceHeader::new(&config, "doc")).unwrap();
/// let mut recorder = TraceRecorder::new(controller, writer);
/// let mut exec = Executor::new(NoiseModel::noiseless());
/// for _ in 0..5 {
///     exec.run(&circuit, &mut recorder, &mut rng);
/// }
/// let (live, bytes) = recorder.finish().unwrap();
///
/// // Replay the recorded configuration: statistics match bit-for-bit.
/// let events = TraceReader::new(bytes.as_slice()).unwrap().read_all().unwrap();
/// let mut replay = Replayer::new(&calibration, &config);
/// replay.replay_all(&events);
/// assert_eq!(replay.stats(), live.stats());
///
/// // Replay a stricter threshold — no re-simulation needed.
/// let strict = ArteryConfig { theta: 0.999, ..config };
/// let mut replay = Replayer::new(&calibration, &strict);
/// replay.replay_all(&events);
/// assert!(replay.stats().commit_rate() <= live.stats().commit_rate());
/// ```
#[derive(Debug, Clone)]
pub struct Replayer<'a> {
    calibration: &'a Calibration,
    config: ArteryConfig,
    timing: ControllerTiming,
    history: HistoryTracker,
    site_theta: HashMap<usize, f64>,
    stats: ShotStats,
}

impl<'a> Replayer<'a> {
    /// Builds a replayer evaluating `config` against `calibration`.
    ///
    /// The calibration may differ from the recording one (table ablations,
    /// retrained k/time-bucket grids); only the recorded window states and
    /// reported outcomes are taken from the trace.
    #[must_use]
    pub fn new(calibration: &'a Calibration, config: &ArteryConfig) -> Self {
        Self {
            calibration,
            config: *config,
            timing: ControllerTiming::new(config.hardware(), config.window_ns),
            history: HistoryTracker::new(),
            site_theta: HashMap::new(),
            stats: ShotStats::default(),
        }
    }

    /// Overrides the confidence threshold at one feedback site, mirroring
    /// [`ArteryController::set_site_threshold`](artery_core::ArteryController::set_site_threshold).
    ///
    /// # Panics
    ///
    /// Panics unless `theta` is in `(0.5, 1.0]`.
    pub fn set_site_threshold(&mut self, site: FeedbackSite, theta: f64) {
        assert!(
            theta > 0.5 && theta <= 1.0,
            "threshold must be in (0.5, 1.0]"
        );
        self.site_theta.insert(site.0, theta);
    }

    /// Warm-starts a site's history, mirroring
    /// [`ArteryController::seed_history`](artery_core::ArteryController::seed_history).
    pub fn seed_history(&mut self, site: FeedbackSite, p1: f64, weight: u64) {
        self.history.seed(site, p1, weight);
    }

    /// Installs exact history counters — a trace-v2 block seed or a
    /// [`history_at_boundaries`] snapshot — so a replay can resume at a
    /// mid-stream boundary with bit-identical priors.
    pub fn seed_history_counts(&mut self, counts: &[HistoryCount]) {
        for c in counts {
            self.history
                .set_counts(FeedbackSite(c.site), c.ones, c.total);
        }
    }

    /// Clears the aggregate statistics while keeping the learned history —
    /// the same warm-up/measure split as
    /// [`ArteryController::reset_stats`](artery_core::ArteryController::reset_stats).
    pub fn reset_stats(&mut self) {
        self.stats = ShotStats::default();
    }

    /// Aggregate statistics over all replayed events.
    #[must_use]
    pub fn stats(&self) -> &ShotStats {
        &self.stats
    }

    /// Consumes the replayer, returning its statistics (shard reduction).
    #[must_use]
    pub fn into_stats(self) -> ShotStats {
        self.stats
    }

    /// Replays one event: recomputes the prior, the windowed decision and
    /// the latency under this replayer's configuration, then advances the
    /// history with the recorded outcome.
    pub fn replay_event(&mut self, event: &TraceEvent) -> SiteOutcome {
        let site = FeedbackSite(event.site);
        let p_history = self.history.p_history_1(site);
        let decision = if event.case.benefits_from_prediction() {
            let config = match self.site_theta.get(&event.site) {
                Some(&theta) => ArteryConfig {
                    theta,
                    ..self.config
                },
                None => self.config,
            };
            let predictor = BranchPredictor::new(self.calibration, &config);
            predictor.predict_states(&event.states, p_history).decision
        } else {
            None
        };
        let latency_ns = feedback_latency_ns(
            &self.timing,
            self.config.route_ns,
            event.case,
            event.branch0_ns,
            event.branch1_ns,
            event.reported,
            decision.as_ref(),
        );
        self.history.observe(site, event.reported);
        let outcome = SiteOutcome {
            site,
            window: decision.as_ref().map(|d| d.window),
            predicted: decision.as_ref().map(|d| d.branch),
            reported: event.reported,
            latency_ns,
        };
        self.stats.record(&outcome);
        outcome
    }

    /// Replays a slice of events in order.
    pub fn replay_all(&mut self, events: &[TraceEvent]) {
        for event in events {
            self.replay_event(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceHeader;
    use crate::format::{TraceReader, TraceWriter};
    use crate::recorder::TraceRecorder;
    use artery_core::ArteryController;
    use artery_num::rng::rng_for;
    use artery_sim::{Executor, NoiseModel};

    fn record_qrw(config: &ArteryConfig, cal: &Calibration, shots: usize) -> Vec<TraceEvent> {
        let circuit = artery_workloads::qrw(2);
        let controller = ArteryController::new(&circuit, config, cal);
        let writer =
            TraceWriter::new(Vec::new(), &TraceHeader::new(config, "unit/replay")).unwrap();
        let mut recorder = TraceRecorder::new(controller, writer).without_iq();
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("trace/replay-run");
        for _ in 0..shots {
            let _ = exec.run(&circuit, &mut recorder, &mut rng);
        }
        let (_, bytes) = recorder.finish().unwrap();
        TraceReader::new(bytes.as_slice())
            .unwrap()
            .read_all()
            .unwrap()
    }

    #[test]
    fn recorded_config_replays_bit_for_bit() {
        let config = ArteryConfig {
            train_pulses: 400,
            ..ArteryConfig::paper()
        };
        let cal = Calibration::train(&config, &mut rng_for("trace/replay-cal"));
        let events = record_qrw(&config, &cal, 30);
        // Decisions, windows and latencies must match the live run exactly.
        let mut replay = Replayer::new(&cal, &config);
        for ev in &events {
            let out = replay.replay_event(ev);
            assert_eq!(out.predicted, ev.decision.map(|d| d.branch));
            assert_eq!(out.window, ev.decision.map(|d| d.window));
            assert_eq!(out.latency_ns, ev.latency_ns);
        }
    }

    #[test]
    fn stricter_threshold_commits_later_or_less() {
        let config = ArteryConfig {
            train_pulses: 400,
            ..ArteryConfig::paper()
        };
        let cal = Calibration::train(&config, &mut rng_for("trace/replay-cal"));
        let events = record_qrw(&config, &cal, 60);

        let mut base = Replayer::new(&cal, &config);
        base.replay_all(&events);
        let mut strict = Replayer::new(
            &cal,
            &ArteryConfig {
                theta: 0.999,
                ..config
            },
        );
        strict.replay_all(&events);

        assert!(strict.stats().commit_rate() <= base.stats().commit_rate());
        assert!(strict.stats().accuracy() >= base.stats().accuracy() - 1e-12);
        assert_eq!(strict.stats().resolved, base.stats().resolved);
    }

    #[test]
    fn site_threshold_override_and_reset_mirror_the_controller() {
        let config = ArteryConfig {
            train_pulses: 400,
            ..ArteryConfig::paper()
        };
        let cal = Calibration::train(&config, &mut rng_for("trace/replay-cal"));
        let events = record_qrw(&config, &cal, 40);
        let site = FeedbackSite(events[0].site);

        let mut tuned = Replayer::new(&cal, &config);
        tuned.set_site_threshold(site, 0.999);
        tuned.replay_all(&events);
        let mut plain = Replayer::new(&cal, &config);
        plain.replay_all(&events);
        let strict_commits = tuned.stats().committed.min(plain.stats().committed);
        assert_eq!(strict_commits, tuned.stats().committed);

        tuned.reset_stats();
        assert_eq!(tuned.stats(), &ShotStats::default());
        // History survives the reset, as on the live controller.
        tuned.replay_all(&events);
        assert_eq!(tuned.stats().resolved, events.len() as u64);
    }

    #[test]
    fn boundary_seeded_replay_matches_the_sequential_whole() {
        let config = ArteryConfig {
            train_pulses: 400,
            ..ArteryConfig::paper()
        };
        let cal = Calibration::train(&config, &mut rng_for("trace/replay-cal"));
        let events = record_qrw(&config, &cal, 30);

        let mut whole = Replayer::new(&cal, &config);
        let oracle: Vec<_> = events.iter().map(|ev| whole.replay_event(ev)).collect();

        // Cut at arbitrary (non-shot-aligned) boundaries; each seeded
        // resume must reproduce the sequential outcomes bit for bit, for a
        // different replayed configuration too.
        let starts = vec![0usize, 7, 13, events.len() - 3];
        let seeds = history_at_boundaries(&events, &starts);
        for (start, seed) in starts.iter().zip(&seeds) {
            let mut resumed = Replayer::new(&cal, &config);
            resumed.seed_history_counts(seed);
            for (j, ev) in events[*start..].iter().enumerate() {
                assert_eq!(resumed.replay_event(ev), oracle[start + j]);
            }
        }

        let strict = ArteryConfig {
            theta: 0.999,
            ..config
        };
        let mut whole_strict = Replayer::new(&cal, &strict);
        let oracle_strict: Vec<_> = events
            .iter()
            .map(|ev| whole_strict.replay_event(ev))
            .collect();
        let mut resumed = Replayer::new(&cal, &strict);
        resumed.seed_history_counts(&seeds[2]);
        for (j, ev) in events[13..].iter().enumerate() {
            assert_eq!(resumed.replay_event(ev), oracle_strict[13 + j]);
        }
    }

    #[test]
    fn sharded_replay_merges_to_the_whole() {
        let config = ArteryConfig {
            train_pulses: 400,
            ..ArteryConfig::paper()
        };
        let cal = Calibration::train(&config, &mut rng_for("trace/replay-cal"));
        let events = record_qrw(&config, &cal, 40);

        let mut whole = Replayer::new(&cal, &config);
        whole.replay_all(&events);

        // Shard at a shot boundary; each shard replays with fresh history,
        // so merged counters must match a per-shard-restarted whole.
        let (left, right) = events.split_at(events.len() / 2);
        let mut a = Replayer::new(&cal, &config);
        a.replay_all(left);
        let mut b = Replayer::new(&cal, &config);
        b.replay_all(right);
        let mut merged = a.into_stats();
        merged.merge(&b.into_stats());
        assert_eq!(merged.resolved, whole.stats().resolved);
        assert_eq!(merged.latency_ns.len(), whole.stats().latency_ns.len());
    }
}
