//! A tagged-geometric (TAGE) predictor over per-site shot-outcome history.
//!
//! TAGE is the reference point of the CBP world the paper borrows its
//! framing from: a bimodal base table backed by a stack of *tagged* tables
//! indexed by geometrically growing history lengths. The longest history
//! whose partial tag matches provides the prediction; mispredictions
//! allocate fresh entries in longer tables, and per-entry usefulness bits
//! arbitrate who may be evicted.
//!
//! Here the "branch" is a feedback site's reported outcome and the
//! "global history" is that site's own shot-outcome register — across
//! shots, site outcomes are often patterned (QEC syndromes, reset loops),
//! which is exactly the correlation TAGE mines. The TAGE direction estimate
//! replaces the paper's Laplace history prior and is fused with the
//! per-window trajectory probability through the same Bayesian product
//! (`fuse`), so the trajectory feature and the threshold trigger are shared
//! with the paper's predictor — only the history feature differs.

use std::collections::HashMap;

use artery_circuit::FeedbackSite;
use artery_core::predictor::fuse;
use artery_core::{ArteryConfig, Calibration, Decision, PredictorSpec, ShotView, SitePredictor};
use artery_hw::trigger::{ProbabilityUpdate, Thresholds};
use serde::{Deserialize, Serialize};

/// Geometry and training knobs of [`Tage`], serde-configurable so sweeps
/// can be driven from JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TageConfig {
    /// log2 entries of the bimodal base table.
    pub base_bits: usize,
    /// log2 entries of each tagged table.
    pub table_bits: usize,
    /// Partial-tag width in bits (tags disambiguate aliased indices).
    pub tag_bits: usize,
    /// Number of tagged tables.
    pub num_tables: usize,
    /// History length of the shortest tagged table, in shots.
    pub min_history: usize,
    /// History length of the longest tagged table, in shots (≤ 64).
    pub max_history: usize,
    /// Tagged-table updates between usefulness-bit halvings (the periodic
    /// reset that lets stale entries be reclaimed).
    pub useful_reset_period: u64,
}

impl Default for TageConfig {
    fn default() -> Self {
        Self {
            base_bits: 10,
            table_bits: 9,
            tag_bits: 9,
            num_tables: 4,
            min_history: 4,
            max_history: 48,
            useful_reset_period: 4096,
        }
    }
}

impl TageConfig {
    /// The geometric history length of tagged table `i` (0-based):
    /// `min · (max/min)^(i/(N−1))`, rounded.
    #[must_use]
    pub fn history_length(&self, i: usize) -> usize {
        if self.num_tables <= 1 {
            return self.max_history;
        }
        let ratio = self.max_history as f64 / self.min_history as f64;
        let exp = i as f64 / (self.num_tables - 1) as f64;
        (self.min_history as f64 * ratio.powf(exp)).round() as usize
    }

    /// Total table storage in bits: the base counters plus, per tagged
    /// table, (tag + 3-bit counter + 2-bit useful) per entry.
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        (1 << self.base_bits) * BASE_BITS_PER_ENTRY
            + self.num_tables * (1 << self.table_bits) * (self.tag_bits + 3 + 2)
    }
}

/// Width of one bimodal base counter.
const BASE_BITS_PER_ENTRY: usize = 6;
/// Saturation bound of the base counter: [−32, 31].
const BASE_MAX: i16 = (1 << (BASE_BITS_PER_ENTRY - 1)) - 1;
/// Saturation bounds of the 3-bit tagged counters: [−4, 3].
const CTR_MAX: i8 = 3;
const CTR_MIN: i8 = -4;
/// Saturation bound of the 2-bit usefulness counters.
const USEFUL_MAX: u8 = 3;

/// One tagged-table entry: partial tag, 3-bit saturating direction counter
/// and 2-bit usefulness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct TaggedEntry {
    tag: u16,
    ctr: i8,
    useful: u8,
}

/// The lookup a [`Tage::predict`] stashes so the matching
/// [`update`](SitePredictor::update) can train the exact entries it read.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Pending {
    /// Per-table (index, tag) of this lookup.
    slots: Vec<(usize, u16)>,
    base_index: usize,
    /// Tagged table that provided the prediction, if any.
    provider: Option<usize>,
    /// Direction bit of the provider (or the base table).
    pred: bool,
    /// Direction bit of the alternate prediction (next-longest hit/base).
    alt_pred: bool,
}

/// The TAGE history predictor. See the module docs for the algorithm and
/// [`TageConfig`] for the geometry.
#[derive(Debug, Clone)]
pub struct Tage {
    cfg: TageConfig,
    artery: ArteryConfig,
    calibration: Calibration,
    thresholds: Thresholds,
    /// Geometric history length per tagged table.
    lengths: Vec<usize>,
    /// Bimodal base: one saturating counter per (hashed) site.
    base: Vec<i16>,
    /// Tagged tables, longest history last.
    tables: Vec<Vec<TaggedEntry>>,
    /// Per-site shot-outcome shift registers (newest outcome in bit 0).
    histories: HashMap<usize, u64>,
    /// Lookups awaiting their training outcome, keyed by site.
    pending: HashMap<usize, Pending>,
    /// Tagged-table updates since the last usefulness halving.
    updates_since_reset: u64,
}

/// State equality over the learned structures (geometry, counters, tags,
/// histories, pending lookups). The calibration tables are immutable inputs
/// and excluded — two replicas trained on the same stream compare equal.
impl PartialEq for Tage {
    fn eq(&self, other: &Self) -> bool {
        self.cfg == other.cfg
            && self.lengths == other.lengths
            && self.base == other.base
            && self.tables == other.tables
            && self.histories == other.histories
            && self.pending == other.pending
            && self.updates_since_reset == other.updates_since_reset
    }
}

impl Tage {
    /// Builds an empty TAGE over the given geometry; the trajectory feature
    /// and threshold θ come from the ARTERY calibration/config, exactly as
    /// for the paper's predictor.
    ///
    /// # Panics
    ///
    /// Panics when the geometry is degenerate (no tables, zero sizes, or
    /// `max_history` outside `min_history..=64`).
    #[must_use]
    pub fn new(cfg: &TageConfig, calibration: &Calibration, artery: &ArteryConfig) -> Self {
        assert!(cfg.num_tables >= 1, "need at least one tagged table");
        assert!(cfg.base_bits >= 1 && cfg.table_bits >= 1, "empty tables");
        assert!(
            (1..=16).contains(&cfg.tag_bits),
            "partial tags must be 1..=16 bits"
        );
        assert!(
            cfg.min_history >= 1 && cfg.min_history <= cfg.max_history && cfg.max_history <= 64,
            "history lengths must satisfy 1 <= min <= max <= 64"
        );
        let lengths = (0..cfg.num_tables).map(|i| cfg.history_length(i)).collect();
        Self {
            cfg: *cfg,
            artery: *artery,
            calibration: calibration.clone(),
            thresholds: Thresholds::symmetric(artery.theta),
            lengths,
            base: vec![0; 1 << cfg.base_bits],
            tables: vec![vec![TaggedEntry::default(); 1 << cfg.table_bits]; cfg.num_tables],
            histories: HashMap::new(),
            pending: HashMap::new(),
            updates_since_reset: 0,
        }
    }

    /// The configured geometry.
    #[must_use]
    pub fn config(&self) -> &TageConfig {
        &self.cfg
    }

    /// Deterministic 64-bit mixer (splitmix64 finalizer).
    fn mix(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The low `len` bits of a site's outcome register.
    fn truncated_history(&self, site: usize, len: usize) -> u64 {
        let h = self.histories.get(&site).copied().unwrap_or(0);
        if len >= 64 {
            h
        } else {
            h & ((1u64 << len) - 1)
        }
    }

    fn base_index(&self, site: usize) -> usize {
        (Self::mix(site as u64) & ((1 << self.cfg.base_bits) - 1)) as usize
    }

    /// Index and partial tag of `site`'s lookup in tagged table `t`.
    fn slot(&self, site: usize, t: usize) -> (usize, u16) {
        let hist = self.truncated_history(site, self.lengths[t]);
        let key = Self::mix(hist ^ Self::mix(((site as u64) << 8) | t as u64));
        let index = (key & ((1 << self.cfg.table_bits) - 1)) as usize;
        let tag = ((key >> 24) & ((1 << self.cfg.tag_bits) - 1)) as u16;
        (index, tag)
    }

    /// Looks up the TAGE direction estimate for `site` and stashes the
    /// touched entries for the matching [`update`](SitePredictor::update).
    /// Returns `P(outcome = 1)`.
    fn lookup(&mut self, site: usize) -> f64 {
        let slots: Vec<(usize, u16)> = (0..self.cfg.num_tables)
            .map(|t| self.slot(site, t))
            .collect();
        let base_index = self.base_index(site);
        let base_pred = self.base[base_index] >= 0;

        // Provider = longest-history tag hit; alternate = next hit or base.
        let mut provider = None;
        let mut alt = None;
        for t in (0..self.cfg.num_tables).rev() {
            let (index, tag) = slots[t];
            if self.tables[t][index].tag == tag {
                if provider.is_none() {
                    provider = Some(t);
                } else {
                    alt = Some(t);
                    break;
                }
            }
        }
        let pred_of = |t: usize| self.tables[t][slots[t].0].ctr >= 0;
        let pred = provider.map_or(base_pred, pred_of);
        let alt_pred = alt.map_or(base_pred, pred_of);

        let p1 = match provider {
            // 3-bit counter → probability in [1/16, 15/16].
            Some(t) => (f64::from(self.tables[t][slots[t].0].ctr) + 4.5) / 8.0,
            // 6-bit base counter → probability in [1/128, 127/128].
            None => {
                (f64::from(self.base[base_index]) + f64::from(BASE_MAX) + 1.5)
                    / f64::from(2 * (BASE_MAX + 1))
            }
        };
        self.pending.insert(
            site,
            Pending {
                slots,
                base_index,
                provider,
                pred,
                alt_pred,
            },
        );
        p1
    }

    /// Shifts `outcome` into the site's history register.
    fn push_history(&mut self, site: usize, outcome: bool) {
        let h = self.histories.entry(site).or_insert(0);
        *h = (*h << 1) | u64::from(outcome);
    }

    /// Trains the stashed lookup of `site` on the resolved `outcome`.
    fn train(&mut self, site: usize, outcome: bool) {
        let Some(p) = self.pending.remove(&site) else {
            return;
        };
        // Base table always trains.
        let b = &mut self.base[p.base_index];
        *b = (*b + if outcome { 1 } else { -1 }).clamp(-(BASE_MAX + 1), BASE_MAX);

        if let Some(t) = p.provider {
            let (index, _) = p.slots[t];
            let e = &mut self.tables[t][index];
            e.ctr = (e.ctr + if outcome { 1 } else { -1 }).clamp(CTR_MIN, CTR_MAX);
            // Usefulness tracks "provider beat the alternate".
            if p.pred != p.alt_pred {
                if p.pred == outcome {
                    e.useful = (e.useful + 1).min(USEFUL_MAX);
                } else {
                    e.useful = e.useful.saturating_sub(1);
                }
            }
        }

        // Allocation on mispredict: claim a u==0 entry in one longer table.
        // Also bootstrap-allocate while the base is the provider: the base
        // can be directionally right yet never confident (an alternating
        // site holds it at c ≈ 0), and without a tagged home the history
        // component could never learn the pattern.
        if p.pred != outcome || p.provider.is_none() {
            let start = p.provider.map_or(0, |t| t + 1);
            let mut allocated = false;
            for t in start..self.cfg.num_tables {
                let (index, tag) = p.slots[t];
                let e = &mut self.tables[t][index];
                if e.useful == 0 {
                    *e = TaggedEntry {
                        tag,
                        ctr: if outcome { 0 } else { -1 }, // weak toward outcome
                        useful: 0,
                    };
                    allocated = true;
                    break;
                }
            }
            if !allocated {
                // Everyone defended their slot: age the contenders instead.
                for t in start..self.cfg.num_tables {
                    let (index, _) = p.slots[t];
                    let e = &mut self.tables[t][index];
                    e.useful = e.useful.saturating_sub(1);
                }
            }
        }

        // Periodic graceful forgetting so stale entries can be reclaimed.
        self.updates_since_reset += 1;
        if self.updates_since_reset >= self.cfg.useful_reset_period {
            self.updates_since_reset = 0;
            for table in &mut self.tables {
                for e in table.iter_mut() {
                    e.useful >>= 1;
                }
            }
        }
    }
}

impl SitePredictor for Tage {
    fn spec(&self) -> PredictorSpec {
        PredictorSpec {
            name: "tage".into(),
            detail: format!(
                "TAGE over per-site shot history ({} tagged tables, hist {}..{}, {}-bit tags) \
                 fused with the trajectory table",
                self.cfg.num_tables, self.cfg.min_history, self.cfg.max_history, self.cfg.tag_bits
            ),
            is_oracle: false,
        }
    }

    fn predict(
        &mut self,
        view: &ShotView<'_>,
        updates: &mut Vec<ProbabilityUpdate>,
    ) -> Option<Decision> {
        // The TAGE estimate replaces the Laplace history prior; the
        // per-window walk below is the paper's, with the same fusion and
        // the same threshold trigger.
        let ph = self.lookup(view.site.0);
        let states = view.states;
        let n = states.len();
        let k = self.artery.k;
        let table = self.calibration.table();
        updates.clear();
        for w in (k - 1)..n {
            let pr = if self.artery.use_trajectory {
                table.p_read_1(table.bucket_of(w, n), table.pattern_of(&states[..=w]))
            } else {
                0.5
            };
            let p = fuse(ph, pr);
            updates.push(ProbabilityUpdate {
                window: w,
                p_predict_1: p,
            });
            if let Some(branch) = self.thresholds.decide(p) {
                return Some(Decision {
                    window: w,
                    branch,
                    p_predict_1: p,
                });
            }
        }
        None
    }

    fn update(&mut self, site: FeedbackSite, outcome: bool) {
        self.train(site.0, outcome);
        self.push_history(site.0, outcome);
    }

    fn track_other(&mut self, site: FeedbackSite, outcome: bool) {
        // Case-4 outcomes are real history but were never looked up: shift
        // the register without touching any table.
        self.pending.remove(&site.0);
        self.push_history(site.0, outcome);
    }

    fn clone_box(&self) -> Box<dyn SitePredictor> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_num::rng::rng_for;

    fn setup() -> (Calibration, ArteryConfig) {
        let config = ArteryConfig {
            train_pulses: 300,
            ..ArteryConfig::paper()
        };
        let cal = Calibration::train(&config, &mut rng_for("tage/cal"));
        (cal, config)
    }

    #[test]
    fn geometric_lengths_are_monotone() {
        let cfg = TageConfig::default();
        let lengths: Vec<usize> = (0..cfg.num_tables).map(|i| cfg.history_length(i)).collect();
        assert_eq!(lengths.first(), Some(&cfg.min_history));
        assert_eq!(lengths.last(), Some(&cfg.max_history));
        assert!(lengths.windows(2).all(|w| w[0] < w[1]), "{lengths:?}");
    }

    #[test]
    fn learns_a_constant_site() {
        let (cal, config) = setup();
        let mut tage = Tage::new(&TageConfig::default(), &cal, &config);
        let site = FeedbackSite(0);
        let states = vec![false; 20];
        let mut updates = Vec::new();
        for _ in 0..200 {
            let view = ShotView {
                site,
                states: &states,
                iq: &[],
                p_history: 0.5,
                truth: false,
            };
            let _ = tage.predict(&view, &mut updates);
            tage.update(site, false);
        }
        // The base counter has long saturated at "0": the history feature
        // alone must now cross θ = 0.91 at the first window.
        let view = ShotView {
            site,
            states: &states,
            iq: &[],
            p_history: 0.5,
            truth: false,
        };
        let d = tage
            .predict(&view, &mut updates)
            .expect("saturated history must commit");
        assert!(!d.branch);
        assert_eq!(d.window, config.k - 1);
        tage.update(site, false);
    }

    #[test]
    fn learns_an_alternating_pattern_via_tagged_tables() {
        let (cal, config) = setup();
        // History-only geometry: isolate the TAGE component.
        let artery = ArteryConfig {
            use_trajectory: false,
            ..config
        };
        let mut tage = Tage::new(&TageConfig::default(), &cal, &artery);
        let site = FeedbackSite(3);
        let states = vec![true; 20];
        let mut updates = Vec::new();
        let mut committed_correct = 0u32;
        let mut committed = 0u32;
        for shot in 0..600u32 {
            let outcome = shot % 2 == 0; // strict alternation — bimodal-proof
            let view = ShotView {
                site,
                states: &states,
                iq: &[],
                p_history: 0.5,
                truth: outcome,
            };
            if let Some(d) = tage.predict(&view, &mut updates) {
                if shot >= 300 {
                    committed += 1;
                    committed_correct += u32::from(d.branch == outcome);
                }
            }
            tage.update(site, outcome);
        }
        // A Laplace prior sits at 0.5 forever on this pattern; TAGE's
        // tagged tables key on the alternating history and commit correctly.
        assert!(committed > 200, "committed only {committed}/300");
        let acc = f64::from(committed_correct) / f64::from(committed);
        assert!(acc > 0.95, "alternation accuracy {acc}");
    }

    #[test]
    fn deterministic_and_clonable() {
        let (cal, config) = setup();
        let cfg = TageConfig::default();
        let drive = |tage: &mut Tage| {
            let mut updates = Vec::new();
            let mut decisions = Vec::new();
            for shot in 0..120u32 {
                let site = FeedbackSite((shot % 3) as usize);
                let outcome = (shot * 7) % 5 < 2;
                let states: Vec<bool> = (0..20).map(|w| (w + shot) % 3 == 0).collect();
                let view = ShotView {
                    site,
                    states: &states,
                    iq: &[],
                    p_history: 0.5,
                    truth: outcome,
                };
                decisions.push(tage.predict(&view, &mut updates));
                if shot % 4 == 3 {
                    tage.track_other(site, outcome);
                } else {
                    tage.update(site, outcome);
                }
            }
            decisions
        };
        let mut a = Tage::new(&cfg, &cal, &config);
        let mut b = Tage::new(&cfg, &cal, &config);
        let da = drive(&mut a);
        let db = drive(&mut b);
        assert_eq!(da, db, "same shot sequence must give same decisions");
        assert_eq!(a, b, "same shot sequence must give same tables");
        // A clone trained further diverges from its source.
        let mut c = a.clone();
        let _ = drive(&mut c);
        assert_ne!(a, c);
    }

    #[test]
    fn config_serde_round_trips() {
        let cfg = TageConfig {
            num_tables: 6,
            max_history: 64,
            ..TageConfig::default()
        };
        let json = serde_json::to_string(&cfg).expect("serialize");
        let back: TageConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, cfg);
    }

    #[test]
    fn storage_formula_counts_all_tables() {
        let cfg = TageConfig::default();
        let expected = (1 << 10) * 6 + 4 * (1 << 9) * (9 + 3 + 2);
        assert_eq!(cfg.storage_bits(), expected);
    }

    #[test]
    #[should_panic(expected = "history lengths")]
    fn over_long_history_panics() {
        let (cal, config) = setup();
        let cfg = TageConfig {
            max_history: 65,
            ..TageConfig::default()
        };
        let _ = Tage::new(&cfg, &cal, &config);
    }
}
