//! The paper's Bayesian predictor behind the zoo trait.

use artery_circuit::FeedbackSite;
use artery_core::{
    ArteryConfig, BranchPredictor, Calibration, Decision, PredictorSpec, ShotView, SitePredictor,
};
use artery_hw::trigger::ProbabilityUpdate;

/// Adapter over the built-in [`BranchPredictor`]: the §4 prior+trajectory
/// fusion walk, unchanged, behind [`SitePredictor`].
///
/// Decisions and probability streams are bit-identical to calling
/// [`BranchPredictor::predict_states`] directly — the adapter owns a clone
/// of the calibration and delegates the walk verbatim. The history feature
/// stays with the caller (the controller's or replayer's
/// [`HistoryTracker`](artery_core::predictor::HistoryTracker) supplies
/// [`ShotView::p_history`]), so [`update`](SitePredictor::update) is a
/// no-op here.
#[derive(Debug, Clone)]
pub struct PaperPredictor {
    calibration: Calibration,
    config: ArteryConfig,
}

impl PaperPredictor {
    /// Wraps the paper predictor over its calibration and configuration.
    #[must_use]
    pub fn new(calibration: &Calibration, config: &ArteryConfig) -> Self {
        Self {
            calibration: calibration.clone(),
            config: *config,
        }
    }
}

impl SitePredictor for PaperPredictor {
    fn spec(&self) -> PredictorSpec {
        PredictorSpec {
            name: "paper".into(),
            detail: format!(
                "Bayesian history+trajectory fusion (k={}, theta={}, buckets={})",
                self.config.k, self.config.theta, self.config.time_buckets
            ),
            is_oracle: false,
        }
    }

    fn predict(
        &mut self,
        view: &ShotView<'_>,
        updates: &mut Vec<ProbabilityUpdate>,
    ) -> Option<Decision> {
        BranchPredictor::new(&self.calibration, &self.config).predict_states_into(
            view.states,
            view.p_history,
            updates,
        )
    }

    fn update(&mut self, _site: FeedbackSite, _outcome: bool) {
        // History lives in the caller's tracker and arrives as
        // `ShotView::p_history`; the walk itself is stateless.
    }

    fn clone_box(&self) -> Box<dyn SitePredictor> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_num::rng::rng_for;

    #[test]
    fn adapter_matches_branch_predictor_on_a_pulse() {
        let config = ArteryConfig {
            train_pulses: 300,
            ..ArteryConfig::paper()
        };
        let cal = Calibration::train(&config, &mut rng_for("paper/adapter"));
        let direct = BranchPredictor::new(&cal, &config);
        let mut adapter = PaperPredictor::new(&cal, &config);
        let mut rng = rng_for("paper/adapter-pulse");
        let mut updates = Vec::new();
        for shot in 0..25 {
            let pulse = cal.model().synthesize(shot % 2 == 0, &mut rng);
            let states = {
                let traj = cal.demod().cumulative_trajectory(&pulse);
                traj.iter()
                    .map(|&iq| cal.centers().classify(iq))
                    .collect::<Vec<_>>()
            };
            let p_history = 0.1 + 0.03 * shot as f64;
            let expected = direct.predict_states(&states, p_history);
            let view = ShotView {
                site: FeedbackSite(0),
                states: &states,
                iq: &[],
                p_history,
                truth: shot % 2 == 0,
            };
            let got = adapter.predict(&view, &mut updates);
            assert_eq!(got, expected.decision);
            assert_eq!(updates, expected.updates);
        }
    }
}
