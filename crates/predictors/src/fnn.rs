//! The HERQULES-class FNN baseline behind the zoo trait.

use artery_baselines::fnn::FnnClassifier;
use artery_circuit::FeedbackSite;
use artery_core::{ArteryConfig, Decision, PredictorSpec, ShotView, SitePredictor};
use artery_hw::trigger::{ProbabilityUpdate, Thresholds};

/// A pre-trained feed-forward network scoring the *full* recorded IQ
/// trajectory: the classifier the ML-FPGA literature deploys, which waits
/// for readout end before it can emit a probability. Its commitment (when
/// confident past θ) lands at the last demodulation window, so it can never
/// beat the windowed predictors on latency — it is on the leaderboard to
/// show what trajectory-only classification buys in accuracy at that cost.
///
/// Shots recorded without IQ (slim traces) degrade to "no commitment".
#[derive(Debug, Clone)]
pub struct FnnPredictor {
    fnn: FnnClassifier,
    thresholds: Thresholds,
}

impl FnnPredictor {
    /// Wraps a trained classifier; θ comes from the ARTERY configuration so
    /// the trigger matches the other contenders.
    #[must_use]
    pub fn new(fnn: FnnClassifier, config: &ArteryConfig) -> Self {
        Self {
            fnn,
            thresholds: Thresholds::symmetric(config.theta),
        }
    }
}

impl SitePredictor for FnnPredictor {
    fn spec(&self) -> PredictorSpec {
        PredictorSpec {
            name: "fnn".into(),
            detail: "feed-forward network over the full IQ trajectory (artery-baselines)".into(),
            is_oracle: false,
        }
    }

    fn predict(
        &mut self,
        view: &ShotView<'_>,
        updates: &mut Vec<ProbabilityUpdate>,
    ) -> Option<Decision> {
        updates.clear();
        if view.iq.is_empty() {
            return None;
        }
        let window = view.iq.len() - 1;
        let p = self.fnn.probability_from_trajectory(view.iq);
        updates.push(ProbabilityUpdate {
            window,
            p_predict_1: p,
        });
        self.thresholds.decide(p).map(|branch| Decision {
            window,
            branch,
            p_predict_1: p,
        })
    }

    fn update(&mut self, _site: FeedbackSite, _outcome: bool) {
        // The network is pre-trained; no online training.
    }

    fn clone_box(&self) -> Box<dyn SitePredictor> {
        Box::new(self.clone())
    }
}

/// Trains a small FNN for unit tests (few pulses, few epochs).
#[cfg(test)]
pub(crate) fn train_for_tests(config: &ArteryConfig) -> FnnClassifier {
    use artery_baselines::fnn::FnnConfig;
    use artery_readout::Dataset;

    let model = config.readout_model();
    let dataset = Dataset::generate(
        &model,
        0.5,
        200,
        &mut artery_num::rng::rng_for("predictors/fnn-data"),
    );
    FnnClassifier::train(
        &model,
        &FnnConfig {
            window_ns: config.window_ns,
            epochs: 10,
            ..FnnConfig::default()
        },
        dataset.pulses(),
        &mut artery_num::rng::rng_for("predictors/fnn-init"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_num::rng::rng_for;
    use artery_readout::IqPoint;

    #[test]
    fn classifies_clean_trajectories_and_skips_slim_traces() {
        let config = ArteryConfig {
            train_pulses: 100,
            ..ArteryConfig::paper()
        };
        let fnn = train_for_tests(&config);
        let mut pred = FnnPredictor::new(fnn, &config);
        let model = config.readout_model();
        let demod = artery_readout::Demodulator::for_model(&model, config.window_ns);
        let mut rng = rng_for("predictors/fnn-shots");
        let mut updates = Vec::new();
        let mut correct = 0u32;
        let mut committed = 0u32;
        for shot in 0..60u32 {
            let truth = shot % 2 == 0;
            let pulse = model.synthesize(truth, &mut rng);
            let iq: Vec<IqPoint> = demod.cumulative_trajectory(&pulse);
            let states = vec![truth; iq.len()];
            let view = ShotView {
                site: FeedbackSite(0),
                states: &states,
                iq: &iq,
                p_history: 0.5,
                truth,
            };
            if let Some(d) = pred.predict(&view, &mut updates) {
                assert_eq!(d.window, iq.len() - 1, "FNN decides at readout end");
                committed += 1;
                correct += u32::from(d.branch == truth);
            }
        }
        assert!(committed > 30, "committed only {committed}/60");
        let acc = f64::from(correct) / f64::from(committed);
        assert!(acc > 0.9, "FNN accuracy {acc}");

        // A slim trace (no IQ) cannot be classified.
        let view = ShotView {
            site: FeedbackSite(0),
            states: &[true; 10],
            iq: &[],
            p_history: 0.5,
            truth: true,
        };
        assert_eq!(pred.predict(&view, &mut updates), None);
        assert!(updates.is_empty());
    }
}
