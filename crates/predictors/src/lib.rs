//! The ARTERY predictor zoo — hot-swappable contenders behind
//! [`SitePredictor`], scored CBP-style on recorded traces.
//!
//! ARTERY's Bayesian prior+trajectory predictor is one fixed point in the
//! design space the paper borrows from: the championship-branch-prediction
//! world, whose competition interface exists precisely to make predictors
//! swappable and rank them head-to-head. This crate ships that interface's
//! contenders:
//!
//! * [`PaperPredictor`] — the paper's predictor behind the trait,
//!   bit-identical to the built-in [`BranchPredictor`] walk,
//! * [`Tage`] — a tagged-geometric (TAGE) predictor over per-site
//!   shot-outcome history, fused with the trajectory probability exactly as
//!   the paper fuses its history prior,
//! * [`Bimodal`] — a history-only saturating-counter baseline,
//! * [`FnnPredictor`] — the HERQULES-class feed-forward network from
//!   `artery-baselines`, consuming the full recorded IQ trajectory,
//! * [`Oracle`] — the upper bound: commits to the truth at the earliest
//!   legal window.
//!
//! [`ZooReplayer`] re-drives any contender over a recorded trace with the
//! same history/latency semantics as the live controller, producing the
//! [`PredictorScore`]s the `trace_eval` leaderboard ranks (mispredicts per
//! 1k feedbacks, commit rate, mean decision window, net latency).
//!
//! [`BranchPredictor`]: artery_core::BranchPredictor
//!
//! # Examples
//!
//! Swap the paper's predictor into the live controller through the trait —
//! decisions are bit-identical to the default controller:
//!
//! ```
//! use artery_core::{ArteryConfig, ArteryController, Calibration};
//! use artery_predictors::PaperPredictor;
//! use artery_sim::{Executor, NoiseModel};
//!
//! let config = ArteryConfig::default();
//! let mut rng = artery_num::rng::rng_for("doc/zoo");
//! let calibration = Calibration::train(&config, &mut rng);
//! let circuit = artery_workloads::active_reset(1);
//!
//! let adapter = Box::new(PaperPredictor::new(&calibration, &config));
//! let mut swapped =
//!     ArteryController::new(&circuit, &config, &calibration).with_zoo_predictor(adapter);
//! let mut exec = Executor::new(NoiseModel::noiseless());
//! exec.run(&circuit, &mut swapped, &mut rng);
//! assert_eq!(swapped.stats().resolved, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bimodal;
mod eval;
mod fnn;
mod oracle;
mod paper;
mod tage;

pub use bimodal::Bimodal;
pub use eval::{PredictorScore, ZooReplayer};
pub use fnn::FnnPredictor;
pub use oracle::Oracle;
pub use paper::PaperPredictor;
pub use tage::{Tage, TageConfig};

use artery_baselines::fnn::FnnClassifier;
use artery_core::{ArteryConfig, Calibration, SitePredictor};

/// The standard five-contender zoo the leaderboard ranks: paper adapter,
/// TAGE, bimodal, FNN and the oracle, in that order.
///
/// The FNN must be trained by the caller (training needs a labelled pulse
/// dataset and an RNG stream; see `trace_eval` for the canonical recipe).
#[must_use]
pub fn standard_zoo(
    calibration: &Calibration,
    config: &ArteryConfig,
    fnn: FnnClassifier,
) -> Vec<Box<dyn SitePredictor>> {
    vec![
        Box::new(PaperPredictor::new(calibration, config)),
        Box::new(Tage::new(&TageConfig::default(), calibration, config)),
        Box::new(Bimodal::new(config)),
        Box::new(FnnPredictor::new(fnn, config)),
        Box::new(Oracle::new(config)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_num::rng::rng_for;

    #[test]
    fn standard_zoo_has_five_distinct_contenders() {
        let config = ArteryConfig {
            train_pulses: 100,
            ..ArteryConfig::paper()
        };
        let cal = Calibration::train(&config, &mut rng_for("zoo/five"));
        let fnn = crate::fnn::train_for_tests(&config);
        let zoo = standard_zoo(&cal, &config, fnn);
        assert_eq!(zoo.len(), 5);
        let names: Vec<String> = zoo.iter().map(|p| p.spec().name).collect();
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "duplicate names: {names:?}");
        // Exactly one contender is allowed to peek at the truth.
        assert_eq!(zoo.iter().filter(|p| p.spec().is_oracle).count(), 1);
    }
}
