//! The oracle upper bound: perfect prediction at the earliest legal window.

use artery_circuit::FeedbackSite;
use artery_core::{ArteryConfig, Decision, PredictorSpec, ShotView, SitePredictor};
use artery_hw::trigger::ProbabilityUpdate;

/// Commits to [`ShotView::truth`] at window `k − 1` — the earliest moment
/// any contender playing by the branch-history-register rules could commit.
/// Zero mispredictions, maximal commit rate, minimal decision window: the
/// latency this scores is the floor of the whole design space, which is why
/// the leaderboard must rank it first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Oracle {
    k: usize,
}

impl Oracle {
    /// An oracle honoring the configuration's `k`-window warm-up.
    #[must_use]
    pub fn new(config: &ArteryConfig) -> Self {
        Self { k: config.k }
    }
}

impl SitePredictor for Oracle {
    fn spec(&self) -> PredictorSpec {
        PredictorSpec {
            name: "oracle".into(),
            detail: format!("perfect prediction at window k-1={}", self.k - 1),
            is_oracle: true,
        }
    }

    fn predict(
        &mut self,
        view: &ShotView<'_>,
        updates: &mut Vec<ProbabilityUpdate>,
    ) -> Option<Decision> {
        updates.clear();
        if view.states.len() < self.k {
            return None;
        }
        let p = if view.truth { 1.0 } else { 0.0 };
        let window = self.k - 1;
        updates.push(ProbabilityUpdate {
            window,
            p_predict_1: p,
        });
        Some(Decision {
            window,
            branch: view.truth,
            p_predict_1: p,
        })
    }

    fn update(&mut self, _site: FeedbackSite, _outcome: bool) {}

    fn clone_box(&self) -> Box<dyn SitePredictor> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_right_at_the_first_window() {
        let config = ArteryConfig::paper();
        let mut o = Oracle::new(&config);
        let states = vec![false; 20];
        let mut updates = Vec::new();
        for truth in [false, true] {
            let d = o
                .predict(
                    &ShotView {
                        site: FeedbackSite(0),
                        states: &states,
                        iq: &[],
                        p_history: 0.5,
                        truth,
                    },
                    &mut updates,
                )
                .expect("oracle always commits");
            assert_eq!(d.branch, truth);
            assert_eq!(d.window, config.k - 1);
        }
    }

    #[test]
    fn respects_the_register_warmup() {
        let mut o = Oracle::new(&ArteryConfig::paper());
        let states = vec![false; 2];
        let mut updates = Vec::new();
        assert_eq!(
            o.predict(
                &ShotView {
                    site: FeedbackSite(0),
                    states: &states,
                    iq: &[],
                    p_history: 0.5,
                    truth: true,
                },
                &mut updates,
            ),
            None
        );
    }
}
