//! History-only bimodal baseline: one saturating counter per site.

use std::collections::HashMap;

use artery_circuit::FeedbackSite;
use artery_core::{ArteryConfig, Decision, PredictorSpec, ShotView, SitePredictor};
use artery_hw::trigger::{ProbabilityUpdate, Thresholds};

/// Counter width in bits. Wide enough that a saturated counter's
/// probability (1 − 1/2⁷) clears any threshold the paper sweeps (Fig. 17
/// tops out at 0.99); a classic 2-bit bimodal counter could never commit.
const BITS: u32 = 6;
const MAX: i32 = (1 << (BITS - 1)) - 1;

/// The simplest real contender: a per-site `BITS`-bit saturating counter,
/// no trajectory feature, no tagged history. The counter's probability is
/// checked against θ once the branch history registers are full (window
/// `k − 1`); it never changes mid-readout, so the prediction either fires
/// there or the shot degrades to sequential feedback.
///
/// This is the floor TAGE must beat: it captures a site's bias and nothing
/// else.
#[derive(Debug, Clone, PartialEq)]
pub struct Bimodal {
    k: usize,
    thresholds: Thresholds,
    counters: HashMap<usize, i32>,
}

impl Bimodal {
    /// An empty table; `k` and θ come from the ARTERY configuration so the
    /// earliest decision window and the trigger match the other contenders.
    #[must_use]
    pub fn new(config: &ArteryConfig) -> Self {
        Self {
            k: config.k,
            thresholds: Thresholds::symmetric(config.theta),
            counters: HashMap::new(),
        }
    }

    /// `P(outcome = 1)` of a site: the counter mapped onto (0, 1).
    #[must_use]
    pub fn probability(&self, site: FeedbackSite) -> f64 {
        let c = self.counters.get(&site.0).copied().unwrap_or(0);
        (f64::from(c) + f64::from(MAX) + 1.5) / f64::from(2 * (MAX + 1))
    }
}

impl SitePredictor for Bimodal {
    fn spec(&self) -> PredictorSpec {
        PredictorSpec {
            name: "bimodal".into(),
            detail: format!("history-only per-site {BITS}-bit saturating counter"),
            is_oracle: false,
        }
    }

    fn predict(
        &mut self,
        view: &ShotView<'_>,
        updates: &mut Vec<ProbabilityUpdate>,
    ) -> Option<Decision> {
        updates.clear();
        if view.states.len() < self.k {
            return None;
        }
        let window = self.k - 1;
        let p = self.probability(view.site);
        updates.push(ProbabilityUpdate {
            window,
            p_predict_1: p,
        });
        self.thresholds.decide(p).map(|branch| Decision {
            window,
            branch,
            p_predict_1: p,
        })
    }

    fn update(&mut self, site: FeedbackSite, outcome: bool) {
        let c = self.counters.entry(site.0).or_insert(0);
        *c = (*c + if outcome { 1 } else { -1 }).clamp(-(MAX + 1), MAX);
    }

    fn clone_box(&self) -> Box<dyn SitePredictor> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(states: &[bool]) -> ShotView<'_> {
        ShotView {
            site: FeedbackSite(0),
            states,
            iq: &[],
            p_history: 0.5,
            truth: false,
        }
    }

    #[test]
    fn cold_counter_never_commits() {
        let mut b = Bimodal::new(&ArteryConfig::paper());
        let states = vec![true; 20];
        let mut updates = Vec::new();
        assert_eq!(b.predict(&view(&states), &mut updates), None);
        assert_eq!(updates.len(), 1);
        assert!((b.probability(FeedbackSite(0)) - 0.5).abs() < 0.02);
    }

    #[test]
    fn saturated_counter_commits_at_first_window() {
        let config = ArteryConfig::paper();
        let mut b = Bimodal::new(&config);
        for _ in 0..100 {
            b.update(FeedbackSite(0), false);
        }
        let states = vec![true; 20];
        let mut updates = Vec::new();
        let d = b.predict(&view(&states), &mut updates).expect("commit");
        assert!(!d.branch);
        assert_eq!(d.window, config.k - 1);
        assert!(b.probability(FeedbackSite(0)) < 0.03);
    }

    #[test]
    fn short_streams_never_commit() {
        let mut b = Bimodal::new(&ArteryConfig::paper());
        for _ in 0..100 {
            b.update(FeedbackSite(0), true);
        }
        let states = vec![true; 3]; // fewer than k windows
        let mut updates = Vec::new();
        assert_eq!(b.predict(&view(&states), &mut updates), None);
        assert!(updates.is_empty());
    }
}
