//! Trace-driven zoo scoring — the CBP leaderboard's inner loop.
//!
//! [`ZooReplayer`] is [`Replayer`](artery_trace::Replayer) generalized over
//! [`SitePredictor`]: it re-drives one contender over recorded trace
//! events with exactly the live controller's semantics — the history prior
//! is re-derived from the recorded outcome stream, `case.benefits_from_
//! prediction()` gates prediction, the decision is priced through
//! [`feedback_latency_ns`], and the outcome trains the predictor via
//! `update`/`track_other`. Replaying the paper adapter therefore
//! reproduces the recorded configuration's statistics bit-for-bit (pinned
//! by this module's tests and the `trace_eval` harness).

use std::collections::BTreeMap;

use artery_circuit::FeedbackSite;
use artery_core::predictor::HistoryTracker;
use artery_core::{
    feedback_latency_ns, ArteryConfig, PredictorSpec, ShotStats, ShotView, SiteOutcome,
    SitePredictor,
};
use artery_hw::trigger::ProbabilityUpdate;
use artery_hw::ControllerTiming;
use artery_readout::IqPoint;
use artery_trace::TraceEvent;

/// One contender's leaderboard entry: aggregate statistics plus the
/// per-site split (the per-predictor mispredict counters).
#[derive(Debug, Clone, PartialEq)]
pub struct PredictorScore {
    /// The contender's descriptor.
    pub spec: PredictorSpec,
    /// Aggregate statistics over every replayed feedback.
    pub stats: ShotStats,
    /// Per-site statistics, keyed by site index (deterministic order).
    pub sites: BTreeMap<usize, ShotStats>,
}

impl PredictorScore {
    /// Committed-but-wrong predictions.
    #[must_use]
    pub fn mispredicts(&self) -> u64 {
        self.stats.committed - self.stats.correct
    }

    /// The MPKI analog: mispredictions per 1 000 resolved feedbacks.
    #[must_use]
    pub fn mispredicts_per_1k(&self) -> f64 {
        if self.stats.resolved == 0 {
            0.0
        } else {
            1000.0 * self.mispredicts() as f64 / self.stats.resolved as f64
        }
    }

    /// Merges another shard's score for the same contender (shard-order
    /// reduction keeps the leaderboard thread-count invariant).
    ///
    /// # Panics
    ///
    /// Panics when the scores describe different contenders.
    pub fn merge(&mut self, other: &PredictorScore) {
        assert_eq!(
            self.spec, other.spec,
            "merging scores of different contenders"
        );
        self.stats.merge(&other.stats);
        for (site, stats) in &other.sites {
            self.sites.entry(*site).or_default().merge(stats);
        }
    }
}

/// Re-drives one [`SitePredictor`] over recorded trace events.
#[derive(Debug, Clone)]
pub struct ZooReplayer {
    config: ArteryConfig,
    timing: ControllerTiming,
    history: HistoryTracker,
    predictor: Box<dyn SitePredictor>,
    stats: ShotStats,
    sites: BTreeMap<usize, ShotStats>,
    /// Reused per-event buffers.
    iq: Vec<IqPoint>,
    updates: Vec<ProbabilityUpdate>,
}

impl ZooReplayer {
    /// Builds a replayer driving `predictor` under `config`'s latency
    /// model. The predictor arrives with whatever training it already has;
    /// warm it by replaying warm-up events, then [`Self::reset_stats`].
    #[must_use]
    pub fn new(predictor: Box<dyn SitePredictor>, config: &ArteryConfig) -> Self {
        Self {
            config: *config,
            timing: ControllerTiming::new(config.hardware(), config.window_ns),
            history: HistoryTracker::new(),
            predictor,
            stats: ShotStats::default(),
            sites: BTreeMap::new(),
            iq: Vec::new(),
            updates: Vec::new(),
        }
    }

    /// Replays one event: prior, prediction, latency, then training —
    /// the same order as the live controller's resolve path.
    pub fn replay_event(&mut self, event: &TraceEvent) -> SiteOutcome {
        let site = FeedbackSite(event.site);
        let p_history = self.history.p_history_1(site);
        let predicts = event.case.benefits_from_prediction();
        let decision = if predicts {
            self.iq.clear();
            self.iq.extend(event.iq.iter().map(|&(i, q)| IqPoint {
                i: f64::from(i),
                q: f64::from(q),
            }));
            let view = ShotView {
                site,
                states: &event.states,
                iq: &self.iq,
                p_history,
                truth: event.reported,
            };
            self.predictor.predict(&view, &mut self.updates)
        } else {
            None
        };
        let latency_ns = feedback_latency_ns(
            &self.timing,
            self.config.route_ns,
            event.case,
            event.branch0_ns,
            event.branch1_ns,
            event.reported,
            decision.as_ref(),
        );
        self.history.observe(site, event.reported);
        if predicts {
            self.predictor.update(site, event.reported);
        } else {
            self.predictor.track_other(site, event.reported);
        }
        let outcome = SiteOutcome {
            site,
            window: decision.as_ref().map(|d| d.window),
            predicted: decision.as_ref().map(|d| d.branch),
            reported: event.reported,
            latency_ns,
        };
        self.stats.record(&outcome);
        self.sites.entry(event.site).or_default().record(&outcome);
        outcome
    }

    /// Replays a slice of events in order.
    pub fn replay_all(&mut self, events: &[TraceEvent]) {
        for event in events {
            self.replay_event(event);
        }
    }

    /// Clears the statistics while keeping the predictor's training and the
    /// re-derived history — the warm-up/measure split of the harnesses.
    pub fn reset_stats(&mut self) {
        self.stats = ShotStats::default();
        self.sites.clear();
    }

    /// Overwrites the replayed history with recorded counters — a trace-v2
    /// block seed or an [`artery_trace::history_at_boundaries`] snapshot —
    /// so distilled replay can jump to a representative window with exactly
    /// the history a sequential replay would have carried there.
    ///
    /// # Panics
    ///
    /// Panics when a counter claims more 1-outcomes than observations.
    pub fn seed_history_counts(&mut self, counts: &[artery_trace::HistoryCount]) {
        for c in counts {
            self.history
                .set_counts(FeedbackSite(c.site), c.ones, c.total);
        }
    }

    /// Aggregate statistics so far.
    #[must_use]
    pub fn stats(&self) -> &ShotStats {
        &self.stats
    }

    /// Consumes the replayer into its leaderboard entry.
    #[must_use]
    pub fn into_score(self) -> PredictorScore {
        PredictorScore {
            spec: self.predictor.spec(),
            stats: self.stats,
            sites: self.sites,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Oracle, PaperPredictor};
    use artery_core::{ArteryController, Calibration};
    use artery_num::rng::rng_for;
    use artery_sim::{Executor, NoiseModel};
    use artery_trace::{Replayer, TraceHeader, TraceReader, TraceRecorder, TraceWriter};

    fn record(config: &ArteryConfig, cal: &Calibration, shots: usize) -> Vec<TraceEvent> {
        let circuit = artery_workloads::qrw(2);
        let controller = ArteryController::new(&circuit, config, cal);
        let writer = TraceWriter::new(Vec::new(), &TraceHeader::new(config, "zoo/eval")).unwrap();
        let mut recorder = TraceRecorder::new(controller, writer);
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("zoo/eval-run");
        for _ in 0..shots {
            let _ = exec.run(&circuit, &mut recorder, &mut rng);
        }
        let (_, bytes) = recorder.finish().unwrap();
        TraceReader::new(bytes.as_slice())
            .unwrap()
            .read_all()
            .unwrap()
    }

    #[test]
    fn paper_adapter_replays_bit_identical_to_the_replayer() {
        let config = ArteryConfig {
            train_pulses: 400,
            ..ArteryConfig::paper()
        };
        let cal = Calibration::train(&config, &mut rng_for("zoo/eval-cal"));
        let events = record(&config, &cal, 40);

        let mut reference = Replayer::new(&cal, &config);
        reference.replay_all(&events);

        let adapter = Box::new(PaperPredictor::new(&cal, &config));
        let mut zoo = ZooReplayer::new(adapter, &config);
        zoo.replay_all(&events);

        assert_eq!(zoo.stats(), reference.stats());
        let score = zoo.into_score();
        let site_resolved: u64 = score.sites.values().map(|s| s.resolved).sum();
        assert_eq!(site_resolved, score.stats.resolved);
    }

    #[test]
    fn oracle_scores_zero_mispredicts_and_merges() {
        let config = ArteryConfig {
            train_pulses: 400,
            ..ArteryConfig::paper()
        };
        let cal = Calibration::train(&config, &mut rng_for("zoo/eval-cal"));
        let events = record(&config, &cal, 30);

        let mut whole = ZooReplayer::new(Box::new(Oracle::new(&config)), &config);
        whole.replay_all(&events);
        let whole = whole.into_score();
        assert_eq!(whole.mispredicts(), 0);
        assert_eq!(whole.mispredicts_per_1k(), 0.0);
        assert_eq!(whole.stats.committed, whole.stats.resolved);

        // Sharded replay merges to the whole (the leaderboard's
        // thread-invariance relies on this).
        let (left, right) = events.split_at(events.len() / 2);
        let mut a = ZooReplayer::new(Box::new(Oracle::new(&config)), &config);
        a.replay_all(left);
        let mut merged = a.into_score();
        let mut b = ZooReplayer::new(Box::new(Oracle::new(&config)), &config);
        b.replay_all(right);
        merged.merge(&b.into_score());
        assert_eq!(merged.stats.resolved, whole.stats.resolved);
        assert_eq!(merged.stats.correct, whole.stats.correct);
        assert_eq!(merged.sites.len(), whole.sites.len());
    }
}
