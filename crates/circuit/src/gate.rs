//! The calibrated gate set of the evaluation platform.
//!
//! The paper's device exposes RX, RY, RZ and CZ as basis gates; RZ is a
//! *virtual* gate implemented as a frame update and therefore free (McKay et
//! al., cited as [33] in the paper). Common Cliffords (X, Y, Z, H, S, T,
//! CNOT, SWAP) are provided as named gates because the workload generators
//! use them heavily; their durations reflect their decomposition onto the
//! basis set (XY pulses take 30 ns, CZ takes 60 ns — §5.4).

use std::f64::consts::{FRAC_1_SQRT_2, FRAC_PI_2, FRAC_PI_4, PI};
use std::fmt;

use artery_num::Complex64;
use serde::{Deserialize, Serialize};

use crate::matrix::{GateMatrix, Matrix4};

/// Duration of a physical single-qubit XY pulse in nanoseconds (§5.4).
pub const XY_PULSE_NS: f64 = 30.0;
/// Duration of a CZ pulse in nanoseconds (§5.4).
pub const CZ_PULSE_NS: f64 = 60.0;

/// A quantum gate from the device's calibrated set.
///
/// Rotation angles are in radians.
///
/// # Examples
///
/// ```
/// use artery_circuit::Gate;
///
/// assert_eq!(Gate::CZ.num_qubits(), 2);
/// assert_eq!(Gate::RZ(1.0).duration_ns(), 0.0); // virtual gate
/// assert!(Gate::H.matrix().is_unitary(1e-12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Gate {
    /// Rotation about X by the given angle.
    RX(f64),
    /// Rotation about Y by the given angle.
    RY(f64),
    /// Rotation about Z by the given angle (virtual, zero duration).
    RZ(f64),
    /// Pauli X (NOT).
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z (virtual).
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = diag(1, i).
    S,
    /// Inverse phase gate S† = diag(1, −i).
    Sdg,
    /// T gate = diag(1, e^{iπ/4}).
    T,
    /// T† gate.
    Tdg,
    /// Controlled-Z (symmetric).
    CZ,
    /// Controlled-X with qubit order `[control, target]`.
    CNOT,
    /// SWAP of two qubits.
    Swap,
}

impl Gate {
    /// Number of qubits the gate acts on.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        match self {
            Gate::CZ | Gate::CNOT | Gate::Swap => 2,
            _ => 1,
        }
    }

    /// Physical pulse duration in nanoseconds.
    ///
    /// Virtual Z rotations take zero time; every other single-qubit gate is
    /// one XY pulse; two-qubit gates cost one CZ pulse (CNOT and SWAP add the
    /// surrounding single-qubit pulses of their standard decomposition).
    #[must_use]
    pub fn duration_ns(&self) -> f64 {
        match self {
            Gate::RZ(_) | Gate::Z | Gate::S | Gate::Sdg | Gate::T | Gate::Tdg => 0.0,
            Gate::RX(_) | Gate::RY(_) | Gate::X | Gate::Y | Gate::H => XY_PULSE_NS,
            Gate::CZ => CZ_PULSE_NS,
            // CNOT = H·CZ·H on the target: two XY pulses around one CZ.
            Gate::CNOT => CZ_PULSE_NS + 2.0 * XY_PULSE_NS,
            // SWAP = 3 CNOTs.
            Gate::Swap => 3.0 * (CZ_PULSE_NS + 2.0 * XY_PULSE_NS),
        }
    }

    /// Returns `true` for frame-update gates that consume no pulse time.
    #[must_use]
    pub fn is_virtual(&self) -> bool {
        self.duration_ns() == 0.0
    }

    /// Returns `true` for gates that are diagonal in the computational
    /// basis (the Z/phase family plus CZ) — the gates the fusion pass
    /// ([`crate::fuse`]) can collapse into a single batched phase sweep.
    #[must_use]
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            Gate::Z | Gate::S | Gate::Sdg | Gate::T | Gate::Tdg | Gate::RZ(_) | Gate::CZ
        )
    }

    /// The inverse gate (`U†`).
    ///
    /// # Examples
    ///
    /// ```
    /// use artery_circuit::Gate;
    /// assert_eq!(Gate::S.inverse(), Gate::Sdg);
    /// assert_eq!(Gate::X.inverse(), Gate::X);
    /// ```
    #[must_use]
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::RX(t) => Gate::RX(-t),
            Gate::RY(t) => Gate::RY(-t),
            Gate::RZ(t) => Gate::RZ(-t),
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            g @ (Gate::X | Gate::Y | Gate::Z | Gate::H | Gate::CZ | Gate::CNOT | Gate::Swap) => g,
        }
    }

    /// The unitary matrix of the gate.
    ///
    /// Two-qubit matrices are ordered so that the *first* qubit passed to the
    /// instruction is the higher-order bit: basis order `|q0 q1⟩` with `q1`
    /// least significant. For symmetric gates (CZ, SWAP) the order is
    /// irrelevant; for CNOT, qubit 0 is the control.
    #[must_use]
    pub fn matrix(&self) -> GateMatrix {
        let o = Complex64::ONE;
        let z = Complex64::ZERO;
        let i = Complex64::i();
        match *self {
            Gate::RX(t) => {
                let c = Complex64::new((t / 2.0).cos(), 0.0);
                let s = Complex64::new(0.0, -(t / 2.0).sin());
                GateMatrix::One([[c, s], [s, c]])
            }
            Gate::RY(t) => {
                let c = Complex64::new((t / 2.0).cos(), 0.0);
                let s = Complex64::new((t / 2.0).sin(), 0.0);
                GateMatrix::One([[c, -s], [s, c]])
            }
            Gate::RZ(t) => {
                GateMatrix::One([[Complex64::cis(-t / 2.0), z], [z, Complex64::cis(t / 2.0)]])
            }
            Gate::X => GateMatrix::One([[z, o], [o, z]]),
            Gate::Y => GateMatrix::One([[z, -i], [i, z]]),
            Gate::Z => GateMatrix::One([[o, z], [z, -o]]),
            Gate::H => {
                let h = Complex64::new(FRAC_1_SQRT_2, 0.0);
                GateMatrix::One([[h, h], [h, -h]])
            }
            Gate::S => GateMatrix::One([[o, z], [z, i]]),
            Gate::Sdg => GateMatrix::One([[o, z], [z, -i]]),
            Gate::T => GateMatrix::One([[o, z], [z, Complex64::cis(FRAC_PI_4)]]),
            Gate::Tdg => GateMatrix::One([[o, z], [z, Complex64::cis(-FRAC_PI_4)]]),
            Gate::CZ => {
                let mut m: Matrix4 = [[z; 4]; 4];
                m[0][0] = o;
                m[1][1] = o;
                m[2][2] = o;
                m[3][3] = -o;
                GateMatrix::Two(m)
            }
            Gate::CNOT => {
                // control = qubit 0 (high bit), target = qubit 1 (low bit).
                let mut m: Matrix4 = [[z; 4]; 4];
                m[0][0] = o;
                m[1][1] = o;
                m[2][3] = o;
                m[3][2] = o;
                GateMatrix::Two(m)
            }
            Gate::Swap => {
                let mut m: Matrix4 = [[z; 4]; 4];
                m[0][0] = o;
                m[1][2] = o;
                m[2][1] = o;
                m[3][3] = o;
                GateMatrix::Two(m)
            }
        }
    }

    /// Decomposes the gate into the device basis set {RX, RY, RZ, CZ},
    /// returning per-qubit basis gates paired with *local* qubit indices
    /// (0 for one-qubit gates; 0/1 for two-qubit gates).
    ///
    /// Used by the pulse library (§5.4) to count physical pulses.
    #[must_use]
    pub fn basis_decomposition(&self) -> Vec<(Gate, usize)> {
        match *self {
            g @ (Gate::RX(_) | Gate::RY(_) | Gate::RZ(_)) => vec![(g, 0)],
            Gate::X => vec![(Gate::RX(PI), 0)],
            Gate::Y => vec![(Gate::RY(PI), 0)],
            Gate::Z => vec![(Gate::RZ(PI), 0)],
            Gate::H => vec![(Gate::RZ(PI), 0), (Gate::RY(FRAC_PI_2), 0)],
            Gate::S => vec![(Gate::RZ(FRAC_PI_2), 0)],
            Gate::Sdg => vec![(Gate::RZ(-FRAC_PI_2), 0)],
            Gate::T => vec![(Gate::RZ(FRAC_PI_4), 0)],
            Gate::Tdg => vec![(Gate::RZ(-FRAC_PI_4), 0)],
            Gate::CZ => vec![(Gate::CZ, 0)],
            Gate::CNOT => vec![
                (Gate::RZ(PI), 1),
                (Gate::RY(FRAC_PI_2), 1),
                (Gate::CZ, 0),
                (Gate::RZ(PI), 1),
                (Gate::RY(FRAC_PI_2), 1),
            ],
            Gate::Swap => {
                let mut out = Vec::new();
                for _ in 0..3 {
                    out.extend(Gate::CNOT.basis_decomposition());
                }
                out
            }
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::RX(t) => write!(f, "rx({t:.4})"),
            Gate::RY(t) => write!(f, "ry({t:.4})"),
            Gate::RZ(t) => write!(f, "rz({t:.4})"),
            Gate::X => write!(f, "x"),
            Gate::Y => write!(f, "y"),
            Gate::Z => write!(f, "z"),
            Gate::H => write!(f, "h"),
            Gate::S => write!(f, "s"),
            Gate::Sdg => write!(f, "sdg"),
            Gate::T => write!(f, "t"),
            Gate::Tdg => write!(f, "tdg"),
            Gate::CZ => write!(f, "cz"),
            Gate::CNOT => write!(f, "cnot"),
            Gate::Swap => write!(f, "swap"),
        }
    }
}

/// Identity matrix check helper: all gates in the calibrated set.
#[doc(hidden)]
#[must_use]
pub fn all_sample_gates() -> Vec<Gate> {
    vec![
        Gate::RX(0.3),
        Gate::RY(-1.1),
        Gate::RZ(2.2),
        Gate::X,
        Gate::Y,
        Gate::Z,
        Gate::H,
        Gate::S,
        Gate::Sdg,
        Gate::T,
        Gate::Tdg,
        Gate::CZ,
        Gate::CNOT,
        Gate::Swap,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_gates_are_unitary() {
        for g in all_sample_gates() {
            assert!(g.matrix().is_unitary(1e-12), "{g} is not unitary");
        }
    }

    #[test]
    fn inverse_composes_to_identity() {
        for g in all_sample_gates() {
            let prod = g.matrix().matmul(&g.inverse().matrix());
            let id = GateMatrix::identity(g.num_qubits());
            assert!(
                prod.approx_eq_up_to_phase(&id, 1e-12),
                "{g}·{g}⁻¹ is not the identity"
            );
        }
    }

    #[test]
    fn rx_pi_is_x_up_to_phase() {
        assert!(Gate::RX(PI)
            .matrix()
            .approx_eq_up_to_phase(&Gate::X.matrix(), 1e-12));
    }

    #[test]
    fn h_decomposition_matches_matrix() {
        // H = RY(π/2)·RZ(π) up to phase (decomposition lists RZ first, i.e.
        // applied first).
        let decomp = Gate::H.basis_decomposition();
        let mut acc = GateMatrix::identity(1);
        for (g, q) in decomp {
            assert_eq!(q, 0);
            acc = g.matrix().matmul(&acc);
        }
        assert!(acc.approx_eq_up_to_phase(&Gate::H.matrix(), 1e-12));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn cnot_decomposition_matches_matrix() {
        // Compose the decomposition on the 4-dimensional space. Local index 0
        // is the high bit, 1 the low bit.
        let lift = |g: Gate, local: usize| -> GateMatrix {
            let GateMatrix::One(m) = g.matrix() else {
                return g.matrix();
            };
            let z = Complex64::ZERO;
            let mut out: Matrix4 = [[z; 4]; 4];
            for r in 0..4usize {
                for c in 0..4usize {
                    let (rh, rl) = (r >> 1, r & 1);
                    let (ch, cl) = (c >> 1, c & 1);
                    out[r][c] = if local == 1 {
                        if rh == ch {
                            m[rl][cl]
                        } else {
                            z
                        }
                    } else if rl == cl {
                        m[rh][ch]
                    } else {
                        z
                    };
                }
            }
            GateMatrix::Two(out)
        };
        let mut acc = GateMatrix::identity(2);
        for (g, q) in Gate::CNOT.basis_decomposition() {
            acc = lift(g, q).matmul(&acc);
        }
        assert!(acc.approx_eq_up_to_phase(&Gate::CNOT.matrix(), 1e-12));
    }

    #[test]
    fn durations_follow_pulse_model() {
        assert_eq!(Gate::RX(0.5).duration_ns(), XY_PULSE_NS);
        assert_eq!(Gate::RZ(0.5).duration_ns(), 0.0);
        assert!(Gate::RZ(1.0).is_virtual());
        assert_eq!(Gate::CZ.duration_ns(), CZ_PULSE_NS);
        assert_eq!(Gate::CNOT.duration_ns(), CZ_PULSE_NS + 2.0 * XY_PULSE_NS);
    }

    #[test]
    fn self_inverse_gates() {
        for g in [
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::CZ,
            Gate::CNOT,
            Gate::Swap,
        ] {
            assert_eq!(g.inverse(), g);
        }
    }

    #[test]
    fn matrix2_alias_is_usable() {
        let _m: crate::matrix::Matrix2 = [[Complex64::ONE, Complex64::ZERO]; 2];
    }

    #[test]
    fn display_is_lowercase_mnemonic() {
        assert_eq!(Gate::CNOT.to_string(), "cnot");
        assert_eq!(Gate::RX(0.5).to_string(), "rx(0.5000)");
    }
}
