//! Dense 2×2 and 4×4 complex matrices for gate semantics.
//!
//! These types exist so that gate unitarity, inverses and the pre-execution
//! equivalence theorem can be *checked*, not assumed; the state-vector
//! simulator applies gates through them as well. Sizes are fixed at the type
//! level because the basis gate set only contains one- and two-qubit gates.

use artery_num::Complex64;

/// A 2×2 complex matrix in row-major order.
pub type Matrix2 = [[Complex64; 2]; 2];

/// A 4×4 complex matrix in row-major order.
pub type Matrix4 = [[Complex64; 4]; 4];

/// The matrix of a gate: one-qubit (2×2) or two-qubit (4×4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GateMatrix {
    /// A single-qubit gate.
    One(Matrix2),
    /// A two-qubit gate, ordered `|q1 q0⟩` (q0 is the least-significant bit).
    Two(Matrix4),
}

impl GateMatrix {
    /// Number of qubits the matrix acts on (1 or 2).
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        match self {
            GateMatrix::One(_) => 1,
            GateMatrix::Two(_) => 2,
        }
    }

    /// Conjugate transpose.
    #[must_use]
    pub fn dagger(&self) -> GateMatrix {
        match self {
            GateMatrix::One(m) => {
                let mut out = [[Complex64::ZERO; 2]; 2];
                for (r, row) in m.iter().enumerate() {
                    for (c, v) in row.iter().enumerate() {
                        out[c][r] = v.conj();
                    }
                }
                GateMatrix::One(out)
            }
            GateMatrix::Two(m) => {
                let mut out = [[Complex64::ZERO; 4]; 4];
                for (r, row) in m.iter().enumerate() {
                    for (c, v) in row.iter().enumerate() {
                        out[c][r] = v.conj();
                    }
                }
                GateMatrix::Two(out)
            }
        }
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics when the operand sizes differ.
    #[must_use]
    pub fn matmul(&self, rhs: &GateMatrix) -> GateMatrix {
        match (self, rhs) {
            (GateMatrix::One(a), GateMatrix::One(b)) => {
                let mut out = [[Complex64::ZERO; 2]; 2];
                for r in 0..2 {
                    for c in 0..2 {
                        for k in 0..2 {
                            out[r][c] += a[r][k] * b[k][c];
                        }
                    }
                }
                GateMatrix::One(out)
            }
            (GateMatrix::Two(a), GateMatrix::Two(b)) => {
                let mut out = [[Complex64::ZERO; 4]; 4];
                for r in 0..4 {
                    for c in 0..4 {
                        for k in 0..4 {
                            out[r][c] += a[r][k] * b[k][c];
                        }
                    }
                }
                GateMatrix::Two(out)
            }
            _ => panic!("matrix size mismatch in matmul"),
        }
    }

    /// Returns `true` when the matrix is unitary up to `tol`
    /// (`U·U† ≈ I` entry-wise).
    #[must_use]
    pub fn is_unitary(&self, tol: f64) -> bool {
        let prod = self.matmul(&self.dagger());
        prod.approx_eq(&GateMatrix::identity(self.num_qubits()), tol)
    }

    /// Identity matrix on `n` qubits (`n` must be 1 or 2).
    ///
    /// # Panics
    ///
    /// Panics for `n` outside `{1, 2}`.
    #[must_use]
    pub fn identity(n: usize) -> GateMatrix {
        match n {
            1 => {
                let mut m = [[Complex64::ZERO; 2]; 2];
                m[0][0] = Complex64::ONE;
                m[1][1] = Complex64::ONE;
                GateMatrix::One(m)
            }
            2 => {
                let mut m = [[Complex64::ZERO; 4]; 4];
                for (i, row) in m.iter_mut().enumerate() {
                    row[i] = Complex64::ONE;
                }
                GateMatrix::Two(m)
            }
            _ => panic!("identity only defined for 1 or 2 qubits"),
        }
    }

    /// Entry-wise approximate equality.
    #[must_use]
    pub fn approx_eq(&self, other: &GateMatrix, tol: f64) -> bool {
        match (self, other) {
            (GateMatrix::One(a), GateMatrix::One(b)) => a
                .iter()
                .flatten()
                .zip(b.iter().flatten())
                .all(|(x, y)| (*x - *y).norm() <= tol),
            (GateMatrix::Two(a), GateMatrix::Two(b)) => a
                .iter()
                .flatten()
                .zip(b.iter().flatten())
                .all(|(x, y)| (*x - *y).norm() <= tol),
            _ => false,
        }
    }

    /// Entry-wise approximate equality *up to global phase*: finds the first
    /// entry of `self` with non-negligible magnitude and rescales `other` by
    /// the corresponding phase ratio before comparing.
    #[must_use]
    pub fn approx_eq_up_to_phase(&self, other: &GateMatrix, tol: f64) -> bool {
        let (a, b): (Vec<Complex64>, Vec<Complex64>) = match (self, other) {
            (GateMatrix::One(a), GateMatrix::One(b)) => (
                a.iter().flatten().copied().collect(),
                b.iter().flatten().copied().collect(),
            ),
            (GateMatrix::Two(a), GateMatrix::Two(b)) => (
                a.iter().flatten().copied().collect(),
                b.iter().flatten().copied().collect(),
            ),
            _ => return false,
        };
        let Some(k) = a.iter().position(|x| x.norm() > 1e-6) else {
            return b.iter().all(|y| y.norm() <= tol);
        };
        if b[k].norm() <= 1e-12 {
            return false;
        }
        let phase = a[k] / b[k];
        a.iter()
            .zip(b.iter())
            .all(|(x, y)| (*x - *y * phase).norm() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn identity_is_unitary() {
        assert!(GateMatrix::identity(1).is_unitary(1e-12));
        assert!(GateMatrix::identity(2).is_unitary(1e-12));
    }

    #[test]
    fn dagger_involution() {
        let m = GateMatrix::One([[c(0.0, 1.0), c(0.5, 0.0)], [c(0.0, 0.0), c(1.0, -1.0)]]);
        assert!(m.dagger().dagger().approx_eq(&m, 1e-12));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = GateMatrix::One([[c(0.2, 0.1), c(0.3, 0.0)], [c(0.0, 0.4), c(0.9, 0.0)]]);
        assert!(m.matmul(&GateMatrix::identity(1)).approx_eq(&m, 1e-12));
        assert!(GateMatrix::identity(1).matmul(&m).approx_eq(&m, 1e-12));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn matmul_size_mismatch_panics() {
        let _ = GateMatrix::identity(1).matmul(&GateMatrix::identity(2));
    }

    #[test]
    fn phase_equality_ignores_global_phase() {
        let m = GateMatrix::identity(1);
        let GateMatrix::One(i) = m else {
            unreachable!()
        };
        let mut rotated = i;
        let phase = Complex64::cis(0.7);
        for row in rotated.iter_mut() {
            for v in row.iter_mut() {
                *v *= phase;
            }
        }
        let rotated = GateMatrix::One(rotated);
        assert!(!m.approx_eq(&rotated, 1e-9));
        assert!(m.approx_eq_up_to_phase(&rotated, 1e-9));
    }
}
