//! A human-readable text format for dynamic circuits.
//!
//! JSON (via serde) is the machine interchange format; this module adds a
//! QASM-flavoured *readable* form for docs, diffs and quick authoring:
//!
//! ```text
//! qubits 2
//! h q0
//! feedback q0 {
//!   0:
//!   1: x q0
//! }
//! ```
//!
//! One instruction per line; feedback blocks list the two branches. The
//! format round-trips exactly ([`emit`] ∘ [`parse`] = identity on the IR).

use std::fmt::Write as _;

use crate::circuit::{BranchOp, Circuit, CircuitBuilder, Clbit, GateApp, Instruction, Qubit};
use crate::gate::Gate;

/// Parse failure with a line number and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line the error was found on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn gate_name(gate: &Gate) -> String {
    match gate {
        Gate::RX(t) => format!("rx({t})"),
        Gate::RY(t) => format!("ry({t})"),
        Gate::RZ(t) => format!("rz({t})"),
        Gate::X => "x".into(),
        Gate::Y => "y".into(),
        Gate::Z => "z".into(),
        Gate::H => "h".into(),
        Gate::S => "s".into(),
        Gate::Sdg => "sdg".into(),
        Gate::T => "t".into(),
        Gate::Tdg => "tdg".into(),
        Gate::CZ => "cz".into(),
        Gate::CNOT => "cnot".into(),
        Gate::Swap => "swap".into(),
    }
}

fn emit_gate(out: &mut String, g: &GateApp, indent: &str) {
    let qubits: Vec<String> = g.qubits.iter().map(|q| format!("q{}", q.0)).collect();
    let _ = writeln!(out, "{indent}{} {}", gate_name(&g.gate), qubits.join(" "));
}

fn emit_branch_op(out: &mut String, op: &BranchOp, indent: &str) {
    match op {
        BranchOp::Gate(g) => emit_gate(out, g, indent),
        BranchOp::Reset(q) => {
            let _ = writeln!(out, "{indent}reset q{}", q.0);
        }
        BranchOp::Measure(q, c) => {
            let _ = writeln!(out, "{indent}measure q{} -> c{}", q.0, c.0);
        }
    }
}

/// Renders a circuit in the text format.
///
/// # Examples
///
/// ```
/// use artery_circuit::{text, CircuitBuilder, Gate, Qubit};
/// let mut b = CircuitBuilder::new(1);
/// b.gate(Gate::H, &[Qubit(0)]);
/// let s = text::emit(&b.build());
/// assert!(s.starts_with("qubits 1\nh q0\n"));
/// ```
#[must_use]
pub fn emit(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "qubits {}", circuit.num_qubits());
    for inst in circuit.instructions() {
        match inst {
            Instruction::Gate(g) => emit_gate(&mut out, g, ""),
            Instruction::Measure(q, c) => {
                let _ = writeln!(out, "measure q{} -> c{}", q.0, c.0);
            }
            Instruction::Reset(q) => {
                let _ = writeln!(out, "reset q{}", q.0);
            }
            Instruction::Feedback(fb) => {
                let _ = writeln!(out, "feedback q{} {{", fb.measured.0);
                let _ = writeln!(out, "  0:");
                for op in &fb.branch0 {
                    emit_branch_op(&mut out, op, "    ");
                }
                let _ = writeln!(out, "  1:");
                for op in &fb.branch1 {
                    emit_branch_op(&mut out, op, "    ");
                }
                let _ = writeln!(out, "}}");
            }
        }
    }
    out
}

fn parse_qubit(tok: &str, line: usize) -> Result<Qubit, ParseError> {
    tok.strip_prefix('q')
        .and_then(|s| s.parse().ok())
        .map(Qubit)
        .ok_or_else(|| ParseError {
            line,
            message: format!("expected a qubit like q0, found `{tok}`"),
        })
}

fn parse_gate(name: &str, line: usize) -> Result<Gate, ParseError> {
    let angled = |prefix: &str| -> Option<f64> {
        name.strip_prefix(prefix)
            .and_then(|rest| rest.strip_prefix('('))
            .and_then(|rest| rest.strip_suffix(')'))
            .and_then(|s| s.parse().ok())
    };
    let gate = match name {
        "x" => Some(Gate::X),
        "y" => Some(Gate::Y),
        "z" => Some(Gate::Z),
        "h" => Some(Gate::H),
        "s" => Some(Gate::S),
        "sdg" => Some(Gate::Sdg),
        "t" => Some(Gate::T),
        "tdg" => Some(Gate::Tdg),
        "cz" => Some(Gate::CZ),
        "cnot" => Some(Gate::CNOT),
        "swap" => Some(Gate::Swap),
        _ if name.starts_with("rx(") => angled("rx").map(Gate::RX),
        _ if name.starts_with("ry(") => angled("ry").map(Gate::RY),
        _ if name.starts_with("rz(") => angled("rz").map(Gate::RZ),
        _ => None,
    };
    gate.ok_or_else(|| ParseError {
        line,
        message: format!("unknown gate `{name}`"),
    })
}

fn parse_gate_line(tokens: &[&str], line: usize) -> Result<(Gate, Vec<Qubit>), ParseError> {
    let gate = parse_gate(tokens[0], line)?;
    let qubits: Result<Vec<Qubit>, ParseError> =
        tokens[1..].iter().map(|t| parse_qubit(t, line)).collect();
    let qubits = qubits?;
    if qubits.len() != gate.num_qubits() {
        return Err(ParseError {
            line,
            message: format!(
                "gate `{}` expects {} qubit(s), found {}",
                tokens[0],
                gate.num_qubits(),
                qubits.len()
            ),
        });
    }
    Ok((gate, qubits))
}

/// Parses the text format back into a [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseError`] with the offending line on malformed input.
pub fn parse(input: &str) -> Result<Circuit, ParseError> {
    let mut lines = input
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));
    let (first_no, first) = lines.next().ok_or(ParseError {
        line: 1,
        message: "empty input".into(),
    })?;
    let num_qubits: usize = first
        .strip_prefix("qubits ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ParseError {
            line: first_no,
            message: "expected header `qubits N`".into(),
        })?;
    let mut b = CircuitBuilder::new(num_qubits);

    while let Some((line_no, line)) = lines.next() {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.as_slice() {
            ["reset", q] => {
                b.reset(parse_qubit(q, line_no)?);
            }
            ["measure", q, "->", _c] => {
                // Clbits are reassigned sequentially by the builder.
                let _ = b.measure(parse_qubit(q, line_no)?);
            }
            ["feedback", q, "{"] => {
                let measured = parse_qubit(q, line_no)?;
                let mut branch0: Vec<BranchOp> = Vec::new();
                let mut branch1: Vec<BranchOp> = Vec::new();
                let mut current: Option<&mut Vec<BranchOp>> = None;
                loop {
                    let (inner_no, inner) = lines.next().ok_or(ParseError {
                        line: line_no,
                        message: "unterminated feedback block".into(),
                    })?;
                    match inner {
                        "}" => break,
                        "0:" => current = Some(&mut branch0),
                        "1:" => current = Some(&mut branch1),
                        _ => {
                            let toks: Vec<&str> = inner.split_whitespace().collect();
                            let op = match toks.as_slice() {
                                ["reset", q] => BranchOp::Reset(parse_qubit(q, inner_no)?),
                                ["measure", q, "->", c] => {
                                    let cbit = c
                                        .strip_prefix('c')
                                        .and_then(|s| s.parse().ok())
                                        .map(Clbit)
                                        .ok_or_else(|| ParseError {
                                            line: inner_no,
                                            message: format!("bad clbit `{c}`"),
                                        })?;
                                    BranchOp::Measure(parse_qubit(q, inner_no)?, cbit)
                                }
                                toks => {
                                    let (gate, qubits) = parse_gate_line(toks, inner_no)?;
                                    BranchOp::Gate(GateApp::new(gate, &qubits))
                                }
                            };
                            match current.as_deref_mut() {
                                Some(branch) => branch.push(op),
                                None => {
                                    return Err(ParseError {
                                        line: inner_no,
                                        message: "branch op before `0:`/`1:` label".into(),
                                    })
                                }
                            }
                        }
                    }
                }
                let mut fb = b.feedback(measured);
                for op in branch0 {
                    fb = fb.op_on_zero(op);
                }
                for op in branch1 {
                    fb = fb.op_on_one(op);
                }
                fb.finish();
            }
            toks => {
                let (gate, qubits) = parse_gate_line(toks, line_no)?;
                b.gate(gate, &qubits);
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_circuit() -> Circuit {
        let mut b = CircuitBuilder::new(3);
        b.gate(Gate::H, &[Qubit(0)]);
        b.gate(Gate::RY(0.75), &[Qubit(1)]);
        b.gate(Gate::CNOT, &[Qubit(0), Qubit(1)]);
        b.feedback(Qubit(0))
            .on_zero(Gate::Z, &[Qubit(2)])
            .on_one(Gate::X, &[Qubit(2)])
            .on_one(Gate::CZ, &[Qubit(1), Qubit(2)])
            .finish();
        b.reset(Qubit(1));
        let _ = b.measure(Qubit(2));
        b.build()
    }

    #[test]
    fn emit_parse_round_trip() {
        let circuit = sample_circuit();
        let text = emit(&circuit);
        let back = parse(&text).expect("parse emitted text");
        assert_eq!(back, circuit);
    }

    #[test]
    fn all_workload_shapes_round_trip() {
        // Exercise feedback-heavy circuits from the builder directly.
        let mut b = CircuitBuilder::new(2);
        for _ in 0..5 {
            b.gate(Gate::H, &[Qubit(0)]);
            b.feedback(Qubit(0)).on_one(Gate::X, &[Qubit(1)]).finish();
        }
        let circuit = b.build();
        assert_eq!(parse(&emit(&circuit)).expect("round trip"), circuit);
    }

    #[test]
    fn parse_accepts_comments_and_blank_lines() {
        let text = "# a comment\nqubits 1\n\nh q0\n# trailing\n";
        let c = parse(text).expect("parse");
        assert_eq!(c.gate_count(), 1);
    }

    #[test]
    fn angles_survive_round_trip() {
        let mut b = CircuitBuilder::new(1);
        b.gate(Gate::RZ(-2.123456789012345), &[Qubit(0)]);
        let circuit = b.build();
        assert_eq!(parse(&emit(&circuit)).expect("round trip"), circuit);
    }

    #[test]
    fn error_reports_line_numbers() {
        let err = parse("qubits 1\nfrobnicate q0\n").expect_err("bad gate");
        assert_eq!(err.line, 2);
        assert!(err.message.contains("frobnicate"));
        assert!(err.to_string().starts_with("line 2"));
    }

    #[test]
    fn missing_header_is_an_error() {
        assert!(parse("h q0\n").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let err = parse("qubits 2\ncz q0\n").expect_err("arity");
        assert!(err.message.contains("expects 2"));
    }

    #[test]
    fn unterminated_feedback_is_an_error() {
        let err = parse("qubits 1\nfeedback q0 {\n  1:\n").expect_err("unterminated");
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn branch_op_without_label_is_an_error() {
        let err = parse("qubits 2\nfeedback q0 {\n  x q1\n}\n").expect_err("label");
        assert!(err.message.contains("label"));
    }

    #[test]
    fn branch_measure_and_reset_round_trip() {
        let mut b = CircuitBuilder::new(2);
        b.feedback(Qubit(0))
            .op_on_one(BranchOp::Reset(Qubit(1)))
            .op_on_zero(BranchOp::Measure(Qubit(1), Clbit(5)))
            .finish();
        let circuit = b.build();
        assert_eq!(parse(&emit(&circuit)).expect("round trip"), circuit);
    }
}
