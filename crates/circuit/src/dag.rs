//! Dependency DAG over circuit instructions.
//!
//! The paper frames gate pre-execution as "altering the temporal ordering of
//! operations within the directed acyclic graph (DAG) of the quantum
//! circuit" (§3). This module materializes that DAG: instructions are nodes,
//! and an edge connects two instructions when they share a qubit or a
//! classical bit (the earlier one must retire first). The engine uses it for
//! as-soon-as-possible layering (circuit depth, idle-time accounting) and the
//! analysis module uses it to find which qubits are busy when a feedback's
//! readout begins.

use std::collections::HashMap;

use crate::circuit::{Circuit, Qubit};

/// Dependency DAG of a [`Circuit`].
///
/// # Examples
///
/// ```
/// use artery_circuit::{CircuitBuilder, Gate, Qubit};
/// use artery_circuit::dag::CircuitDag;
///
/// let mut b = CircuitBuilder::new(2);
/// b.gate(Gate::H, &[Qubit(0)]);
/// b.gate(Gate::H, &[Qubit(1)]);            // independent of the first H
/// b.gate(Gate::CZ, &[Qubit(0), Qubit(1)]); // depends on both
/// let dag = CircuitDag::build(&b.build());
/// assert_eq!(dag.depth(), 2);
/// assert_eq!(dag.layers()[0], vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct CircuitDag {
    /// `succs[i]` lists instruction indices that directly depend on `i`.
    succs: Vec<Vec<usize>>,
    /// `preds[i]` lists direct dependencies of `i`.
    preds: Vec<Vec<usize>>,
    /// ASAP layer index of every instruction.
    layer_of: Vec<usize>,
    /// Instructions grouped by ASAP layer.
    layers: Vec<Vec<usize>>,
}

impl CircuitDag {
    /// Builds the DAG of `circuit`.
    #[must_use]
    pub fn build(circuit: &Circuit) -> Self {
        let n = circuit.instructions().len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        // Last writer per qubit; classical bits are written once (builder
        // allocates a fresh clbit per measurement), so qubit chains suffice.
        let mut last_on_qubit: HashMap<Qubit, usize> = HashMap::new();
        for (i, inst) in circuit.instructions().iter().enumerate() {
            let mut deps: Vec<usize> = inst
                .qubits()
                .iter()
                .filter_map(|q| last_on_qubit.get(q).copied())
                .collect();
            deps.sort_unstable();
            deps.dedup();
            for d in deps {
                succs[d].push(i);
                preds[i].push(d);
            }
            for q in inst.qubits() {
                last_on_qubit.insert(q, i);
            }
        }
        // ASAP layering.
        let mut layer_of = vec![0usize; n];
        for i in 0..n {
            layer_of[i] = preds[i].iter().map(|&p| layer_of[p] + 1).max().unwrap_or(0);
        }
        let depth = layer_of.iter().map(|&l| l + 1).max().unwrap_or(0);
        let mut layers = vec![Vec::new(); depth];
        for (i, &l) in layer_of.iter().enumerate() {
            layers[l].push(i);
        }
        Self {
            succs,
            preds,
            layer_of,
            layers,
        }
    }

    /// Direct dependents of instruction `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// Direct dependencies of instruction `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn predecessors(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// ASAP layer of instruction `i` (0 = no dependencies).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn layer(&self, i: usize) -> usize {
        self.layer_of[i]
    }

    /// Instructions grouped by ASAP layer, in layer order.
    #[must_use]
    pub fn layers(&self) -> &[Vec<usize>] {
        &self.layers
    }

    /// Circuit depth (number of ASAP layers).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when instruction `a` transitively precedes `b`.
    #[must_use]
    pub fn reaches(&self, a: usize, b: usize) -> bool {
        if a == b {
            return true;
        }
        // DFS; DAGs here are small (thousands of nodes at most).
        let mut stack = vec![a];
        let mut seen = vec![false; self.succs.len()];
        while let Some(x) = stack.pop() {
            if x == b {
                return true;
            }
            for &s in &self.succs[x] {
                if !seen[s] && self.layer_of[s] <= self.layer_of[b] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;
    use crate::gate::Gate;

    fn chain_circuit() -> Circuit {
        let mut b = CircuitBuilder::new(2);
        b.gate(Gate::H, &[Qubit(0)]); // 0
        b.gate(Gate::CNOT, &[Qubit(0), Qubit(1)]); // 1
        b.gate(Gate::X, &[Qubit(1)]); // 2
        b.build()
    }

    #[test]
    fn chain_has_linear_layers() {
        let dag = CircuitDag::build(&chain_circuit());
        assert_eq!(dag.depth(), 3);
        assert_eq!(dag.layer(0), 0);
        assert_eq!(dag.layer(1), 1);
        assert_eq!(dag.layer(2), 2);
        assert_eq!(dag.predecessors(1), &[0]);
        assert_eq!(dag.successors(1), &[2]);
    }

    #[test]
    fn independent_gates_share_a_layer() {
        let mut b = CircuitBuilder::new(3);
        b.gate(Gate::X, &[Qubit(0)]);
        b.gate(Gate::X, &[Qubit(1)]);
        b.gate(Gate::X, &[Qubit(2)]);
        let dag = CircuitDag::build(&b.build());
        assert_eq!(dag.depth(), 1);
        assert_eq!(dag.layers()[0].len(), 3);
    }

    #[test]
    fn feedback_depends_on_prior_ops_of_all_its_qubits() {
        let mut b = CircuitBuilder::new(2);
        b.gate(Gate::H, &[Qubit(0)]); // 0
        b.gate(Gate::X, &[Qubit(1)]); // 1
        b.feedback(Qubit(0)).on_one(Gate::X, &[Qubit(1)]).finish(); // 2
        let dag = CircuitDag::build(&b.build());
        let mut preds = dag.predecessors(2).to_vec();
        preds.sort_unstable();
        assert_eq!(preds, vec![0, 1]);
    }

    #[test]
    fn reachability() {
        let dag = CircuitDag::build(&chain_circuit());
        assert!(dag.reaches(0, 2));
        assert!(dag.reaches(1, 1));
        assert!(!dag.reaches(2, 0));
    }

    #[test]
    fn empty_circuit_dag() {
        let dag = CircuitDag::build(&CircuitBuilder::new(1).build());
        assert_eq!(dag.depth(), 0);
        assert!(dag.layers().is_empty());
    }
}
