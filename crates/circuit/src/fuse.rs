//! Circuit-analysis-time gate fusion.
//!
//! The simulator's strided kernels (PR 2) walk the state vector once per
//! gate; this pass collapses gate *sequences* at analysis time so the
//! executor does less work per amplitude. Two shapes fuse:
//!
//! * **Single-qubit runs** — maximal chains of consecutive single-qubit
//!   gates on the same qubit become one [`FusedOp::Run1`]: the gate
//!   matrices are composed at fuse time into a single precomputed 2×2
//!   matrix, so a run of *k* gates costs one strided pass and one matrix
//!   application per amplitude pair instead of *k*.
//! * **Diagonal sweeps** — maximal chains of consecutive diagonal gates
//!   (Z, S, S†, T, T†, RZ and CZ, on *any* qubits — they all act by basis
//!   phases) become one [`FusedOp::DiagSweep`]: the chain's combined
//!   per-basis phases are tabulated at fuse time over the chain's distinct
//!   qubits (≤ [`MAX_SWEEP_QUBITS`]; longer chains split), so the sweep
//!   costs one table lookup and one multiply per amplitude instead of one
//!   pass per gate.
//!
//! Everything else — isolated gates, non-diagonal two-qubit gates,
//! measurements, resets, feedback — falls through unchanged as
//! [`FusedOp::Inst`].
//!
//! **Equivalence contract.** Only strictly adjacent gates fuse and no
//! instruction is ever reordered, so fusion is algebraically exact; the
//! composed matrices and phase tables round differently from gate-at-a-time
//! application, so fused amplitudes agree with the sequential/generic path
//! to ~1 ulp per gate (pinned to 1e-12 by the `tests/fusion.rs` proptests)
//! rather than bit-for-bit. Everything *classical* — measurement outcomes,
//! clbits, feedback resolutions, latencies, the `total_ns` clock, recorded
//! trace bytes — stays **bit-identical** to unfused execution: the executor
//! draws the same RNG stream against probabilities that differ by at most a
//! few ulp (never at a threshold), and advances the clock per original
//! gate. `tests/fusion.rs` pins both halves of the contract.
//!
//! The original [`GateApp`]s of every fused group are retained so noisy
//! executors (per-gate idle decay and depolarizing draws) can fall back to
//! per-instruction execution of the *same* program.

use std::f64::consts::FRAC_PI_4;

use artery_num::Complex64;

use crate::circuit::{Circuit, GateApp, Instruction, Qubit};
use crate::gate::Gate;
use crate::matrix::{GateMatrix, Matrix2};

/// Maximum number of distinct qubits a single [`FusedOp::DiagSweep`] may
/// span: the phase table holds `2^m` entries, so 12 caps it at 4096 entries
/// (64 KiB) — built once per circuit, L1-resident during the sweep. Chains
/// touching more qubits are split into consecutive sweeps.
pub const MAX_SWEEP_QUBITS: usize = 12;

/// `a × b` for 2×2 complex matrices (gate composition: `a` applied after
/// `b`).
fn matmul2(a: &Matrix2, b: &Matrix2) -> Matrix2 {
    let mut c = [[Complex64::ZERO; 2]; 2];
    for (row, c_row) in c.iter_mut().enumerate() {
        for (col, entry) in c_row.iter_mut().enumerate() {
            *entry = a[row][0] * b[0][col] + a[row][1] * b[1][col];
        }
    }
    c
}

/// The diagonal `(p0, p1)` of a one-qubit diagonal gate, with `p0`
/// guaranteed exactly 1 for the phase gates (Z, S, S†, T, T†) so table
/// construction can skip the multiply and keep those entries exact.
fn diag_phases(gate: Gate) -> (Complex64, Complex64) {
    match gate {
        Gate::Z => (Complex64::ONE, -Complex64::ONE),
        Gate::S => (Complex64::ONE, Complex64::i()),
        Gate::Sdg => (Complex64::ONE, -Complex64::i()),
        Gate::T => (Complex64::ONE, Complex64::cis(FRAC_PI_4)),
        Gate::Tdg => (Complex64::ONE, Complex64::cis(-FRAC_PI_4)),
        Gate::RZ(t) => (Complex64::cis(-t / 2.0), Complex64::cis(t / 2.0)),
        g => panic!("cannot take diagonal phases of non-diagonal gate {g}"),
    }
}

/// Composes a same-qubit run of single-qubit gates into one matrix, in
/// program order (`gates[k]` is applied after `gates[k-1]`, so the product
/// is `M_k ⋯ M_1`).
fn compose_run(gates: &[GateApp]) -> Matrix2 {
    let mut m = [
        [Complex64::ONE, Complex64::ZERO],
        [Complex64::ZERO, Complex64::ONE],
    ];
    for g in gates {
        let GateMatrix::One(gm) = g.gate.matrix() else {
            unreachable!("single-qubit run contains a two-qubit gate")
        };
        m = matmul2(&gm, &m);
    }
    m
}

/// Tabulates the combined basis phases of a diagonal chain over its
/// distinct qubits (`qubits` sorted ascending). Entry `t` is the phase of
/// every basis state whose bit at `qubits[j]` equals bit `j` of `t`,
/// accumulated gate by gate in program order. Exact-1 factors (the clear
/// side of phase gates, CZ outside `|11⟩`) are skipped, so entries that a
/// sequential sweep would leave untouched stay exactly 1.
fn tabulate_diag(qubits: &[Qubit], gates: &[GateApp]) -> Vec<Complex64> {
    let pos = |q: Qubit| {
        qubits
            .iter()
            .position(|x| *x == q)
            .expect("diagonal chain qubit missing from sweep qubit list")
    };
    let mut table = vec![Complex64::ONE; 1usize << qubits.len()];
    for (t, entry) in table.iter_mut().enumerate() {
        for g in gates {
            match g.gate {
                Gate::CZ => {
                    let a = pos(g.qubits[0]);
                    let b = pos(g.qubits[1]);
                    if t >> a & 1 == 1 && t >> b & 1 == 1 {
                        *entry = -*entry;
                    }
                }
                gate => {
                    let (p0, p1) = diag_phases(gate);
                    if t >> pos(g.qubits[0]) & 1 == 1 {
                        *entry = p1 * *entry;
                    } else if p0 != Complex64::ONE {
                        *entry = p0 * *entry;
                    }
                }
            }
        }
    }
    table
}

/// One operation of a [`FusedProgram`].
#[derive(Debug, Clone, PartialEq)]
pub enum FusedOp {
    /// A run of ≥ 2 consecutive single-qubit gates on the same qubit,
    /// composed into one precomputed matrix and applied in one strided
    /// pass. `gates` keeps the original instructions for noisy fallback
    /// and duration accounting.
    Run1 {
        /// The common target qubit.
        qubit: Qubit,
        /// The run's gates composed into a single 2×2 matrix.
        matrix: Matrix2,
        /// The original gate applications, in program order.
        gates: Vec<GateApp>,
    },
    /// A chain of ≥ 2 consecutive diagonal gates, applied in one
    /// full-state sweep driven by a precomputed phase table.
    DiagSweep {
        /// The distinct qubits the chain touches, sorted ascending; bit
        /// `j` of a table index corresponds to `qubits[j]`.
        qubits: Vec<Qubit>,
        /// Combined phase per qubit-bit combination (`2^qubits.len()`
        /// entries).
        table: Vec<Complex64>,
        /// The original gate applications, in program order.
        gates: Vec<GateApp>,
    },
    /// An instruction the pass leaves untouched.
    Inst(Instruction),
}

/// A [`Circuit`] rewritten for fused execution — the output of
/// [`FusedProgram::fuse`], compiled once per circuit and reused across
/// warm-up and every shot (the executor side is
/// `Executor::run_fused`/`run_fused_with` in `artery-sim`).
#[derive(Debug, Clone, PartialEq)]
pub struct FusedProgram {
    num_qubits: usize,
    num_clbits: usize,
    ops: Vec<FusedOp>,
    fused_gates: usize,
}

impl FusedProgram {
    /// Rewrites `circuit` into a fused program.
    ///
    /// Grouping is greedy over strictly consecutive instructions: at each
    /// gate, the longer of (same-qubit single-qubit run, diagonal chain)
    /// wins; groups shorter than 2 stay unfused; diagonal chains stop
    /// extending rather than exceed [`MAX_SWEEP_QUBITS`] distinct qubits.
    /// No instruction is ever reordered.
    #[must_use]
    pub fn fuse(circuit: &Circuit) -> Self {
        let insts = circuit.instructions();
        let gate_at = |k: usize| match insts.get(k) {
            Some(Instruction::Gate(g)) => Some(g),
            _ => None,
        };
        let mut ops = Vec::new();
        let mut fused_gates = 0usize;
        let mut i = 0;
        while i < insts.len() {
            let Some(g) = gate_at(i) else {
                ops.push(FusedOp::Inst(insts[i].clone()));
                i += 1;
                continue;
            };
            // Maximal same-qubit single-qubit run starting here.
            let mut run = 0;
            if g.gate.num_qubits() == 1 {
                let qubit = g.qubits[0];
                while gate_at(i + run)
                    .is_some_and(|n| n.gate.num_qubits() == 1 && n.qubits[0] == qubit)
                {
                    run += 1;
                }
            }
            // Maximal diagonal chain starting here, capped at
            // MAX_SWEEP_QUBITS distinct qubits.
            let mut diag = 0;
            let mut dqubits: Vec<Qubit> = Vec::new();
            while let Some(n) = gate_at(i + diag) {
                if !n.gate.is_diagonal() {
                    break;
                }
                let added = n.qubits.iter().filter(|q| !dqubits.contains(q)).count();
                if dqubits.len() + added > MAX_SWEEP_QUBITS {
                    break;
                }
                for q in &n.qubits {
                    if !dqubits.contains(q) {
                        dqubits.push(*q);
                    }
                }
                diag += 1;
            }
            let take = |count: usize| -> Vec<GateApp> {
                (i..i + count)
                    .map(|k| match &insts[k] {
                        Instruction::Gate(g) => g.clone(),
                        _ => unreachable!("fusion scan only matches gates"),
                    })
                    .collect()
            };
            if run >= 2 && run >= diag {
                let gates = take(run);
                let matrix = compose_run(&gates);
                fused_gates += gates.len();
                ops.push(FusedOp::Run1 {
                    qubit: g.qubits[0],
                    matrix,
                    gates,
                });
                i += run;
            } else if diag >= 2 {
                let gates = take(diag);
                dqubits.sort_unstable();
                let table = tabulate_diag(&dqubits, &gates);
                fused_gates += gates.len();
                ops.push(FusedOp::DiagSweep {
                    qubits: dqubits,
                    table,
                    gates,
                });
                i += diag;
            } else {
                ops.push(FusedOp::Inst(insts[i].clone()));
                i += 1;
            }
        }
        Self {
            num_qubits: circuit.num_qubits(),
            num_clbits: circuit.num_clbits(),
            ops,
            fused_gates,
        }
    }

    /// Number of qubits of the source circuit.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits of the source circuit.
    #[must_use]
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// The fused operations, in program order.
    #[must_use]
    pub fn ops(&self) -> &[FusedOp] {
        &self.ops
    }

    /// Number of gates that landed inside a fused group (0 means the pass
    /// was a structural no-op).
    #[must_use]
    pub fn fused_gate_count(&self) -> usize {
        self.fused_gates
    }

    /// Whether every instruction fell through unchanged.
    #[must_use]
    pub fn is_unfused(&self) -> bool {
        self.fused_gates == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;

    fn approx(a: Complex64, b: Complex64) -> bool {
        (a.re - b.re).abs() < 1e-12 && (a.im - b.im).abs() < 1e-12
    }

    #[test]
    fn same_qubit_run_fuses_and_composes() {
        let mut b = CircuitBuilder::new(2);
        b.gate(Gate::H, &[Qubit(0)]);
        b.gate(Gate::T, &[Qubit(0)]);
        b.gate(Gate::RX(0.3), &[Qubit(0)]);
        b.gate(Gate::X, &[Qubit(1)]);
        let p = FusedProgram::fuse(&b.build());
        assert_eq!(p.ops().len(), 2);
        assert_eq!(p.fused_gate_count(), 3);
        let FusedOp::Run1 {
            qubit,
            matrix,
            gates,
        } = &p.ops()[0]
        else {
            panic!("expected a fused run, got {:?}", p.ops()[0]);
        };
        assert_eq!(*qubit, Qubit(0));
        assert_eq!(gates.len(), 3);
        // The composed matrix is RX(0.3) × T × H.
        let (GateMatrix::One(h), GateMatrix::One(t), GateMatrix::One(rx)) =
            (Gate::H.matrix(), Gate::T.matrix(), Gate::RX(0.3).matrix())
        else {
            panic!("one-qubit gates must have 2x2 matrices")
        };
        let want = matmul2(&rx, &matmul2(&t, &h));
        for r in 0..2 {
            for c in 0..2 {
                assert!(approx(matrix[r][c], want[r][c]), "entry ({r},{c})");
            }
        }
        assert!(matches!(p.ops()[1], FusedOp::Inst(_)));
    }

    #[test]
    fn diagonal_chain_fuses_across_qubits_into_a_table() {
        let mut b = CircuitBuilder::new(3);
        b.gate(Gate::S, &[Qubit(0)]);
        b.gate(Gate::CZ, &[Qubit(1), Qubit(2)]);
        b.gate(Gate::RZ(1.2), &[Qubit(1)]);
        b.gate(Gate::H, &[Qubit(2)]);
        let p = FusedProgram::fuse(&b.build());
        assert_eq!(p.ops().len(), 2);
        let FusedOp::DiagSweep {
            qubits,
            table,
            gates,
        } = &p.ops()[0]
        else {
            panic!("expected a diagonal sweep, got {:?}", p.ops()[0]);
        };
        assert_eq!(qubits, &[Qubit(0), Qubit(1), Qubit(2)]);
        assert_eq!(table.len(), 8);
        assert_eq!(gates.len(), 3);
        // Entry 0 (all bits clear): every factor skips → exactly 1.
        assert_eq!(table[0], Complex64::ONE);
        // Entry 0b111: i (S on q0) × −1 (CZ) × e^{i·0.6} (RZ |1⟩ phase).
        let want = Complex64::cis(0.6) * -Complex64::i();
        assert!(approx(table[0b111], want), "got {:?}", table[0b111]);
    }

    #[test]
    fn longer_run_beats_diagonal_chain() {
        // Z T on q0 is both a 2-run and a 2-chain; the following RX extends
        // the run to 3, so the run wins and swallows all three.
        let mut b = CircuitBuilder::new(1);
        b.gate(Gate::Z, &[Qubit(0)]);
        b.gate(Gate::T, &[Qubit(0)]);
        b.gate(Gate::RX(0.5), &[Qubit(0)]);
        let p = FusedProgram::fuse(&b.build());
        assert_eq!(p.ops().len(), 1);
        assert!(matches!(&p.ops()[0], FusedOp::Run1 { gates, .. } if gates.len() == 3));
    }

    #[test]
    fn wide_diagonal_chains_split_at_the_qubit_cap() {
        // A chain touching MAX_SWEEP_QUBITS + 2 distinct qubits must split
        // into two sweeps rather than build a 2^(cap+2) table.
        let n = MAX_SWEEP_QUBITS + 2;
        let mut b = CircuitBuilder::new(n);
        for q in 0..n {
            b.gate(Gate::RZ(0.1 * q as f64 + 0.05), &[Qubit(q)]);
        }
        let p = FusedProgram::fuse(&b.build());
        assert_eq!(p.fused_gate_count(), n);
        assert_eq!(p.ops().len(), 2);
        let FusedOp::DiagSweep { qubits, table, .. } = &p.ops()[0] else {
            panic!("expected a sweep, got {:?}", p.ops()[0]);
        };
        assert_eq!(qubits.len(), MAX_SWEEP_QUBITS);
        assert_eq!(table.len(), 1 << MAX_SWEEP_QUBITS);
        let FusedOp::DiagSweep { qubits, table, .. } = &p.ops()[1] else {
            panic!("expected a sweep, got {:?}", p.ops()[1]);
        };
        assert_eq!(qubits.len(), 2);
        assert_eq!(table.len(), 4);
    }

    #[test]
    fn unfusible_circuit_is_structurally_unchanged() {
        let mut b = CircuitBuilder::new(3);
        b.gate(Gate::H, &[Qubit(0)]);
        b.gate(Gate::CNOT, &[Qubit(0), Qubit(1)]);
        b.gate(Gate::H, &[Qubit(1)]);
        b.measure(Qubit(1));
        b.feedback(Qubit(0)).on_one(Gate::X, &[Qubit(2)]).finish();
        let c = b.build();
        let p = FusedProgram::fuse(&c);
        assert!(p.is_unfused());
        assert_eq!(p.ops().len(), c.instructions().len());
        for (op, inst) in p.ops().iter().zip(c.instructions()) {
            assert_eq!(op, &FusedOp::Inst(inst.clone()));
        }
    }

    #[test]
    fn phase_table_keeps_untouched_entries_exactly_one() {
        // A chain of phase-only gates: the all-clear entry must be the
        // exact 1 a sequential sweep's skip would produce, including after
        // an RZ(0) whose |0⟩ phase is exactly 1.
        let mut b = CircuitBuilder::new(2);
        b.gate(Gate::T, &[Qubit(0)]);
        b.gate(Gate::RZ(0.0), &[Qubit(1)]);
        let p = FusedProgram::fuse(&b.build());
        let FusedOp::DiagSweep { table, .. } = &p.ops()[0] else {
            panic!("expected a sweep, got {:?}", p.ops()[0]);
        };
        assert_eq!(table[0], Complex64::ONE);
    }
}
