//! Pre-execution legality analysis — the four cases of the paper's §3.
//!
//! Given a feedback site, ARTERY must decide whether the predicted branch can
//! be pre-executed while the readout is still in flight, and if so how:
//!
//! * **Case 1 (independent):** every branch operation avoids the measured
//!   qubit. The branch can be pre-executed in place and undone with inverse
//!   gates on a misprediction. This covers data-qubit correction in QEC,
//!   magic-state injection and remote-entanglement circuits.
//! * **Case 2 (ancilla remap):** the branch contains multi-qubit gates that
//!   involve the measured qubit. The measured qubit is busy during readout,
//!   but after readout it holds a classical state which can be pre-prepared
//!   on an ancilla; the branch is pre-executed with the measured qubit
//!   remapped to that ancilla, and the original qubit is recycled.
//! * **Case 3 (on measured qubit):** the branch must act on the measured
//!   qubit itself (active reset). Pre-execution cannot start early, but the
//!   prediction lets the pulse fire the moment the readout window closes,
//!   eliminating the classical-processing latency (> 100 ns).
//! * **Case 4 (not pre-executable):** the branch contains a measurement.
//!   Measurements are irreversible, so a misprediction could not be rolled
//!   back; ARTERY falls back to sequential feedback.
//!
//! The classification is per-feedback-site and purely structural, so it runs
//! once at compile time (`analyze_circuit`).

use serde::{Deserialize, Serialize};

use crate::circuit::{BranchOp, Circuit, Feedback, FeedbackSite, Qubit};

/// Which of the paper's §3 cases a feedback site falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PreExecCase {
    /// Case 1: branch independent of the measured qubit; pre-execute in
    /// place.
    Independent,
    /// Case 2: branch involves the measured qubit through multi-qubit gates;
    /// pre-execute on an ancilla substitute.
    AncillaRemap,
    /// Case 3: branch acts only on the measured qubit (reset-style);
    /// prediction arms the pulse for the end of readout.
    OnMeasuredQubit,
    /// Case 4: branch contains an irreversible operation; not
    /// pre-executable.
    NotPreExecutable,
}

impl PreExecCase {
    /// Whether any latency can be hidden at this site.
    ///
    /// Cases 1–3 all benefit (cases 1–2 hide readout *and* processing time,
    /// case 3 hides processing time only); case 4 gains nothing.
    #[must_use]
    pub fn benefits_from_prediction(&self) -> bool {
        !matches!(self, PreExecCase::NotPreExecutable)
    }

    /// Whether the branch gates themselves can run during the readout
    /// (cases 1 and 2) as opposed to merely being armed for its end (case 3).
    #[must_use]
    pub fn overlaps_readout(&self) -> bool {
        matches!(self, PreExecCase::Independent | PreExecCase::AncillaRemap)
    }
}

/// Result of analysing one feedback site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteAnalysis {
    /// The site the analysis refers to.
    pub site: FeedbackSite,
    /// Its classification.
    pub case: PreExecCase,
    /// Ancilla qubit allocated for case 2 (`None` otherwise).
    pub ancilla: Option<Qubit>,
    /// Branch-0 pulse duration in nanoseconds (recovery cost bookkeeping).
    pub branch0_ns: f64,
    /// Branch-1 pulse duration in nanoseconds.
    pub branch1_ns: f64,
}

impl SiteAnalysis {
    /// Worst-case recovery pulse time on a misprediction: undo the
    /// pre-executed branch, then run the other branch.
    #[must_use]
    pub fn recovery_ns(&self, predicted: bool) -> f64 {
        let (pre, other) = if predicted {
            (self.branch1_ns, self.branch0_ns)
        } else {
            (self.branch0_ns, self.branch1_ns)
        };
        match self.case {
            // Undo (same duration as the branch, gates are inverted
            // one-for-one) + correct branch.
            PreExecCase::Independent | PreExecCase::AncillaRemap => pre + other,
            // Nothing was physically applied before readout end; the wrongly
            // armed pulse is replaced, costing one extra branch execution.
            PreExecCase::OnMeasuredQubit => other,
            PreExecCase::NotPreExecutable => 0.0,
        }
    }
}

/// Classifies a single feedback instruction.
///
/// # Examples
///
/// ```
/// use artery_circuit::{CircuitBuilder, Gate, Qubit};
/// use artery_circuit::analysis::{classify_feedback, PreExecCase};
///
/// let mut b = CircuitBuilder::new(2);
/// b.feedback(Qubit(0)).on_one(Gate::X, &[Qubit(1)]).finish();
/// let c = b.build();
/// let fb = c.feedback_sites().next().unwrap();
/// assert_eq!(classify_feedback(fb), PreExecCase::Independent);
/// ```
#[must_use]
pub fn classify_feedback(fb: &Feedback) -> PreExecCase {
    let ops = fb.branch0.iter().chain(fb.branch1.iter());
    let mut touches_measured = false;
    let mut multi_qubit_on_measured = false;
    let mut only_measured = true;
    let mut any_op = false;
    for op in ops {
        any_op = true;
        // Measurements and resets are irreversible: a mispredicted branch
        // containing one could not be rolled back (case 4).
        if matches!(op, BranchOp::Measure(..) | BranchOp::Reset(_)) {
            return PreExecCase::NotPreExecutable;
        }
        let qs = op.qubits();
        let on_measured = qs.contains(&fb.measured);
        touches_measured |= on_measured;
        if on_measured && qs.len() > 1 {
            multi_qubit_on_measured = true;
        }
        if qs.iter().any(|q| *q != fb.measured) {
            only_measured = false;
        }
    }
    if !any_op || !touches_measured {
        PreExecCase::Independent
    } else if multi_qubit_on_measured || !only_measured {
        // The measured qubit participates alongside other qubits: its
        // post-collapse classical state can be re-prepared on an ancilla and
        // the dependent gates pre-executed there (case 2).
        PreExecCase::AncillaRemap
    } else {
        PreExecCase::OnMeasuredQubit
    }
}

/// Analyses every feedback site of `circuit`, allocating case-2 ancillas
/// above the existing qubit register.
///
/// Returned analyses are in feedback-site order. Each case-2 site receives a
/// distinct ancilla (the paper recycles the measured qubit after readout, so
/// one ancilla per concurrently-active site is the worst case; allocating per
/// site is conservative and simple).
#[must_use]
pub fn analyze_circuit(circuit: &Circuit) -> Vec<SiteAnalysis> {
    let mut next_ancilla = circuit.num_qubits();
    circuit
        .feedback_sites()
        .map(|fb| {
            let case = classify_feedback(fb);
            let ancilla = if case == PreExecCase::AncillaRemap {
                let a = Qubit(next_ancilla);
                next_ancilla += 1;
                Some(a)
            } else {
                None
            };
            SiteAnalysis {
                site: fb.site,
                case,
                ancilla,
                branch0_ns: fb.branch_duration_ns(false),
                branch1_ns: fb.branch_duration_ns(true),
            }
        })
        .collect()
}

/// Rewrites a branch so that operations on `from` act on `to` instead —
/// the ancilla remapping of case 2.
#[must_use]
pub fn remap_branch(branch: &[BranchOp], from: Qubit, to: Qubit) -> Vec<BranchOp> {
    branch
        .iter()
        .map(|op| match op {
            BranchOp::Gate(g) => {
                let qubits: Vec<Qubit> = g
                    .qubits
                    .iter()
                    .map(|q| if *q == from { to } else { *q })
                    .collect();
                BranchOp::Gate(crate::circuit::GateApp::new(g.gate, &qubits))
            }
            BranchOp::Reset(q) => BranchOp::Reset(if *q == from { to } else { *q }),
            BranchOp::Measure(q, c) => BranchOp::Measure(if *q == from { to } else { *q }, *c),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{CircuitBuilder, Clbit};
    use crate::gate::Gate;

    fn single_feedback(build: impl FnOnce(&mut CircuitBuilder)) -> (Circuit, PreExecCase) {
        let mut b = CircuitBuilder::new(4);
        build(&mut b);
        let c = b.build();
        let case = classify_feedback(c.feedback_sites().next().expect("one feedback"));
        (c, case)
    }

    #[test]
    fn case1_branch_on_other_qubit() {
        let (_, case) = single_feedback(|b| {
            b.feedback(Qubit(0)).on_one(Gate::X, &[Qubit(2)]).finish();
        });
        assert_eq!(case, PreExecCase::Independent);
        assert!(case.benefits_from_prediction());
        assert!(case.overlaps_readout());
    }

    #[test]
    fn case1_empty_branches() {
        let (_, case) = single_feedback(|b| {
            b.feedback(Qubit(0)).finish();
        });
        assert_eq!(case, PreExecCase::Independent);
    }

    #[test]
    fn case2_two_qubit_gate_on_measured() {
        let (_, case) = single_feedback(|b| {
            b.feedback(Qubit(1))
                .on_one(Gate::CZ, &[Qubit(1), Qubit(2)])
                .finish();
        });
        assert_eq!(case, PreExecCase::AncillaRemap);
        assert!(case.overlaps_readout());
    }

    #[test]
    fn case2_mixed_targets() {
        // Single-qubit gates on the measured qubit *and* on others: the
        // measured qubit's part must move to an ancilla.
        let (_, case) = single_feedback(|b| {
            b.feedback(Qubit(0))
                .on_one(Gate::X, &[Qubit(0)])
                .on_one(Gate::X, &[Qubit(1)])
                .finish();
        });
        assert_eq!(case, PreExecCase::AncillaRemap);
    }

    #[test]
    fn case3_reset_pattern() {
        let (_, case) = single_feedback(|b| {
            b.feedback(Qubit(0)).on_one(Gate::X, &[Qubit(0)]).finish();
        });
        assert_eq!(case, PreExecCase::OnMeasuredQubit);
        assert!(case.benefits_from_prediction());
        assert!(!case.overlaps_readout());
    }

    #[test]
    fn case4_branch_measurement() {
        let (_, case) = single_feedback(|b| {
            b.feedback(Qubit(0))
                .op_on_one(BranchOp::Measure(Qubit(2), Clbit(7)))
                .finish();
        });
        assert_eq!(case, PreExecCase::NotPreExecutable);
        assert!(!case.benefits_from_prediction());
    }

    #[test]
    fn analyze_allocates_distinct_ancillas() {
        let mut b = CircuitBuilder::new(3);
        b.feedback(Qubit(0))
            .on_one(Gate::CZ, &[Qubit(0), Qubit(1)])
            .finish();
        b.feedback(Qubit(1))
            .on_one(Gate::CZ, &[Qubit(1), Qubit(2)])
            .finish();
        let c = b.build();
        let analyses = analyze_circuit(&c);
        assert_eq!(analyses.len(), 2);
        assert_eq!(analyses[0].ancilla, Some(Qubit(3)));
        assert_eq!(analyses[1].ancilla, Some(Qubit(4)));
    }

    #[test]
    fn recovery_cost_cases() {
        let mut b = CircuitBuilder::new(2);
        b.feedback(Qubit(0))
            .on_one(Gate::X, &[Qubit(1)]) // 30 ns
            .on_zero(Gate::CZ, &[Qubit(0), Qubit(1)]) // 60 ns, forces case 2
            .finish();
        let c = b.build();
        let a = &analyze_circuit(&c)[0];
        assert_eq!(a.case, PreExecCase::AncillaRemap);
        // Predicted 1, actually 0: undo 30 ns then apply 60 ns.
        assert_eq!(a.recovery_ns(true), 90.0);
        // Predicted 0, actually 1: undo 60 ns then apply 30 ns.
        assert_eq!(a.recovery_ns(false), 90.0);
    }

    #[test]
    fn remap_branch_moves_only_target() {
        let branch = vec![
            BranchOp::Gate(crate::circuit::GateApp::new(
                Gate::CZ,
                &[Qubit(0), Qubit(1)],
            )),
            BranchOp::Reset(Qubit(0)),
            BranchOp::Gate(crate::circuit::GateApp::new(Gate::X, &[Qubit(1)])),
        ];
        let out = remap_branch(&branch, Qubit(0), Qubit(9));
        assert_eq!(out[0].qubits(), vec![Qubit(9), Qubit(1)]);
        assert_eq!(out[1].qubits(), vec![Qubit(9)]);
        assert_eq!(out[2].qubits(), vec![Qubit(1)]);
    }
}
