//! The dynamic-circuit IR: instructions, feedback sites and the builder.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::gate::Gate;

/// Index of a qubit within a circuit.
///
/// A newtype so qubit and classical-bit indices cannot be confused
/// (C-NEWTYPE).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Qubit(pub usize);

/// Index of a classical bit (measurement destination) within a circuit.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Clbit(pub usize);

/// Stable identifier of a feedback site inside a circuit.
///
/// The branch predictor keeps per-site history statistics; the identifier is
/// the ordinal of the feedback instruction in program order.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FeedbackSite(pub usize);

impl fmt::Display for Qubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl fmt::Display for Clbit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for FeedbackSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fb{}", self.0)
    }
}

/// A gate applied to specific qubits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateApp {
    /// The gate.
    pub gate: Gate,
    /// Target qubits; length must equal `gate.num_qubits()`.
    pub qubits: Vec<Qubit>,
}

impl GateApp {
    /// Creates a gate application, validating the qubit count.
    ///
    /// # Panics
    ///
    /// Panics when `qubits.len() != gate.num_qubits()` or when a two-qubit
    /// gate targets the same qubit twice.
    #[must_use]
    pub fn new(gate: Gate, qubits: &[Qubit]) -> Self {
        assert_eq!(
            qubits.len(),
            gate.num_qubits(),
            "gate {gate} expects {} qubit(s), got {}",
            gate.num_qubits(),
            qubits.len()
        );
        if qubits.len() == 2 {
            assert_ne!(qubits[0], qubits[1], "two-qubit gate with duplicated qubit");
        }
        Self {
            gate,
            qubits: qubits.to_vec(),
        }
    }

    /// The inverse application (same qubits, inverse gate).
    #[must_use]
    pub fn inverse(&self) -> GateApp {
        GateApp {
            gate: self.gate.inverse(),
            qubits: self.qubits.clone(),
        }
    }

    /// Whether the application touches `q`.
    #[must_use]
    pub fn touches(&self, q: Qubit) -> bool {
        self.qubits.contains(&q)
    }
}

impl fmt::Display for GateApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ", self.gate)?;
        for (i, q) in self.qubits.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{q}")?;
        }
        Ok(())
    }
}

/// One operation inside a feedback branch.
///
/// Branches are restricted to gates, resets and measurements; nesting
/// feedback inside feedback is intentionally unsupported (the paper's
/// workloads never require it, and it keeps the pre-execution analysis exact).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BranchOp {
    /// Apply a gate.
    Gate(GateApp),
    /// Reset a qubit to `|0⟩`.
    Reset(Qubit),
    /// Measure a qubit into a classical bit (makes the branch
    /// non-pre-executable — case 4).
    Measure(Qubit, Clbit),
}

impl BranchOp {
    /// Qubits touched by the operation.
    #[must_use]
    pub fn qubits(&self) -> Vec<Qubit> {
        match self {
            BranchOp::Gate(g) => g.qubits.clone(),
            BranchOp::Reset(q) | BranchOp::Measure(q, _) => vec![*q],
        }
    }

    /// Whether this operation is reversible (gates are; reset and
    /// measurement are not).
    #[must_use]
    pub fn is_reversible(&self) -> bool {
        matches!(self, BranchOp::Gate(_))
    }

    /// Total pulse duration of the operation in nanoseconds (measurement
    /// duration is readout-pulse-level and accounted by the engine, so it is
    /// 0 here).
    #[must_use]
    pub fn duration_ns(&self) -> f64 {
        match self {
            BranchOp::Gate(g) => g.gate.duration_ns(),
            // A reset in a branch is realized as a conditional X pulse.
            BranchOp::Reset(_) => crate::gate::XY_PULSE_NS,
            BranchOp::Measure(..) => 0.0,
        }
    }
}

/// A mid-circuit measurement with outcome-dependent branches — the feedback
/// construct ARTERY accelerates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Feedback {
    /// Site identifier (ordinal among the circuit's feedback instructions).
    pub site: FeedbackSite,
    /// The qubit that is read out.
    pub measured: Qubit,
    /// Classical bit receiving the outcome.
    pub cbit: Clbit,
    /// Operations applied when the outcome is 0.
    pub branch0: Vec<BranchOp>,
    /// Operations applied when the outcome is 1.
    pub branch1: Vec<BranchOp>,
}

impl Feedback {
    /// The branch selected by `outcome`.
    #[must_use]
    pub fn branch(&self, outcome: bool) -> &[BranchOp] {
        if outcome {
            &self.branch1
        } else {
            &self.branch0
        }
    }

    /// All qubits either branch touches (excluding the measured qubit's
    /// readout itself).
    #[must_use]
    pub fn branch_qubits(&self) -> Vec<Qubit> {
        let mut out: Vec<Qubit> = self
            .branch0
            .iter()
            .chain(self.branch1.iter())
            .flat_map(BranchOp::qubits)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Sum of gate durations of the given branch, in nanoseconds.
    #[must_use]
    pub fn branch_duration_ns(&self, outcome: bool) -> f64 {
        self.branch(outcome).iter().map(BranchOp::duration_ns).sum()
    }
}

/// One instruction of a dynamic circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Instruction {
    /// Unconditional gate.
    Gate(GateApp),
    /// Unconditional terminal measurement.
    Measure(Qubit, Clbit),
    /// Unconditional reset to `|0⟩`.
    Reset(Qubit),
    /// Mid-circuit measurement with conditional branches.
    Feedback(Feedback),
}

impl Instruction {
    /// Qubits touched by the instruction, including feedback branch qubits.
    #[must_use]
    pub fn qubits(&self) -> Vec<Qubit> {
        match self {
            Instruction::Gate(g) => g.qubits.clone(),
            Instruction::Measure(q, _) | Instruction::Reset(q) => vec![*q],
            Instruction::Feedback(fb) => {
                let mut qs = fb.branch_qubits();
                if !qs.contains(&fb.measured) {
                    qs.push(fb.measured);
                    qs.sort_unstable();
                }
                qs
            }
        }
    }
}

/// A dynamic quantum circuit: a program-ordered instruction list over
/// `num_qubits` qubits and `num_clbits` classical bits.
///
/// Construct circuits through [`CircuitBuilder`]; the builder assigns
/// classical bits and feedback-site identifiers and validates qubit indices.
///
/// # Examples
///
/// ```
/// use artery_circuit::{CircuitBuilder, Gate, Qubit};
///
/// let mut b = CircuitBuilder::new(2);
/// b.gate(Gate::H, &[Qubit(0)]);
/// b.gate(Gate::CNOT, &[Qubit(0), Qubit(1)]);
/// let c = b.build();
/// assert_eq!(c.num_qubits(), 2);
/// assert_eq!(c.gate_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    num_qubits: usize,
    num_clbits: usize,
    instructions: Vec<Instruction>,
}

impl Circuit {
    /// Number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits.
    #[must_use]
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// Program-ordered instructions.
    #[must_use]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Iterator over the feedback instructions in program order.
    pub fn feedback_sites(&self) -> impl Iterator<Item = &Feedback> {
        self.instructions.iter().filter_map(|inst| match inst {
            Instruction::Feedback(fb) => Some(fb),
            _ => None,
        })
    }

    /// Number of unconditional gates (excludes branch contents).
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(i, Instruction::Gate(_)))
            .count()
    }

    /// Number of feedback instructions.
    #[must_use]
    pub fn feedback_count(&self) -> usize {
        self.feedback_sites().count()
    }

    /// Total physical pulse time of the unconditional gates, nanoseconds.
    #[must_use]
    pub fn unconditional_gate_time_ns(&self) -> f64 {
        self.instructions
            .iter()
            .filter_map(|i| match i {
                Instruction::Gate(g) => Some(g.gate.duration_ns()),
                _ => None,
            })
            .sum()
    }
}

/// Incremental [`Circuit`] constructor.
///
/// Non-consuming builder (gates can be appended in loops); [`build`] consumes
/// it to freeze the instruction list.
///
/// [`build`]: CircuitBuilder::build
#[derive(Debug, Clone, Default)]
pub struct CircuitBuilder {
    num_qubits: usize,
    num_clbits: usize,
    next_site: usize,
    instructions: Vec<Instruction>,
}

impl CircuitBuilder {
    /// Starts a circuit over `num_qubits` qubits.
    #[must_use]
    pub fn new(num_qubits: usize) -> Self {
        Self {
            num_qubits,
            num_clbits: 0,
            next_site: 0,
            instructions: Vec::new(),
        }
    }

    /// Grows the qubit register if `q` is outside it (workload generators use
    /// this to allocate ancillas lazily).
    pub fn ensure_qubit(&mut self, q: Qubit) -> &mut Self {
        self.num_qubits = self.num_qubits.max(q.0 + 1);
        self
    }

    fn check_qubits(&self, qubits: &[Qubit]) {
        for q in qubits {
            assert!(
                q.0 < self.num_qubits,
                "qubit {q} out of range for a {}-qubit circuit",
                self.num_qubits
            );
        }
    }

    /// Appends an unconditional gate.
    ///
    /// # Panics
    ///
    /// Panics when a qubit index is out of range or the arity is wrong.
    pub fn gate(&mut self, gate: Gate, qubits: &[Qubit]) -> &mut Self {
        self.check_qubits(qubits);
        self.instructions
            .push(Instruction::Gate(GateApp::new(gate, qubits)));
        self
    }

    /// Appends a terminal measurement; allocates and returns its classical
    /// bit.
    pub fn measure(&mut self, q: Qubit) -> Clbit {
        self.check_qubits(&[q]);
        let cbit = Clbit(self.num_clbits);
        self.num_clbits += 1;
        self.instructions.push(Instruction::Measure(q, cbit));
        cbit
    }

    /// Appends an unconditional reset.
    pub fn reset(&mut self, q: Qubit) -> &mut Self {
        self.check_qubits(&[q]);
        self.instructions.push(Instruction::Reset(q));
        self
    }

    /// Opens a feedback instruction reading `measured`; finish with
    /// [`FeedbackBuilder::finish`].
    pub fn feedback(&mut self, measured: Qubit) -> FeedbackBuilder<'_> {
        self.check_qubits(&[measured]);
        let cbit = Clbit(self.num_clbits);
        self.num_clbits += 1;
        let site = FeedbackSite(self.next_site);
        self.next_site += 1;
        FeedbackBuilder {
            parent: self,
            feedback: Feedback {
                site,
                measured,
                cbit,
                branch0: Vec::new(),
                branch1: Vec::new(),
            },
        }
    }

    /// Freezes the builder into a [`Circuit`].
    #[must_use]
    pub fn build(self) -> Circuit {
        Circuit {
            num_qubits: self.num_qubits,
            num_clbits: self.num_clbits,
            instructions: self.instructions,
        }
    }
}

/// Builder for one feedback instruction; returned by
/// [`CircuitBuilder::feedback`].
#[derive(Debug)]
pub struct FeedbackBuilder<'a> {
    parent: &'a mut CircuitBuilder,
    feedback: Feedback,
}

impl FeedbackBuilder<'_> {
    /// Adds a gate to the outcome-0 branch.
    #[must_use]
    pub fn on_zero(mut self, gate: Gate, qubits: &[Qubit]) -> Self {
        self.parent.check_qubits(qubits);
        self.feedback
            .branch0
            .push(BranchOp::Gate(GateApp::new(gate, qubits)));
        self
    }

    /// Adds a gate to the outcome-1 branch.
    #[must_use]
    pub fn on_one(mut self, gate: Gate, qubits: &[Qubit]) -> Self {
        self.parent.check_qubits(qubits);
        self.feedback
            .branch1
            .push(BranchOp::Gate(GateApp::new(gate, qubits)));
        self
    }

    /// Adds an arbitrary branch operation to the outcome-0 branch.
    #[must_use]
    pub fn op_on_zero(mut self, op: BranchOp) -> Self {
        self.parent.check_qubits(&op.qubits());
        self.feedback.branch0.push(op);
        self
    }

    /// Adds an arbitrary branch operation to the outcome-1 branch.
    #[must_use]
    pub fn op_on_one(mut self, op: BranchOp) -> Self {
        self.parent.check_qubits(&op.qubits());
        self.feedback.branch1.push(op);
        self
    }

    /// Seals the feedback instruction, returning its site identifier.
    pub fn finish(self) -> FeedbackSite {
        let site = self.feedback.site;
        self.parent
            .instructions
            .push(Instruction::Feedback(self.feedback));
        site
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_registers() {
        let mut b = CircuitBuilder::new(2);
        b.gate(Gate::H, &[Qubit(0)]);
        let c0 = b.measure(Qubit(0));
        let site = b.feedback(Qubit(1)).on_one(Gate::X, &[Qubit(0)]).finish();
        let c = b.build();
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.num_clbits(), 2);
        assert_eq!(c0, Clbit(0));
        assert_eq!(site, FeedbackSite(0));
        assert_eq!(c.feedback_count(), 1);
        assert_eq!(c.gate_count(), 1);
    }

    #[test]
    fn feedback_sites_number_sequentially() {
        let mut b = CircuitBuilder::new(1);
        let s0 = b.feedback(Qubit(0)).finish();
        let s1 = b.feedback(Qubit(0)).finish();
        assert_eq!((s0, s1), (FeedbackSite(0), FeedbackSite(1)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gate_on_missing_qubit_panics() {
        let mut b = CircuitBuilder::new(1);
        b.gate(Gate::X, &[Qubit(3)]);
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn wrong_arity_panics() {
        let _ = GateApp::new(Gate::CZ, &[Qubit(0)]);
    }

    #[test]
    #[should_panic(expected = "duplicated")]
    fn duplicate_qubits_panic() {
        let _ = GateApp::new(Gate::CZ, &[Qubit(0), Qubit(0)]);
    }

    #[test]
    fn branch_selection() {
        let mut b = CircuitBuilder::new(2);
        b.feedback(Qubit(0))
            .on_zero(Gate::Z, &[Qubit(1)])
            .on_one(Gate::X, &[Qubit(1)])
            .finish();
        let c = b.build();
        let fb = c.feedback_sites().next().expect("one site");
        assert_eq!(fb.branch(false).len(), 1);
        assert!(matches!(
            fb.branch(true)[0],
            BranchOp::Gate(GateApp { gate: Gate::X, .. })
        ));
    }

    #[test]
    fn branch_qubits_deduplicated_and_sorted() {
        let mut b = CircuitBuilder::new(3);
        b.feedback(Qubit(0))
            .on_one(Gate::CZ, &[Qubit(2), Qubit(1)])
            .on_zero(Gate::X, &[Qubit(1)])
            .finish();
        let c = b.build();
        let fb = c.feedback_sites().next().expect("one site");
        assert_eq!(fb.branch_qubits(), vec![Qubit(1), Qubit(2)]);
    }

    #[test]
    fn gate_app_inverse_round_trip() {
        let app = GateApp::new(Gate::RX(0.7), &[Qubit(0)]);
        assert_eq!(app.inverse().inverse(), app);
    }

    #[test]
    fn branch_duration_sums_gates() {
        let mut b = CircuitBuilder::new(2);
        b.feedback(Qubit(0))
            .on_one(Gate::X, &[Qubit(1)])
            .on_one(Gate::CZ, &[Qubit(0), Qubit(1)])
            .finish();
        let c = b.build();
        let fb = c.feedback_sites().next().expect("site");
        assert_eq!(fb.branch_duration_ns(true), 30.0 + 60.0);
        assert_eq!(fb.branch_duration_ns(false), 0.0);
    }

    #[test]
    fn instruction_qubits_include_measured() {
        let mut b = CircuitBuilder::new(2);
        b.feedback(Qubit(0)).on_one(Gate::X, &[Qubit(1)]).finish();
        let c = b.build();
        assert_eq!(c.instructions()[0].qubits(), vec![Qubit(0), Qubit(1)]);
    }

    #[test]
    fn ensure_qubit_grows_register() {
        let mut b = CircuitBuilder::new(1);
        b.ensure_qubit(Qubit(4));
        b.gate(Gate::X, &[Qubit(4)]);
        assert_eq!(b.build().num_qubits(), 5);
    }

    #[test]
    fn unconditional_gate_time() {
        let mut b = CircuitBuilder::new(2);
        b.gate(Gate::X, &[Qubit(0)]);
        b.gate(Gate::CZ, &[Qubit(0), Qubit(1)]);
        b.gate(Gate::RZ(0.3), &[Qubit(1)]);
        assert_eq!(b.build().unconditional_gate_time_ns(), 90.0);
    }
}
