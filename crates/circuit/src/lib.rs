//! Quantum circuit intermediate representation for dynamic (feedback)
//! circuits.
//!
//! ARTERY operates on *dynamic quantum circuits*: circuits containing
//! mid-circuit measurements whose outcomes select between branch gate
//! sequences. This crate provides
//!
//! * the calibrated gate set of the paper's 18-qubit Xmon device
//!   (RX/RY/RZ/CZ plus derived Cliffords) with matrices, inverses and pulse
//!   durations ([`Gate`]),
//! * a circuit IR where feedback is a first-class instruction rather than a
//!   classically-conditioned gate ([`Feedback`], [`Instruction`],
//!   [`Circuit`]),
//! * a dependency DAG over instructions ([`dag::CircuitDag`]), and
//! * the pre-execution legality analysis of the paper's §3, classifying every
//!   feedback site into cases 1–4 ([`analysis`]).
//!
//! # Examples
//!
//! Build the active-reset circuit (measure, flip on `|1⟩`):
//!
//! ```
//! use artery_circuit::{CircuitBuilder, Gate, Qubit};
//!
//! let mut b = CircuitBuilder::new(1);
//! let q = Qubit(0);
//! b.gate(Gate::RX(std::f64::consts::PI), &[q]);
//! b.feedback(q)
//!     .on_one(Gate::X, &[q])
//!     .finish();
//! let circuit = b.build();
//! assert_eq!(circuit.feedback_sites().count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod circuit;
pub mod dag;
pub mod fuse;
mod gate;
mod matrix;
pub mod text;

pub use circuit::{
    BranchOp, Circuit, CircuitBuilder, Clbit, Feedback, FeedbackBuilder, FeedbackSite, GateApp,
    Instruction, Qubit,
};
pub use fuse::{FusedOp, FusedProgram, MAX_SWEEP_QUBITS};
pub use gate::{all_sample_gates, Gate, CZ_PULSE_NS, XY_PULSE_NS};
pub use matrix::{GateMatrix, Matrix2, Matrix4};
