//! Cluster-then-match: the streaming production path of the matching
//! decoder.
//!
//! [`MatchingDecoder::decode`] runs its exact bitmask DP over arbitrary
//! consecutive-16 chunks of the event list. That has two problems the
//! paper's d = 3 workload never exposed: the `2^16`-entry `dp`/`choice`
//! tables are reallocated per chunk, and — silently worse — one error
//! cluster whose events straddle a chunk boundary is decoded as two
//! independent halves, which can turn a correctable cluster into a logical
//! error (see the chunk-boundary regression test).
//!
//! This module fixes both with a union-find clustering pass. Two events can
//! only ever be matched to each other when their space-time cost is
//! *strictly* below the sum of their boundary costs — otherwise two
//! boundary matches are at least as cheap and the DP keeps the boundary
//! choice on ties. Grouping events by the transitive closure of that
//! "could pair" relation therefore splits the DP *exactly*: the optimal
//! matching never crosses a component, the DP value decomposes additively,
//! and the per-component choice sequences are identical to the full DP's.
//! At realistic physical error rates components have a handful of events,
//! so d = 5/7 memories decode in many `2^≤8` DPs instead of one `2^16`.
//!
//! [`DecoderScratch`] owns every buffer the pass needs (union-find arrays,
//! component index, DP tables, choice list), so steady-state decoding is
//! allocation-free once the buffers reach their high-water marks — pinned
//! by the `qec_zero_alloc` counting-allocator test. The chunked
//! [`MatchingDecoder::decode`] is kept as the oracle: on ≤ 16 events it is
//! the full exact DP and [`MatchingDecoder::decode_into`] reproduces its
//! output bit-for-bit (asserted by proptest).

use rand::Rng;

use crate::matching::{DetectionEvent, MatchingDecoder, MatchingMemoryExperiment};

const NO_COMPONENT: u32 = u32::MAX;

/// What one [`MatchingDecoder::decode_into`] call did — the shape of the
/// clustered workload, for metrics and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeBreakdown {
    /// Detection events decoded.
    pub events: usize,
    /// Spatio-temporally connected components found.
    pub components: usize,
    /// Components larger than [`MatchingDecoder::EXACT_LIMIT`], decoded by
    /// falling back to chunking *within* the component.
    pub oversized_components: usize,
    /// Event count of the largest component.
    pub largest_component: usize,
}

/// Reusable buffers for cluster-then-match decoding.
///
/// All buffers grow monotonically to their high-water marks and are reused
/// across calls; after warm-up, decoding allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct DecoderScratch {
    /// Union-find parent pointers over event indices.
    parent: Vec<u32>,
    /// Union-find subtree sizes.
    size: Vec<u32>,
    /// Component id per union-find root (first-event order), or
    /// `NO_COMPONENT`.
    comp_of_root: Vec<u32>,
    /// CSR-style offsets into `members`; `comp_start.len() - 1` components.
    pub(crate) comp_start: Vec<u32>,
    /// Event indices grouped by component, ascending within each.
    pub(crate) members: Vec<u32>,
    /// Per-component fill cursor while building `members`.
    cursor: Vec<u32>,
    /// Bitmask DP table, sized for the largest component seen.
    dp: Vec<u32>,
    /// DP back-pointers; `(i, j)` local indices, `j == i` = boundary match.
    choice: Vec<(u8, u8)>,
    /// Matching decisions as global event-index pairs, `gj == gi` =
    /// boundary match; sorted by `gi` before emission.
    pub(crate) choices: Vec<(u32, u32)>,
}

impl DecoderScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Component count of the most recent clustering pass.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.comp_start.len().saturating_sub(1)
    }

    /// Event counts of the most recent clustering pass's components.
    pub fn component_sizes(&self) -> impl Iterator<Item = usize> + '_ {
        self.comp_start.windows(2).map(|w| (w[1] - w[0]) as usize)
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
    }

    /// Groups `events` into connected components of the "could pair"
    /// relation and rebuilds the `comp_start`/`members` index. Components
    /// are numbered in order of their first (lowest-index) event; members
    /// are ascending within each component.
    pub(crate) fn cluster(&mut self, decoder: &MatchingDecoder, events: &[DetectionEvent]) {
        let n = events.len();
        self.parent.clear();
        self.parent.extend(0..n as u32);
        self.size.clear();
        self.size.resize(n, 1);
        for i in 0..n {
            for j in (i + 1)..n {
                if decoder.events_linked(events[i], events[j]) {
                    self.union(i as u32, j as u32);
                }
            }
        }
        self.comp_of_root.clear();
        self.comp_of_root.resize(n, NO_COMPONENT);
        let mut comps = 0u32;
        for i in 0..n as u32 {
            let root = self.find(i) as usize;
            if self.comp_of_root[root] == NO_COMPONENT {
                self.comp_of_root[root] = comps;
                comps += 1;
            }
        }
        self.comp_start.clear();
        self.comp_start.resize(comps as usize + 1, 0);
        for i in 0..n as u32 {
            let root = self.find(i) as usize;
            self.comp_start[self.comp_of_root[root] as usize + 1] += 1;
        }
        for c in 0..comps as usize {
            self.comp_start[c + 1] += self.comp_start[c];
        }
        self.cursor.clear();
        self.cursor
            .extend_from_slice(&self.comp_start[..comps as usize]);
        self.members.clear();
        self.members.resize(n, 0);
        for i in 0..n as u32 {
            let root = self.find(i) as usize;
            let c = self.comp_of_root[root] as usize;
            self.members[self.cursor[c] as usize] = i;
            self.cursor[c] += 1;
        }
    }

    /// Runs the exact bitmask DP over the component `mem` (global event
    /// indices into `events`, ≤ [`MatchingDecoder::EXACT_LIMIT`] of them)
    /// and appends its matching decisions to `choices` as global pairs.
    ///
    /// Tie-breaking is byte-for-byte the DP of
    /// [`MatchingDecoder::decode`]: boundary first, pairs only on strict
    /// improvement, partners scanned in ascending index order.
    pub(crate) fn dp_component(
        &mut self,
        decoder: &MatchingDecoder,
        events: &[DetectionEvent],
        mem: &[u32],
    ) {
        let n = mem.len();
        debug_assert!(n > 0 && n <= MatchingDecoder::EXACT_LIMIT);
        let full: usize = (1 << n) - 1;
        if self.dp.len() <= full {
            self.dp.resize(full + 1, 0);
            self.choice.resize(full + 1, (0, 0));
        }
        self.dp[0] = 0;
        for s in 1..=full {
            let i = s.trailing_zeros() as usize;
            let ei = events[mem[i] as usize];
            let without_i = s & !(1 << i);
            let mut best = self.dp[without_i].saturating_add(decoder.boundary_cost(ei.stab) as u32);
            let mut ch = (i as u8, i as u8);
            for j in (i + 1)..n {
                if s & (1 << j) != 0 {
                    let ej = events[mem[j] as usize];
                    let prev = self.dp[without_i & !(1 << j)];
                    let c = prev.saturating_add(decoder.cost(ei, ej) as u32);
                    if c < best {
                        best = c;
                        ch = (i as u8, j as u8);
                    }
                }
            }
            self.dp[s] = best;
            self.choice[s] = ch;
        }
        let mut s = full;
        while s != 0 {
            let (i, j) = self.choice[s];
            let (i, j) = (i as usize, j as usize);
            self.choices.push((mem[i], mem[j]));
            s &= !(1 << i);
            if j != i {
                s &= !(1 << j);
            }
        }
    }
}

impl MatchingDecoder {
    /// Emits the data-qubit corrections implied by a list of matching
    /// decisions (global event-index pairs; `gj == gi` = boundary match).
    pub(crate) fn emit_choices(
        &self,
        events: &[DetectionEvent],
        choices: &[(u32, u32)],
        out: &mut Vec<usize>,
    ) {
        for &(gi, gj) in choices {
            let a = events[gi as usize];
            if gi == gj {
                out.extend_from_slice(&self.boundary[a.stab].1);
            } else {
                out.extend_from_slice(&self.path[a.stab][events[gj as usize].stab]);
            }
        }
    }

    /// Cluster-then-match decode into a reused output buffer.
    ///
    /// Clusters `events` into spatio-temporally connected components (two
    /// events share a component only when some chain of "could pair" links
    /// connects them) and runs the exact DP per component, so the work is
    /// `O(Σ 2^|c|·|c|)` over small components instead of `O(2^16)` chunks.
    /// Unlike [`decode`](Self::decode), clusters are never split at
    /// arbitrary chunk boundaries.
    ///
    /// On ≤ [`Self::EXACT_LIMIT`] events the correction list is
    /// bit-identical to [`decode`](Self::decode) — same qubits, same
    /// order — because the full DP consumes events in ascending-index order
    /// and never pairs across components, so sorting the per-component
    /// decisions by their lower event index reproduces its emission order
    /// exactly. Components beyond `EXACT_LIMIT` events (vanishingly rare
    /// below threshold) fall back to chunking within the component and are
    /// counted in the returned [`DecodeBreakdown`].
    ///
    /// With a warmed-up `scratch` and capacity in `out`, allocates nothing.
    pub fn decode_into(
        &self,
        events: &[DetectionEvent],
        scratch: &mut DecoderScratch,
        out: &mut Vec<usize>,
    ) -> DecodeBreakdown {
        out.clear();
        scratch.choices.clear();
        scratch.cluster(self, events);
        let comp_start = std::mem::take(&mut scratch.comp_start);
        let members = std::mem::take(&mut scratch.members);
        let comps = comp_start.len() - 1;
        let mut breakdown = DecodeBreakdown {
            events: events.len(),
            components: comps,
            ..DecodeBreakdown::default()
        };
        for c in 0..comps {
            let mem = &members[comp_start[c] as usize..comp_start[c + 1] as usize];
            breakdown.largest_component = breakdown.largest_component.max(mem.len());
            if mem.len() <= Self::EXACT_LIMIT {
                scratch.dp_component(self, events, mem);
            } else {
                breakdown.oversized_components += 1;
                for chunk in mem.chunks(Self::EXACT_LIMIT) {
                    scratch.dp_component(self, events, chunk);
                }
            }
        }
        scratch.comp_start = comp_start;
        scratch.members = members;
        // Each event index appears in exactly one decision's lower slot or
        // is consumed as a partner, so sorting by the lower index restores
        // the full DP's global emission order. In-place, allocation-free.
        scratch.choices.sort_unstable_by_key(|&(gi, _)| gi);
        self.emit_choices(events, &scratch.choices, out);
        breakdown
    }
}

/// Reusable per-shot buffers for [`MatchingMemoryExperiment`] Monte-Carlo
/// loops: error frame, syndrome, previous-round syndrome, streamed event
/// list, corrections, and the decode scratch. One instance per thread;
/// after the first shot at a given code size, shots allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct MatchingShotScratch {
    pub(crate) frame: Vec<bool>,
    pub(crate) syndrome: Vec<bool>,
    pub(crate) prev: Vec<bool>,
    pub(crate) events: Vec<DetectionEvent>,
    pub(crate) corrections: Vec<usize>,
    pub(crate) sort_a: Vec<usize>,
    pub(crate) sort_b: Vec<usize>,
    pub(crate) decoder: DecoderScratch,
    pub(crate) breakdown: DecodeBreakdown,
}

impl MatchingShotScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Breakdown of the most recent shot's decode.
    #[must_use]
    pub fn breakdown(&self) -> DecodeBreakdown {
        self.breakdown
    }

    /// Component sizes of the most recent shot's decode.
    pub fn component_sizes(&self) -> impl Iterator<Item = usize> + '_ {
        self.decoder.component_sizes()
    }

    /// Corrections applied in the most recent shot.
    #[must_use]
    pub fn corrections(&self) -> &[usize] {
        &self.corrections
    }
}

impl MatchingMemoryExperiment {
    /// Resets `scratch` for a fresh shot of this experiment's code.
    pub(crate) fn begin_shot(&self, scratch: &mut MatchingShotScratch) {
        let n = self.code.num_data_qubits();
        let m = self.decoder.num_stabilizers();
        scratch.frame.clear();
        scratch.frame.resize(n, false);
        scratch.prev.clear();
        scratch.prev.resize(m, false);
        scratch.syndrome.clear();
        scratch.events.clear();
        scratch.corrections.clear();
    }

    /// One noisy extraction round: accumulates data errors into
    /// `scratch.frame` and leaves the noisy syndrome in `scratch.syndrome`.
    /// RNG consumption order matches the original offline `run_shot`
    /// exactly (data flips, then measurement flips).
    pub(crate) fn noisy_round(&self, rng: &mut impl Rng, scratch: &mut MatchingShotScratch) {
        for slot in scratch.frame.iter_mut() {
            if rng.gen::<f64>() < self.p_data {
                *slot = !*slot;
            }
        }
        self.code
            .z_syndrome_into(&scratch.frame, &mut scratch.syndrome);
        for bit in scratch.syndrome.iter_mut() {
            if rng.gen::<f64>() < self.p_meas {
                *bit = !*bit;
            }
        }
    }

    /// [`run_shot`](Self::run_shot) with caller-owned buffers: detection
    /// events are extracted incrementally from syndrome deltas (no
    /// `Vec<Vec<bool>>` round buffers) and decoded with the
    /// cluster-then-match engine. Zero allocations in steady state.
    pub fn run_shot_with(
        &self,
        cycles: usize,
        rng: &mut impl Rng,
        scratch: &mut MatchingShotScratch,
    ) -> bool {
        self.begin_shot(scratch);
        for t in 0..cycles {
            self.noisy_round(rng, scratch);
            MatchingDecoder::append_detection_events(
                &scratch.prev,
                &scratch.syndrome,
                t,
                &mut scratch.events,
            );
            scratch.prev.copy_from_slice(&scratch.syndrome);
        }
        // Final perfect round.
        self.code
            .z_syndrome_into(&scratch.frame, &mut scratch.syndrome);
        MatchingDecoder::append_detection_events(
            &scratch.prev,
            &scratch.syndrome,
            cycles,
            &mut scratch.events,
        );
        scratch.breakdown = self.decoder.decode_into(
            &scratch.events,
            &mut scratch.decoder,
            &mut scratch.corrections,
        );
        let (frame, corrections) = (&mut scratch.frame, &scratch.corrections);
        for &q in corrections {
            frame[q] = !frame[q];
        }
        self.code.is_logical_x_flip(&scratch.frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::RotatedSurfaceCode;
    use artery_num::rng::rng_for;

    fn decoder(d: usize) -> MatchingDecoder {
        MatchingDecoder::build(&RotatedSurfaceCode::new(d))
    }

    #[test]
    fn far_apart_events_form_separate_components() {
        let dec = decoder(5);
        let events = [
            DetectionEvent { round: 0, stab: 0 },
            DetectionEvent { round: 40, stab: 0 },
        ];
        let mut scratch = DecoderScratch::new();
        let mut out = Vec::new();
        let breakdown = dec.decode_into(&events, &mut scratch, &mut out);
        assert_eq!(breakdown.components, 2);
        assert_eq!(breakdown.largest_component, 1);
    }

    #[test]
    fn time_like_pair_is_one_component_with_no_corrections() {
        let dec = decoder(5);
        let events = [
            DetectionEvent { round: 3, stab: 6 },
            DetectionEvent { round: 4, stab: 6 },
        ];
        let mut scratch = DecoderScratch::new();
        let mut out = Vec::new();
        let breakdown = dec.decode_into(&events, &mut scratch, &mut out);
        assert_eq!(breakdown.components, 1);
        assert!(out.is_empty(), "time-like pair needs no data correction");
    }

    #[test]
    fn empty_events_decode_to_nothing() {
        let dec = decoder(3);
        let mut scratch = DecoderScratch::new();
        let mut out = vec![99];
        let breakdown = dec.decode_into(&[], &mut scratch, &mut out);
        assert!(out.is_empty());
        assert_eq!(breakdown, DecodeBreakdown::default());
        assert_eq!(scratch.component_count(), 0);
    }

    #[test]
    fn long_time_chain_triggers_oversized_fallback() {
        // 17 events on one stabilizer in consecutive rounds chain into a
        // single component beyond EXACT_LIMIT.
        let dec = decoder(5);
        let events: Vec<DetectionEvent> = (0..17)
            .map(|t| DetectionEvent { round: t, stab: 4 })
            .collect();
        let mut scratch = DecoderScratch::new();
        let mut out = Vec::new();
        let breakdown = dec.decode_into(&events, &mut scratch, &mut out);
        assert_eq!(breakdown.components, 1);
        assert_eq!(breakdown.largest_component, 17);
        assert_eq!(breakdown.oversized_components, 1);
    }

    #[test]
    fn component_decode_matches_chunked_oracle_on_small_sets() {
        // On ≤16 events decode() is the full exact DP; decode_into must
        // reproduce it bit-for-bit, including emission order.
        let dec = decoder(5);
        let num_stabs = dec.num_stabilizers();
        let mut rng = rng_for("cluster/oracle");
        let mut scratch = DecoderScratch::new();
        let mut out = Vec::new();
        for _ in 0..500 {
            let n = rng.gen_range(0..=16);
            let mut events: Vec<DetectionEvent> = Vec::new();
            let mut round = 0usize;
            for _ in 0..n {
                round += rng.gen_range(0..3);
                events.push(DetectionEvent {
                    round,
                    stab: rng.gen_range(0..num_stabs),
                });
            }
            events.sort_by_key(|e| (e.round, e.stab));
            events.dedup();
            let oracle = dec.decode(&events);
            dec.decode_into(&events, &mut scratch, &mut out);
            assert_eq!(out, oracle, "events {events:?}");
        }
    }

    #[test]
    fn run_shot_with_reuses_buffers_across_distances() {
        // The same scratch must serve experiments of different sizes.
        let mut scratch = MatchingShotScratch::new();
        let mut rng = rng_for("cluster/sizes");
        for d in [3usize, 5, 3, 7] {
            let exp = MatchingMemoryExperiment::new(RotatedSurfaceCode::new(d), 0.01, 0.01);
            let _ = exp.run_shot_with(5, &mut rng, &mut scratch);
            assert_eq!(scratch.frame.len(), d * d);
        }
    }

    #[test]
    fn noiseless_shot_has_no_events_or_corrections() {
        let exp = MatchingMemoryExperiment::new(RotatedSurfaceCode::new(5), 0.0, 0.0);
        let mut scratch = MatchingShotScratch::new();
        let mut rng = rng_for("cluster/clean");
        assert!(!exp.run_shot_with(10, &mut rng, &mut scratch));
        assert_eq!(scratch.breakdown(), DecodeBreakdown::default());
        assert!(scratch.corrections().is_empty());
    }
}
