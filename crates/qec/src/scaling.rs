//! Latency↔error coupling models behind Fig. 12 a/b/d.
//!
//! Three small analytic models connect the feedback controller to the QEC
//! results:
//!
//! * [`CycleTiming`] — a QEC cycle is the syndrome readout-and-reset path
//!   plus the gate layer of the stabilizer circuit; faster feedback
//!   shortens the cycle (Fig. 12 a, end-to-end row),
//! * [`CycleNoiseModel`] — data qubits accumulate idle error in proportion
//!   to the time they spend exposed before their correction lands; ARTERY's
//!   pre-correction shrinks that exposure (this is the mechanism the paper
//!   credits for the Fig. 12 b logical-error gap: "data qubits, being in a
//!   low-energy state due to pre-correction, reduce decoherence errors"),
//! * [`ScalingModel`] — the paper's latency *estimation model* for larger
//!   code distances (Fig. 12 d): with `d² − 1` syndromes per cycle, the
//!   probability that *every* syndrome prediction is correct decays
//!   geometrically, and "any prediction error in a syndrome triggers branch
//!   recovery"; past d ≈ 13 the expected recovery cost cancels the saving.
//!
//! Model constants are calibrated against the paper's reported numbers and
//! recorded here (the paper does not publish its estimation-model
//! parameters).

use serde::{Deserialize, Serialize};

/// Timing of one QEC cycle for a given feedback controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleTiming {
    /// Syndrome measure-and-reset feedback latency, µs.
    pub reset_us: f64,
    /// Data-qubit correction feedback latency, µs.
    pub correction_us: f64,
    /// Stabilizer-circuit gate layer (CZ ladder + Hadamards), µs.
    pub gate_layer_us: f64,
}

impl CycleTiming {
    /// End-to-end cycle latency, µs: the syndrome reset dominates the
    /// critical path; the gate layer precedes it (paper: QubiC 2.45 µs
    /// = 2.16 µs reset + 0.29 µs gates; ARTERY 2.31 µs).
    #[must_use]
    pub fn cycle_us(&self) -> f64 {
        self.reset_us + self.gate_layer_us
    }

    /// The paper's gate-layer duration implied by its QubiC numbers.
    pub const PAPER_GATE_LAYER_US: f64 = 0.29;
}

/// Per-cycle physical error model linking exposure time to error rates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleNoiseModel {
    /// Qubit lifetime, µs (Google-calibrated runs use 20 µs).
    pub t1_us: f64,
    /// Gate-induced X-flip probability per data qubit per cycle.
    pub p_gate: f64,
    /// Syndrome misread probability per cycle.
    pub p_meas: f64,
    /// Fraction of idle decay that converts into bit-flip error (captures
    /// average excited-state population and echo efficiency; calibrated so
    /// the QubiC/ARTERY logical-error gap matches Fig. 12 b's ≈1.86×).
    pub exposure_coeff: f64,
}

impl CycleNoiseModel {
    /// Google-experiment-calibrated constants (Fig. 12 b/c).
    #[must_use]
    pub fn google_calibrated() -> Self {
        Self {
            t1_us: 20.0,
            p_gate: 0.012,
            p_meas: 0.02,
            exposure_coeff: 0.13,
        }
    }

    /// Data-qubit X-error probability for a cycle in which the qubit is
    /// exposed (uncorrected / waiting on feedback) for `exposure_us`.
    #[must_use]
    pub fn p_data(&self, exposure_us: f64) -> f64 {
        (self.p_gate + self.exposure_coeff * (exposure_us / self.t1_us)).clamp(0.0, 1.0)
    }
}

/// The Fig. 12 d estimation model: expected syndrome-feedback time saved per
/// cycle at code distance `d`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingModel {
    /// Per-syndrome prediction accuracy (sampled from the measured QEC
    /// accuracy distribution).
    pub syndrome_accuracy: f64,
    /// Time saved per cycle when every prediction is correct, µs
    /// (reset 2.16 → 2.01 µs).
    pub saved_us: f64,
    /// Extra latency over the sequential baseline when a recovery is
    /// triggered, µs (undo + re-execute tail).
    pub overrun_us: f64,
}

impl ScalingModel {
    /// Constants calibrated so the benefit crosses zero at d ≈ 13 (the
    /// paper's reported upper bound).
    #[must_use]
    pub fn paper_calibrated() -> Self {
        Self {
            syndrome_accuracy: 0.996,
            saved_us: 0.15,
            overrun_us: 0.16,
        }
    }

    /// Number of syndromes per cycle at distance `d`.
    #[must_use]
    pub fn syndromes(d: usize) -> usize {
        d * d - 1
    }

    /// Probability that all syndrome predictions in a cycle are correct.
    #[must_use]
    pub fn p_all_correct(&self, d: usize) -> f64 {
        self.syndrome_accuracy.powi(Self::syndromes(d) as i32)
    }

    /// Expected time saved per cycle, µs (can be negative past the
    /// crossover).
    #[must_use]
    pub fn expected_saving_us(&self, d: usize) -> f64 {
        let p = self.p_all_correct(d);
        p * self.saved_us - (1.0 - p) * self.overrun_us
    }

    /// The saving ARTERY actually realizes: it declines to predict when the
    /// expected saving is negative, so the benefit floors at zero ("for
    /// circuits with d > 13 … ARTERY does not contribute to latency
    /// reduction").
    #[must_use]
    pub fn effective_saving_us(&self, d: usize) -> f64 {
        self.expected_saving_us(d).max(0.0)
    }

    /// The largest odd distance with positive expected saving.
    #[must_use]
    pub fn crossover_distance(&self) -> usize {
        let mut last = 3;
        let mut d = 3;
        while d <= 99 {
            if self.expected_saving_us(d) > 0.0 {
                last = d;
            } else {
                break;
            }
            d += 2;
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_timing_matches_paper_qubic() {
        let qubic = CycleTiming {
            reset_us: 2.16,
            correction_us: 2.16,
            gate_layer_us: CycleTiming::PAPER_GATE_LAYER_US,
        };
        assert!((qubic.cycle_us() - 2.45).abs() < 1e-9);
    }

    #[test]
    fn exposure_raises_data_error() {
        let m = CycleNoiseModel::google_calibrated();
        assert!(m.p_data(2.45) > m.p_data(0.45));
        assert!(m.p_data(0.0) == m.p_gate);
    }

    #[test]
    fn p_data_is_clamped() {
        let m = CycleNoiseModel {
            exposure_coeff: 10.0,
            ..CycleNoiseModel::google_calibrated()
        };
        assert_eq!(m.p_data(1e9), 1.0);
    }

    #[test]
    fn saving_declines_with_distance() {
        let m = ScalingModel::paper_calibrated();
        let mut prev = f64::INFINITY;
        for d in (3..=15).step_by(2) {
            let s = m.expected_saving_us(d);
            assert!(s < prev, "saving must decline at d = {d}");
            prev = s;
        }
    }

    #[test]
    fn crossover_is_near_13() {
        let m = ScalingModel::paper_calibrated();
        let crossover = m.crossover_distance();
        assert!(
            (11..=13).contains(&crossover),
            "crossover at d = {crossover}, expected ≈13"
        );
        // Past the crossover ARTERY contributes nothing, not a slowdown.
        assert_eq!(m.effective_saving_us(15), 0.0);
        assert!(m.effective_saving_us(3) > 0.1);
    }

    #[test]
    fn syndrome_count_formula() {
        assert_eq!(ScalingModel::syndromes(3), 8);
        assert_eq!(ScalingModel::syndromes(13), 168);
    }

    #[test]
    fn p_all_correct_decays_geometrically() {
        let m = ScalingModel::paper_calibrated();
        assert!(m.p_all_correct(3) > m.p_all_correct(5));
        assert!(m.p_all_correct(13) < 0.6);
    }
}
