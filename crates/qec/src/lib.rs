//! Surface-code quantum error correction (the paper's §6.2 substrate).
//!
//! The paper validates ARTERY on a distance-3 rotated surface code with a
//! lookup-table decoder standing in for the real-time decoder ("due to
//! limitations in Qiskit's syntax for feedback operations, we replace the
//! real-time decoder with a lookup table"). This crate reproduces that
//! methodology natively:
//!
//! * [`RotatedSurfaceCode`] — the code layout for any odd distance
//!   (stabilizer supports, logical operators, commutation-checked),
//! * [`LookupDecoder`] — the minimum-weight lookup table for the bit-flip
//!   sector of d = 3 (surface-17),
//! * [`MemoryExperiment`] — repeated noisy syndrome-extraction cycles with
//!   per-cycle feedback correction and measurement errors (Fig. 12 b/c),
//! * [`cluster`] — the cluster-then-match production decode path:
//!   union-find clustering of detection events plus per-component exact
//!   matching with reused [`DecoderScratch`] buffers (zero-alloc steady
//!   state, bit-identical to the chunked oracle on small event sets),
//! * [`window`] — [`SlidingWindowDecoder`], streaming window decode with
//!   commit/rollback as syndromes arrive round by round,
//! * [`scaling`] — the latency/error estimation models behind Fig. 12 a/d:
//!   how feedback latency couples into per-cycle physical error, and how the
//!   pre-execution benefit dies out with code distance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
mod decoder;
mod layout;
pub mod matching;
mod memory;
pub mod scaling;
mod stabilizer;
pub mod window;

pub use cluster::{DecodeBreakdown, DecoderScratch, MatchingShotScratch};
pub use decoder::LookupDecoder;
pub use layout::{RotatedSurfaceCode, Stabilizer, StabilizerKind};
pub use matching::{MatchingDecoder, MatchingMemoryExperiment};
pub use memory::{MemoryExperiment, MemoryOutcome, MemoryShotScratch};
pub use stabilizer::Tableau;
pub use window::{SlidingWindowDecoder, WindowStats, WindowedShot};
