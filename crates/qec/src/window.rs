//! Streaming sliding-window decoding: commit/rollback for syndromes.
//!
//! The offline matching path collects every round before decoding. Real
//! feedback cannot wait: ARTERY's whole premise is pre-executing on a
//! prediction and rolling back when the late truth disagrees. This module
//! applies the same contract to QEC decoding. A [`SlidingWindowDecoder`]
//! ingests one syndrome per round, maintains the clustered components of
//! all *pending* detection events, and each round:
//!
//! * **commits** every component whose newest event is at least `W` rounds
//!   old — no future event can ever link into it, so its corrections are
//!   final and byte-identical to what the offline decode will produce;
//! * **tentatively decodes** the rest (the speculative corrections a
//!   feedback controller would pre-execute);
//! * **rolls back** a tentative component whenever a late syndrome bit
//!   joins it — the previous round's speculative corrections for that
//!   component are discarded and recomputed.
//!
//! The window length `W = 2·max_boundary_cost` is not a tunable: it is the
//! smallest horizon with an exactness proof. Two events can only pair when
//! their space-time cost (≥ their round gap) is strictly below the sum of
//! their boundary costs (≤ `2·max_boundary_cost`), so an event `W` rounds
//! stale cannot link to any future event directly — and not transitively
//! either, because every intermediate event would itself be pending and
//! already clustered. Committed components are therefore *exactly* the
//! offline components, and the committed corrections equal the offline
//! corrections as a multiset — asserted per shot by the fig12d harness and
//! the window equivalence proptest.

use rand::Rng;

use crate::cluster::{DecodeBreakdown, DecoderScratch, MatchingShotScratch};
use crate::matching::{DetectionEvent, MatchingDecoder, MatchingMemoryExperiment};

/// Streaming counters of a [`SlidingWindowDecoder`] (cumulative across
/// shots until [`SlidingWindowDecoder::take_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Components whose corrections were committed (settled or flushed).
    pub commits: u64,
    /// Tentative components invalidated by a late syndrome bit: their
    /// previous speculative decode was discarded and recomputed.
    pub rollbacks: u64,
    /// Speculative decodes of not-yet-settled components.
    pub tentative_decodes: u64,
}

/// Decodes a moving window of rounds as syndromes stream in.
///
/// Feed one syndrome per round with [`push_round`](Self::push_round), close
/// the shot with the perfect readout via [`finish`](Self::finish), and read
/// the final corrections from the returned slice. All buffers are reused
/// across rounds and shots; steady-state streaming allocates nothing.
#[derive(Debug, Clone)]
pub struct SlidingWindowDecoder {
    decoder: MatchingDecoder,
    /// Settle horizon `W` in rounds; see the module docs.
    horizon: usize,
    rounds_seen: usize,
    prev: Vec<bool>,
    pending: Vec<DetectionEvent>,
    keep: Vec<bool>,
    committed: Vec<usize>,
    tentative: Vec<usize>,
    scratch: DecoderScratch,
    stats: WindowStats,
}

impl SlidingWindowDecoder {
    /// Wraps `decoder` in a streaming window of the smallest exact length.
    #[must_use]
    pub fn new(decoder: MatchingDecoder) -> Self {
        let horizon = 2 * decoder.max_boundary_cost();
        let num_stabs = decoder.num_stabilizers();
        Self {
            decoder,
            horizon,
            rounds_seen: 0,
            prev: vec![false; num_stabs],
            pending: Vec::new(),
            keep: Vec::new(),
            committed: Vec::new(),
            tentative: Vec::new(),
            scratch: DecoderScratch::new(),
            stats: WindowStats::default(),
        }
    }

    /// The window length `W` in rounds.
    #[must_use]
    pub fn window_rounds(&self) -> usize {
        self.horizon
    }

    /// Number of Z-stabilizers each pushed syndrome must cover.
    #[must_use]
    pub fn num_stabilizers(&self) -> usize {
        self.decoder.num_stabilizers()
    }

    /// Clears per-shot state for a new shot. Counters in
    /// [`stats`](Self::stats) keep accumulating; buffers keep their
    /// capacity.
    pub fn reset(&mut self) {
        self.rounds_seen = 0;
        self.prev.clear();
        self.prev.resize(self.decoder.num_stabilizers(), false);
        self.pending.clear();
        self.committed.clear();
        self.tentative.clear();
    }

    /// Cumulative streaming counters.
    #[must_use]
    pub fn stats(&self) -> WindowStats {
        self.stats
    }

    /// Returns and resets the cumulative counters.
    pub fn take_stats(&mut self) -> WindowStats {
        std::mem::take(&mut self.stats)
    }

    /// Corrections committed so far this shot (final; never rolled back).
    #[must_use]
    pub fn committed(&self) -> &[usize] {
        &self.committed
    }

    /// Speculative corrections for the still-open components after the
    /// latest round — what a feedback controller would pre-execute.
    #[must_use]
    pub fn tentative(&self) -> &[usize] {
        &self.tentative
    }

    /// Ingests the (noisy) syndrome of the next round.
    ///
    /// # Panics
    ///
    /// Panics when `syndrome` does not have one bit per Z-stabilizer.
    pub fn push_round(&mut self, syndrome: &[bool]) {
        assert_eq!(
            syndrome.len(),
            self.decoder.num_stabilizers(),
            "syndrome length"
        );
        MatchingDecoder::append_detection_events(
            &self.prev,
            syndrome,
            self.rounds_seen,
            &mut self.pending,
        );
        self.prev.copy_from_slice(syndrome);
        self.rounds_seen += 1;
        self.step(false);
    }

    /// Ingests the final perfect readout, flushes every open component and
    /// returns the complete committed correction list for the shot.
    ///
    /// # Panics
    ///
    /// Panics when `final_syndrome` does not have one bit per Z-stabilizer.
    pub fn finish(&mut self, final_syndrome: &[bool]) -> &[usize] {
        assert_eq!(
            final_syndrome.len(),
            self.decoder.num_stabilizers(),
            "syndrome length"
        );
        MatchingDecoder::append_detection_events(
            &self.prev,
            final_syndrome,
            self.rounds_seen,
            &mut self.pending,
        );
        self.prev.copy_from_slice(final_syndrome);
        self.rounds_seen += 1;
        self.step(true);
        debug_assert!(self.pending.is_empty(), "flush left pending events");
        &self.committed
    }

    fn decode_component(
        decoder: &MatchingDecoder,
        scratch: &mut DecoderScratch,
        events: &[DetectionEvent],
        mem: &[u32],
        out: &mut Vec<usize>,
    ) {
        scratch.choices.clear();
        if mem.len() <= MatchingDecoder::EXACT_LIMIT {
            scratch.dp_component(decoder, events, mem);
        } else {
            for chunk in mem.chunks(MatchingDecoder::EXACT_LIMIT) {
                scratch.dp_component(decoder, events, chunk);
            }
        }
        decoder.emit_choices(events, &scratch.choices, out);
    }

    fn step(&mut self, flush: bool) {
        self.tentative.clear();
        if self.pending.is_empty() {
            return;
        }
        self.scratch.cluster(&self.decoder, &self.pending);
        let comp_start = std::mem::take(&mut self.scratch.comp_start);
        let members = std::mem::take(&mut self.scratch.members);
        let comps = comp_start.len() - 1;
        let latest = self.rounds_seen - 1;
        self.keep.clear();
        self.keep.resize(self.pending.len(), true);
        for c in 0..comps {
            let mem = &members[comp_start[c] as usize..comp_start[c + 1] as usize];
            let newest = mem
                .iter()
                .map(|&e| self.pending[e as usize].round)
                .max()
                .expect("components are non-empty");
            let has_latest = newest == latest;
            let has_older = mem.iter().any(|&e| self.pending[e as usize].round < latest);
            if has_latest && has_older {
                // Every pending event was tentatively decoded last round,
                // so a late bit joining the component invalidates that
                // speculative correction.
                self.stats.rollbacks += 1;
            }
            let settled = flush || self.rounds_seen - newest >= self.horizon;
            if settled {
                self.stats.commits += 1;
                Self::decode_component(
                    &self.decoder,
                    &mut self.scratch,
                    &self.pending,
                    mem,
                    &mut self.committed,
                );
                for &e in mem {
                    self.keep[e as usize] = false;
                }
            } else {
                self.stats.tentative_decodes += 1;
                Self::decode_component(
                    &self.decoder,
                    &mut self.scratch,
                    &self.pending,
                    mem,
                    &mut self.tentative,
                );
            }
        }
        self.scratch.comp_start = comp_start;
        self.scratch.members = members;
        // Compact pending in place, dropping committed events.
        let mut w = 0usize;
        for r in 0..self.pending.len() {
            if self.keep[r] {
                self.pending[w] = self.pending[r];
                w += 1;
            }
        }
        self.pending.truncate(w);
    }
}

/// One windowed shot's outcome, with the offline decode of the same noise
/// realization for the in-binary equivalence check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowedShot {
    /// Logical X flip after applying the *committed* window corrections.
    pub logical_error: bool,
    /// Logical X flip after applying the offline cluster-then-match
    /// corrections to the same noise realization.
    pub offline_logical_error: bool,
    /// Whether the committed corrections equal the offline corrections as
    /// a multiset (always true; see the window exactness proof).
    pub corrections_match: bool,
    /// Breakdown of the offline decode (events, components, ...).
    pub breakdown: DecodeBreakdown,
}

impl MatchingMemoryExperiment {
    /// Runs one shot streaming every noisy syndrome through `window`
    /// round-by-round, *and* decodes the same realization offline,
    /// returning both outcomes plus whether their corrections agree.
    ///
    /// RNG consumption is identical to [`run_shot_with`](Self::run_shot_with),
    /// so windowed and offline Monte-Carlo loops see the same noise.
    ///
    /// # Panics
    ///
    /// Panics when `window` was built for a different code.
    pub fn run_shot_windowed(
        &self,
        cycles: usize,
        rng: &mut impl Rng,
        scratch: &mut MatchingShotScratch,
        window: &mut SlidingWindowDecoder,
    ) -> WindowedShot {
        assert_eq!(
            window.num_stabilizers(),
            self.decoder.num_stabilizers(),
            "window decoder built for a different code"
        );
        self.begin_shot(scratch);
        window.reset();
        for t in 0..cycles {
            self.noisy_round(rng, scratch);
            window.push_round(&scratch.syndrome);
            MatchingDecoder::append_detection_events(
                &scratch.prev,
                &scratch.syndrome,
                t,
                &mut scratch.events,
            );
            scratch.prev.copy_from_slice(&scratch.syndrome);
        }
        self.code
            .z_syndrome_into(&scratch.frame, &mut scratch.syndrome);
        MatchingDecoder::append_detection_events(
            &scratch.prev,
            &scratch.syndrome,
            cycles,
            &mut scratch.events,
        );
        let committed = window.finish(&scratch.syndrome);
        scratch.breakdown = self.decoder.decode_into(
            &scratch.events,
            &mut scratch.decoder,
            &mut scratch.corrections,
        );
        scratch.sort_a.clear();
        scratch.sort_a.extend_from_slice(committed);
        scratch.sort_a.sort_unstable();
        scratch.sort_b.clear();
        scratch.sort_b.extend_from_slice(&scratch.corrections);
        scratch.sort_b.sort_unstable();
        let corrections_match = scratch.sort_a == scratch.sort_b;
        // Logical Z lives on the top row (qubits 0..d): the outcome is the
        // raw frame parity XOR the correction parity on that support.
        let d = self.code.distance();
        let base = self.code.is_logical_x_flip(&scratch.frame);
        let window_parity = committed.iter().filter(|&&q| q < d).count() % 2 == 1;
        let offline_parity = scratch.corrections.iter().filter(|&&q| q < d).count() % 2 == 1;
        WindowedShot {
            logical_error: base ^ window_parity,
            offline_logical_error: base ^ offline_parity,
            corrections_match,
            breakdown: scratch.breakdown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::RotatedSurfaceCode;
    use artery_num::rng::rng_for;

    fn window(d: usize) -> SlidingWindowDecoder {
        SlidingWindowDecoder::new(MatchingDecoder::build(&RotatedSurfaceCode::new(d)))
    }

    #[test]
    fn clean_stream_commits_nothing() {
        let mut w = window(3);
        let clean = vec![false; w.num_stabilizers()];
        w.reset();
        for _ in 0..10 {
            w.push_round(&clean);
        }
        assert!(w.finish(&clean).is_empty());
        assert_eq!(w.stats(), WindowStats::default());
    }

    #[test]
    fn measurement_blip_commits_before_finish_and_rolls_back_once() {
        let mut w = window(5);
        let clean = vec![false; w.num_stabilizers()];
        let mut flipped = clean.clone();
        flipped[6] = true;
        w.reset();
        // Round 0 flips, round 1 restores: a time-like event pair at rounds
        // 0 and 1 on stabilizer 6.
        w.push_round(&flipped);
        w.push_round(&clean);
        assert_eq!(w.stats().rollbacks, 1, "late bit joined the component");
        // After the horizon passes the pair settles and commits (with no
        // data corrections) before the shot ends.
        for _ in 0..w.window_rounds() + 1 {
            w.push_round(&clean);
        }
        assert_eq!(w.stats().commits, 1, "pair should settle mid-stream");
        assert!(w.committed().is_empty());
        assert!(w.tentative().is_empty());
        assert!(w.finish(&clean).is_empty());
    }

    #[test]
    fn tentative_corrections_appear_while_component_is_open() {
        let code = RotatedSurfaceCode::new(5);
        let mut w = window(5);
        // A real data error on qubit 0 fires its single Z-stabilizer
        // persistently from round 0 on.
        let mut frame = vec![false; code.num_data_qubits()];
        frame[0] = true;
        let noisy = code.z_syndrome(&frame);
        w.reset();
        w.push_round(&noisy);
        assert!(
            !w.tentative().is_empty(),
            "open component must decode speculatively"
        );
        assert!(w.committed().is_empty());
        let committed = w.finish(&noisy);
        assert_eq!(committed, [0], "boundary match flips the errored qubit");
    }

    #[test]
    fn windowed_outcomes_equal_offline_on_random_shots() {
        for d in [3usize, 5] {
            let exp = MatchingMemoryExperiment::new(RotatedSurfaceCode::new(d), 0.01, 0.01);
            let mut w = SlidingWindowDecoder::new(exp.decoder().clone());
            let mut scratch = MatchingShotScratch::new();
            let mut rng = rng_for("window/equiv");
            for _ in 0..200 {
                let shot = exp.run_shot_windowed(12, &mut rng, &mut scratch, &mut w);
                assert!(shot.corrections_match, "d={d}: window diverged");
                assert_eq!(shot.logical_error, shot.offline_logical_error);
            }
        }
    }

    #[test]
    fn windowed_rng_matches_offline_run_shot() {
        // Same seed, same noise: the windowed shot's offline outcome must
        // equal run_shot_with's outcome bit-for-bit.
        let exp = MatchingMemoryExperiment::new(RotatedSurfaceCode::new(5), 0.015, 0.015);
        let mut w = SlidingWindowDecoder::new(exp.decoder().clone());
        let mut scratch = MatchingShotScratch::new();
        for i in 0..50 {
            let label = format!("window/rng/{i}");
            let mut rng_a = rng_for(&label);
            let mut rng_b = rng_for(&label);
            let offline = exp.run_shot_with(10, &mut rng_a, &mut scratch);
            let shot = exp.run_shot_windowed(10, &mut rng_b, &mut scratch, &mut w);
            assert_eq!(shot.offline_logical_error, offline);
            assert_eq!(shot.logical_error, offline);
        }
    }
}
