//! Repeated-cycle memory experiments with feedback correction (Fig. 12 b/c).
//!
//! The paper's methodology: a d = 3 surface-code memory runs `cycles` rounds
//! of noisy syndrome extraction; each round the observed (noisy) syndrome is
//! decoded by the lookup table and the correction is applied *by feedback*
//! (dynamic circuit). Physical error rates per cycle depend on the feedback
//! controller through the cycle duration — that coupling lives in
//! [`scaling::per_cycle_noise`](crate::scaling::per_cycle_noise).

use rand::Rng;

use crate::decoder::LookupDecoder;
use crate::layout::RotatedSurfaceCode;

/// One memory run's result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryOutcome {
    /// Whether the final logical Z measurement was flipped.
    pub logical_error: bool,
    /// How many cycles observed a non-trivial syndrome.
    pub active_cycles: usize,
}

/// A repeated syndrome-extraction memory experiment in the bit-flip sector.
#[derive(Debug, Clone)]
pub struct MemoryExperiment {
    code: RotatedSurfaceCode,
    decoder: LookupDecoder,
    /// X-error probability per data qubit per cycle.
    pub p_data: f64,
    /// Syndrome-bit misread probability per cycle.
    pub p_meas: f64,
}

impl MemoryExperiment {
    /// Builds the experiment for `code` with the given per-cycle error
    /// rates.
    ///
    /// # Panics
    ///
    /// Panics when probabilities are outside `[0, 1]` or the code is too
    /// large for a lookup decoder.
    #[must_use]
    pub fn new(code: RotatedSurfaceCode, p_data: f64, p_meas: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_data),
            "p_data must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&p_meas),
            "p_meas must be a probability"
        );
        let decoder = LookupDecoder::build(&code);
        Self {
            code,
            decoder,
            p_data,
            p_meas,
        }
    }

    /// The code under test.
    #[must_use]
    pub fn code(&self) -> &RotatedSurfaceCode {
        &self.code
    }

    /// Runs one shot of `cycles` rounds and a final noiseless readout.
    ///
    /// Convenience wrapper over [`run_shot_with`](Self::run_shot_with) that
    /// allocates a fresh [`MemoryShotScratch`]; Monte-Carlo loops should
    /// hold one scratch and call `run_shot_with` directly.
    pub fn run_shot(&self, cycles: usize, rng: &mut impl Rng) -> MemoryOutcome {
        let mut scratch = MemoryShotScratch::new();
        self.run_shot_with(cycles, rng, &mut scratch)
    }

    /// [`run_shot`](Self::run_shot) with caller-owned frame and syndrome
    /// buffers: no per-shot or per-cycle allocations in steady state.
    pub fn run_shot_with(
        &self,
        cycles: usize,
        rng: &mut impl Rng,
        scratch: &mut MemoryShotScratch,
    ) -> MemoryOutcome {
        let n = self.code.num_data_qubits();
        scratch.frame.clear();
        scratch.frame.resize(n, false);
        let mut active = 0usize;
        for _ in 0..cycles {
            // Physical errors accumulate on the data qubits.
            for slot in scratch.frame.iter_mut() {
                if rng.gen::<f64>() < self.p_data {
                    *slot = !*slot;
                }
            }
            // Noisy syndrome measurement.
            self.code
                .z_syndrome_into(&scratch.frame, &mut scratch.syndrome);
            for bit in scratch.syndrome.iter_mut() {
                if rng.gen::<f64>() < self.p_meas {
                    *bit = !*bit;
                }
            }
            if scratch.syndrome.iter().any(|&s| s) {
                active += 1;
            }
            // Feedback correction from the (possibly wrong) syndrome.
            self.decoder.apply(&scratch.syndrome, &mut scratch.frame);
        }
        // Final round: perfect readout + correction, then logical parity.
        self.code
            .z_syndrome_into(&scratch.frame, &mut scratch.syndrome);
        self.decoder.apply(&scratch.syndrome, &mut scratch.frame);
        MemoryOutcome {
            logical_error: self.code.is_logical_x_flip(&scratch.frame),
            active_cycles: active,
        }
    }

    /// Monte-Carlo logical error probability after `cycles` rounds.
    #[must_use]
    pub fn logical_error_rate(&self, cycles: usize, shots: usize, rng: &mut impl Rng) -> f64 {
        let mut scratch = MemoryShotScratch::new();
        let mut errors = 0usize;
        for _ in 0..shots {
            errors += usize::from(self.run_shot_with(cycles, rng, &mut scratch).logical_error);
        }
        errors as f64 / shots.max(1) as f64
    }
}

/// Reusable per-shot buffers for [`MemoryExperiment`] Monte-Carlo loops.
#[derive(Debug, Clone, Default)]
pub struct MemoryShotScratch {
    frame: Vec<bool>,
    syndrome: Vec<bool>,
}

impl MemoryShotScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_num::rng::rng_for;

    fn experiment(p_data: f64, p_meas: f64) -> MemoryExperiment {
        MemoryExperiment::new(RotatedSurfaceCode::new(3), p_data, p_meas)
    }

    #[test]
    fn noiseless_memory_never_fails() {
        let exp = experiment(0.0, 0.0);
        let mut rng = rng_for("qec/noiseless");
        for _ in 0..16 {
            let out = exp.run_shot(30, &mut rng);
            assert!(!out.logical_error);
            assert_eq!(out.active_cycles, 0);
        }
    }

    #[test]
    fn error_rate_grows_with_cycles() {
        let exp = experiment(0.02, 0.02);
        let mut rng = rng_for("qec/cycles");
        let short = exp.logical_error_rate(2, 800, &mut rng);
        let long = exp.logical_error_rate(25, 800, &mut rng);
        assert!(long > short, "long {long} vs short {short}");
    }

    #[test]
    fn error_rate_grows_with_physical_error() {
        let mut rng = rng_for("qec/physical");
        let low = experiment(0.005, 0.005).logical_error_rate(10, 800, &mut rng);
        let high = experiment(0.05, 0.05).logical_error_rate(10, 800, &mut rng);
        assert!(high > low, "high {high} vs low {low}");
    }

    #[test]
    fn code_suppresses_single_cycle_errors() {
        // One cycle at modest physical error: logical error must be well
        // below the physical rate (that is the entire point of the code).
        let exp = experiment(0.02, 0.0);
        let mut rng = rng_for("qec/suppression");
        let logical = exp.logical_error_rate(1, 3000, &mut rng);
        assert!(logical < 0.02, "logical {logical} not suppressed");
    }

    #[test]
    fn measurement_errors_alone_cause_some_failures() {
        // Wrong syndromes cause wrong corrections; with p_meas only, the
        // next cycle usually undoes them, but a small logical rate remains.
        let exp = experiment(0.0, 0.1);
        let mut rng = rng_for("qec/meas");
        let rate = exp.logical_error_rate(20, 500, &mut rng);
        assert!(rate < 0.5);
    }

    #[test]
    fn saturates_at_one_half() {
        // Deep in the failure regime the logical qubit is fully mixed.
        let exp = experiment(0.4, 0.3);
        let mut rng = rng_for("qec/saturate");
        let rate = exp.logical_error_rate(30, 600, &mut rng);
        assert!(rate > 0.3 && rate < 0.7, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let _ = experiment(1.5, 0.0);
    }
}
