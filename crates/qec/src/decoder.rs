//! The lookup-table decoder (the paper's real-time-decoder stand-in).
//!
//! For the bit-flip sector of d = 3 the Z-syndrome space has 16 patterns;
//! the table maps each pattern to a minimum-weight X correction, found by
//! brute-force search over error patterns of increasing weight — the same
//! table the paper pre-generates with PyMatching.

use crate::layout::RotatedSurfaceCode;

/// Minimum-weight lookup decoder for the Z (bit-flip) syndrome of a small
/// code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupDecoder {
    num_z: usize,
    num_qubits: usize,
    corrections: Vec<Vec<usize>>, // syndrome index → data qubits to flip
}

impl LookupDecoder {
    /// Builds the table for `code` by brute force.
    ///
    /// # Panics
    ///
    /// Panics when the code's Z-syndrome space exceeds 2¹⁶ entries (the
    /// table is meant for d ≤ 5; larger codes need a matching decoder).
    #[must_use]
    pub fn build(code: &RotatedSurfaceCode) -> Self {
        let num_z = code.z_stabilizers().count();
        assert!(
            num_z <= 16,
            "lookup table too large for distance {}",
            code.distance()
        );
        let num_qubits = code.num_data_qubits();
        let num_patterns = 1usize << num_z;
        let mut corrections: Vec<Option<Vec<usize>>> = vec![None; num_patterns];
        corrections[0] = Some(Vec::new());
        let mut found = 1usize;
        // Breadth-first over error weight.
        let mut frontier: Vec<Vec<usize>> = vec![Vec::new()];
        while found < num_patterns {
            let mut next = Vec::new();
            for base in &frontier {
                let start = base.last().map_or(0, |&q| q + 1);
                for q in start..num_qubits {
                    let mut error_set = base.clone();
                    error_set.push(q);
                    let mut error = vec![false; num_qubits];
                    for &e in &error_set {
                        error[e] = true;
                    }
                    let syndrome = code.z_syndrome(&error);
                    let idx = Self::index_of(&syndrome);
                    if corrections[idx].is_none() {
                        corrections[idx] = Some(error_set.clone());
                        found += 1;
                    }
                    next.push(error_set);
                }
            }
            assert!(!next.is_empty(), "syndrome space not fully reachable");
            frontier = next;
        }
        Self {
            num_z,
            num_qubits,
            corrections: corrections.into_iter().map(Option::unwrap).collect(),
        }
    }

    /// Packs a syndrome bit-vector into a table index (bit `i` = stabilizer
    /// `i`).
    #[must_use]
    pub fn index_of(syndrome: &[bool]) -> usize {
        syndrome
            .iter()
            .enumerate()
            .fold(0usize, |acc, (i, &s)| acc | (usize::from(s) << i))
    }

    /// Number of syndrome bits the table expects.
    #[must_use]
    pub fn num_syndrome_bits(&self) -> usize {
        self.num_z
    }

    /// The correction (data qubits to flip) for a syndrome.
    ///
    /// # Panics
    ///
    /// Panics when the syndrome length does not match the code.
    #[must_use]
    pub fn correct(&self, syndrome: &[bool]) -> &[usize] {
        assert_eq!(syndrome.len(), self.num_z, "syndrome length");
        &self.corrections[Self::index_of(syndrome)]
    }

    /// Applies the correction for `syndrome` to an error frame in place.
    pub fn apply(&self, syndrome: &[bool], frame: &mut [bool]) {
        for &q in self.correct(syndrome) {
            frame[q] = !frame[q];
        }
    }

    /// Largest correction weight in the table (d = 3: 2).
    #[must_use]
    pub fn max_correction_weight(&self) -> usize {
        self.corrections.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_num::rng::rng_for;
    use rand::Rng;

    fn d3() -> (RotatedSurfaceCode, LookupDecoder) {
        let code = RotatedSurfaceCode::new(3);
        let dec = LookupDecoder::build(&code);
        (code, dec)
    }

    #[test]
    fn table_is_complete() {
        let (_, dec) = d3();
        assert_eq!(dec.num_syndrome_bits(), 4);
        // Every pattern has a correction of weight ≤ 2 for d = 3.
        assert!(dec.max_correction_weight() <= 2);
    }

    #[test]
    fn trivial_syndrome_gets_no_correction() {
        let (_, dec) = d3();
        assert!(dec.correct(&[false; 4]).is_empty());
    }

    #[test]
    fn corrections_clear_their_syndromes() {
        let (code, dec) = d3();
        for pattern in 0..16usize {
            let syndrome: Vec<bool> = (0..4).map(|b| pattern & (1 << b) != 0).collect();
            let mut frame = vec![false; 9];
            dec.apply(&syndrome, &mut frame);
            assert_eq!(
                LookupDecoder::index_of(&code.z_syndrome(&frame)),
                pattern,
                "correction for {pattern:#06b} has a different syndrome"
            );
        }
    }

    #[test]
    fn single_errors_are_corrected_exactly() {
        let (code, dec) = d3();
        for q in 0..9 {
            let mut frame = vec![false; 9];
            frame[q] = true;
            let syndrome = code.z_syndrome(&frame);
            dec.apply(&syndrome, &mut frame);
            // Residual must be syndrome-free and non-logical.
            assert!(code.z_syndrome(&frame).iter().all(|&s| !s));
            assert!(!code.is_logical_x_flip(&frame), "qubit {q} left a logical");
        }
    }

    #[test]
    fn random_double_errors_never_leave_syndrome() {
        let (code, dec) = d3();
        let mut rng = rng_for("qec/double");
        for _ in 0..64 {
            let mut frame = vec![false; 9];
            frame[rng.gen_range(0..9)] = true;
            frame[rng.gen_range(0..9)] ^= true;
            let syndrome = code.z_syndrome(&frame);
            dec.apply(&syndrome, &mut frame);
            assert!(code.z_syndrome(&frame).iter().all(|&s| !s));
        }
    }

    #[test]
    fn d5_table_builds() {
        let code = RotatedSurfaceCode::new(5);
        let dec = LookupDecoder::build(&code);
        assert_eq!(dec.num_syndrome_bits(), 12);
        assert!(dec.max_correction_weight() >= 2);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn d7_is_rejected() {
        let code = RotatedSurfaceCode::new(7);
        let _ = LookupDecoder::build(&code);
    }
}
