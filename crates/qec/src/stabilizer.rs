//! A CHP-style stabilizer tableau simulator (Aaronson–Gottesman).
//!
//! Surface-code circuits are pure Clifford + measurement, so they do not
//! need the exponential state vector: a tableau of 2n Pauli generators
//! simulates them in `O(n²)` per gate and `O(n²)` per measurement. This is
//! the substrate that lets the QEC cycle circuits of
//! [`artery_workloads::surface17_z_cycle`] — and their larger-distance
//! descendants — run at scales where `artery-sim`'s state vector cannot.
//!
//! The implementation follows the canonical construction: rows `0..n` hold
//! destabilizer generators, rows `n..2n` stabilizers, plus one scratch row
//! for deterministic-measurement phase accumulation.

use artery_circuit::Qubit;
use rand::Rng;

/// A stabilizer state over `n` qubits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tableau {
    n: usize,
    /// `x[row][qubit]`: X component of the row's Pauli.
    x: Vec<Vec<bool>>,
    /// `z[row][qubit]`: Z component.
    z: Vec<Vec<bool>>,
    /// Sign bit per row (`true` = −1).
    r: Vec<bool>,
}

impl Tableau {
    /// The state `|0…0⟩`: stabilizers `Z_i`, destabilizers `X_i`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    #[must_use]
    pub fn zero(n: usize) -> Self {
        assert!(n > 0, "tableau needs at least one qubit");
        let rows = 2 * n + 1;
        let mut t = Self {
            n,
            x: vec![vec![false; n]; rows],
            z: vec![vec![false; n]; rows],
            r: vec![false; rows],
        };
        for i in 0..n {
            t.x[i][i] = true; // destabilizer X_i
            t.z[n + i][i] = true; // stabilizer Z_i
        }
        t
    }

    /// Number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    fn check(&self, q: Qubit) {
        assert!(q.0 < self.n, "qubit {q} out of range");
    }

    /// Hadamard on `q`.
    pub fn h(&mut self, q: Qubit) {
        self.check(q);
        let a = q.0;
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][a] && self.z[i][a];
            // x and z are distinct fields, so the borrows are disjoint.
            let (xi, zi) = (&mut self.x[i], &mut self.z[i]);
            std::mem::swap(&mut xi[a], &mut zi[a]);
        }
    }

    /// Phase gate S on `q`.
    pub fn s(&mut self, q: Qubit) {
        self.check(q);
        let a = q.0;
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][a] && self.z[i][a];
            self.z[i][a] ^= self.x[i][a];
        }
    }

    /// Pauli X on `q` (flips the sign of rows anticommuting with X, i.e.
    /// rows with a Z component on `q`).
    pub fn x_gate(&mut self, q: Qubit) {
        self.check(q);
        for i in 0..2 * self.n {
            self.r[i] ^= self.z[i][q.0];
        }
    }

    /// Pauli Z on `q`.
    pub fn z_gate(&mut self, q: Qubit) {
        self.check(q);
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][q.0];
        }
    }

    /// CNOT with control `c` and target `t`.
    ///
    /// # Panics
    ///
    /// Panics when `c == t` or either is out of range.
    pub fn cnot(&mut self, c: Qubit, t: Qubit) {
        self.check(c);
        self.check(t);
        assert_ne!(c, t, "cnot needs distinct qubits");
        let (a, b) = (c.0, t.0);
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][a] && self.z[i][b] && (self.x[i][b] == self.z[i][a]);
            self.x[i][b] ^= self.x[i][a];
            self.z[i][a] ^= self.z[i][b];
        }
    }

    /// CZ between `a` and `b` (H on target around a CNOT).
    pub fn cz(&mut self, a: Qubit, b: Qubit) {
        self.h(b);
        self.cnot(a, b);
        self.h(b);
    }

    /// Phase contribution (mod 4) of multiplying Pauli `(x1,z1)` into
    /// `(x2,z2)` on one qubit.
    fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i32 {
        match (x1, z1) {
            (false, false) => 0,
            (true, true) => i32::from(z2) - i32::from(x2),
            (true, false) => i32::from(z2) * (2 * i32::from(x2) - 1),
            (false, true) => i32::from(x2) * (1 - 2 * i32::from(z2)),
        }
    }

    /// Row `h` ← row `h` · row `i` (Pauli product with phase tracking).
    fn rowsum(&mut self, h: usize, i: usize) {
        let mut exp: i32 = 2 * i32::from(self.r[h]) + 2 * i32::from(self.r[i]);
        for j in 0..self.n {
            exp += Self::g(self.x[i][j], self.z[i][j], self.x[h][j], self.z[h][j]);
        }
        self.r[h] = exp.rem_euclid(4) == 2;
        for j in 0..self.n {
            self.x[h][j] ^= self.x[i][j];
            self.z[h][j] ^= self.z[i][j];
        }
    }

    /// Whether a Z measurement of `q` has a deterministic outcome.
    #[must_use]
    pub fn is_deterministic(&self, q: Qubit) -> bool {
        self.check(q);
        (self.n..2 * self.n).all(|p| !self.x[p][q.0])
    }

    /// Measures qubit `q` in the Z basis, collapsing the state.
    pub fn measure(&mut self, q: Qubit, rng: &mut impl Rng) -> bool {
        self.check(q);
        let a = q.0;
        let n = self.n;
        if let Some(p) = (n..2 * n).find(|&p| self.x[p][a]) {
            // Random outcome: update every other row that anticommutes.
            for i in 0..2 * n {
                if i != p && self.x[i][a] {
                    self.rowsum(i, p);
                }
            }
            // Destabilizer p−n becomes the old stabilizer row p.
            self.x[p - n] = self.x[p].clone();
            self.z[p - n] = self.z[p].clone();
            self.r[p - n] = self.r[p];
            // New stabilizer: ±Z_a with a random sign.
            let outcome = rng.gen::<bool>();
            self.x[p] = vec![false; n];
            self.z[p] = vec![false; n];
            self.z[p][a] = true;
            self.r[p] = outcome;
            outcome
        } else {
            // Deterministic: accumulate into the scratch row.
            let scratch = 2 * n;
            self.x[scratch] = vec![false; n];
            self.z[scratch] = vec![false; n];
            self.r[scratch] = false;
            for i in 0..n {
                if self.x[i][a] {
                    self.rowsum(scratch, i + n);
                }
            }
            self.r[scratch]
        }
    }

    /// Resets `q` to `|0⟩` (measure, flip on 1).
    pub fn reset(&mut self, q: Qubit, rng: &mut impl Rng) {
        if self.measure(q, rng) {
            self.x_gate(q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_num::rng::rng_for;

    #[test]
    fn zero_state_measures_zero_deterministically() {
        let mut t = Tableau::zero(4);
        let mut rng = rng_for("tab/zero");
        for q in 0..4 {
            assert!(t.is_deterministic(Qubit(q)));
            assert!(!t.measure(Qubit(q), &mut rng));
        }
    }

    #[test]
    fn x_flips_the_deterministic_outcome() {
        let mut t = Tableau::zero(2);
        let mut rng = rng_for("tab/x");
        t.x_gate(Qubit(1));
        assert!(!t.measure(Qubit(0), &mut rng));
        assert!(t.measure(Qubit(1), &mut rng));
    }

    #[test]
    fn hadamard_makes_outcome_random_then_sticky() {
        let mut rng = rng_for("tab/h");
        let mut zeros = 0;
        const N: usize = 200;
        for _ in 0..N {
            let mut t = Tableau::zero(1);
            t.h(Qubit(0));
            assert!(!t.is_deterministic(Qubit(0)));
            let first = t.measure(Qubit(0), &mut rng);
            // After collapse the outcome repeats.
            assert!(t.is_deterministic(Qubit(0)));
            assert_eq!(t.measure(Qubit(0), &mut rng), first);
            zeros += usize::from(!first);
        }
        assert!((zeros as f64 / N as f64 - 0.5).abs() < 0.12);
    }

    #[test]
    fn bell_pair_is_perfectly_correlated() {
        let mut rng = rng_for("tab/bell");
        for _ in 0..64 {
            let mut t = Tableau::zero(2);
            t.h(Qubit(0));
            t.cnot(Qubit(0), Qubit(1));
            let a = t.measure(Qubit(0), &mut rng);
            let b = t.measure(Qubit(1), &mut rng);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn ghz_on_many_qubits() {
        let mut rng = rng_for("tab/ghz");
        const N: usize = 40; // far beyond the state vector's reach per-shot cost
        for _ in 0..16 {
            let mut t = Tableau::zero(N);
            t.h(Qubit(0));
            for q in 1..N {
                t.cnot(Qubit(0), Qubit(q));
            }
            let first = t.measure(Qubit(0), &mut rng);
            for q in 1..N {
                assert_eq!(t.measure(Qubit(q), &mut rng), first);
            }
        }
    }

    #[test]
    fn cz_creates_the_same_correlations_as_cnot_h() {
        // CZ sandwiched in Hadamards equals CNOT: verify measurement
        // statistics agree with the direct construction.
        let mut rng = rng_for("tab/cz");
        for _ in 0..32 {
            let mut t = Tableau::zero(2);
            t.h(Qubit(0));
            t.h(Qubit(1));
            t.cz(Qubit(0), Qubit(1));
            t.h(Qubit(1));
            let a = t.measure(Qubit(0), &mut rng);
            let b = t.measure(Qubit(1), &mut rng);
            assert_eq!(a, b, "CZ-built Bell pair must correlate");
        }
    }

    #[test]
    fn s_gate_squares_to_z() {
        let mut rng = rng_for("tab/s");
        // |+⟩ → S² → Z|+⟩ = |−⟩ → H → |1⟩.
        let mut t = Tableau::zero(1);
        t.h(Qubit(0));
        t.s(Qubit(0));
        t.s(Qubit(0));
        t.h(Qubit(0));
        assert!(t.is_deterministic(Qubit(0)));
        assert!(t.measure(Qubit(0), &mut rng));
    }

    #[test]
    fn matches_state_vector_on_random_cliffords() {
        use artery_circuit::Gate;
        use artery_sim::StateVector;
        let mut rng = rng_for("tab/xval");
        for trial in 0..24 {
            let mut t = Tableau::zero(4);
            let mut psi = StateVector::zero(4);
            let mut gen = rng_for(&format!("tab/xval/{trial}"));
            for _ in 0..20 {
                let q = Qubit(gen.gen_range(0..4));
                match gen.gen_range(0..4) {
                    0 => {
                        t.h(q);
                        psi.apply_gate(Gate::H, &[q]);
                    }
                    1 => {
                        t.s(q);
                        psi.apply_gate(Gate::S, &[q]);
                    }
                    2 => {
                        t.x_gate(q);
                        psi.apply_gate(Gate::X, &[q]);
                    }
                    _ => {
                        let mut p = Qubit(gen.gen_range(0..4));
                        while p == q {
                            p = Qubit(gen.gen_range(0..4));
                        }
                        t.cnot(q, p);
                        psi.apply_gate(Gate::CNOT, &[q, p]);
                    }
                }
            }
            // Determinism and deterministic values must agree with the
            // state vector's probabilities.
            for q in 0..4 {
                let p1 = psi.prob_one(Qubit(q));
                if t.is_deterministic(Qubit(q)) {
                    let v = t.measure(Qubit(q), &mut rng);
                    assert!(
                        (p1 - f64::from(u8::from(v))).abs() < 1e-9,
                        "trial {trial} qubit {q}: tableau {v} vs p1 {p1}"
                    );
                    // Collapse the state vector identically to keep later
                    // qubits comparable.
                    psi.collapse(Qubit(q), v);
                } else {
                    assert!(
                        (p1 - 0.5).abs() < 1e-9,
                        "trial {trial} qubit {q}: random per tableau but p1 = {p1}"
                    );
                    let v = t.measure(Qubit(q), &mut rng);
                    psi.collapse(Qubit(q), v);
                }
            }
        }
    }

    #[test]
    fn surface17_syndromes_fire_correctly() {
        // Z-stabilizer extraction on |0…0⟩ is all-zero; a single injected X
        // error flips exactly the adjacent syndromes.
        use crate::layout::RotatedSurfaceCode;
        let code = RotatedSurfaceCode::new(3);
        let mut rng = rng_for("tab/surface");
        let measure_syndromes = |t: &mut Tableau, rng: &mut rand::rngs::StdRng| -> Vec<bool> {
            let mut out = Vec::new();
            for (s, stab) in code.z_stabilizers().enumerate() {
                let ancilla = Qubit(9 + s);
                for &d in &stab.support {
                    t.cnot(Qubit(d), ancilla);
                }
                let bit = t.measure(ancilla, rng);
                t.reset(ancilla, rng);
                out.push(bit);
            }
            out
        };
        let mut t = Tableau::zero(13);
        assert!(measure_syndromes(&mut t, &mut rng).iter().all(|&b| !b));
        // Inject X on the center data qubit.
        t.x_gate(Qubit(4));
        let syndrome = measure_syndromes(&mut t, &mut rng);
        let mut frame = vec![false; 9];
        frame[4] = true;
        assert_eq!(syndrome, code.z_syndrome(&frame));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let mut t = Tableau::zero(2);
        t.h(Qubit(5));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn cnot_same_qubit_panics() {
        let mut t = Tableau::zero(2);
        t.cnot(Qubit(1), Qubit(1));
    }
}
