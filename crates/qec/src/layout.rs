//! Rotated surface-code layout for odd distances.
//!
//! Data qubits sit on a `d×d` grid (row-major indices). Interior faces are
//! weight-4 stabilizers colored in a checkerboard (`(r+c)` even → Z-type);
//! weight-2 boundary stabilizers complete the code on all four sides. For
//! d = 3 this is the familiar surface-17 (9 data + 8 syndrome qubits), the
//! code of the paper's Fig. 11.

use serde::{Deserialize, Serialize};

/// Whether a stabilizer measures X or Z parities.
///
/// Z-type stabilizers detect X (bit-flip) errors and vice versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StabilizerKind {
    /// Product of X on the support (detects Z errors).
    X,
    /// Product of Z on the support (detects X errors).
    Z,
}

/// One stabilizer generator: its kind and data-qubit support.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stabilizer {
    /// X or Z type.
    pub kind: StabilizerKind,
    /// Data qubits (row-major indices) in the support.
    pub support: Vec<usize>,
}

impl Stabilizer {
    /// Parity of the overlap with an error set (true = anticommutes /
    /// syndrome fires).
    #[must_use]
    pub fn syndrome(&self, error: &[bool]) -> bool {
        self.support.iter().filter(|&&q| error[q]).count() % 2 == 1
    }
}

/// A rotated surface code of odd distance `d`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RotatedSurfaceCode {
    distance: usize,
    stabilizers: Vec<Stabilizer>,
}

impl RotatedSurfaceCode {
    /// Builds the code for an odd `distance ≥ 3`.
    ///
    /// # Panics
    ///
    /// Panics when `distance` is even or below 3.
    #[must_use]
    pub fn new(distance: usize) -> Self {
        assert!(
            distance >= 3 && distance % 2 == 1,
            "distance must be an odd number >= 3"
        );
        let d = distance;
        let q = |r: usize, c: usize| r * d + c;
        let mut stabilizers = Vec::new();
        // Interior weight-4 faces.
        for r in 0..d - 1 {
            for c in 0..d - 1 {
                let kind = if (r + c) % 2 == 0 {
                    StabilizerKind::Z
                } else {
                    StabilizerKind::X
                };
                stabilizers.push(Stabilizer {
                    kind,
                    support: vec![q(r, c), q(r, c + 1), q(r + 1, c), q(r + 1, c + 1)],
                });
            }
        }
        // Left/right boundary Z stabilizers (weight 2, vertical pairs).
        for r in 0..d - 1 {
            if r % 2 == 1 {
                stabilizers.push(Stabilizer {
                    kind: StabilizerKind::Z,
                    support: vec![q(r, 0), q(r + 1, 0)],
                });
            }
            if (r + d - 1).is_multiple_of(2) {
                stabilizers.push(Stabilizer {
                    kind: StabilizerKind::Z,
                    support: vec![q(r, d - 1), q(r + 1, d - 1)],
                });
            }
        }
        // Top/bottom boundary X stabilizers (weight 2, horizontal pairs).
        for c in 0..d - 1 {
            if c % 2 == 0 {
                stabilizers.push(Stabilizer {
                    kind: StabilizerKind::X,
                    support: vec![q(0, c), q(0, c + 1)],
                });
            }
            if (c + d - 1) % 2 == 1 {
                stabilizers.push(Stabilizer {
                    kind: StabilizerKind::X,
                    support: vec![q(d - 1, c), q(d - 1, c + 1)],
                });
            }
        }
        Self {
            distance,
            stabilizers,
        }
    }

    /// Code distance.
    #[must_use]
    pub fn distance(&self) -> usize {
        self.distance
    }

    /// Number of data qubits (`d²`).
    #[must_use]
    pub fn num_data_qubits(&self) -> usize {
        self.distance * self.distance
    }

    /// Number of syndrome qubits (`d² − 1`).
    #[must_use]
    pub fn num_syndromes(&self) -> usize {
        self.stabilizers.len()
    }

    /// All stabilizer generators.
    #[must_use]
    pub fn stabilizers(&self) -> &[Stabilizer] {
        &self.stabilizers
    }

    /// The Z-type stabilizers (bit-flip detectors), in construction order.
    pub fn z_stabilizers(&self) -> impl Iterator<Item = &Stabilizer> {
        self.stabilizers
            .iter()
            .filter(|s| s.kind == StabilizerKind::Z)
    }

    /// Support of the logical Z operator (the top row of data qubits).
    #[must_use]
    pub fn logical_z(&self) -> Vec<usize> {
        (0..self.distance).collect()
    }

    /// Support of the logical X operator (the left column of data qubits).
    #[must_use]
    pub fn logical_x(&self) -> Vec<usize> {
        (0..self.distance).map(|r| r * self.distance).collect()
    }

    /// Syndrome of an X-error pattern under the Z stabilizers, in
    /// `z_stabilizers` order.
    ///
    /// # Panics
    ///
    /// Panics when `error` is not `d²` long.
    #[must_use]
    pub fn z_syndrome(&self, error: &[bool]) -> Vec<bool> {
        let mut out = Vec::with_capacity(self.z_stabilizers().count());
        self.z_syndrome_into(error, &mut out);
        out
    }

    /// Allocation-free [`z_syndrome`](Self::z_syndrome): clears and refills
    /// `out` in `z_stabilizers` order, reusing its capacity.
    ///
    /// # Panics
    ///
    /// Panics when `error` is not `d²` long.
    pub fn z_syndrome_into(&self, error: &[bool], out: &mut Vec<bool>) {
        assert_eq!(error.len(), self.num_data_qubits(), "error length");
        out.clear();
        out.extend(self.z_stabilizers().map(|s| s.syndrome(error)));
    }

    /// Whether an X-error pattern flips the logical Z measurement (odd
    /// overlap with the logical Z support). Only meaningful for patterns
    /// with a clear syndrome.
    #[must_use]
    pub fn is_logical_x_flip(&self, error: &[bool]) -> bool {
        // Logical Z is the top row (indices 0..d); counting directly keeps
        // this hot-path check allocation-free.
        error[..self.distance].iter().filter(|&&q| q).count() % 2 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overlap(a: &[usize], b: &[usize]) -> usize {
        a.iter().filter(|x| b.contains(x)).count()
    }

    #[test]
    fn d3_is_surface_17() {
        let code = RotatedSurfaceCode::new(3);
        assert_eq!(code.num_data_qubits(), 9);
        assert_eq!(code.num_syndromes(), 8);
        assert_eq!(code.z_stabilizers().count(), 4);
    }

    #[test]
    fn syndrome_counts_scale_as_d_squared_minus_1() {
        for d in [3usize, 5, 7, 9, 11, 13] {
            let code = RotatedSurfaceCode::new(d);
            assert_eq!(code.num_syndromes(), d * d - 1, "d = {d}");
            // Z and X sectors are balanced.
            assert_eq!(code.z_stabilizers().count(), (d * d - 1) / 2);
        }
    }

    #[test]
    fn stabilizers_commute_pairwise() {
        for d in [3usize, 5, 7] {
            let code = RotatedSurfaceCode::new(d);
            for a in code.stabilizers() {
                for b in code.stabilizers() {
                    if a.kind != b.kind {
                        assert_eq!(
                            overlap(&a.support, &b.support) % 2,
                            0,
                            "anticommuting stabilizers at d = {d}: {a:?} vs {b:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn logicals_commute_with_stabilizers() {
        for d in [3usize, 5] {
            let code = RotatedSurfaceCode::new(d);
            let lx = code.logical_x();
            let lz = code.logical_z();
            for s in code.stabilizers() {
                match s.kind {
                    // Z stabilizers must overlap logical X evenly.
                    StabilizerKind::Z => {
                        assert_eq!(overlap(&s.support, &lx) % 2, 0, "d = {d}")
                    }
                    // X stabilizers must overlap logical Z evenly.
                    StabilizerKind::X => {
                        assert_eq!(overlap(&s.support, &lz) % 2, 0, "d = {d}")
                    }
                }
            }
            // The logical pair anticommutes.
            assert_eq!(overlap(&lx, &lz) % 2, 1);
        }
    }

    #[test]
    fn single_error_fires_adjacent_stabilizers() {
        let code = RotatedSurfaceCode::new(3);
        let mut error = vec![false; 9];
        error[4] = true; // center qubit
        let syndrome = code.z_syndrome(&error);
        // The center qubit belongs to both interior Z faces.
        assert_eq!(syndrome.iter().filter(|&&s| s).count(), 2);
    }

    #[test]
    fn logical_operator_has_clean_syndrome() {
        for d in [3usize, 5] {
            let code = RotatedSurfaceCode::new(d);
            let mut error = vec![false; code.num_data_qubits()];
            for q in code.logical_x() {
                error[q] = true;
            }
            assert!(code.z_syndrome(&error).iter().all(|&s| !s), "d = {d}");
            assert!(code.is_logical_x_flip(&error));
        }
    }

    #[test]
    fn stabilizer_element_is_not_logical() {
        let code = RotatedSurfaceCode::new(3);
        // Applying X on a Z-stabilizer... use an X-stabilizer support as an
        // X-error: syndrome must be clean and logical parity even.
        let xstab = code
            .stabilizers()
            .iter()
            .find(|s| s.kind == StabilizerKind::X && s.support.len() == 4)
            .expect("interior X face");
        let mut error = vec![false; 9];
        for &q in &xstab.support {
            error[q] = true;
        }
        assert!(code.z_syndrome(&error).iter().all(|&s| !s));
        assert!(!code.is_logical_x_flip(&error));
    }

    #[test]
    #[should_panic(expected = "odd number")]
    fn even_distance_panics() {
        let _ = RotatedSurfaceCode::new(4);
    }
}
