//! A greedy space-time matching decoder for arbitrary odd distances.
//!
//! The lookup table of [`LookupDecoder`](crate::LookupDecoder) stops scaling
//! past d = 5 (the paper hit the same wall and used PyMatching offline).
//! This module implements the standard matching formulation for the
//! phenomenological bit-flip model: detection events are syndrome *changes*
//! between consecutive rounds; space-time pairs of events are matched
//! greedily by Manhattan-style cost (graph hops in space + rounds in time),
//! with the lattice boundary available as a partner. Greedy matching is a
//! well-known approximation of minimum-weight perfect matching — a few
//! tenths of threshold worse, identical asymptotics — and keeps the
//! implementation dependency-free.

use rand::Rng;

use crate::layout::{RotatedSurfaceCode, StabilizerKind};

/// A detection event: stabilizer `stab` changed value at round `round`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectionEvent {
    /// Extraction round (0-based; the final perfect round is `cycles`).
    pub round: usize,
    /// Index into the code's Z-stabilizer list.
    pub stab: usize,
}

/// Greedy space-time matching decoder over the Z (bit-flip) sector.
#[derive(Debug, Clone)]
pub struct MatchingDecoder {
    num_stabs: usize,
    /// All-pairs spatial distance between Z-stabilizers (graph hops).
    pub(crate) dist: Vec<Vec<usize>>,
    /// Data-qubit path realizing `dist[a][b]`.
    pub(crate) path: Vec<Vec<Vec<usize>>>,
    /// Distance and data-qubit path from each stabilizer to the boundary.
    pub(crate) boundary: Vec<(usize, Vec<usize>)>,
}

impl MatchingDecoder {
    /// Builds the matching graph of `code`'s Z-stabilizers.
    #[must_use]
    pub fn build(code: &RotatedSurfaceCode) -> Self {
        let z_stabs: Vec<&[usize]> = code
            .stabilizers()
            .iter()
            .filter(|s| s.kind == StabilizerKind::Z)
            .map(|s| s.support.as_slice())
            .collect();
        let num_stabs = z_stabs.len();
        let num_qubits = code.num_data_qubits();
        // For each data qubit, which Z-stabilizers contain it (1 or 2).
        let mut stabs_of_qubit: Vec<Vec<usize>> = vec![Vec::new(); num_qubits];
        for (s, support) in z_stabs.iter().enumerate() {
            for &q in *support {
                stabs_of_qubit[q].push(s);
            }
        }
        // Adjacency: edges between stabs sharing a qubit; boundary edges for
        // qubits in exactly one stab.
        let mut neighbors: Vec<Vec<(usize, usize)>> = vec![Vec::new(); num_stabs]; // (stab, via qubit)
        let mut boundary_edge: Vec<Option<usize>> = vec![None; num_stabs]; // via qubit
        for (q, stabs) in stabs_of_qubit.iter().enumerate() {
            match stabs.as_slice() {
                [a, b] => {
                    neighbors[*a].push((*b, q));
                    neighbors[*b].push((*a, q));
                }
                [a] if boundary_edge[*a].is_none() => {
                    boundary_edge[*a] = Some(q);
                }
                _ => {} // a data qubit in zero Z-stabs cannot host detectable X errors
            }
        }
        // BFS from every stabilizer for all-pairs distances and paths.
        let mut dist = vec![vec![usize::MAX; num_stabs]; num_stabs];
        let mut path: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); num_stabs]; num_stabs];
        for start in 0..num_stabs {
            let mut queue = std::collections::VecDeque::new();
            dist[start][start] = 0;
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                for &(v, q) in &neighbors[u] {
                    if dist[start][v] == usize::MAX {
                        dist[start][v] = dist[start][u] + 1;
                        let mut p = path[start][u].clone();
                        p.push(q);
                        path[start][v] = p;
                        queue.push_back(v);
                    }
                }
            }
        }
        // Boundary distance: nearest stabilizer with a boundary edge, plus
        // that final edge.
        let mut boundary = vec![(usize::MAX, Vec::new()); num_stabs];
        for s in 0..num_stabs {
            for (t, via) in boundary_edge.iter().enumerate() {
                if let Some(q) = via {
                    if dist[s][t] != usize::MAX {
                        let d = dist[s][t] + 1;
                        if d < boundary[s].0 {
                            let mut p = path[s][t].clone();
                            p.push(*q);
                            boundary[s] = (d, p);
                        }
                    }
                }
            }
        }
        Self {
            num_stabs,
            dist,
            path,
            boundary,
        }
    }

    /// Number of Z-stabilizers in the matching graph.
    #[must_use]
    pub fn num_stabilizers(&self) -> usize {
        self.num_stabs
    }

    /// Extracts detection events from a sequence of observed syndromes
    /// (`rounds[t][s]`), including the implicit final perfect round.
    #[must_use]
    pub fn detection_events(rounds: &[Vec<bool>]) -> Vec<DetectionEvent> {
        let mut events = Vec::new();
        let mut prev: Option<&Vec<bool>> = None;
        for (t, syndrome) in rounds.iter().enumerate() {
            for (s, &bit) in syndrome.iter().enumerate() {
                let before = prev.is_some_and(|p| p[s]);
                if bit != before {
                    events.push(DetectionEvent { round: t, stab: s });
                }
            }
            prev = Some(syndrome);
        }
        events
    }

    /// Appends the detection events of round `round` — the positions where
    /// `syndrome` differs from `prev` — to `events`, without any round
    /// buffers. Streaming equivalent of [`Self::detection_events`] when
    /// called once per round with the previous round's syndrome (all-false
    /// for round 0).
    pub fn append_detection_events(
        prev: &[bool],
        syndrome: &[bool],
        round: usize,
        events: &mut Vec<DetectionEvent>,
    ) {
        debug_assert_eq!(prev.len(), syndrome.len());
        for (stab, (&before, &bit)) in prev.iter().zip(syndrome).enumerate() {
            if bit != before {
                events.push(DetectionEvent { round, stab });
            }
        }
    }

    pub(crate) fn cost(&self, a: DetectionEvent, b: DetectionEvent) -> usize {
        self.dist[a.stab][b.stab].saturating_add(a.round.abs_diff(b.round))
    }

    /// Cost of matching the event on stabilizer `stab` to the boundary.
    pub(crate) fn boundary_cost(&self, stab: usize) -> usize {
        self.boundary[stab].0
    }

    /// Largest boundary-match cost over all stabilizers. Bounds how far
    /// apart (in space-time cost) two events can be and still prefer pairing
    /// with each other over two boundary matches — the clustering radius.
    ///
    /// # Panics
    ///
    /// Panics when some stabilizer cannot reach the boundary (never happens
    /// for a [`RotatedSurfaceCode`]).
    #[must_use]
    pub fn max_boundary_cost(&self) -> usize {
        let max = self.boundary.iter().map(|(d, _)| *d).max().unwrap_or(0);
        assert!(
            max < usize::MAX,
            "matching graph has an isolated stabilizer"
        );
        max
    }

    /// Whether the exact DP could ever pair `a` with `b` instead of sending
    /// both to the boundary. The DP stores a pair only when *strictly*
    /// cheaper than boundary matches, so `cost < bnd(a) + bnd(b)` (strict)
    /// is sound: events failing it decode independently.
    pub(crate) fn events_linked(&self, a: DetectionEvent, b: DetectionEvent) -> bool {
        let bound = self.boundary_cost(a.stab) as u64 + self.boundary_cost(b.stab) as u64;
        (self.cost(a, b) as u64) < bound
    }

    /// Largest event set decoded exactly; the DP is `O(2^n · n)`.
    pub const EXACT_LIMIT: usize = 16;

    /// Matches detection events (to each other or the boundary) and returns
    /// the data qubits whose X correction the matching implies.
    ///
    /// Chunks of up to [`Self::EXACT_LIMIT`] events (consecutive in time —
    /// error clusters are temporally local) are matched *exactly* by a
    /// bitmask dynamic program: every event either pairs with another event
    /// at space-time cost `dist + Δt` or terminates at the boundary at its
    /// boundary cost, and the DP minimizes the total. Greedy heuristics are
    /// not good enough here — a pair-preferring greedy routinely stitches
    /// two independent boundary-adjacent errors into one cross-lattice
    /// chain, which is exactly a logical error.
    ///
    /// This chunked form is retained as the oracle for
    /// [`decode_into`](Self::decode_into): on ≤ [`Self::EXACT_LIMIT`] events
    /// it *is* the full exact DP and the cluster-then-match path must
    /// reproduce it bit-for-bit. Beyond one chunk it silently splits error
    /// clusters that straddle a chunk boundary (see the chunk-boundary
    /// regression test); production decoding goes through `decode_into`.
    #[must_use]
    pub fn decode(&self, events: &[DetectionEvent]) -> Vec<usize> {
        let mut corrections = Vec::new();
        for chunk in events.chunks(Self::EXACT_LIMIT) {
            self.decode_exact(chunk, &mut corrections);
        }
        corrections
    }

    fn decode_exact(&self, ev: &[DetectionEvent], out: &mut Vec<usize>) {
        let n = ev.len();
        if n == 0 {
            return;
        }
        let full: usize = (1 << n) - 1;
        let mut dp = vec![u32::MAX; 1 << n];
        // choice[s] = (i, j); j == i encodes a boundary match for i.
        let mut choice = vec![(0usize, 0usize); 1 << n];
        dp[0] = 0;
        for s in 1..=full {
            let i = s.trailing_zeros() as usize;
            let without_i = s & !(1 << i);
            let mut best = dp[without_i].saturating_add(self.boundary[ev[i].stab].0 as u32);
            let mut ch = (i, i);
            for j in (i + 1)..n {
                if s & (1 << j) != 0 {
                    let prev = dp[without_i & !(1 << j)];
                    let c = prev.saturating_add(self.cost(ev[i], ev[j]) as u32);
                    if c < best {
                        best = c;
                        ch = (i, j);
                    }
                }
            }
            dp[s] = best;
            choice[s] = ch;
        }
        let mut s = full;
        while s != 0 {
            let (i, j) = choice[s];
            if i == j {
                out.extend_from_slice(&self.boundary[ev[i].stab].1);
                s &= !(1 << i);
            } else {
                // Space-like component: flip the path between the stabs; the
                // time-like component needs no data correction.
                out.extend_from_slice(&self.path[ev[i].stab][ev[j].stab]);
                s &= !(1 << i) & !(1 << j);
            }
        }
    }
}

/// A repeated-cycle memory experiment decoded with space-time matching —
/// works for any odd distance.
#[derive(Debug, Clone)]
pub struct MatchingMemoryExperiment {
    pub(crate) code: RotatedSurfaceCode,
    pub(crate) decoder: MatchingDecoder,
    /// X-error probability per data qubit per cycle.
    pub p_data: f64,
    /// Syndrome-bit misread probability per cycle.
    pub p_meas: f64,
}

impl MatchingMemoryExperiment {
    /// Builds the experiment.
    ///
    /// # Panics
    ///
    /// Panics when probabilities are outside `[0, 1]`.
    #[must_use]
    pub fn new(code: RotatedSurfaceCode, p_data: f64, p_meas: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_data),
            "p_data must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&p_meas),
            "p_meas must be a probability"
        );
        let decoder = MatchingDecoder::build(&code);
        Self {
            code,
            decoder,
            p_data,
            p_meas,
        }
    }

    /// The code under test.
    #[must_use]
    pub fn code(&self) -> &RotatedSurfaceCode {
        &self.code
    }

    /// The matching decoder built for the code.
    #[must_use]
    pub fn decoder(&self) -> &MatchingDecoder {
        &self.decoder
    }

    /// Runs one shot: `cycles` noisy rounds, one final perfect round, then
    /// offline matching. Returns whether a logical X flip survived.
    ///
    /// Convenience wrapper over
    /// [`run_shot_with`](Self::run_shot_with) that allocates a fresh
    /// [`MatchingShotScratch`](crate::MatchingShotScratch); Monte-Carlo
    /// loops should hold one scratch and call `run_shot_with` directly.
    pub fn run_shot(&self, cycles: usize, rng: &mut impl Rng) -> bool {
        let mut scratch = crate::cluster::MatchingShotScratch::new();
        self.run_shot_with(cycles, rng, &mut scratch)
    }

    /// Monte-Carlo logical error probability.
    #[must_use]
    pub fn logical_error_rate(&self, cycles: usize, shots: usize, rng: &mut impl Rng) -> f64 {
        let mut scratch = crate::cluster::MatchingShotScratch::new();
        let mut errors = 0usize;
        for _ in 0..shots {
            errors += usize::from(self.run_shot_with(cycles, rng, &mut scratch));
        }
        errors as f64 / shots.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_num::rng::rng_for;

    #[test]
    fn graph_dimensions_scale() {
        for d in [3usize, 5, 7] {
            let dec = MatchingDecoder::build(&RotatedSurfaceCode::new(d));
            assert_eq!(dec.num_stabilizers(), (d * d - 1) / 2);
        }
    }

    #[test]
    fn every_stabilizer_reaches_the_boundary() {
        let dec = MatchingDecoder::build(&RotatedSurfaceCode::new(5));
        for s in 0..dec.num_stabilizers() {
            assert!(dec.boundary[s].0 < usize::MAX, "stab {s} isolated");
            assert_eq!(dec.boundary[s].0, dec.boundary[s].1.len());
        }
    }

    #[test]
    fn detection_events_are_syndrome_changes() {
        let rounds = vec![
            vec![false, true, false],
            vec![false, true, true],
            vec![false, false, true],
        ];
        let events = MatchingDecoder::detection_events(&rounds);
        assert_eq!(
            events,
            vec![
                DetectionEvent { round: 0, stab: 1 },
                DetectionEvent { round: 1, stab: 2 },
                DetectionEvent { round: 2, stab: 1 },
            ]
        );
    }

    #[test]
    fn single_data_error_is_corrected() {
        let code = RotatedSurfaceCode::new(5);
        let exp = MatchingMemoryExperiment::new(code.clone(), 0.0, 0.0);
        // Inject one error by hand: run the machinery on a crafted round
        // sequence.
        for q in 0..code.num_data_qubits() {
            let mut frame = vec![false; code.num_data_qubits()];
            frame[q] = true;
            let rounds = vec![code.z_syndrome(&frame), code.z_syndrome(&frame)];
            let events = MatchingDecoder::detection_events(&rounds);
            for c in exp.decoder.decode(&events) {
                frame[c] = !frame[c];
            }
            assert!(
                code.z_syndrome(&frame).iter().all(|&s| !s),
                "qubit {q}: syndrome not cleared"
            );
            assert!(!code.is_logical_x_flip(&frame), "qubit {q}: logical left");
        }
    }

    #[test]
    fn pure_measurement_errors_cause_no_correction_storm() {
        // A single flipped measurement produces two time-like events on the
        // same stabilizer; matching them needs no data correction.
        let code = RotatedSurfaceCode::new(3);
        let exp = MatchingMemoryExperiment::new(code.clone(), 0.0, 0.0);
        let clean = vec![false; 4];
        let mut flipped = clean.clone();
        flipped[2] = true;
        let rounds = vec![clean.clone(), flipped, clean.clone(), clean];
        let events = MatchingDecoder::detection_events(&rounds);
        assert_eq!(events.len(), 2);
        assert!(exp.decoder.decode(&events).is_empty());
    }

    #[test]
    fn noiseless_memory_never_fails() {
        let exp = MatchingMemoryExperiment::new(RotatedSurfaceCode::new(5), 0.0, 0.0);
        let mut rng = rng_for("match/clean");
        assert_eq!(exp.logical_error_rate(20, 50, &mut rng), 0.0);
    }

    #[test]
    fn larger_distance_suppresses_errors_below_threshold() {
        // Greedy matching has a lower threshold than true MWPM; stay well
        // below it so the suppression is unambiguous.
        let mut rng = rng_for("match/threshold");
        let p = 0.004;
        let d3 = MatchingMemoryExperiment::new(RotatedSurfaceCode::new(3), p, p)
            .logical_error_rate(8, 6000, &mut rng);
        let d5 = MatchingMemoryExperiment::new(RotatedSurfaceCode::new(5), p, p)
            .logical_error_rate(8, 6000, &mut rng);
        assert!(
            d5 < d3,
            "below threshold d=5 ({d5:.4}) must beat d=3 ({d3:.4})"
        );
    }

    #[test]
    fn error_rate_grows_with_noise() {
        let mut rng = rng_for("match/grow");
        let low = MatchingMemoryExperiment::new(RotatedSurfaceCode::new(3), 0.005, 0.005)
            .logical_error_rate(10, 600, &mut rng);
        let high = MatchingMemoryExperiment::new(RotatedSurfaceCode::new(3), 0.06, 0.06)
            .logical_error_rate(10, 600, &mut rng);
        assert!(high > low);
    }
}
