//! ARTERY's contribution: branch prediction for quantum feedback.
//!
//! The crate ties every substrate together:
//!
//! * [`predictor`] — the reconciled branch predictor of §4: per-site
//!   historical branch statistics, the `<trajectory, P_read_1>` state table
//!   fed by windowed IQ demodulation, and the Bayesian fusion that produces
//!   `P_predict_1` after every demodulation window,
//! * [`ArteryController`] — a drop-in
//!   [`FeedbackHandler`](artery_sim::FeedbackHandler) that pre-executes the
//!   predicted branch per the case analysis of §3, recovers from
//!   mispredictions with inverse gates, and accounts latency through the
//!   hardware timing model of §5,
//! * [`ArteryConfig`] — every tunable with the paper's defaults (30 ns
//!   windows, k = 6 branch registers, θ = 0.91).
//!
//! # Examples
//!
//! Run active reset with ARTERY and compare with QubiC:
//!
//! ```
//! use artery_core::{ArteryConfig, ArteryController, Calibration};
//! use artery_sim::{Executor, NoiseModel};
//! use artery_workloads::active_reset;
//!
//! let config = ArteryConfig::default();
//! let mut rng = artery_num::rng::rng_for("doc/core");
//! let calibration = Calibration::train(&config, &mut rng);
//! let circuit = active_reset(1);
//!
//! let mut exec = Executor::new(NoiseModel::noiseless());
//! let mut artery = ArteryController::new(&circuit, &config, &calibration);
//! let artery_rec = exec.run(&circuit, &mut artery, &mut rng);
//!
//! let mut qubic = artery_baselines::Baseline::qubic();
//! let qubic_rec = exec.run(&circuit, &mut qubic, &mut rng);
//! assert!(artery_rec.total_feedback_us() <= qubic_rec.total_feedback_us());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod controller;
pub mod predictor;
pub mod tune;

pub use config::ArteryConfig;
pub use controller::{
    feedback_latency_ns, resolve_timeline, ArteryController, ResolveTrace, ShotScratch, ShotStats,
    SiteOutcome,
};
pub use predictor::{
    BranchPredictor, Calibration, Decision, PredictorSpec, ShotPrediction, ShotView, SitePredictor,
};
