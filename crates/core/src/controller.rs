//! The ARTERY feedback controller — a predicting
//! [`FeedbackHandler`](artery_sim::FeedbackHandler).
//!
//! Per feedback, the controller synthesizes the in-flight readout pulse,
//! runs the windowed predictor, and converts the (possible) early decision
//! into latency through the hardware timing model:
//!
//! * correct prediction, case 1/2 — the branch ran during the readout;
//!   latency is decision-to-pulse time plus the branch pulses,
//! * correct prediction, case 3 — the armed pulse fires at readout end;
//!   latency is `max(readout, arm time)` plus the branch pulses,
//! * misprediction — the truth arrives through the sequential pipeline, the
//!   pre-executed gates are undone and the correct branch applied; the
//!   wasted pulses are reported so the simulator charges their gate noise,
//! * no commitment / case 4 — plain sequential feedback.

use std::collections::HashMap;

use artery_circuit::analysis::{analyze_circuit, PreExecCase, SiteAnalysis};
use artery_circuit::{BranchOp, Circuit, Feedback, FeedbackSite, GateApp};
use artery_hw::trigger::ProbabilityUpdate;
use artery_hw::ControllerTiming;
use artery_metrics::{MetricsRegistry, ShotTimeline, Stage};
use artery_num::stats::Accumulator;
use artery_readout::{IqPoint, ReadoutPulse};
use artery_sim::{FeedbackHandler, Resolution};
use rand::rngs::StdRng;

use crate::config::ArteryConfig;
use crate::predictor::{
    BranchPredictor, Calibration, Decision, HistoryTracker, ShotView, SitePredictor,
};

/// Outcome record of one resolved feedback (harness export).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteOutcome {
    /// The feedback site.
    pub site: FeedbackSite,
    /// Window at which the predictor committed, if it did.
    pub window: Option<usize>,
    /// The predicted branch, if any.
    pub predicted: Option<bool>,
    /// The branch the hardware reported.
    pub reported: bool,
    /// Feedback latency charged to this resolve, ns.
    pub latency_ns: f64,
}

impl SiteOutcome {
    /// Whether a prediction was made and matched the report.
    #[must_use]
    pub fn correct(&self) -> Option<bool> {
        self.predicted.map(|p| p == self.reported)
    }
}

/// Aggregate statistics across all feedbacks the controller resolved.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShotStats {
    /// Number of feedbacks resolved.
    pub resolved: u64,
    /// Number of feedbacks where the predictor committed to a branch.
    pub committed: u64,
    /// Number of committed predictions that were correct.
    pub correct: u64,
    /// Per-feedback latency distribution, ns.
    pub latency_ns: Accumulator,
    /// Decision-window distribution (committed feedbacks only).
    pub decision_window: Accumulator,
}

impl ShotStats {
    /// Prediction accuracy over committed feedbacks (1.0 when none
    /// committed).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.committed == 0 {
            1.0
        } else {
            self.correct as f64 / self.committed as f64
        }
    }

    /// Fraction of feedbacks where the predictor committed early.
    #[must_use]
    pub fn commit_rate(&self) -> f64 {
        if self.resolved == 0 {
            0.0
        } else {
            self.committed as f64 / self.resolved as f64
        }
    }

    /// Folds one resolved feedback into the aggregates — the single
    /// bookkeeping path shared by the live controller and trace replay, so
    /// the two can never drift apart.
    pub fn record(&mut self, outcome: &SiteOutcome) {
        self.resolved += 1;
        self.latency_ns.push(outcome.latency_ns);
        if let Some(correct) = outcome.correct() {
            self.committed += 1;
            self.correct += u64::from(correct);
            if let Some(w) = outcome.window {
                self.decision_window.push(w as f64);
            }
        }
    }

    /// Merges another run's statistics into this one (shard reduction in
    /// parallel harnesses).
    ///
    /// Both operands must cover *disjoint* shot sets — merging a shard
    /// twice double-counts silently, because the counters carry no shot
    /// ids. Debug builds assert the cross-field invariants that
    /// overlapping or partial merges break (counters drifting away from
    /// their sample accumulators).
    pub fn merge(&mut self, other: &ShotStats) {
        self.debug_check_invariants();
        other.debug_check_invariants();
        self.resolved += other.resolved;
        self.committed += other.committed;
        self.correct += other.correct;
        self.latency_ns.merge(&other.latency_ns);
        self.decision_window.merge(&other.decision_window);
    }

    /// Every path that builds a `ShotStats` ([`Self::record`] and disjoint
    /// merges of recorded stats) maintains these; a violation means some
    /// field was merged or mutated out of band.
    fn debug_check_invariants(&self) {
        debug_assert!(
            self.committed <= self.resolved && self.correct <= self.committed,
            "counter ordering violated: correct {} <= committed {} <= resolved {}",
            self.correct,
            self.committed,
            self.resolved
        );
        debug_assert_eq!(
            self.latency_ns.len(),
            self.resolved,
            "latency sample count diverged from the resolved counter — \
             overlapping or double merge?"
        );
        debug_assert!(
            self.decision_window.len() <= self.committed,
            "decision-window samples {} exceed committed count {}",
            self.decision_window.len(),
            self.committed
        );
    }
}

/// Everything the controller computed while resolving one feedback — the
/// raw material a trace recorder needs to make the shot replayable offline
/// (see the `artery-trace` crate).
#[derive(Debug, Clone, PartialEq)]
pub struct ResolveTrace {
    /// The feedback site.
    pub site: FeedbackSite,
    /// The §3 pre-execution case of the site.
    pub case: PreExecCase,
    /// Per-window preliminary classifications of the in-flight readout
    /// pulse (empty for sites that never predict, i.e. case 4).
    pub states: Vec<bool>,
    /// Cumulative IQ trajectory at each window boundary, `(I, Q)` pairs
    /// (empty for sites that never predict). Feeds trajectory-consuming
    /// baselines such as the FNN classifier during replay.
    pub iq: Vec<(f64, f64)>,
    /// Per-site historical prior `P_history_1` at resolve time.
    pub p_history: f64,
    /// The branch the hardware reported at readout end.
    pub reported: bool,
    /// The predicted branch, if the predictor committed.
    pub predicted: Option<bool>,
    /// Window of the commitment, if any.
    pub window: Option<usize>,
    /// Feedback latency charged to this resolve, ns.
    pub latency_ns: f64,
    /// Branch-0 pulse duration, ns.
    pub branch0_ns: f64,
    /// Branch-1 pulse duration, ns.
    pub branch1_ns: f64,
}

/// Latency charged to one feedback, given the predictor's decision — the
/// timing model of §5 reduced to its inputs. Shared by the live controller
/// and trace replay so both charge identical latencies.
#[must_use]
pub fn feedback_latency_ns(
    timing: &ControllerTiming,
    route_ns: f64,
    case: PreExecCase,
    branch0_ns: f64,
    branch1_ns: f64,
    reported: bool,
    decision: Option<&Decision>,
) -> f64 {
    let branch_ns = |b: bool| if b { branch1_ns } else { branch0_ns };
    let sequential_ns = timing.sequential_latency_ns() + branch_ns(reported);
    match decision {
        None => sequential_ns,
        Some(d) if d.branch == reported => match case {
            PreExecCase::Independent | PreExecCase::AncillaRemap => {
                timing.branch_start_ns(d.window, route_ns) + branch_ns(d.branch)
            }
            PreExecCase::OnMeasuredQubit => {
                timing.armed_latency_ns(d.window, route_ns) + branch_ns(d.branch)
            }
            // Case-4 sites never predict; a decision here can only come from
            // a hand-crafted replay, which degrades to sequential.
            PreExecCase::NotPreExecutable => sequential_ns,
        },
        Some(d) => {
            // Misprediction: truth arrives via the sequential pipeline, then
            // undo + correct branch (`recovery_ns` = undo time +
            // correct-branch time).
            let analysis = SiteAnalysis {
                site: FeedbackSite(0),
                case,
                ancilla: None,
                branch0_ns,
                branch1_ns,
            };
            timing.misprediction_latency_ns() + analysis.recovery_ns(d.branch)
        }
    }
}

/// The canonical observability timeline of one resolved feedback: which
/// stages the resolve passed through and when, in ns from readout start.
/// Shared by the live controller and trace-driven replay so both report
/// identical metrics; stage times come from the same
/// [`ControllerTiming`] model that [`feedback_latency_ns`] charges.
#[must_use]
pub fn resolve_timeline(
    site: usize,
    timing: &ControllerTiming,
    route_ns: f64,
    reported: bool,
    window: Option<usize>,
    predicted: Option<bool>,
    latency_ns: f64,
) -> ShotTimeline {
    let mut timeline = ShotTimeline::new(site, latency_ns);
    if let (Some(w), Some(p)) = (window, predicted) {
        // The prediction and the dynamic-timing trigger are simultaneous:
        // the trigger fires the moment the threshold crossing is known.
        let fired_ns = timing.prediction_ready_ns(w);
        timeline.push(Stage::Predict, fired_ns);
        timeline.push(Stage::TriggerFire, fired_ns);
        timeline.push(Stage::PreExecute, timing.branch_start_ns(w, route_ns));
        if p == reported {
            timeline.push(Stage::Commit, latency_ns);
        } else {
            // The rollback starts when the sequential truth arrives;
            // recovery (undo + correct branch) ends at the charged latency.
            timeline.push(Stage::Rollback, timing.misprediction_latency_ns());
            timeline.push(Stage::Recover, latency_ns);
        }
    } else {
        // Sequential fallback (no commitment, or a case-4 site).
        timeline.push(Stage::Commit, latency_ns);
    }
    timeline
}

/// Reusable per-shot buffers of the controller's hot resolve path.
///
/// The first resolve at a given pulse length grows each buffer once; every
/// later shot clears and refills them in place, so the steady-state loop —
/// synthesize, demodulate+classify (fused), predict — performs zero heap
/// allocations. The allocating APIs ([`ReadoutModel::synthesize`],
/// [`Demodulator::cumulative_trajectory`],
/// [`BranchPredictor::predict_states`]) remain as oracles; equivalence
/// tests pin the scratch path to their exact output.
///
/// [`ReadoutModel::synthesize`]: artery_readout::ReadoutModel::synthesize
/// [`Demodulator::cumulative_trajectory`]: artery_readout::Demodulator::cumulative_trajectory
/// [`BranchPredictor::predict_states`]: crate::BranchPredictor::predict_states
#[derive(Debug, Clone, Default)]
pub struct ShotScratch {
    /// The in-flight readout pulse of the current resolve.
    pub pulse: ReadoutPulse,
    /// Cumulative IQ trajectory at each window boundary.
    pub traj: Vec<IqPoint>,
    /// Per-window preliminary classifications.
    pub states: Vec<bool>,
    /// Probability-update stream of the predictor walk.
    pub updates: Vec<ProbabilityUpdate>,
}

impl ShotScratch {
    /// An empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears every buffer, retaining capacity.
    pub fn clear(&mut self) {
        self.pulse.samples.clear();
        self.pulse.true_state = false;
        self.pulse.decayed_at_ns = None;
        self.traj.clear();
        self.states.clear();
        self.updates.clear();
    }
}

/// Copy-cheap per-resolve values the hot path hands to the trace builder.
struct ResolveMeta {
    case: PreExecCase,
    p_history: f64,
    window: Option<usize>,
    branch0_ns: f64,
    branch1_ns: f64,
}

/// The ARTERY feedback controller for one circuit.
#[derive(Debug, Clone)]
pub struct ArteryController<'a> {
    config: ArteryConfig,
    calibration: &'a Calibration,
    timing: ControllerTiming,
    analyses: HashMap<usize, SiteAnalysis>,
    history: HistoryTracker,
    stats: ShotStats,
    outcomes: Vec<SiteOutcome>,
    log_outcomes: bool,
    /// Per-site metrics aggregation; `None` (the default) keeps the hot
    /// path free of observability cost.
    metrics: Option<MetricsRegistry>,
    /// Per-site θ overrides (§6.6 recommends per-benchmark tuning).
    site_theta: HashMap<usize, f64>,
    /// Reused per-shot buffers (zero-allocation steady state).
    scratch: ShotScratch,
    /// Pluggable predictor replacing the built-in Bayesian walk, when set
    /// via [`Self::with_zoo_predictor`]. `None` (the default) keeps the
    /// inline [`BranchPredictor`] hot path.
    zoo: Option<Box<dyn SitePredictor>>,
}

impl<'a> ArteryController<'a> {
    /// Builds a controller for `circuit`: runs the §3 case analysis on every
    /// feedback site and starts with empty per-site history.
    #[must_use]
    pub fn new(circuit: &Circuit, config: &ArteryConfig, calibration: &'a Calibration) -> Self {
        Self::with_analyses(analyze_circuit(circuit), config, calibration)
    }

    /// Builds a controller from a pre-computed circuit analysis.
    ///
    /// [`analyze_circuit`] walks the whole circuit, so sharded shot runners
    /// analyze once per configuration and hand each shard (and each shot) a
    /// clone of the result instead of re-deriving it.
    #[must_use]
    pub fn with_analyses(
        analyses: Vec<SiteAnalysis>,
        config: &ArteryConfig,
        calibration: &'a Calibration,
    ) -> Self {
        let analyses = analyses.into_iter().map(|a| (a.site.0, a)).collect();
        Self {
            config: *config,
            calibration,
            timing: ControllerTiming::new(config.hardware(), config.window_ns),
            analyses,
            history: HistoryTracker::new(),
            stats: ShotStats::default(),
            outcomes: Vec::new(),
            log_outcomes: false,
            metrics: None,
            site_theta: HashMap::new(),
            scratch: ShotScratch::new(),
            zoo: None,
        }
    }

    /// Routes every prediction through `predictor` instead of the built-in
    /// Bayesian walk — the CBP-style hot swap. The controller still
    /// synthesizes, demodulates and classifies the in-flight pulse (so the
    /// RNG stream, the latency model and the recorded traces are unchanged)
    /// and still maintains its own per-site history, whose prior is passed
    /// to the predictor through [`ShotView::p_history`].
    ///
    /// Swapping in the `artery-predictors` paper adapter reproduces the
    /// default controller bit-for-bit; see that crate's tests.
    #[must_use]
    pub fn with_zoo_predictor(mut self, predictor: Box<dyn SitePredictor>) -> Self {
        self.zoo = Some(predictor);
        self
    }

    /// The pluggable predictor, when one was installed.
    #[must_use]
    pub fn zoo_predictor(&self) -> Option<&dyn SitePredictor> {
        self.zoo.as_deref()
    }

    /// Overrides the confidence threshold at one feedback site (§6.6:
    /// "adjusting the tolerance threshold for each benchmark is
    /// recommended").
    ///
    /// # Panics
    ///
    /// Panics unless `theta` is in `(0.5, 1.0]`.
    pub fn set_site_threshold(&mut self, site: FeedbackSite, theta: f64) {
        assert!(
            theta > 0.5 && theta <= 1.0,
            "threshold must be in (0.5, 1.0]"
        );
        self.site_theta.insert(site.0, theta);
    }

    /// Auto-tunes the threshold of `site` for an expected branch prior `p1`
    /// using the Fig. 17 procedure on freshly synthesized training pulses,
    /// and installs the winner. Returns the selected θ.
    ///
    /// # Panics
    ///
    /// Panics when the site does not exist in the circuit.
    pub fn auto_tune_site(
        &mut self,
        site: FeedbackSite,
        p1: f64,
        train_pulses: usize,
        rng: &mut rand::rngs::StdRng,
    ) -> f64 {
        let analysis = self
            .analyses
            .get(&site.0)
            .unwrap_or_else(|| panic!("feedback site {site} was not analyzed"));
        let recovery_ns = analysis.recovery_ns(true).max(analysis.recovery_ns(false));
        let best = crate::tune::tune_for_prior(
            self.calibration,
            &self.config,
            p1,
            train_pulses,
            recovery_ns,
            rng,
        );
        self.site_theta.insert(site.0, best.theta);
        best.theta
    }

    /// Enables per-feedback outcome logging (harnesses).
    #[must_use]
    pub fn with_outcome_log(mut self) -> Self {
        self.log_outcomes = true;
        self
    }

    /// Enables per-site metrics aggregation: every resolve additionally
    /// builds a [`ShotTimeline`] and folds it into a [`MetricsRegistry`].
    /// Consumes no randomness, so summaries and decisions are unchanged.
    #[must_use]
    pub fn with_metrics(mut self) -> Self {
        self.metrics = Some(MetricsRegistry::new());
        self
    }

    /// The metrics registry, when enabled via [`Self::with_metrics`].
    #[must_use]
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_ref()
    }

    /// Takes the aggregated metrics (shard reduction), leaving an empty
    /// registry behind; `None` when metrics were never enabled.
    pub fn take_metrics(&mut self) -> Option<MetricsRegistry> {
        self.metrics.as_mut().map(std::mem::take)
    }

    /// Warm-starts a site's history (e.g. from a previous program run).
    pub fn seed_history(&mut self, site: FeedbackSite, p1: f64, weight: u64) {
        self.history.seed(site, p1, weight);
    }

    /// Aggregate statistics so far.
    #[must_use]
    pub fn stats(&self) -> &ShotStats {
        &self.stats
    }

    /// Clears the aggregate statistics and the outcome log while keeping the
    /// learned per-site history — the train/measure split of the harnesses:
    /// warm the history up, reset, then measure.
    pub fn reset_stats(&mut self) {
        self.stats = ShotStats::default();
        self.outcomes.clear();
        if let Some(registry) = &mut self.metrics {
            *registry = MetricsRegistry::new();
        }
    }

    /// Forks a warmed controller for one scheduler chunk: the fork keeps
    /// the learned per-site history, thresholds and calibration borrow,
    /// but starts with fresh statistics, an empty outcome log and an
    /// empty (still-enabled) metrics registry.
    ///
    /// This is the controller-reuse primitive of the work-stealing shot
    /// scheduler: a job warms **one** controller, then every chunk measures
    /// on its own fork — so chunk results are independent of execution
    /// order while still sharing the warm-up cost.
    #[must_use]
    pub fn warmed_fork(&self) -> Self {
        let mut fork = self.clone();
        fork.reset_stats();
        fork
    }

    /// Drains the per-feedback outcome log.
    pub fn take_outcomes(&mut self) -> Vec<SiteOutcome> {
        std::mem::take(&mut self.outcomes)
    }

    /// The controller timing model in use.
    #[must_use]
    pub fn timing(&self) -> &ControllerTiming {
        &self.timing
    }

    /// The case analysis of a site, if the circuit contains it.
    #[must_use]
    pub fn analysis(&self, site: FeedbackSite) -> Option<&SiteAnalysis> {
        self.analyses.get(&site.0)
    }

    /// Pulses physically played and cancelled on a misprediction: the
    /// pre-executed branch gates plus their inverses.
    fn wasted_pulses(fb: &Feedback, predicted: bool) -> Vec<GateApp> {
        let mut out = Vec::new();
        for op in fb.branch(predicted) {
            if let BranchOp::Gate(g) = op {
                out.push(g.clone());
                out.push(g.inverse());
            }
        }
        out
    }

    fn record(&mut self, outcome: SiteOutcome) {
        self.stats.record(&outcome);
        if self.log_outcomes {
            self.outcomes.push(outcome);
        }
    }

    /// The hot resolve path: everything lands in the controller's reusable
    /// [`ShotScratch`] buffers, so a steady-state shot performs no heap
    /// allocation. Both [`FeedbackHandler::resolve`] and
    /// [`Self::resolve_traced`] delegate here — the traced path merely
    /// copies what this left in the scratch — so the two cannot diverge.
    fn resolve_scratch(
        &mut self,
        fb: &Feedback,
        reported: bool,
        rng: &mut StdRng,
    ) -> (Resolution, ResolveMeta) {
        let analysis = self
            .analyses
            .get(&fb.site.0)
            .unwrap_or_else(|| panic!("feedback site {} was not analyzed", fb.site))
            .clone();
        let p_history = self.history.p_history_1(fb.site);
        self.scratch.clear();

        let decision = if analysis.case.benefits_from_prediction() {
            // The in-flight pulse the classifier sees, conditioned on the
            // outcome the hardware will report. Carrier and demodulation
            // phasors come from the calibration's shared phase table, so
            // this consumes the same RNG stream and produces the same bits
            // as the naive trig path.
            let cal = self.calibration;
            cal.model()
                .synthesize_into(cal.phase_table(), reported, rng, &mut self.scratch.pulse);
            let config = match self.site_theta.get(&fb.site.0) {
                Some(&theta) => ArteryConfig {
                    theta,
                    ..self.config
                },
                None => self.config,
            };
            let ShotScratch {
                pulse,
                traj,
                states,
                updates,
            } = &mut self.scratch;
            // One fused demodulate+classify pass: trajectory and window
            // states fill together, with no intermediate Vec.
            let centers = cal.centers();
            cal.demod()
                .fold_cumulative_with(cal.phase_table(), pulse, |iq| {
                    traj.push(iq);
                    states.push(centers.classify(iq));
                });
            match &mut self.zoo {
                // The hot swap: the pluggable predictor sees exactly what
                // the built-in walk would have (window states, trajectory,
                // prior — and the truth, for oracle bounds).
                Some(zoo) => zoo.predict(
                    &ShotView {
                        site: fb.site,
                        states,
                        iq: traj,
                        p_history,
                        truth: reported,
                    },
                    updates,
                ),
                None => {
                    let predictor = BranchPredictor::new(cal, &config);
                    predictor.predict_states_into(states, p_history, updates)
                }
            }
        } else {
            // Case 4: never predict.
            None
        };

        let branch0_ns = fb.branch_duration_ns(false);
        let branch1_ns = fb.branch_duration_ns(true);
        let latency_ns = feedback_latency_ns(
            &self.timing,
            self.config.route_ns,
            analysis.case,
            branch0_ns,
            branch1_ns,
            reported,
            decision.as_ref(),
        );
        let wasted = match decision {
            Some(d) if d.branch != reported => Self::wasted_pulses(fb, d.branch),
            _ => Vec::new(),
        };
        let predicted = decision.map(|d| d.branch);
        let window = decision.map(|d| d.window);

        self.history.observe(fb.site, reported);
        if let Some(zoo) = &mut self.zoo {
            if analysis.case.benefits_from_prediction() {
                zoo.update(fb.site, reported);
            } else {
                zoo.track_other(fb.site, reported);
            }
        }
        self.record(SiteOutcome {
            site: fb.site,
            window,
            predicted,
            reported,
            latency_ns,
        });
        if let Some(registry) = &mut self.metrics {
            registry.observe(&resolve_timeline(
                fb.site.0,
                &self.timing,
                self.config.route_ns,
                reported,
                window,
                predicted,
                latency_ns,
            ));
        }
        (
            Resolution {
                latency_ns,
                wasted_pulses: wasted,
                predicted,
            },
            ResolveMeta {
                case: analysis.case,
                p_history,
                window,
                branch0_ns,
                branch1_ns,
            },
        )
    }

    /// Resolves one feedback and additionally returns everything a trace
    /// recorder needs to replay the shot offline (window states, IQ
    /// trajectory, the prior, branch durations). Delegates to the same hot
    /// path as [`FeedbackHandler::resolve`] and copies the scratch buffers
    /// out, so traced and untraced runs are identical.
    pub fn resolve_traced(
        &mut self,
        fb: &Feedback,
        reported: bool,
        rng: &mut StdRng,
    ) -> (Resolution, ResolveTrace) {
        let (resolution, meta) = self.resolve_scratch(fb, reported, rng);
        let trace = ResolveTrace {
            site: fb.site,
            case: meta.case,
            states: self.scratch.states.clone(),
            iq: self.scratch.traj.iter().map(|p| (p.i, p.q)).collect(),
            p_history: meta.p_history,
            reported,
            predicted: resolution.predicted,
            window: meta.window,
            latency_ns: resolution.latency_ns,
            branch0_ns: meta.branch0_ns,
            branch1_ns: meta.branch1_ns,
        };
        (resolution, trace)
    }
}

impl FeedbackHandler for ArteryController<'_> {
    fn resolve(&mut self, fb: &Feedback, reported: bool, rng: &mut StdRng) -> Resolution {
        self.resolve_scratch(fb, reported, rng).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_circuit::{CircuitBuilder, Gate, Qubit};
    use artery_num::rng::rng_for;
    use artery_sim::{Executor, NoiseModel};

    fn calibration() -> Calibration {
        let config = ArteryConfig {
            train_pulses: 600,
            ..ArteryConfig::paper()
        };
        Calibration::train(&config, &mut rng_for("ctrl/cal"))
    }

    #[test]
    fn reset_latency_floors_at_readout() {
        let cal = calibration();
        let config = ArteryConfig::paper();
        let circuit = artery_workloads::active_reset(1);
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("ctrl/reset");
        let mut ctl = ArteryController::new(&circuit, &config, &cal);
        let mut total = Accumulator::new();
        for _ in 0..30 {
            let rec = exec.run(&circuit, &mut ctl, &mut rng);
            total.push(rec.feedback_latencies_ns[0]);
        }
        // Case 3: ≥ 2 µs (readout) but ≤ sequential 2.19 µs; paper: 2.01 µs.
        assert!(total.mean() >= 2000.0, "mean {}", total.mean());
        assert!(total.mean() < 2150.0, "mean {}", total.mean());
    }

    #[test]
    fn skewed_site_beats_sequential_strongly() {
        let cal = calibration();
        let config = ArteryConfig::paper();
        // Measured qubit always |0⟩ → prior converges to ~0, case-1 branch.
        let mut b = CircuitBuilder::new(2);
        b.feedback(Qubit(0)).on_one(Gate::X, &[Qubit(1)]).finish();
        let circuit = b.build();
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("ctrl/skew");
        let mut ctl = ArteryController::new(&circuit, &config, &cal);
        // Warm up the history, then measure.
        for _ in 0..50 {
            let _ = exec.run(&circuit, &mut ctl, &mut rng);
        }
        let mut lat = Accumulator::new();
        for _ in 0..50 {
            let rec = exec.run(&circuit, &mut ctl, &mut rng);
            lat.push(rec.feedback_latencies_ns[0]);
        }
        // Early firing at the first lookup window: well under 1 µs.
        assert!(lat.mean() < 600.0, "mean latency {}", lat.mean());
        assert!(ctl.stats().accuracy() > 0.9);
    }

    #[test]
    fn case4_site_never_predicts() {
        let cal = calibration();
        let config = ArteryConfig::paper();
        let mut b = CircuitBuilder::new(2);
        b.gate(Gate::H, &[Qubit(0)]);
        b.feedback(Qubit(0))
            .op_on_one(BranchOp::Measure(Qubit(1), artery_circuit::Clbit(0)))
            .finish();
        let circuit = b.build();
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("ctrl/case4");
        let mut ctl = ArteryController::new(&circuit, &config, &cal);
        for _ in 0..10 {
            let rec = exec.run(&circuit, &mut ctl, &mut rng);
            assert_eq!(rec.predictions, 0);
        }
        assert_eq!(ctl.stats().committed, 0);
    }

    #[test]
    fn mispredictions_charge_recovery_and_waste() {
        let cal = calibration();
        let config = ArteryConfig::paper();
        let mut b = CircuitBuilder::new(2);
        b.gate(Gate::H, &[Qubit(0)]);
        b.feedback(Qubit(0)).on_one(Gate::X, &[Qubit(1)]).finish();
        let circuit = b.build();
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("ctrl/mispredict");
        let mut ctl = ArteryController::new(&circuit, &config, &cal).with_outcome_log();
        let mut mispredicted_latencies = Vec::new();
        for _ in 0..300 {
            let _ = exec.run(&circuit, &mut ctl, &mut rng);
        }
        for o in ctl.take_outcomes() {
            if o.correct() == Some(false) {
                mispredicted_latencies.push(o.latency_ns);
            }
        }
        // With a 50/50 prior the predictor commits from the trajectory; some
        // commitments are wrong and must cost more than sequential.
        assert!(
            !mispredicted_latencies.is_empty(),
            "expected some mispredictions"
        );
        let seq = ctl.timing().sequential_latency_ns();
        for l in mispredicted_latencies {
            assert!(l >= seq, "mispredict latency {l} below sequential {seq}");
        }
    }

    #[test]
    fn stats_accumulate_across_shots() {
        let cal = calibration();
        let config = ArteryConfig::paper();
        let circuit = artery_workloads::qrw(3);
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("ctrl/stats");
        let mut ctl = ArteryController::new(&circuit, &config, &cal);
        for _ in 0..10 {
            let _ = exec.run(&circuit, &mut ctl, &mut rng);
        }
        assert_eq!(ctl.stats().resolved, 30);
        assert!(ctl.stats().commit_rate() > 0.0);
        assert!(ctl.stats().latency_ns.mean() > 0.0);
    }

    #[test]
    fn per_site_threshold_override_changes_behaviour() {
        let cal = calibration();
        let config = ArteryConfig::paper();
        let circuit = artery_workloads::qrw(1);
        let exec = Executor::new(NoiseModel::noiseless());

        let run = |theta: Option<f64>| {
            let mut ctl = ArteryController::new(&circuit, &config, &cal);
            if let Some(t) = theta {
                ctl.set_site_threshold(FeedbackSite(0), t);
            }
            let mut rng = rng_for("ctrl/site-theta");
            let mut lat = Accumulator::new();
            for _ in 0..150 {
                let rec = exec.clone().run(&circuit, &mut ctl, &mut rng);
                lat.push(rec.feedback_latencies_ns[0]);
            }
            (lat.mean(), ctl.stats().accuracy())
        };
        let (default_lat, _) = run(None);
        // A near-certain threshold must slow the site down (later commits /
        // more sequential fallbacks) but raise accuracy.
        let (strict_lat, strict_acc) = run(Some(0.999));
        assert!(
            strict_lat > default_lat,
            "strict {strict_lat} vs {default_lat}"
        );
        assert!(strict_acc > 0.95);
    }

    #[test]
    fn auto_tune_installs_a_threshold() {
        let cal = calibration();
        let config = ArteryConfig::paper();
        let circuit = artery_workloads::qrw(1);
        let mut ctl = ArteryController::new(&circuit, &config, &cal);
        let mut rng = rng_for("ctrl/autotune");
        let theta = ctl.auto_tune_site(FeedbackSite(0), 0.5, 200, &mut rng);
        assert!(theta > 0.5 && theta <= 1.0);
        assert_eq!(ctl.site_theta.get(&0), Some(&theta));
    }

    #[test]
    fn case2_sites_pre_execute_on_the_ancilla() {
        let cal = calibration();
        let config = ArteryConfig::paper();
        let circuit = artery_workloads::magic_injection(1);
        let ctl = ArteryController::new(&circuit, &config, &cal);
        let analysis = ctl.analysis(FeedbackSite(0)).expect("site analyzed");
        assert_eq!(analysis.case, PreExecCase::AncillaRemap);
        assert!(analysis.ancilla.is_some());

        // Run shots: correct predictions must overlap the readout (latency
        // clearly below the sequential floor), like case 1.
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("ctrl/case2");
        let mut ctl = ArteryController::new(&circuit, &config, &cal).with_outcome_log();
        for _ in 0..200 {
            let _ = exec.run(&circuit, &mut ctl, &mut rng);
        }
        let seq = ctl.timing().sequential_latency_ns();
        let outcomes = ctl.take_outcomes();
        let fast: Vec<&SiteOutcome> = outcomes
            .iter()
            .filter(|o| o.correct() == Some(true))
            .collect();
        assert!(
            !fast.is_empty(),
            "no correct predictions at the case-2 site"
        );
        for o in &fast {
            assert!(
                o.latency_ns < seq,
                "correct case-2 prediction did not beat sequential ({} vs {seq})",
                o.latency_ns
            );
        }
    }

    #[test]
    fn reset_stats_clears_counts_but_keeps_history() {
        let cal = calibration();
        let config = ArteryConfig::paper();
        let circuit = artery_workloads::active_reset(1);
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("ctrl/reset-stats");
        let mut ctl = ArteryController::new(&circuit, &config, &cal).with_outcome_log();
        for _ in 0..20 {
            let _ = exec.run(&circuit, &mut ctl, &mut rng);
        }
        let shots_before = ctl.history.shots(FeedbackSite(0));
        assert_eq!(ctl.stats().resolved, 20);
        ctl.reset_stats();
        assert_eq!(ctl.stats(), &ShotStats::default());
        assert!(ctl.take_outcomes().is_empty());
        // The learned prior survives the reset.
        assert_eq!(ctl.history.shots(FeedbackSite(0)), shots_before);
        let _ = exec.run(&circuit, &mut ctl, &mut rng);
        assert_eq!(ctl.stats().resolved, 1);
    }

    #[test]
    fn warmed_fork_keeps_history_and_forks_run_identically() {
        let cal = calibration();
        let config = ArteryConfig::paper();
        let circuit = artery_workloads::active_reset(1);
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("ctrl/fork-warm");
        let mut warm = ArteryController::new(&circuit, &config, &cal).with_metrics();
        for _ in 0..30 {
            let _ = exec.run(&circuit, &mut warm, &mut rng);
        }
        let shots_warm = warm.history.shots(FeedbackSite(0));

        // A fork starts statistically empty but keeps the learned history
        // and the enabled metrics registry.
        let mut fork = warm.warmed_fork();
        assert_eq!(fork.stats(), &ShotStats::default());
        assert_eq!(fork.history.shots(FeedbackSite(0)), shots_warm);
        assert!(fork.metrics().expect("metrics survive the fork").is_empty());

        // Two forks fed the same RNG stream behave bit-identically — the
        // chunk-independence property the scheduler leans on.
        let mut fork2 = warm.warmed_fork();
        let mut rng_a = rng_for("ctrl/fork-measure");
        let mut rng_b = rng_for("ctrl/fork-measure");
        for _ in 0..10 {
            let _ = exec.run(&circuit, &mut fork, &mut rng_a);
            let _ = exec.run(&circuit, &mut fork2, &mut rng_b);
        }
        assert_eq!(fork.stats(), fork2.stats());
        assert_eq!(fork.metrics(), fork2.metrics());
        // The original is untouched by its forks' measurements.
        assert_eq!(warm.history.shots(FeedbackSite(0)), shots_warm);
    }

    #[test]
    fn traced_resolve_agrees_with_logged_outcome() {
        let cal = calibration();
        let config = ArteryConfig::paper();
        let circuit = artery_workloads::qrw(1);
        let fb = circuit.feedback_sites().next().expect("one site").clone();
        let mut rng = rng_for("ctrl/traced");
        let mut ctl = ArteryController::new(&circuit, &config, &cal).with_outcome_log();
        for k in 0..30 {
            let reported = k % 2 == 0;
            let (res, trace) = ctl.resolve_traced(&fb, reported, &mut rng);
            assert_eq!(trace.reported, reported);
            assert_eq!(trace.predicted, res.predicted);
            assert_eq!(trace.latency_ns, res.latency_ns);
            // A predicting site always records the full window stream.
            assert!(!trace.states.is_empty());
            assert_eq!(trace.states.len(), trace.iq.len());
        }
        let outcomes = ctl.take_outcomes();
        assert_eq!(outcomes.len(), 30);
    }

    #[test]
    fn hot_path_matches_naive_oracle() {
        // Re-derive the pre-scratch implementation — allocating synthesize,
        // two-pass cumulative trajectory + classify, allocating predictor —
        // on a cloned RNG stream and demand bitwise agreement.
        let cal = calibration();
        let config = ArteryConfig::paper();
        let circuit = artery_workloads::qrw(1);
        let fb = circuit.feedback_sites().next().expect("one site").clone();
        let mut rng = rng_for("ctrl/oracle");
        let mut ctl = ArteryController::new(&circuit, &config, &cal);
        for k in 0..20 {
            let reported = k % 2 == 0;
            let p_history = ctl.history.p_history_1(fb.site);
            let mut oracle_rng = rng.clone();
            let (res, trace) = ctl.resolve_traced(&fb, reported, &mut rng);

            let pulse = cal.model().synthesize(reported, &mut oracle_rng);
            let traj = cal.demod().cumulative_trajectory(&pulse);
            let states: Vec<bool> = traj.iter().map(|&iq| cal.centers().classify(iq)).collect();
            let iq: Vec<(f64, f64)> = traj.iter().map(|p| (p.i, p.q)).collect();
            assert_eq!(trace.states, states);
            assert_eq!(trace.iq, iq);
            let predictor = BranchPredictor::new(&cal, &config);
            let decision = predictor.predict_states(&states, p_history).decision;
            assert_eq!(res.predicted, decision.map(|d| d.branch));
            assert_eq!(trace.window, decision.map(|d| d.window));
        }
    }

    #[test]
    fn scratch_buffers_are_reused_across_shots() {
        let cal = calibration();
        let config = ArteryConfig::paper();
        let circuit = artery_workloads::qrw(1);
        let fb = circuit.feedback_sites().next().expect("one site").clone();
        let mut rng = rng_for("ctrl/scratch-reuse");
        let mut ctl = ArteryController::new(&circuit, &config, &cal);
        let _ = ctl.resolve_traced(&fb, true, &mut rng);
        let caps = (
            ctl.scratch.pulse.samples.capacity(),
            ctl.scratch.traj.capacity(),
            ctl.scratch.states.capacity(),
            ctl.scratch.updates.capacity(),
        );
        assert!(caps.0 > 0 && caps.1 > 0 && caps.2 > 0);
        for k in 0..10 {
            let _ = ctl.resolve_traced(&fb, k % 2 == 0, &mut rng);
            assert_eq!(ctl.scratch.pulse.samples.capacity(), caps.0);
            assert_eq!(ctl.scratch.traj.capacity(), caps.1);
            assert_eq!(ctl.scratch.states.capacity(), caps.2);
            assert_eq!(ctl.scratch.updates.capacity(), caps.3);
        }
    }

    #[test]
    fn shared_latency_model_covers_all_paths() {
        let timing = ControllerTiming::new(ArteryConfig::paper().hardware(), 30.0);
        let seq = timing.sequential_latency_ns();
        // No decision: sequential + reported branch.
        let none = feedback_latency_ns(
            &timing,
            0.0,
            PreExecCase::Independent,
            0.0,
            30.0,
            true,
            None,
        );
        assert_eq!(none, seq + 30.0);
        let d = Decision {
            window: 10,
            branch: true,
            p_predict_1: 0.99,
        };
        // Correct case-1 prediction overlaps the readout.
        let correct = feedback_latency_ns(
            &timing,
            0.0,
            PreExecCase::Independent,
            0.0,
            30.0,
            true,
            Some(&d),
        );
        assert!(correct < seq);
        // Misprediction charges undo + correct branch on top of sequential.
        let wrong = feedback_latency_ns(
            &timing,
            0.0,
            PreExecCase::Independent,
            40.0,
            30.0,
            false,
            Some(&d),
        );
        assert_eq!(wrong, timing.misprediction_latency_ns() + 30.0 + 40.0);
        // Case-3 correct predictions floor at the readout duration.
        let armed = feedback_latency_ns(
            &timing,
            0.0,
            PreExecCase::OnMeasuredQubit,
            0.0,
            30.0,
            true,
            Some(&Decision {
                window: 0,
                branch: true,
                p_predict_1: 0.99,
            }),
        );
        assert_eq!(armed, timing.params().readout_ns + 30.0);
    }

    #[test]
    fn stats_merge_equals_sequential_recording() {
        let outcomes: Vec<SiteOutcome> = (0..40)
            .map(|k| SiteOutcome {
                site: FeedbackSite(0),
                window: if k % 3 == 0 { Some(k % 7) } else { None },
                predicted: if k % 3 == 0 { Some(k % 2 == 0) } else { None },
                reported: k % 2 == 0,
                latency_ns: 500.0 + k as f64,
            })
            .collect();
        let mut whole = ShotStats::default();
        for o in &outcomes {
            whole.record(o);
        }
        let mut left = ShotStats::default();
        let mut right = ShotStats::default();
        for o in &outcomes[..17] {
            left.record(o);
        }
        for o in &outcomes[17..] {
            right.record(o);
        }
        left.merge(&right);
        assert_eq!(left.resolved, whole.resolved);
        assert_eq!(left.committed, whole.committed);
        assert_eq!(left.correct, whole.correct);
        assert_eq!(left.latency_ns.len(), whole.latency_ns.len());
        assert!((left.latency_ns.mean() - whole.latency_ns.mean()).abs() < 1e-9);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "latency sample count diverged")]
    fn overlapping_stats_merge_is_caught_in_debug() {
        let outcome = SiteOutcome {
            site: FeedbackSite(0),
            window: None,
            predicted: None,
            reported: false,
            latency_ns: 2190.0,
        };
        let mut shard = ShotStats::default();
        shard.record(&outcome);
        // Simulate a broken shard reduction that folded the latency samples
        // twice but the counters once: the accumulator now claims more
        // samples than the resolved counter.
        let mut corrupt = shard.clone();
        corrupt.latency_ns.merge(&shard.latency_ns);
        let mut whole = ShotStats::default();
        whole.record(&outcome);
        whole.merge(&corrupt);
    }

    #[test]
    fn metrics_registry_agrees_with_stats() {
        let cal = calibration();
        let config = ArteryConfig::paper();
        let circuit = artery_workloads::qrw(2);
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("ctrl/metrics");
        let mut ctl = ArteryController::new(&circuit, &config, &cal).with_metrics();
        for _ in 0..25 {
            let _ = exec.run(&circuit, &mut ctl, &mut rng);
        }
        let registry = ctl.metrics().expect("metrics enabled");
        let resolved: u64 = registry.sites().map(|(_, s)| s.resolved.get()).sum();
        let committed: u64 = registry.sites().map(|(_, s)| s.committed.get()).sum();
        let mispredicted: u64 = registry.sites().map(|(_, s)| s.mispredicted.get()).sum();
        let recovered: u64 = registry.sites().map(|(_, s)| s.recovered.get()).sum();
        assert_eq!(resolved, ctl.stats().resolved);
        assert_eq!(committed, ctl.stats().correct);
        assert_eq!(
            mispredicted + recovered,
            2 * (ctl.stats().committed - ctl.stats().correct)
        );
        for (_, site) in registry.sites() {
            assert_eq!(site.latency_ns.count(), site.resolved.get());
            assert_eq!(site.peak_latency_ns.get(), site.latency_ns.max_ns());
            assert!(site.latency_ns.p50() <= site.latency_ns.p99());
        }

        // reset_stats clears the registry but keeps it enabled.
        ctl.reset_stats();
        assert!(ctl.metrics().expect("still enabled").is_empty());
        let _ = exec.run(&circuit, &mut ctl, &mut rng);
        assert!(!ctl.metrics().expect("still enabled").is_empty());
        let taken = ctl.take_metrics().expect("takeable");
        assert!(!taken.is_empty());
        assert!(ctl.metrics().expect("still enabled").is_empty());
    }

    #[test]
    fn enabling_metrics_does_not_change_decisions() {
        let cal = calibration();
        let config = ArteryConfig::paper();
        let circuit = artery_workloads::qrw(2);
        let run = |with_metrics: bool| {
            let mut exec = Executor::new(NoiseModel::noiseless());
            let mut rng = rng_for("ctrl/metrics-neutral");
            let mut ctl = ArteryController::new(&circuit, &config, &cal);
            if with_metrics {
                ctl = ctl.with_metrics();
            }
            for _ in 0..15 {
                let _ = exec.run(&circuit, &mut ctl, &mut rng);
            }
            ctl.stats().clone()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn resolve_timeline_covers_all_paths() {
        let timing = ControllerTiming::new(ArteryConfig::paper().hardware(), 30.0);
        // Sequential (no prediction): a single commit at the latency.
        let seq = resolve_timeline(0, &timing, 0.0, true, None, None, 2190.0);
        assert_eq!(seq.events().len(), 1);
        assert_eq!(seq.stage_at(Stage::Commit), Some(2190.0));
        assert!(!seq.has(Stage::Predict));
        // Correct prediction: predict/trigger at the prediction-ready time,
        // pre-execution at the branch start, commit at the latency.
        let hit = resolve_timeline(1, &timing, 0.0, true, Some(2), Some(true), 320.0);
        assert_eq!(
            hit.stage_at(Stage::Predict),
            Some(timing.prediction_ready_ns(2))
        );
        assert_eq!(
            hit.stage_at(Stage::TriggerFire),
            hit.stage_at(Stage::Predict)
        );
        assert_eq!(
            hit.stage_at(Stage::PreExecute),
            Some(timing.branch_start_ns(2, 0.0))
        );
        assert_eq!(hit.stage_at(Stage::Commit), Some(320.0));
        assert!(!hit.has(Stage::Rollback));
        // Remote sites start their branch later by the route latency.
        let remote = resolve_timeline(1, &timing, 48.0, true, Some(2), Some(true), 368.0);
        let local_pre = hit.stage_at(Stage::PreExecute).unwrap();
        assert_eq!(remote.stage_at(Stage::PreExecute), Some(local_pre + 48.0));
        // Misprediction: rollback at the sequential truth, recovery at the
        // charged latency, no commit.
        let miss = resolve_timeline(1, &timing, 0.0, false, Some(2), Some(true), 3000.0);
        assert_eq!(
            miss.stage_at(Stage::Rollback),
            Some(timing.misprediction_latency_ns())
        );
        assert_eq!(miss.stage_at(Stage::Recover), Some(3000.0));
        assert!(!miss.has(Stage::Commit));
    }

    #[test]
    fn seeded_history_matches_online_learning() {
        let cal = calibration();
        let config = ArteryConfig::paper();
        let circuit = artery_workloads::active_reset(1);
        let mut ctl = ArteryController::new(&circuit, &config, &cal);
        ctl.seed_history(FeedbackSite(0), 0.5, 1000);
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut rng = rng_for("ctrl/seed");
        let rec = exec.run(&circuit, &mut ctl, &mut rng);
        assert_eq!(rec.feedback_latencies_ns.len(), 1);
    }
}
