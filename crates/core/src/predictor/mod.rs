//! The reconciled branch predictor of §4.
//!
//! Per shot, the predictor walks the demodulation windows of the in-flight
//! readout pulse. After each window it (1) updates the branch history
//! registers with the window's preliminary classification, (2) looks up
//! `P_read_1` in the trajectory state table, (3) fuses it with the per-site
//! historical probability `P_history_1` through the Bayesian model, and
//! (4) hands the result to the threshold decider. The first threshold
//! crossing is the prediction; no crossing degrades the shot to sequential
//! feedback.

mod bayes;
mod history;
mod site;
mod table;

pub use bayes::fuse;
pub use history::HistoryTracker;
pub use site::{PredictorSpec, ShotView, SitePredictor};
pub use table::TrajectoryTable;

use artery_hw::trigger::{ProbabilityUpdate, Thresholds};
use artery_readout::{Dataset, Demodulator, IqCenters, PhaseTable, ReadoutModel, ReadoutPulse};
use rand::Rng;

use crate::config::ArteryConfig;

/// Hardware-initialization products shared by every program: the calibrated
/// IQ centers, the pre-generated trajectory state table (§4: "the
/// `<states, P_read_1>` table is pre-generated when the quantum hardware is
/// initialized"), and the model's phase table, which makes every downstream
/// synthesis/demodulation loop trig-free.
#[derive(Debug, Clone)]
pub struct Calibration {
    model: ReadoutModel,
    demod: Demodulator,
    centers: IqCenters,
    phases: PhaseTable,
    table: TrajectoryTable,
}

impl Calibration {
    /// Trains centers and state table from `config.train_pulses` balanced
    /// calibration pulses of the paper's readout model.
    #[must_use]
    pub fn train(config: &ArteryConfig, rng: &mut impl Rng) -> Self {
        Self::train_with_model(&config.readout_model(), config, rng)
    }

    /// Trains against an explicit readout model — used for frequency-
    /// multiplexed channels, whose carriers differ per channel (§6.1: three
    /// qubits share each readout line).
    #[must_use]
    pub fn train_with_model(
        model: &ReadoutModel,
        config: &ArteryConfig,
        rng: &mut impl Rng,
    ) -> Self {
        let dataset = Dataset::generate(model, 0.5, config.train_pulses.max(8), rng);
        Self::train_with_pulses(model, config, dataset.pulses())
    }

    /// Trains from an explicit labelled pulse collection — the workflow the
    /// paper uses with its captured device dataset, and the right entry
    /// point for multiplexed channel views, where the training pulses must
    /// carry the same co-channel interference the predictor will see live.
    ///
    /// # Panics
    ///
    /// Panics when `pulses` lacks one of the two labels, or when a pulse is
    /// longer than the model's sample count (the trig-free demodulation
    /// path reads phasors from the model's precomputed phase table).
    #[must_use]
    pub fn train_with_pulses(
        model: &ReadoutModel,
        config: &ArteryConfig,
        pulses: &[ReadoutPulse],
    ) -> Self {
        let model = *model;
        let demod = Demodulator::for_model(&model, config.window_ns);
        let phases = model.phase_table();
        let centers = IqCenters::calibrate_with(pulses, &demod, &phases);
        let mut table = TrajectoryTable::new(config.k, config.time_buckets);
        for pulse in pulses {
            let states = centers.window_states_with(pulse, &demod, &phases);
            // Labels are what the hardware will *report* at readout end —
            // the predictor's job is to guess that report early.
            let label = centers.classify_full_with(pulse, &demod, &phases);
            table.train([(states.as_slice(), label)]);
        }
        Self {
            model,
            demod,
            centers,
            phases,
            table,
        }
    }

    /// The readout physics used for calibration.
    #[must_use]
    pub fn model(&self) -> &ReadoutModel {
        &self.model
    }

    /// The windowed demodulator.
    #[must_use]
    pub fn demod(&self) -> &Demodulator {
        &self.demod
    }

    /// The calibrated IQ cluster centers.
    #[must_use]
    pub fn centers(&self) -> &IqCenters {
        &self.centers
    }

    /// The trained trajectory state table.
    #[must_use]
    pub fn table(&self) -> &TrajectoryTable {
        &self.table
    }

    /// The precomputed carrier/demodulation phasors of the readout model —
    /// shared by the controller's synthesize/demodulate hot loop.
    #[must_use]
    pub fn phase_table(&self) -> &PhaseTable {
        &self.phases
    }

    /// Refines the state table with an additional labelled pulse — the
    /// cross-program dynamic update of §4.
    pub fn update_with(&mut self, pulse: &ReadoutPulse, label: bool) {
        let states = self
            .centers
            .window_states_with(pulse, &self.demod, &self.phases);
        self.table.train([(states.as_slice(), label)]);
    }
}

/// The predictor's committed decision for one shot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Window index at which the threshold was crossed.
    pub window: usize,
    /// The predicted branch.
    pub branch: bool,
    /// `P_predict_1` at the crossing.
    pub p_predict_1: f64,
}

/// Everything the predictor produced for one shot.
#[derive(Debug, Clone, PartialEq)]
pub struct ShotPrediction {
    /// Per-window probability stream (feeds the dynamic timing controller).
    pub updates: Vec<ProbabilityUpdate>,
    /// First threshold crossing, if any.
    pub decision: Option<Decision>,
}

impl ShotPrediction {
    /// Whether the shot committed to a branch before readout end.
    #[must_use]
    pub fn committed(&self) -> bool {
        self.decision.is_some()
    }
}

/// The per-program branch predictor: calibration data plus configuration.
#[derive(Debug, Clone)]
pub struct BranchPredictor<'a> {
    calibration: &'a Calibration,
    config: ArteryConfig,
    thresholds: Thresholds,
}

impl<'a> BranchPredictor<'a> {
    /// Creates a predictor over shared calibration data.
    #[must_use]
    pub fn new(calibration: &'a Calibration, config: &ArteryConfig) -> Self {
        Self {
            calibration,
            config: *config,
            thresholds: Thresholds::symmetric(config.theta),
        }
    }

    /// The active thresholds.
    #[must_use]
    pub fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    /// Runs the windowed prediction loop over a (complete, but analysed
    /// incrementally) readout pulse with the given per-site history prior.
    ///
    /// Decisions start at window `k − 1`, once the branch history registers
    /// are full.
    #[must_use]
    pub fn predict_shot(&self, pulse: &ReadoutPulse, p_history: f64) -> ShotPrediction {
        let cal = self.calibration;
        let states = cal
            .centers
            .window_states_with(pulse, &cal.demod, &cal.phases);
        self.predict_states(&states, p_history)
    }

    /// Zero-allocation [`Self::predict_shot`]: one fused
    /// demodulate+classify pass writes the window states into `states` and
    /// the probability walk into `updates`, both reused across shots.
    /// Bit-identical decisions and updates.
    ///
    /// # Panics
    ///
    /// Panics when the pulse is longer than the calibration's phase table.
    #[must_use]
    pub fn predict_shot_into(
        &self,
        pulse: &ReadoutPulse,
        p_history: f64,
        states: &mut Vec<bool>,
        updates: &mut Vec<ProbabilityUpdate>,
    ) -> Option<Decision> {
        let cal = self.calibration;
        cal.centers
            .window_states_into(pulse, &cal.demod, &cal.phases, states);
        self.predict_states_into(states, p_history, updates)
    }

    /// The per-window decision step over an already-classified window-state
    /// stream — the predictor's core loop, decoupled from readout physics.
    ///
    /// This is what trace replay (`artery-trace`) drives: a recorded shot
    /// stores exactly these preliminary classifications, so any predictor
    /// configuration can be re-evaluated without re-synthesizing or
    /// re-demodulating pulses. [`predict_shot`](Self::predict_shot) is the
    /// live path: it derives `states` from the in-flight pulse and delegates
    /// here, guaranteeing live and replayed decisions agree bit-for-bit.
    #[must_use]
    pub fn predict_states(&self, states: &[bool], p_history: f64) -> ShotPrediction {
        let mut updates = Vec::new();
        let decision = self.predict_states_into(states, p_history, &mut updates);
        ShotPrediction { updates, decision }
    }

    /// The §4 per-window fusion step shared by every probability walk: the
    /// trajectory-table lookup for window `w` of `n` (uniform when the
    /// feature is ablated) fused with the history feature `ph`.
    fn window_probability(&self, states: &[bool], w: usize, n: usize, ph: f64) -> f64 {
        let pr = if self.config.use_trajectory {
            let table = &self.calibration.table;
            table.p_read_1(table.bucket_of(w, n), table.pattern_of(&states[..=w]))
        } else {
            0.5
        };
        fuse(ph, pr)
    }

    /// The history feature: the per-site prior, or uniform when ablated.
    fn history_feature(&self, p_history: f64) -> f64 {
        if self.config.use_history {
            p_history
        } else {
            0.5
        }
    }

    /// Buffer-reusing [`Self::predict_states`]: clears and refills
    /// `updates` and returns the first threshold crossing.
    pub fn predict_states_into(
        &self,
        states: &[bool],
        p_history: f64,
        updates: &mut Vec<ProbabilityUpdate>,
    ) -> Option<Decision> {
        let n = states.len();
        updates.clear();
        updates.reserve(n.saturating_sub(self.config.k - 1));
        let mut decision = None;
        let ph = self.history_feature(p_history);
        for w in (self.config.k - 1)..n {
            let p = self.window_probability(states, w, n, ph);
            updates.push(ProbabilityUpdate {
                window: w,
                p_predict_1: p,
            });
            if decision.is_none() {
                if let Some(branch) = self.thresholds.decide(p) {
                    decision = Some(Decision {
                        window: w,
                        branch,
                        p_predict_1: p,
                    });
                    // The trigger has fired; remaining windows are only
                    // needed for the end-of-readout truth, not prediction.
                    break;
                }
            }
        }
        decision
    }

    /// The full per-window probability stream *without* the trigger's
    /// first-crossing early exit — used by the accuracy-versus-readout-time
    /// analysis (Fig. 15 a), where the decision is forced at a chosen time.
    #[must_use]
    pub fn probability_stream(
        &self,
        pulse: &ReadoutPulse,
        p_history: f64,
    ) -> Vec<ProbabilityUpdate> {
        let cal = self.calibration;
        let states = cal
            .centers
            .window_states_with(pulse, &cal.demod, &cal.phases);
        let n = states.len();
        let ph = self.history_feature(p_history);
        ((self.config.k - 1)..n)
            .map(|w| ProbabilityUpdate {
                window: w,
                p_predict_1: self.window_probability(&states, w, n, ph),
            })
            .collect()
    }

    /// The classification the hardware reports at readout end (ground truth
    /// for prediction correctness).
    #[must_use]
    pub fn final_classification(&self, pulse: &ReadoutPulse) -> bool {
        self.calibration.centers.classify_full_with(
            pulse,
            &self.calibration.demod,
            &self.calibration.phases,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_num::rng::rng_for;

    fn calibration() -> Calibration {
        let config = ArteryConfig {
            train_pulses: 600,
            ..ArteryConfig::paper()
        };
        Calibration::train(&config, &mut rng_for("pred/cal"))
    }

    #[test]
    fn skewed_history_fires_early() {
        let cal = calibration();
        let config = ArteryConfig::paper();
        let pred = BranchPredictor::new(&cal, &config);
        let mut rng = rng_for("pred/early");
        let pulse = cal.model().synthesize(false, &mut rng);
        // QEC-like prior: branch 1 almost never taken.
        let shot = pred.predict_shot(&pulse, 0.02);
        let d = shot.decision.expect("must commit");
        assert!(!d.branch);
        assert_eq!(d.window, config.k - 1, "should fire at the first lookup");
    }

    #[test]
    fn uniform_history_waits_for_trajectory() {
        let cal = calibration();
        let config = ArteryConfig::paper();
        let pred = BranchPredictor::new(&cal, &config);
        let mut rng = rng_for("pred/wait");
        let mut windows = Vec::new();
        for k in 0..40 {
            let pulse = cal.model().synthesize(k % 2 == 0, &mut rng);
            if let Some(d) = pred.predict_shot(&pulse, 0.5).decision {
                windows.push(d.window);
            }
        }
        assert!(!windows.is_empty());
        let mean_window = windows.iter().sum::<usize>() as f64 / windows.len() as f64;
        // With a 50/50 prior the decision should wait well past the first
        // lookup (window 5) — typically several hundred ns into the pulse.
        assert!(mean_window > 8.0, "mean decision window {mean_window}");
    }

    #[test]
    fn stream_prefix_matches_decision_walk_bit_for_bit() {
        // Pin for the shared per-window step: the early-exit decision walk
        // and the full probability stream must agree bit-for-bit on every
        // window the walk visited, for every feature ablation.
        let cal = calibration();
        for config in [
            ArteryConfig::paper(),
            ArteryConfig::history_only(),
            ArteryConfig::trajectory_only(),
        ] {
            let pred = BranchPredictor::new(&cal, &config);
            let mut rng = rng_for("pred/s2");
            for k in 0..20 {
                let pulse = cal.model().synthesize(k % 2 == 0, &mut rng);
                let p_history = 0.05 + 0.9 * (k as f64 / 19.0);
                let shot = pred.predict_shot(&pulse, p_history);
                let stream = pred.probability_stream(&pulse, p_history);
                assert!(shot.updates.len() <= stream.len());
                for (walked, streamed) in shot.updates.iter().zip(&stream) {
                    assert_eq!(walked.window, streamed.window);
                    assert_eq!(walked.p_predict_1.to_bits(), streamed.p_predict_1.to_bits());
                }
            }
        }
    }

    #[test]
    fn predictions_are_mostly_correct() {
        let cal = calibration();
        let config = ArteryConfig::paper();
        let pred = BranchPredictor::new(&cal, &config);
        let mut rng = rng_for("pred/acc");
        let mut correct = 0usize;
        let mut committed = 0usize;
        const N: usize = 400;
        for k in 0..N {
            let state = k % 2 == 0;
            let pulse = cal.model().synthesize(state, &mut rng);
            let reported = pred.final_classification(&pulse);
            if let Some(d) = pred.predict_shot(&pulse, 0.5).decision {
                committed += 1;
                correct += usize::from(d.branch == reported);
            }
        }
        assert!(committed > N / 2, "committed only {committed}/{N}");
        let acc = correct as f64 / committed as f64;
        assert!(acc > 0.85, "prediction accuracy {acc}");
    }

    #[test]
    fn history_only_mode_ignores_pulse() {
        let cal = calibration();
        let config = ArteryConfig::history_only();
        let pred = BranchPredictor::new(&cal, &config);
        let mut rng = rng_for("pred/honly");
        let pulse = cal.model().synthesize(true, &mut rng);
        // History says 0 strongly; trajectory says 1 — history must win.
        let shot = pred.predict_shot(&pulse, 0.03);
        let d = shot.decision.expect("commit from history");
        assert!(!d.branch);
        // With a uniform prior, history-only can never commit.
        assert!(pred.predict_shot(&pulse, 0.5).decision.is_none());
    }

    #[test]
    fn trajectory_only_mode_ignores_history() {
        let cal = calibration();
        let config = ArteryConfig::trajectory_only();
        let pred = BranchPredictor::new(&cal, &config);
        let mut rng = rng_for("pred/tonly");
        let pulse = cal.model().synthesize(true, &mut rng);
        let with_skew = pred.predict_shot(&pulse, 0.01);
        let with_uniform = pred.predict_shot(&pulse, 0.5);
        assert_eq!(with_skew.decision, with_uniform.decision);
    }

    #[test]
    fn updates_start_after_register_fills() {
        let cal = calibration();
        let config = ArteryConfig::paper();
        let pred = BranchPredictor::new(&cal, &config);
        let mut rng = rng_for("pred/updates");
        let pulse = cal.model().synthesize(false, &mut rng);
        let shot = pred.predict_shot(&pulse, 0.5);
        assert_eq!(shot.updates[0].window, config.k - 1);
    }

    #[test]
    fn predict_states_matches_predict_shot() {
        let cal = calibration();
        let config = ArteryConfig::paper();
        let pred = BranchPredictor::new(&cal, &config);
        let mut rng = rng_for("pred/states");
        for k in 0..20 {
            let pulse = cal.model().synthesize(k % 2 == 0, &mut rng);
            let states = cal.centers().window_states(&pulse, cal.demod());
            for ph in [0.05, 0.5, 0.95] {
                assert_eq!(
                    pred.predict_states(&states, ph),
                    pred.predict_shot(&pulse, ph)
                );
            }
        }
    }

    #[test]
    fn predict_states_on_short_stream_never_commits() {
        let cal = calibration();
        let config = ArteryConfig::paper();
        let pred = BranchPredictor::new(&cal, &config);
        // Fewer windows than history registers: no lookup can happen.
        let shot = pred.predict_states(&[true; 3], 0.01);
        assert!(shot.updates.is_empty());
        assert!(shot.decision.is_none());
        let empty = pred.predict_states(&[], 0.5);
        assert!(empty.updates.is_empty() && empty.decision.is_none());
    }

    #[test]
    fn scratch_prediction_is_bit_identical() {
        let cal = calibration();
        let config = ArteryConfig::paper();
        let pred = BranchPredictor::new(&cal, &config);
        let mut rng = rng_for("pred/scratch");
        let mut states = Vec::new();
        let mut updates = Vec::new();
        for k in 0..20 {
            let pulse = cal.model().synthesize(k % 2 == 0, &mut rng);
            for ph in [0.05, 0.5, 0.95] {
                let shot = pred.predict_shot(&pulse, ph);
                let decision = pred.predict_shot_into(&pulse, ph, &mut states, &mut updates);
                assert_eq!(decision, shot.decision);
                assert_eq!(updates, shot.updates);
                assert_eq!(states, cal.centers().window_states(&pulse, cal.demod()));
            }
        }
    }

    #[test]
    fn dynamic_update_refines_table() {
        let mut cal = calibration();
        let mut rng = rng_for("pred/update");
        let before = cal.table().memory_bytes();
        let pulse = cal.model().synthesize(true, &mut rng);
        cal.update_with(&pulse, true);
        assert_eq!(cal.table().memory_bytes(), before); // same structure
    }
}
