//! The Bayesian fusion of history and trajectory probabilities (§4).

use artery_num::clamp_probability;

/// Probability floor used to keep the odds-product well-defined.
const FLOOR: f64 = 1e-6;

/// Combines the historical probability `p_history` and the
/// trajectory-derived probability `p_read` into `P_predict_1`:
///
/// ```text
/// P = (Ph·Pr) / (Ph·Pr + (1−Ph)(1−Pr))
/// ```
///
/// This is a naive-Bayes odds product with a uniform prior split between the
/// two features. Inputs are clamped away from {0, 1} for numerical safety.
///
/// # Examples
///
/// ```
/// let p = artery_core::predictor::fuse(0.7, 0.95);
/// assert!((p - 0.9779).abs() < 1e-3); // the paper's worked example
/// ```
#[must_use]
pub fn fuse(p_history: f64, p_read: f64) -> f64 {
    let ph = clamp_probability(p_history, FLOOR);
    let pr = clamp_probability(p_read, FLOOR);
    let joint1 = ph * pr;
    let joint0 = (1.0 - ph) * (1.0 - pr);
    joint1 / (joint1 + joint0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_num::approx_eq;

    #[test]
    fn paper_worked_example() {
        // §4: Ph = 0.7, Pr = 0.95 → ≈ 0.98 (the paper rounds to 0.97 with a
        // typo in the denominator; the formula gives 0.665/0.68).
        let p = fuse(0.7, 0.95);
        assert!(approx_eq(p, 0.665 / 0.68, 1e-12));
    }

    #[test]
    fn uniform_history_is_identity() {
        for pr in [0.1, 0.35, 0.5, 0.8, 0.99] {
            assert!(approx_eq(fuse(0.5, pr), pr, 1e-9));
        }
    }

    #[test]
    fn uniform_read_is_identity() {
        for ph in [0.05, 0.4, 0.9] {
            assert!(approx_eq(fuse(ph, 0.5), ph, 1e-9));
        }
    }

    #[test]
    fn symmetric_under_complement() {
        // P(1 | ph, pr) = 1 − P(1 | 1−ph, 1−pr).
        let p = fuse(0.8, 0.3);
        let q = fuse(0.2, 0.7);
        assert!(approx_eq(p, 1.0 - q, 1e-12));
    }

    #[test]
    fn monotone_in_both_arguments() {
        assert!(fuse(0.6, 0.7) < fuse(0.7, 0.7));
        assert!(fuse(0.6, 0.7) < fuse(0.6, 0.8));
    }

    #[test]
    fn bounded_and_saturating() {
        let p = fuse(1.0, 1.0);
        assert!(p > 0.999999 && p <= 1.0);
        let q = fuse(0.0, 0.0);
        assert!(q < 1e-6);
        assert!(fuse(0.0, 1.0).is_finite());
    }

    #[test]
    fn agreement_amplifies_confidence() {
        // Two agreeing weak signals beat either alone.
        let single = 0.7;
        assert!(fuse(single, single) > single);
        // Two disagreeing equal signals cancel to 0.5.
        assert!(approx_eq(fuse(0.7, 0.3), 0.5, 1e-9));
    }
}
