//! The pluggable per-site predictor interface — the CBP wrapper shape.
//!
//! The championship-branch-prediction world the paper borrows from scores
//! predictors through one narrow interface: *predict* on the information
//! available before the branch resolves, *update* on the resolved outcome,
//! and a *spec* describing the contender. [`SitePredictor`] is that
//! interface for quantum feedback: per shot the controller (or the trace
//! replayer) hands the predictor everything the live hardware would have —
//! the feedback site, the per-window preliminary classifications of the
//! in-flight readout pulse, the cumulative IQ trajectory and the site's
//! historical prior — and the predictor walks the windows and may commit to
//! a branch. After the readout completes, the resolved outcome trains the
//! predictor.
//!
//! [`ArteryController`](crate::ArteryController) accepts any boxed
//! implementation via
//! [`with_zoo_predictor`](crate::ArteryController::with_zoo_predictor);
//! the `artery-predictors` crate ships the zoo (the paper's Bayesian
//! predictor behind this trait, a TAGE history predictor, baselines and an
//! oracle) plus the trace-driven leaderboard that ranks them.

use artery_circuit::FeedbackSite;
use artery_hw::trigger::ProbabilityUpdate;
use artery_readout::IqPoint;

use super::Decision;

/// Everything a predictor may look at while one shot's readout is in
/// flight, borrowed from the controller's scratch buffers (live path) or a
/// recorded trace event (replay path).
#[derive(Debug, Clone, Copy)]
pub struct ShotView<'a> {
    /// The feedback site being resolved.
    pub site: FeedbackSite,
    /// Per-window preliminary classifications of the in-flight pulse.
    pub states: &'a [bool],
    /// Cumulative IQ trajectory at each window boundary. May be empty when
    /// the source (a slim trace) did not retain IQ; predictors that need it
    /// must degrade to "no commitment" rather than panic.
    pub iq: &'a [IqPoint],
    /// The site's historical prior `P_history_1` at shot start.
    pub p_history: f64,
    /// The classification the hardware will report at readout end.
    ///
    /// This is the *future*: it exists so an oracle upper bound can be
    /// scored alongside real predictors, exactly as CBP traces carry the
    /// resolved direction. Every non-oracle predictor must ignore it.
    pub truth: bool,
}

/// Descriptor of one predictor in the zoo — the CBP "spec" line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredictorSpec {
    /// Leaderboard name, e.g. `"tage"`.
    pub name: String,
    /// One-line description of the algorithm and its configuration.
    pub detail: String,
    /// Whether the predictor reads [`ShotView::truth`] (oracle bounds are
    /// ranked but disqualified from "best real predictor" claims).
    pub is_oracle: bool,
}

/// A hot-swappable per-site branch predictor (the CBP wrapper shape:
/// predict / update / spec).
///
/// Implementations must be deterministic: the same sequence of
/// [`predict`](Self::predict) / [`update`](Self::update) /
/// [`track_other`](Self::track_other) calls must leave identical state and
/// produce identical decisions, so sharded replay stays bit-identical for
/// any worker count. (`Send + Sync` because harnesses share a prototype
/// zoo across shard workers, each taking its own [`clone_box`](Self::clone_box).)
pub trait SitePredictor: std::fmt::Debug + Send + Sync {
    /// The descriptor shown on the leaderboard.
    fn spec(&self) -> PredictorSpec;

    /// Walks the demodulation windows of one shot and returns the first
    /// commitment, if any. `updates` is cleared and refilled with the
    /// per-window probability stream the predictor produced (empty is fine
    /// for predictors that do not expose one).
    fn predict(
        &mut self,
        view: &ShotView<'_>,
        updates: &mut Vec<ProbabilityUpdate>,
    ) -> Option<Decision>;

    /// Trains on the resolved outcome of a shot this predictor was asked to
    /// [`predict`](Self::predict).
    fn update(&mut self, site: FeedbackSite, outcome: bool);

    /// Observes the resolved outcome of a shot the controller *never*
    /// predicted (a case-4 site): the outcome is real history even though
    /// no prediction was scored. Defaults to [`update`](Self::update).
    fn track_other(&mut self, site: FeedbackSite, outcome: bool) {
        self.update(site, outcome);
    }

    /// Clones the predictor with its full training state — shard replay
    /// hands each worker its own copy.
    fn clone_box(&self) -> Box<dyn SitePredictor>;
}

impl Clone for Box<dyn SitePredictor> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal conforming implementation used to pin the object-safety
    /// and default-method contract.
    #[derive(Debug, Clone, Default)]
    struct Counting {
        updates: u64,
    }

    impl SitePredictor for Counting {
        fn spec(&self) -> PredictorSpec {
            PredictorSpec {
                name: "counting".into(),
                detail: "test stub".into(),
                is_oracle: false,
            }
        }

        fn predict(
            &mut self,
            _view: &ShotView<'_>,
            updates: &mut Vec<ProbabilityUpdate>,
        ) -> Option<Decision> {
            updates.clear();
            None
        }

        fn update(&mut self, _site: FeedbackSite, _outcome: bool) {
            self.updates += 1;
        }

        fn clone_box(&self) -> Box<dyn SitePredictor> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn trait_is_object_safe_and_boxes_clone() {
        let mut boxed: Box<dyn SitePredictor> = Box::new(Counting::default());
        boxed.update(FeedbackSite(0), true);
        let mut cloned = boxed.clone();
        // The clone carries the training state, and the two diverge after.
        cloned.update(FeedbackSite(0), false);
        assert_eq!(boxed.spec().name, "counting");
        assert_eq!(cloned.spec().name, "counting");
    }

    #[test]
    fn default_track_other_delegates_to_update() {
        let mut p = Counting::default();
        p.track_other(FeedbackSite(0), true);
        assert_eq!(p.updates, 1);
    }

    #[test]
    fn view_is_copy_and_borrows() {
        let states = [true, false];
        let view = ShotView {
            site: FeedbackSite(3),
            states: &states,
            iq: &[],
            p_history: 0.5,
            truth: true,
        };
        let copy = view;
        assert_eq!(copy.states, view.states);
        assert_eq!(copy.site, FeedbackSite(3));
    }
}
