//! Per-site historical branch statistics.
//!
//! "A quantum program usually has multiple shots" (§4): the outcome
//! distribution at a feedback site is stable across shots, so a running
//! Laplace-smoothed frequency is a strong prior. Updating it is one counter
//! increment after each shot — the paper's "no latency" claim.

use artery_circuit::FeedbackSite;
use serde::{Deserialize, Serialize};

/// Running `P_history_1` estimates for every feedback site of a program.
///
/// Site indices are small and dense (they number the feedback points of
/// one circuit), so the counters live in a direct-indexed vector: the
/// per-resolve prior lookup and the per-shot increment — the §4 "no
/// latency" claim — are an array access, and restoring a trace-v2 block
/// seed ([`Self::set_counts`] per site) costs no hashing. A site that has
/// never been observed holds `(0, 0)`, which is indistinguishable from
/// being absent (both give the uniform prior).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistoryTracker {
    counts: Vec<(u64, u64)>, // indexed by site → (ones, total)
}

impl HistoryTracker {
    /// Creates an empty tracker (all sites start at the uniform prior 0.5).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Laplace-smoothed probability of reading 1 at `site`:
    /// `(ones + 1) / (total + 2)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use artery_circuit::FeedbackSite;
    /// use artery_core::predictor::HistoryTracker;
    ///
    /// let mut h = HistoryTracker::new();
    /// assert_eq!(h.p_history_1(FeedbackSite(0)), 0.5);
    /// h.observe(FeedbackSite(0), true);
    /// h.observe(FeedbackSite(0), true);
    /// assert_eq!(h.p_history_1(FeedbackSite(0)), 0.75);
    /// ```
    #[must_use]
    pub fn p_history_1(&self, site: FeedbackSite) -> f64 {
        let (ones, total) = self.counts.get(site.0).copied().unwrap_or((0, 0));
        (ones as f64 + 1.0) / (total as f64 + 2.0)
    }

    /// Grows the vector so `site` is indexable.
    fn slot(&mut self, site: usize) -> &mut (u64, u64) {
        if site >= self.counts.len() {
            self.counts.resize(site + 1, (0, 0));
        }
        &mut self.counts[site]
    }

    /// Records one observed outcome at `site`.
    pub fn observe(&mut self, site: FeedbackSite, outcome: bool) {
        let entry = self.slot(site.0);
        entry.0 += u64::from(outcome);
        entry.1 += 1;
    }

    /// Number of shots observed at `site`.
    #[must_use]
    pub fn shots(&self, site: FeedbackSite) -> u64 {
        self.counts.get(site.0).map_or(0, |(_, total)| *total)
    }

    /// Warm-starts a site from an external estimate, weighted as
    /// `weight` pseudo-observations (used when a program reuses statistics
    /// from a previous run, as §4 describes for cross-program updates).
    pub fn seed(&mut self, site: FeedbackSite, p1: f64, weight: u64) {
        let ones = (p1.clamp(0.0, 1.0) * weight as f64).round() as u64;
        *self.slot(site.0) = (ones, weight);
    }

    /// Installs a site's raw counters exactly, with none of [`Self::seed`]'s
    /// rounding. Trace-v2 block headers snapshot these counters so a block
    /// replay can resume mid-stream with bit-identical priors.
    ///
    /// # Panics
    ///
    /// Panics when `ones > total`.
    pub fn set_counts(&mut self, site: FeedbackSite, ones: u64, total: u64) {
        assert!(ones <= total, "ones ({ones}) exceeds total ({total})");
        *self.slot(site.0) = (ones, total);
    }

    /// Every observed site's `(site, ones, total)` counters, sorted by site
    /// index — the exact state [`Self::set_counts`] restores.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(usize, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &(_, total))| total > 0)
            .map(|(site, &(ones, total))| (site, ones, total))
            .collect()
    }

    /// Clears all statistics.
    pub fn reset(&mut self) {
        self.counts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unseen_site_is_uniform() {
        let h = HistoryTracker::new();
        assert_eq!(h.p_history_1(FeedbackSite(7)), 0.5);
        assert_eq!(h.shots(FeedbackSite(7)), 0);
    }

    #[test]
    fn converges_to_empirical_rate() {
        let mut h = HistoryTracker::new();
        for k in 0..1000 {
            h.observe(FeedbackSite(0), k % 10 == 0); // 10 % ones
        }
        let p = h.p_history_1(FeedbackSite(0));
        assert!((p - 0.1).abs() < 0.01, "p = {p}");
        assert_eq!(h.shots(FeedbackSite(0)), 1000);
    }

    #[test]
    fn sites_are_independent() {
        let mut h = HistoryTracker::new();
        h.observe(FeedbackSite(0), true);
        assert_eq!(h.p_history_1(FeedbackSite(1)), 0.5);
    }

    #[test]
    fn seed_sets_prior() {
        let mut h = HistoryTracker::new();
        h.seed(FeedbackSite(0), 0.02, 1000);
        let p = h.p_history_1(FeedbackSite(0));
        assert!((p - 0.02).abs() < 0.002, "p = {p}");
    }

    #[test]
    fn set_counts_round_trips_through_snapshot() {
        let mut h = HistoryTracker::new();
        h.observe(FeedbackSite(3), true);
        h.observe(FeedbackSite(3), false);
        h.observe(FeedbackSite(0), true);
        let snap = h.snapshot();
        assert_eq!(snap, vec![(0, 1, 1), (3, 1, 2)]);

        let mut restored = HistoryTracker::new();
        for (site, ones, total) in snap {
            restored.set_counts(FeedbackSite(site), ones, total);
        }
        assert_eq!(restored, h);
        assert_eq!(
            restored.p_history_1(FeedbackSite(3)),
            h.p_history_1(FeedbackSite(3))
        );
    }

    #[test]
    #[should_panic(expected = "exceeds total")]
    fn set_counts_rejects_impossible_counters() {
        let mut h = HistoryTracker::new();
        h.set_counts(FeedbackSite(0), 5, 3);
    }

    #[test]
    fn reset_forgets() {
        let mut h = HistoryTracker::new();
        h.observe(FeedbackSite(0), true);
        h.reset();
        assert_eq!(h.p_history_1(FeedbackSite(0)), 0.5);
    }

    #[test]
    fn probability_never_saturates() {
        let mut h = HistoryTracker::new();
        for _ in 0..10_000 {
            h.observe(FeedbackSite(0), true);
        }
        let p = h.p_history_1(FeedbackSite(0));
        assert!(p < 1.0 && p > 0.999);
    }
}
