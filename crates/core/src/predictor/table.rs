//! The `<trajectory, P_read_1>` state table (§4, Fig. 6 (b)).
//!
//! The branch history registers hold the preliminary classifications of the
//! `k` most recent demodulation windows; that k-bit pattern indexes a BRAM
//! table whose entries estimate `P_read_1` — the probability that the
//! readout will ultimately report 1 given the trajectory seen so far. The
//! table is pre-generated from training pulses when the hardware is
//! initialized and can be refined across programs.
//!
//! **Deviation from the paper (documented in DESIGN.md):** the same k-bit
//! pattern is far more reliable late in the readout than early (cumulative
//! integration shrinks the noise as `1/√t`), so a table indexed by the
//! pattern alone over-estimates the confidence of early windows. We
//! therefore index by `(time bucket, pattern)` with a small number of
//! coarse time buckets (default 8). This keeps the O(1) lookup and the BRAM
//! scale of the paper's `2^(k−3)(k+16)`-byte formula (multiplied by the
//! bucket count) while reproducing the accuracy-versus-readout-time
//! behaviour of Fig. 15 (a).

use serde::{Deserialize, Serialize};

/// A time-bucketed trajectory state table with Laplace-smoothed
/// probabilities. `buckets × 2^k` entries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryTable {
    k: usize,
    buckets: usize,
    ones: Vec<u64>,
    totals: Vec<u64>,
}

impl TrajectoryTable {
    /// Creates an empty table for `k` branch history registers and
    /// `buckets` coarse time buckets.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= k <= 20` and `buckets >= 1`.
    #[must_use]
    pub fn new(k: usize, buckets: usize) -> Self {
        assert!((1..=20).contains(&k), "k must be in 1..=20");
        assert!(buckets >= 1, "at least one time bucket");
        Self {
            k,
            buckets,
            ones: vec![0; buckets << k],
            totals: vec![0; buckets << k],
        }
    }

    /// Number of branch history registers.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of time buckets.
    #[must_use]
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Number of table entries (`buckets · 2^k`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ones.len()
    }

    /// Whether the table has no entries (never true after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ones.is_empty()
    }

    /// Packs the most recent `k` window classifications into a k-bit
    /// pattern. The last element of `recent` is the newest classification
    /// and becomes the least-significant bit.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `k` states are provided.
    #[must_use]
    pub fn pattern_of(&self, recent: &[bool]) -> usize {
        assert!(recent.len() >= self.k, "need at least k window states");
        recent[recent.len() - self.k..]
            .iter()
            .fold(0usize, |acc, &b| (acc << 1) | usize::from(b))
    }

    /// The time bucket of window `w` out of `num_windows`.
    ///
    /// # Panics
    ///
    /// Panics when `w >= num_windows`.
    #[must_use]
    pub fn bucket_of(&self, w: usize, num_windows: usize) -> usize {
        assert!(w < num_windows, "window index out of range");
        (w * self.buckets) / num_windows
    }

    fn index(&self, bucket: usize, pattern: usize) -> usize {
        assert!(bucket < self.buckets, "bucket out of range");
        assert!(pattern < (1 << self.k), "pattern out of range");
        (bucket << self.k) | pattern
    }

    /// Records that a pulse showing `pattern` in time `bucket` was finally
    /// read out as `label`.
    ///
    /// # Panics
    ///
    /// Panics when bucket or pattern is out of range.
    pub fn record(&mut self, bucket: usize, pattern: usize, label: bool) {
        let i = self.index(bucket, pattern);
        self.ones[i] += u64::from(label);
        self.totals[i] += 1;
    }

    /// Trains the table from labelled window-classification sequences: every
    /// position `w ≥ k−1` of every sequence contributes one observation.
    pub fn train<'a>(&mut self, sequences: impl IntoIterator<Item = (&'a [bool], bool)>) {
        for (states, label) in sequences {
            let n = states.len();
            for end in self.k..=n {
                let pattern = self.pattern_of(&states[..end]);
                let bucket = self.bucket_of(end - 1, n);
                self.record(bucket, pattern, label);
            }
        }
    }

    /// Laplace-smoothed `P_read_1` for a `(bucket, pattern)` state.
    ///
    /// # Panics
    ///
    /// Panics when bucket or pattern is out of range.
    #[must_use]
    pub fn p_read_1(&self, bucket: usize, pattern: usize) -> f64 {
        let i = self.index(bucket, pattern);
        (self.ones[i] as f64 + 1.0) / (self.totals[i] as f64 + 2.0)
    }

    /// Number of training observations behind a state's estimate.
    #[must_use]
    pub fn support(&self, bucket: usize, pattern: usize) -> u64 {
        self.totals[self.index(bucket, pattern)]
    }

    /// BRAM footprint in bytes: the paper's per-table formula
    /// `2^(k−3)·(k+16)` times the bucket count.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.buckets * (1usize << self.k.saturating_sub(3)) * (self.k + 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_packing_is_msb_oldest() {
        let t = TrajectoryTable::new(3, 1);
        // oldest … newest = 1,0,1 → 0b101.
        assert_eq!(t.pattern_of(&[true, false, true]), 0b101);
        // Longer history uses only the last k entries.
        assert_eq!(t.pattern_of(&[false, false, true, true, true]), 0b111);
    }

    #[test]
    #[should_panic(expected = "at least k")]
    fn short_history_panics() {
        let t = TrajectoryTable::new(4, 1);
        let _ = t.pattern_of(&[true]);
    }

    #[test]
    fn bucket_mapping_covers_range() {
        let t = TrajectoryTable::new(6, 8);
        assert_eq!(t.bucket_of(0, 66), 0);
        assert_eq!(t.bucket_of(65, 66), 7);
        // Monotone.
        let mut prev = 0;
        for w in 0..66 {
            let b = t.bucket_of(w, 66);
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn untrained_states_are_uniform() {
        let t = TrajectoryTable::new(6, 4);
        for b in 0..4 {
            assert_eq!(t.p_read_1(b, 0b101010), 0.5);
        }
    }

    #[test]
    fn training_sharpens_probabilities() {
        let mut t = TrajectoryTable::new(2, 1);
        for _ in 0..100 {
            t.record(0, 0b11, true);
            t.record(0, 0b00, false);
        }
        t.record(0, 0b11, false);
        assert!(t.p_read_1(0, 0b11) > 0.95);
        assert!(t.p_read_1(0, 0b00) < 0.05);
        assert_eq!(t.support(0, 0b11), 101);
    }

    #[test]
    fn buckets_separate_time_reliability() {
        let mut t = TrajectoryTable::new(2, 2);
        // Early all-ones are unreliable (half wrong), late all-ones certain.
        for _ in 0..50 {
            t.record(0, 0b11, true);
            t.record(0, 0b11, false);
            t.record(1, 0b11, true);
        }
        assert!((t.p_read_1(0, 0b11) - 0.5).abs() < 0.05);
        assert!(t.p_read_1(1, 0b11) > 0.9);
    }

    #[test]
    fn train_consumes_all_suffixes() {
        let mut t = TrajectoryTable::new(2, 1);
        let seq = [true, true, false];
        // Positions: [t,t] and [t,f] → two observations.
        t.train([(seq.as_slice(), true)]);
        assert_eq!(t.support(0, 0b11), 1);
        assert_eq!(t.support(0, 0b10), 1);
        assert_eq!(t.support(0, 0b00), 0);
    }

    #[test]
    fn memory_formula_matches_paper_per_bucket() {
        assert_eq!(TrajectoryTable::new(6, 1).memory_bytes(), 176);
        assert_eq!(TrajectoryTable::new(6, 8).memory_bytes(), 8 * 176);
        assert_eq!(TrajectoryTable::new(8, 1).memory_bytes(), 32 * 24);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_panics() {
        let _ = TrajectoryTable::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "time bucket")]
    fn zero_buckets_panics() {
        let _ = TrajectoryTable::new(6, 0);
    }

    #[test]
    fn len_is_buckets_times_patterns() {
        assert_eq!(TrajectoryTable::new(6, 8).len(), 512);
        assert!(!TrajectoryTable::new(1, 1).is_empty());
    }
}
