//! Per-benchmark threshold tuning (§6.6, Fig. 17).
//!
//! "Adjusting the tolerance threshold for each benchmark is recommended":
//! the paper evaluates candidate thresholds on the training pulses and picks
//! the one minimizing expected feedback latency, then applies it to the test
//! pulses. This module automates that procedure against the analytic latency
//! model — for each candidate θ it replays training shots through the
//! predictor and scores commits by their decision time and mispredicts by
//! the sequential-plus-recovery penalty.

use artery_hw::ControllerTiming;
use artery_readout::ReadoutPulse;
use rand::Rng;

use crate::config::ArteryConfig;
use crate::predictor::{BranchPredictor, Calibration};

/// Result of evaluating one candidate threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdScore {
    /// The candidate θ.
    pub theta: f64,
    /// Expected per-feedback latency on the training pulses, ns.
    pub expected_latency_ns: f64,
    /// Prediction accuracy over committed shots.
    pub accuracy: f64,
    /// Fraction of shots that committed before readout end.
    pub commit_rate: f64,
}

/// Tunes θ for a feedback site with branch prior `p1` using `train` pulses.
///
/// `recovery_ns` is the extra pulse time a misprediction costs at this site
/// (from the site's [`SiteAnalysis`](artery_circuit::analysis::SiteAnalysis)).
///
/// Returns the scores of every candidate (sorted as given) and the best
/// candidate's index.
///
/// # Panics
///
/// Panics when `candidates` or `train` is empty.
#[must_use]
pub fn tune_threshold(
    calibration: &Calibration,
    base: &ArteryConfig,
    candidates: &[f64],
    train: &[ReadoutPulse],
    p_history: f64,
    recovery_ns: f64,
) -> (Vec<ThresholdScore>, usize) {
    assert!(!candidates.is_empty(), "no candidate thresholds");
    assert!(!train.is_empty(), "no training pulses");
    let timing = ControllerTiming::new(base.hardware(), base.window_ns);
    let mut scores = Vec::with_capacity(candidates.len());
    for &theta in candidates {
        let config = ArteryConfig { theta, ..*base };
        let predictor = BranchPredictor::new(calibration, &config);
        let mut latency = 0.0;
        let mut committed = 0usize;
        let mut correct = 0usize;
        for pulse in train {
            let reported = predictor.final_classification(pulse);
            match predictor.predict_shot(pulse, p_history).decision {
                Some(d) if d.branch == reported => {
                    committed += 1;
                    correct += 1;
                    latency += timing.branch_start_ns(d.window, base.route_ns);
                }
                Some(_) => {
                    committed += 1;
                    latency += timing.misprediction_latency_ns() + recovery_ns;
                }
                None => latency += timing.sequential_latency_ns(),
            }
        }
        scores.push(ThresholdScore {
            theta,
            expected_latency_ns: latency / train.len() as f64,
            accuracy: if committed == 0 {
                1.0
            } else {
                correct as f64 / committed as f64
            },
            commit_rate: committed as f64 / train.len() as f64,
        });
    }
    let best = scores
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.expected_latency_ns.total_cmp(&b.1.expected_latency_ns))
        .map(|(i, _)| i)
        .expect("non-empty scores");
    (scores, best)
}

/// Convenience: tunes over the paper's candidate grid (0.70–0.99) with
/// freshly synthesized training pulses at prior `p1`.
#[must_use]
pub fn tune_for_prior(
    calibration: &Calibration,
    base: &ArteryConfig,
    p1: f64,
    train_pulses: usize,
    recovery_ns: f64,
    rng: &mut impl Rng,
) -> ThresholdScore {
    let candidates = [0.70, 0.75, 0.80, 0.85, 0.88, 0.91, 0.94, 0.97, 0.99];
    let train: Vec<ReadoutPulse> = (0..train_pulses.max(1))
        .map(|_| calibration.model().synthesize(rng.gen::<f64>() < p1, rng))
        .collect();
    let (scores, best) = tune_threshold(calibration, base, &candidates, &train, p1, recovery_ns);
    scores[best]
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_num::rng::rng_for;

    fn setup() -> (ArteryConfig, Calibration) {
        let config = ArteryConfig {
            train_pulses: 500,
            ..ArteryConfig::paper()
        };
        let cal = Calibration::train(&config, &mut rng_for("tune/cal"));
        (config, cal)
    }

    #[test]
    fn tuned_threshold_beats_extremes() {
        let (config, cal) = setup();
        let mut rng = rng_for("tune/pulses");
        let train: Vec<ReadoutPulse> = (0..300)
            .map(|k| cal.model().synthesize(k % 2 == 0, &mut rng))
            .collect();
        let candidates = [0.70, 0.85, 0.91, 0.99];
        let (scores, best) = tune_threshold(&cal, &config, &candidates, &train, 0.5, 60.0);
        assert_eq!(scores.len(), 4);
        let best_latency = scores[best].expected_latency_ns;
        // The tuned value must not be beaten by either extreme.
        assert!(best_latency <= scores[0].expected_latency_ns);
        assert!(best_latency <= scores[3].expected_latency_ns);
    }

    #[test]
    fn higher_thresholds_are_more_accurate() {
        let (config, cal) = setup();
        let mut rng = rng_for("tune/acc");
        let train: Vec<ReadoutPulse> = (0..400)
            .map(|k| cal.model().synthesize(k % 2 == 0, &mut rng))
            .collect();
        let (scores, _) = tune_threshold(&cal, &config, &[0.70, 0.99], &train, 0.5, 60.0);
        assert!(
            scores[1].accuracy >= scores[0].accuracy,
            "θ=0.99 accuracy {:.3} below θ=0.70 {:.3}",
            scores[1].accuracy,
            scores[0].accuracy
        );
        assert!(scores[1].commit_rate <= scores[0].commit_rate);
    }

    #[test]
    fn skewed_prior_tunes_to_early_commitment() {
        let (config, cal) = setup();
        let best = tune_for_prior(&cal, &config, 0.02, 300, 60.0, &mut rng_for("tune/skew"));
        // Strongly skewed priors commit on (almost) every shot and keep
        // latency well below sequential.
        assert!(best.commit_rate > 0.9);
        assert!(best.expected_latency_ns < 1000.0);
    }

    #[test]
    #[should_panic(expected = "no candidate")]
    fn empty_candidates_panic() {
        let (config, cal) = setup();
        let pulse = cal.model().synthesize(false, &mut rng_for("tune/one"));
        let _ = tune_threshold(&cal, &config, &[], &[pulse], 0.5, 0.0);
    }
}
