//! Tunables of the ARTERY predictor and controller.

use artery_hw::HardwareParams;
use artery_readout::ReadoutModel;
use serde::{Deserialize, Serialize};

/// Configuration of an ARTERY deployment, defaulting to the paper's
/// evaluation settings (§6.1, Figs. 16–17).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArteryConfig {
    /// Demodulation window length, ns (default 30; swept in Fig. 16).
    pub window_ns: f64,
    /// Number of branch history registers `k` (default 6). The state table
    /// holds `2^k` entries.
    pub k: usize,
    /// Confidence threshold θ applied symmetrically to both branches
    /// (default 0.91; swept in Fig. 17).
    pub theta: f64,
    /// Coarse time buckets indexing the state table alongside the k-bit
    /// pattern (default 8; see `predictor::TrajectoryTable` for why this
    /// deviates from the paper's pattern-only index).
    pub time_buckets: usize,
    /// Pulses used to pre-generate the state table when the hardware is
    /// initialized (paper: 1,000 training sequences).
    pub train_pulses: usize,
    /// Use the historical branch distribution feature (ablated in Fig. 14).
    pub use_history: bool,
    /// Use the readout-trajectory feature (ablated in Fig. 14).
    pub use_trajectory: bool,
    /// Interconnect latency from the classifying FPGA to the branch
    /// decider, ns (0 = same FPGA; §5.2 levels give 4/48/144).
    pub route_ns: f64,
    /// Readout pulse duration, ns (paper: 2 µs; §6.2 notes faster readouts
    /// would increase the acceleration ratio).
    pub readout_ns: f64,
}

impl ArteryConfig {
    /// The paper's configuration.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            window_ns: 30.0,
            k: 6,
            theta: 0.91,
            time_buckets: 8,
            train_pulses: 1000,
            use_history: true,
            use_trajectory: true,
            route_ns: 0.0,
            readout_ns: 2000.0,
        }
    }

    /// History-only ablation (Fig. 14: "relying solely on historical data").
    #[must_use]
    pub fn history_only() -> Self {
        Self {
            use_trajectory: false,
            ..Self::paper()
        }
    }

    /// Trajectory-only ablation (Fig. 14: "solely readout pulse analysis").
    #[must_use]
    pub fn trajectory_only() -> Self {
        Self {
            use_history: false,
            ..Self::paper()
        }
    }

    /// The hardware constants this configuration assumes.
    #[must_use]
    pub fn hardware(&self) -> HardwareParams {
        HardwareParams {
            readout_ns: self.readout_ns,
            ..HardwareParams::paper()
        }
    }

    /// The readout physics this configuration assumes (same SNR per unit
    /// time as the paper's platform, truncated to `readout_ns`).
    #[must_use]
    pub fn readout_model(&self) -> ReadoutModel {
        ReadoutModel {
            duration_ns: self.readout_ns,
            ..ReadoutModel::paper()
        }
    }

    /// State-table footprint in bytes, using the paper's BRAM formula
    /// `2^(k−3)·(k+16)` per time bucket (each of the `2^k` entries stores a
    /// `k`-bit tag and a 16-bit probability).
    #[must_use]
    pub fn table_bytes(&self) -> usize {
        self.time_buckets * (1usize << self.k.saturating_sub(3)) * (self.k + 16)
    }
}

impl Default for ArteryConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ArteryConfig::default();
        assert_eq!(c.window_ns, 30.0);
        assert_eq!(c.k, 6);
        assert_eq!(c.theta, 0.91);
        assert_eq!(c.train_pulses, 1000);
        assert!(c.use_history && c.use_trajectory);
    }

    #[test]
    fn ablations_flip_one_feature() {
        assert!(!ArteryConfig::history_only().use_trajectory);
        assert!(ArteryConfig::history_only().use_history);
        assert!(!ArteryConfig::trajectory_only().use_history);
        assert!(ArteryConfig::trajectory_only().use_trajectory);
    }

    #[test]
    fn table_bytes_formula() {
        // k = 6: 2^3 · 22 = 176 bytes per bucket, 8 buckets.
        assert_eq!(ArteryConfig::paper().table_bytes(), 8 * 176);
    }
}
