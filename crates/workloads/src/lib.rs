//! The paper's benchmark circuits (§6.1).
//!
//! Six dynamic-circuit workloads drive the evaluation:
//!
//! * [`qrw`] — quantum random walk on a coin + position pair; branch priors
//!   are near 50/50, the hardest case for history-only prediction,
//! * [`rcnot`] — long-range CNOT built from mid-circuit measurements and
//!   feed-forward Pauli corrections (Bäumer et al., cited as [4]),
//! * [`dqt`] — deterministic quantum teleportation across a relay chain
//!   (Steffen et al., [55]),
//! * [`rus_qnn`] — repeat-until-success quantum-neuron circuits (Moreira et
//!   al., [36]) with skewed success priors,
//! * [`active_reset`] — measurement-plus-conditional-flip reset on many
//!   qubits simultaneously (case 3: the branch targets the measured qubit),
//! * [`random_feedback`] — random circuits with 25–150 gates surrounding a
//!   feedback, matching the paper's random benchmark.
//!
//! Each generator returns a plain [`Circuit`]; the [`Benchmark`] enum gives
//! the harnesses a uniform way to enumerate the paper's sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use artery_circuit::{Circuit, CircuitBuilder, Gate, Qubit};
use rand::Rng;

/// Quantum random walk: `steps` iterations of coin flip → measure coin →
/// conditionally shift the position qubit.
///
/// Qubit 0 is the coin, qubit 1 the (one-bit) position. Every step measures
/// the coin in superposition, so branch outcomes are close to uniform — the
/// workload that stresses real-time trajectory prediction the most.
///
/// # Panics
///
/// Panics when `steps` is zero.
///
/// # Examples
///
/// ```
/// let c = artery_workloads::qrw(5);
/// assert_eq!(c.feedback_count(), 5);
/// assert_eq!(c.num_qubits(), 2);
/// ```
#[must_use]
pub fn qrw(steps: usize) -> Circuit {
    assert!(steps > 0, "qrw needs at least one step");
    let coin = Qubit(0);
    let pos = Qubit(1);
    let mut b = CircuitBuilder::new(2);
    for _ in 0..steps {
        b.gate(Gate::H, &[coin]);
        // Walk: move (flip position) on heads, stay on tails.
        b.feedback(coin).on_one(Gate::X, &[pos]).finish();
    }
    b.build()
}

/// Quantum random walk on a line of `2^position_bits` sites with a
/// feedback-driven coin: each step measures the coin and, on heads,
/// increments the position register modulo the line length. The two-qubit
/// [`qrw`] is the 1-bit special case the paper's Table 1 sweeps; this
/// variant gives the walk a real position distribution.
///
/// The conditional increment is exact on the basis set: for a 2-bit
/// register, `+1` is `b1 ^= b0; b0 ^= 1` — one CNOT (before the flip) plus
/// one X, both inside the feedback branch. Wider registers would need
/// Toffoli carries (T-gate decompositions), which none of the paper's
/// workloads require, so the register is capped at 2 bits.
///
/// Qubit 0 is the coin; qubits 1 (LSB) and 2 the position register.
///
/// # Panics
///
/// Panics when `steps` is zero or `position_bits` is outside `1..=2`.
#[must_use]
pub fn qrw_line(steps: usize, position_bits: usize) -> Circuit {
    assert!(steps > 0, "qrw needs at least one step");
    assert!(
        (1..=2).contains(&position_bits),
        "position register must be 1 or 2 bits (wider needs Toffoli carries)"
    );
    let coin = Qubit(0);
    let lsb = Qubit(1);
    let mut b = CircuitBuilder::new(1 + position_bits);
    for _ in 0..steps {
        b.gate(Gate::H, &[coin]);
        let mut fb = b.feedback(coin);
        if position_bits == 2 {
            // Carry into the MSB from the pre-increment LSB.
            fb = fb.on_one(Gate::CNOT, &[lsb, Qubit(2)]);
        }
        fb.on_one(Gate::X, &[lsb]).finish();
    }
    b.build()
}

/// Long-range CNOT through `depth` entangled relay segments.
///
/// Control is qubit 0; the target sits `depth + 1` qubits away. Each segment
/// extends the entanglement with H/CZ, measures the relay qubit in the X
/// basis and feeds the outcome forward as a Pauli correction on the target —
/// one feedback per segment, each case-1 pre-executable.
///
/// # Panics
///
/// Panics when `depth` is zero.
#[must_use]
pub fn rcnot(depth: usize) -> Circuit {
    assert!(depth > 0, "rcnot needs depth >= 1");
    let n = depth + 2;
    let mut b = CircuitBuilder::new(n);
    let control = Qubit(0);
    let target = Qubit(n - 1);
    // Control in superposition so every relay measurement is unbiased.
    b.gate(Gate::H, &[control]);
    // Entangle the chain: control — relays — target.
    for k in 0..n - 1 {
        b.gate(Gate::H, &[Qubit(k + 1)]);
        b.gate(Gate::CZ, &[Qubit(k), Qubit(k + 1)]);
    }
    // Measure each relay in the X basis; feed forward a Z (phase fix-up) on
    // the target for odd parity, and an X correction from the last relay.
    for k in 1..n - 1 {
        b.gate(Gate::H, &[Qubit(k)]);
        let correction = if k % 2 == 0 { Gate::Z } else { Gate::X };
        b.feedback(Qubit(k)).on_one(correction, &[target]).finish();
    }
    b.build()
}

/// Deterministic quantum teleportation across `distance` relay hops.
///
/// The payload starts on qubit 0 in a random-looking state; each hop
/// entangles the next pair, Bell-measures the carrier and applies the
/// feed-forward correction on the receiving qubit (one feedback per hop,
/// case 1).
///
/// # Panics
///
/// Panics when `distance` is zero.
#[must_use]
pub fn dqt(distance: usize) -> Circuit {
    assert!(distance > 0, "dqt needs distance >= 1");
    let n = distance + 1;
    let mut b = CircuitBuilder::new(n);
    // Payload state: something away from the poles.
    b.gate(Gate::RY(1.2), &[Qubit(0)]);
    b.gate(Gate::RZ(0.7), &[Qubit(0)]);
    for hop in 0..distance {
        let from = Qubit(hop);
        let to = Qubit(hop + 1);
        // Entangle carrier and receiver, then Bell-measure the carrier.
        b.gate(Gate::H, &[to]);
        b.gate(Gate::CZ, &[from, to]);
        b.gate(Gate::H, &[from]);
        // Feed-forward correction on the receiver.
        b.feedback(from).on_one(Gate::Z, &[to]).finish();
    }
    b.build()
}

/// Repeat-until-success QNN circuit with `cycles` RUS rounds.
///
/// Each round rotates the ancilla, entangles it with the data qubit and
/// measures it; outcome 1 signals failure and triggers the recovery rotation
/// on the data qubit. Success priors are skewed (≈ cos²(θ/2)), giving the
/// history predictor real leverage.
///
/// # Panics
///
/// Panics when `cycles` is zero.
#[must_use]
pub fn rus_qnn(cycles: usize) -> Circuit {
    assert!(cycles > 0, "rus_qnn needs at least one cycle");
    let data = Qubit(0);
    let ancilla = Qubit(1);
    let mut b = CircuitBuilder::new(2);
    b.gate(Gate::RY(0.9), &[data]);
    for _ in 0..cycles {
        b.gate(Gate::RY(0.8), &[ancilla]);
        b.gate(Gate::CZ, &[data, ancilla]);
        b.gate(Gate::RY(-0.4), &[ancilla]);
        // Failure branch: undo the partial rotation on the data qubit.
        b.feedback(ancilla).on_one(Gate::RY(-0.6), &[data]).finish();
        // Re-arm the ancilla for the next round.
        b.reset(ancilla);
    }
    b.build()
}

/// Active reset of `num_qubits` qubits, each prepared in `|+⟩` and reset by
/// measurement plus conditional flip (case 3 — the flip targets the measured
/// qubit, so prediction can only hide the classical-processing latency).
///
/// # Panics
///
/// Panics when `num_qubits` is zero.
#[must_use]
pub fn active_reset(num_qubits: usize) -> Circuit {
    assert!(num_qubits > 0, "reset needs at least one qubit");
    let mut b = CircuitBuilder::new(num_qubits);
    for q in 0..num_qubits {
        b.gate(Gate::H, &[Qubit(q)]);
    }
    for q in 0..num_qubits {
        b.feedback(Qubit(q)).on_one(Gate::X, &[Qubit(q)]).finish();
    }
    b.build()
}

/// Random benchmark: `num_gates` random basis gates split evenly before and
/// after one case-1 feedback, on a small register (paper: 25–150 gates).
///
/// # Panics
///
/// Panics when `num_gates` is zero.
#[must_use]
pub fn random_feedback(num_gates: usize, rng: &mut impl Rng) -> Circuit {
    assert!(num_gates > 0, "random benchmark needs gates");
    const N: usize = 4;
    let mut b = CircuitBuilder::new(N);
    let push_random = |b: &mut CircuitBuilder, rng: &mut dyn rand::RngCore, count: usize| {
        for _ in 0..count {
            let q = Qubit(rng.gen_range(0..N));
            match rng.gen_range(0..4) {
                0 => b.gate(Gate::RX(rng.gen_range(-3.0..3.0)), &[q]),
                1 => b.gate(Gate::RY(rng.gen_range(-3.0..3.0)), &[q]),
                2 => b.gate(Gate::RZ(rng.gen_range(-3.0..3.0)), &[q]),
                _ => {
                    let mut q2 = Qubit(rng.gen_range(0..N));
                    while q2 == q {
                        q2 = Qubit(rng.gen_range(0..N));
                    }
                    b.gate(Gate::CZ, &[q, q2])
                }
            };
        }
    };
    push_random(&mut b, rng, num_gates / 2);
    b.feedback(Qubit(0)).on_one(Gate::X, &[Qubit(1)]).finish();
    push_random(&mut b, rng, num_gates - num_gates / 2);
    b.build()
}

/// One cycle-repeated surface-17 Z-stabilizer extraction circuit with
/// feedback-based syndrome reset and one data-qubit pre-correction per
/// cycle — the QEC workload of §6.2 (Fig. 11), restricted to the bit-flip
/// sector so syndrome priors stay strongly skewed toward 0 (the property the
/// paper's QEC latency results rely on).
///
/// Qubits 0–8 are data (row-major 3×3 grid), 9–12 are the Z-syndrome
/// ancillas for supports {0,1,3,4}, {4,5,7,8}, {2,5}, {3,6}.
///
/// # Panics
///
/// Panics when `cycles` is zero.
#[must_use]
pub fn surface17_z_cycle(cycles: usize) -> Circuit {
    assert!(cycles > 0, "qec needs at least one cycle");
    const SUPPORTS: [&[usize]; 4] = [&[0, 1, 3, 4], &[4, 5, 7, 8], &[2, 5], &[3, 6]];
    let mut b = CircuitBuilder::new(13);
    for _ in 0..cycles {
        for (s, support) in SUPPORTS.iter().enumerate() {
            let ancilla = Qubit(9 + s);
            for &d in *support {
                b.gate(Gate::CNOT, &[Qubit(d), ancilla]);
            }
            // Pre-correction (case 1): flip a representative data qubit of
            // the support when the syndrome fires, then syndrome reset
            // handled by a dedicated case-3 feedback below.
            b.feedback(ancilla)
                .on_one(Gate::X, &[Qubit(support[0])])
                .finish();
            // Active reset of the syndrome ancilla for the next round.
            b.feedback(ancilla).on_one(Gate::X, &[ancilla]).finish();
        }
    }
    b.build()
}

/// Magic-state-injection-style circuit (paper §3, case 2): each round
/// measures an ancilla whose branch applies a **two-qubit gate involving the
/// measured qubit** — the pattern that forces pre-execution onto a spare
/// ancilla (`PreExecCase::AncillaRemap`). Appears in logical-T-gate
/// construction (Gupta et al., the paper's [17]).
///
/// Qubit 0 is the data qubit, qubit 1 the (reused) injection ancilla.
///
/// # Panics
///
/// Panics when `rounds` is zero.
#[must_use]
pub fn magic_injection(rounds: usize) -> Circuit {
    assert!(rounds > 0, "magic injection needs at least one round");
    let data = Qubit(0);
    let ancilla = Qubit(1);
    let mut b = CircuitBuilder::new(2);
    b.gate(Gate::RY(0.7), &[data]);
    for _ in 0..rounds {
        // Prepare the resource state on the ancilla and measure it in a
        // rotated basis.
        b.gate(Gate::H, &[ancilla]);
        b.gate(Gate::T, &[ancilla]);
        b.gate(Gate::H, &[ancilla]);
        // On outcome 1 the injected rotation needs a corrective entangling
        // operation between the (collapsed) ancilla and the data qubit —
        // the case-2 situation: the branch uses the measured qubit.
        b.feedback(ancilla)
            .on_one(Gate::CZ, &[ancilla, data])
            .on_one(Gate::S, &[data])
            .finish();
        b.reset(ancilla);
    }
    b.build()
}

/// A single case-1 feedback whose measured qubit is prepared close to `|0⟩`
/// (`p1 = sin²(angle/2)`), reproducing the skewed syndrome priors of QEC.
/// Used by the Fig. 12 (a) and Fig. 14 harnesses.
#[must_use]
pub fn skewed_correction(angle: f64) -> Circuit {
    let mut b = CircuitBuilder::new(2);
    b.gate(Gate::RY(angle), &[Qubit(0)]);
    b.feedback(Qubit(0)).on_one(Gate::X, &[Qubit(1)]).finish();
    b.build()
}

/// A single case-3 reset whose measured qubit is prepared close to `|0⟩` —
/// the QEC syndrome-reset pattern of Fig. 12 (a).
#[must_use]
pub fn skewed_reset(angle: f64) -> Circuit {
    let mut b = CircuitBuilder::new(1);
    b.gate(Gate::RY(angle), &[Qubit(0)]);
    b.feedback(Qubit(0)).on_one(Gate::X, &[Qubit(0)]).finish();
    b.build()
}

/// One of the paper's six benchmarks, with its sweep parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Quantum random walk with the given step count.
    Qrw(usize),
    /// Remote CNOT with the given depth.
    Rcnot(usize),
    /// Deterministic teleportation with the given distance.
    Dqt(usize),
    /// Repeat-until-success QNN with the given cycle count.
    RusQnn(usize),
    /// Simultaneous active reset of the given qubit count.
    Reset(usize),
    /// Random circuit with the given gate count.
    Random(usize),
}

impl Benchmark {
    /// Benchmark family name as used in the paper's tables.
    #[must_use]
    pub fn family(&self) -> &'static str {
        match self {
            Benchmark::Qrw(_) => "QRW",
            Benchmark::Rcnot(_) => "RCNOT",
            Benchmark::Dqt(_) => "DQT",
            Benchmark::RusQnn(_) => "RUS-QNN",
            Benchmark::Reset(_) => "reset",
            Benchmark::Random(_) => "Random",
        }
    }

    /// The sweep parameter (steps / depth / distance / cycles / qubits /
    /// gates).
    #[must_use]
    pub fn parameter(&self) -> usize {
        match *self {
            Benchmark::Qrw(p)
            | Benchmark::Rcnot(p)
            | Benchmark::Dqt(p)
            | Benchmark::RusQnn(p)
            | Benchmark::Reset(p)
            | Benchmark::Random(p) => p,
        }
    }

    /// Builds the circuit. Random benchmarks are seeded deterministically
    /// from the gate count so repeated builds agree.
    #[must_use]
    pub fn circuit(&self) -> Circuit {
        match *self {
            Benchmark::Qrw(steps) => qrw(steps),
            Benchmark::Rcnot(depth) => rcnot(depth),
            Benchmark::Dqt(distance) => dqt(distance),
            Benchmark::RusQnn(cycles) => rus_qnn(cycles),
            Benchmark::Reset(n) => active_reset(n),
            Benchmark::Random(gates) => {
                let mut rng = artery_num::rng::rng_for(&format!("workload/random/{gates}"));
                random_feedback(gates, &mut rng)
            }
        }
    }

    /// The Table 1 sweep of the paper.
    #[must_use]
    pub fn table1_sweep() -> Vec<Benchmark> {
        let mut out = Vec::new();
        for steps in [1usize, 5, 15, 25] {
            out.push(Benchmark::Qrw(steps));
        }
        for depth in 1..=4 {
            out.push(Benchmark::Rcnot(depth));
        }
        for cycles in 1..=4 {
            out.push(Benchmark::RusQnn(cycles));
        }
        for distance in 1..=4 {
            out.push(Benchmark::Dqt(distance));
        }
        out.push(Benchmark::Reset(8));
        for gates in [25usize, 50, 75, 100] {
            out.push(Benchmark::Random(gates));
        }
        out
    }

    /// One representative instance per family (ablation figures).
    #[must_use]
    pub fn representatives() -> Vec<Benchmark> {
        vec![
            Benchmark::Qrw(5),
            Benchmark::Rcnot(3),
            Benchmark::Dqt(3),
            Benchmark::RusQnn(3),
            Benchmark::Reset(4),
            Benchmark::Random(50),
        ]
    }

    /// The corpus the trace-driven evaluation harness records: one instance
    /// per family, so a replayed predictor panel sees every §3 case and
    /// every branch-prior regime. Each benchmark becomes one trace shard
    /// that the `trace_eval` harness replays on its own worker thread.
    #[must_use]
    pub fn trace_corpus() -> Vec<Benchmark> {
        Self::representatives()
    }

    /// The Bell-measurement feed-forward corpus the metrics harness
    /// aggregates (`run_all` → `BENCH_metrics.json`): teleportation chains
    /// of growing depth, whose per-hop feed-forward corrections exercise
    /// one feedback site per hop with near-50/50 priors.
    #[must_use]
    pub fn bell_feedback_corpus() -> Vec<Benchmark> {
        vec![Benchmark::Dqt(1), Benchmark::Dqt(2), Benchmark::Dqt(3)]
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({})", self.family(), self.parameter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use artery_circuit::analysis::{analyze_circuit, PreExecCase};

    #[test]
    fn qrw_structure() {
        let c = qrw(25);
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.feedback_count(), 25);
        for a in analyze_circuit(&c) {
            assert_eq!(a.case, PreExecCase::Independent);
        }
    }

    #[test]
    fn rcnot_feedback_scales_with_depth() {
        for depth in 1..=6 {
            let c = rcnot(depth);
            assert_eq!(c.feedback_count(), depth);
            assert_eq!(c.num_qubits(), depth + 2);
        }
    }

    #[test]
    fn rcnot_is_case1() {
        for a in analyze_circuit(&rcnot(4)) {
            assert_eq!(a.case, PreExecCase::Independent);
        }
    }

    #[test]
    fn dqt_structure() {
        let c = dqt(6);
        assert_eq!(c.feedback_count(), 6);
        assert_eq!(c.num_qubits(), 7);
        for a in analyze_circuit(&c) {
            assert_eq!(a.case, PreExecCase::Independent);
        }
    }

    #[test]
    fn rus_qnn_structure() {
        let c = rus_qnn(4);
        assert_eq!(c.feedback_count(), 4);
        assert_eq!(c.num_qubits(), 2);
    }

    #[test]
    fn reset_is_case3() {
        let c = active_reset(5);
        assert_eq!(c.feedback_count(), 5);
        for a in analyze_circuit(&c) {
            assert_eq!(a.case, PreExecCase::OnMeasuredQubit);
        }
    }

    #[test]
    fn random_has_requested_gates() {
        let mut rng = artery_num::rng::rng_for("test/random-workload");
        let c = random_feedback(60, &mut rng);
        assert_eq!(c.gate_count(), 60);
        assert_eq!(c.feedback_count(), 1);
    }

    #[test]
    fn benchmark_enum_round_trip() {
        for b in Benchmark::table1_sweep() {
            let c = b.circuit();
            assert!(c.feedback_count() > 0, "{b} has no feedback");
        }
    }

    #[test]
    fn benchmark_circuit_is_deterministic() {
        let a = Benchmark::Random(50).circuit();
        let b = Benchmark::Random(50).circuit();
        assert_eq!(a, b);
    }

    #[test]
    fn table1_sweep_covers_all_families() {
        let sweep = Benchmark::table1_sweep();
        let families: std::collections::HashSet<&str> =
            sweep.iter().map(Benchmark::family).collect();
        assert_eq!(families.len(), 6);
    }

    #[test]
    fn display_format() {
        assert_eq!(Benchmark::Qrw(5).to_string(), "QRW(5)");
    }

    #[test]
    fn trace_corpus_covers_all_families() {
        let corpus = Benchmark::trace_corpus();
        let families: std::collections::HashSet<&str> =
            corpus.iter().map(Benchmark::family).collect();
        assert_eq!(families.len(), 6);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_panics() {
        let _ = qrw(0);
    }

    #[test]
    fn surface17_structure() {
        let c = surface17_z_cycle(2);
        assert_eq!(c.num_qubits(), 13);
        // 4 stabilizers × (correction + reset) × 2 cycles.
        assert_eq!(c.feedback_count(), 16);
        let analyses = analyze_circuit(&c);
        let corrections = analyses
            .iter()
            .filter(|a| a.case == PreExecCase::Independent)
            .count();
        let resets = analyses
            .iter()
            .filter(|a| a.case == PreExecCase::OnMeasuredQubit)
            .count();
        assert_eq!(corrections, 8);
        assert_eq!(resets, 8);
    }

    #[test]
    fn qrw_line_structure() {
        let c = qrw_line(6, 2);
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.feedback_count(), 6);
        for a in analyze_circuit(&c) {
            assert_eq!(a.case, PreExecCase::Independent);
        }
        // 1-bit variant matches qrw's shape.
        assert_eq!(qrw_line(4, 1).num_qubits(), 2);
    }

    #[test]
    #[should_panic(expected = "1 or 2 bits")]
    fn qrw_line_rejects_wide_registers() {
        let _ = qrw_line(3, 3);
    }

    #[test]
    fn magic_injection_is_case2() {
        let c = magic_injection(3);
        assert_eq!(c.feedback_count(), 3);
        let analyses = analyze_circuit(&c);
        for a in &analyses {
            assert_eq!(a.case, PreExecCase::AncillaRemap);
            assert!(a.ancilla.is_some(), "case 2 must allocate an ancilla");
        }
        // Distinct ancillas above the register.
        assert_eq!(analyses[0].ancilla, Some(Qubit(2)));
        assert_eq!(analyses[1].ancilla, Some(Qubit(3)));
    }

    #[test]
    fn skewed_circuits_have_expected_cases() {
        let corr = skewed_correction(0.2);
        assert_eq!(analyze_circuit(&corr)[0].case, PreExecCase::Independent);
        let reset = skewed_reset(0.2);
        assert_eq!(
            analyze_circuit(&reset)[0].case,
            PreExecCase::OnMeasuredQubit
        );
    }

    #[test]
    fn bell_feedback_corpus_is_feed_forward_teleportation() {
        let corpus = Benchmark::bell_feedback_corpus();
        assert_eq!(corpus.len(), 3);
        for (k, bench) in corpus.iter().enumerate() {
            assert!(matches!(bench, Benchmark::Dqt(_)), "{bench}");
            let circuit = bench.circuit();
            // One feed-forward correction per teleportation hop.
            assert_eq!(circuit.feedback_count(), k + 1);
        }
    }
}
