//! Criterion benchmarks for the gate-fusion kernel engine against the
//! per-gate paths it replaces: a composed one-qubit run vs eight sequential
//! `apply_gate` passes, a table-driven diagonal sweep vs eight strided phase
//! passes, the lane-split `prob_one` reduction, and a whole fused feedback
//! shot vs per-gate execution. Both arms of every pair are pinned to 1e-12
//! agreement by the fusion test suite, so the ratios are pure speed. The
//! kernel cases run on an 18-qubit (4 MiB) state and mutate one persistent
//! state per case (the gates are unitary, so the workload is identical
//! every iteration).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use artery_circuit::{CircuitBuilder, FusedOp, FusedProgram, Gate, Instruction, Qubit};
use artery_sim::{Executor, NoiseModel, SequentialHandler, ShotBuffers, StateVector};

const QUBITS: usize = 18;

/// A state with non-trivial amplitude on every basis vector, so no kernel
/// gets to skate on zeros.
fn scrambled(n: usize) -> StateVector {
    let mut state = StateVector::zero(n);
    for q in 0..n {
        state.apply_gate(Gate::H, &[Qubit(q)]);
        state.apply_gate(Gate::RX(0.3 + q as f64), &[Qubit(q)]);
        state.apply_gate(Gate::RZ(0.7 * q as f64 + 0.1), &[Qubit(q)]);
    }
    for q in 0..n.saturating_sub(1) {
        state.apply_gate(Gate::CNOT, &[Qubit(q), Qubit(q + 1)]);
    }
    state
}

fn bench_fusion(c: &mut Criterion) {
    let base = scrambled(QUBITS);
    let mut group = c.benchmark_group("fusion");

    // A run of 8 one-qubit gates on one qubit: one composed-matrix pass vs
    // eight kernel passes.
    let run = [
        Gate::RX(0.3),
        Gate::RZ(0.7),
        Gate::H,
        Gate::T,
        Gate::RY(-0.4),
        Gate::S,
        Gate::RZ(1.1),
        Gate::H,
    ];
    let q = Qubit(QUBITS / 2);
    let run_circuit = {
        let mut b = CircuitBuilder::new(QUBITS);
        for g in run {
            b.gate(g, &[q]);
        }
        b.build()
    };
    let matrix = match FusedProgram::fuse(&run_circuit).ops() {
        [FusedOp::Run1 { matrix, .. }] => *matrix,
        other => panic!("run must fuse to one op, got {other:?}"),
    };
    group.bench_function("run1_x8/unfused", |b| {
        let mut s = base.clone();
        b.iter(|| {
            for g in run {
                s.apply_gate(g, &[q]);
            }
            black_box(s.amplitude(0))
        })
    });
    group.bench_function("run1_x8/fused", |b| {
        let mut s = base.clone();
        b.iter(|| {
            s.apply_fused_one(&matrix, q);
            black_box(s.amplitude(0))
        })
    });

    // A chain of 8 diagonal gates (with CZs): one batched phase sweep vs
    // eight strided passes.
    let diag_circuit = {
        let mut b = CircuitBuilder::new(QUBITS);
        b.gate(Gate::S, &[Qubit(1)]);
        b.gate(Gate::RZ(0.5), &[Qubit(4)]);
        b.gate(Gate::CZ, &[Qubit(2), Qubit(9)]);
        b.gate(Gate::T, &[Qubit(7)]);
        b.gate(Gate::Z, &[Qubit(0)]);
        b.gate(Gate::Tdg, &[Qubit(11)]);
        b.gate(Gate::RZ(-1.3), &[Qubit(5)]);
        b.gate(Gate::CZ, &[Qubit(3), Qubit(8)]);
        b.build()
    };
    let (dqubits, table) = match FusedProgram::fuse(&diag_circuit).ops() {
        [FusedOp::DiagSweep { qubits, table, .. }] => (qubits.clone(), table.clone()),
        other => panic!("diag chain must fuse to one sweep, got {other:?}"),
    };
    group.bench_function("diag_sweep_x8/unfused", |b| {
        let mut s = base.clone();
        b.iter(|| {
            for inst in diag_circuit.instructions() {
                if let Instruction::Gate(g) = inst {
                    s.apply_gate(g.gate, &g.qubits);
                }
            }
            black_box(s.amplitude(0))
        })
    });
    group.bench_function("diag_sweep_x8/fused", |b| {
        let mut s = base.clone();
        b.iter(|| {
            s.apply_diag_sweep(&dqubits, &table);
            black_box(s.amplitude(0))
        })
    });

    // prob_one: sequential strided sum vs the four-accumulator lane split.
    group.bench_function("prob_one/sequential", |b| {
        b.iter(|| black_box(base.prob_one(black_box(q))))
    });
    group.bench_function("prob_one/lanes", |b| {
        b.iter(|| black_box(base.prob_one_lanes(black_box(q))))
    });

    // A whole feedback shot: per-gate execution vs the cached fused program
    // with reused buffers.
    let circuit = artery_workloads::qrw(8);
    let program = FusedProgram::fuse(&circuit);
    group.bench_function("qrw_shot/unfused", |b| {
        let mut exec = Executor::new(NoiseModel::noiseless()).without_final_state();
        let mut rng = artery_num::rng::rng_for("bench/fusion/shot");
        b.iter(|| {
            let rec = exec.run(&circuit, &mut SequentialHandler::default(), &mut rng);
            black_box(rec.total_ns)
        })
    });
    group.bench_function("qrw_shot/fused", |b| {
        let mut exec = Executor::new(NoiseModel::noiseless()).without_final_state();
        let mut rng = artery_num::rng::rng_for("bench/fusion/shot");
        let mut buffers = ShotBuffers::for_program(&program);
        b.iter(|| {
            let summary = exec.run_fused_with(
                &program,
                &mut SequentialHandler::default(),
                &mut rng,
                &mut buffers,
            );
            black_box(summary.total_ns)
        })
    });

    group.finish();
}

criterion_group!(fusion_bench, bench_fusion);
criterion_main!(fusion_bench);
