//! Criterion micro-benchmarks for the trig-free, allocation-free readout
//! fast path: each group pits the naive per-sample `cis`/allocating oracle
//! against the shared [`PhaseTable`](artery_readout::PhaseTable) +
//! scratch-buffer `*_into` implementation. The two arms are bit-identical
//! (pinned by the equivalence tests); only the speed differs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use artery_core::{ArteryConfig, BranchPredictor, Calibration};
use artery_readout::{Demodulator, ReadoutModel, ReadoutPulse};

fn bench_synthesize(c: &mut Criterion) {
    let model = ReadoutModel::paper();
    let table = model.phase_table();
    let mut naive_rng = artery_num::rng::rng_for("bench/readout/synth");
    c.bench_function("readout/synthesize/naive_cis", |b| {
        b.iter(|| black_box(model.synthesize(black_box(true), &mut naive_rng)))
    });
    let mut table_rng = artery_num::rng::rng_for("bench/readout/synth");
    let mut out = ReadoutPulse::default();
    c.bench_function("readout/synthesize/table_into", |b| {
        b.iter(|| {
            model.synthesize_into(&table, black_box(true), &mut table_rng, &mut out);
            black_box(out.samples.len())
        })
    });
}

fn bench_demodulate(c: &mut Criterion) {
    let model = ReadoutModel::paper();
    let table = model.phase_table();
    let demod = Demodulator::for_model(&model, 30.0);
    let pulse = model.synthesize(true, &mut artery_num::rng::rng_for("bench/readout/demod"));
    c.bench_function("readout/cumulative/naive_cis", |b| {
        b.iter(|| black_box(demod.cumulative_trajectory(black_box(&pulse))))
    });
    let mut traj = Vec::new();
    c.bench_function("readout/cumulative/table_into", |b| {
        b.iter(|| {
            demod.cumulative_trajectory_into(&table, black_box(&pulse), &mut traj);
            black_box(traj.len())
        })
    });
}

fn bench_predict(c: &mut Criterion) {
    let config = ArteryConfig {
        train_pulses: 200,
        ..ArteryConfig::paper()
    };
    let cal = Calibration::train(&config, &mut artery_num::rng::rng_for("bench/readout/cal"));
    let pred = BranchPredictor::new(&cal, &config);
    let pulse = cal
        .model()
        .synthesize(true, &mut artery_num::rng::rng_for("bench/readout/pulse"));
    // The pre-PR composition: demodulate into a Vec<IqPoint>, classify into
    // a Vec<bool>, then walk the windows allocating the update stream.
    c.bench_function("readout/predict_shot/naive_composed", |b| {
        b.iter(|| {
            let traj = cal.demod().cumulative_trajectory(black_box(&pulse));
            let states: Vec<bool> = traj.iter().map(|&iq| cal.centers().classify(iq)).collect();
            black_box(pred.predict_states(&states, black_box(0.5)))
        })
    });
    let mut states = Vec::new();
    let mut updates = Vec::new();
    c.bench_function("readout/predict_shot/fused_into", |b| {
        b.iter(|| {
            black_box(pred.predict_shot_into(
                black_box(&pulse),
                black_box(0.5),
                &mut states,
                &mut updates,
            ))
        })
    });
}

criterion_group!(benches, bench_synthesize, bench_demodulate, bench_predict);
criterion_main!(benches);
