//! Criterion micro-benchmarks for the streaming QEC decode engine: the
//! chunked-DP oracle (`MatchingDecoder::decode`) against the zero-alloc
//! cluster-then-match path (`decode_into`), the union-find clustering pass
//! alone, and one sliding-window streaming step. Workloads use the
//! phenomenological noise model at the fig12d operating points; the two
//! decode arms are bit-identical on small event sets (pinned by
//! `tests/qec_decode.rs`), only the speed differs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use artery_num::rng::rng_for;
use artery_qec::matching::{DetectionEvent, MatchingDecoder};
use artery_qec::{
    DecoderScratch, MatchingMemoryExperiment, MatchingShotScratch, RotatedSurfaceCode,
    SlidingWindowDecoder,
};
use rand::Rng;

/// One shot's detection events under phenomenological noise.
fn event_set(
    code: &RotatedSurfaceCode,
    p: f64,
    cycles: usize,
    rng: &mut impl Rng,
) -> Vec<DetectionEvent> {
    let mut frame = vec![false; code.num_data_qubits()];
    let mut rounds = Vec::with_capacity(cycles + 1);
    for _ in 0..cycles {
        for slot in frame.iter_mut() {
            if rng.gen::<f64>() < p {
                *slot = !*slot;
            }
        }
        let mut syndrome = code.z_syndrome(&frame);
        for bit in &mut syndrome {
            if rng.gen::<f64>() < p {
                *bit = !*bit;
            }
        }
        rounds.push(syndrome);
    }
    rounds.push(code.z_syndrome(&frame));
    MatchingDecoder::detection_events(&rounds)
}

fn bench_decode(c: &mut Criterion) {
    // The fig12d speedup workload: dense enough that shots overflow one
    // 16-event chunk, so the chunked baseline pays its full 2^16 DP.
    let code = RotatedSurfaceCode::new(7);
    let decoder = MatchingDecoder::build(&code);
    let mut rng = rng_for("bench/qec/decode");
    let sets: Vec<Vec<DetectionEvent>> = (0..16)
        .map(|_| event_set(&code, 0.008, 20, &mut rng))
        .collect();
    c.bench_function("qec/decode/d7/chunked", |b| {
        b.iter(|| {
            for set in &sets {
                black_box(decoder.decode(black_box(set)));
            }
        })
    });
    let mut scratch = DecoderScratch::new();
    let mut out = Vec::new();
    c.bench_function("qec/decode/d7/component_into", |b| {
        b.iter(|| {
            for set in &sets {
                black_box(decoder.decode_into(black_box(set), &mut scratch, &mut out));
            }
        })
    });
}

fn bench_clustering(c: &mut Criterion) {
    // Clustering alone, via a decode whose components are all singletons
    // or pairs (the realistic below-threshold shape at d = 5).
    let code = RotatedSurfaceCode::new(5);
    let decoder = MatchingDecoder::build(&code);
    let mut rng = rng_for("bench/qec/cluster");
    let sets: Vec<Vec<DetectionEvent>> = (0..64)
        .map(|_| event_set(&code, 0.004, 10, &mut rng))
        .collect();
    let mut scratch = DecoderScratch::new();
    let mut out = Vec::new();
    c.bench_function("qec/cluster/d5/decode_into", |b| {
        b.iter(|| {
            for set in &sets {
                black_box(decoder.decode_into(black_box(set), &mut scratch, &mut out));
            }
        })
    });
}

fn bench_window(c: &mut Criterion) {
    // One full streamed shot: rounds pushed one by one plus the flush —
    // the per-round step cost is what a feedback controller would pay.
    let exp = MatchingMemoryExperiment::new(RotatedSurfaceCode::new(5), 0.004, 0.004);
    let mut window = SlidingWindowDecoder::new(exp.decoder().clone());
    let mut scratch = MatchingShotScratch::new();
    c.bench_function("qec/window/d5/streamed_shot", |b| {
        let mut rng = rng_for("bench/qec/window");
        b.iter(|| {
            let shot = exp.run_shot_windowed(10, &mut rng, &mut scratch, &mut window);
            black_box(shot.logical_error)
        })
    });
}

criterion_group!(benches, bench_decode, bench_clustering, bench_window);
criterion_main!(benches);
