//! Criterion benchmarks of the end-to-end per-shot engine: a full feedback
//! resolution (pulse synthesis + windowed prediction + timing) and complete
//! benchmark shots for ARTERY and the sequential baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use artery_baselines::Baseline;
use artery_core::{ArteryConfig, ArteryController, Calibration};
use artery_qec::{MemoryExperiment, RotatedSurfaceCode};
use artery_sim::{Executor, NoiseModel};

fn bench_engine_shots(c: &mut Criterion) {
    let config = ArteryConfig {
        train_pulses: 400,
        ..ArteryConfig::paper()
    };
    let calibration = Calibration::train(&config, &mut artery_num::rng::rng_for("bench/engine"));
    for (name, circuit) in [
        ("reset1", artery_workloads::active_reset(1)),
        ("qrw5", artery_workloads::qrw(5)),
        ("rcnot3", artery_workloads::rcnot(3)),
    ] {
        let mut exec = Executor::new(NoiseModel::noiseless());
        let mut controller = ArteryController::new(&circuit, &config, &calibration);
        let mut rng = artery_num::rng::rng_for("bench/engine/artery");
        c.bench_function(&format!("engine/artery_shot/{name}"), |b| {
            b.iter(|| black_box(exec.run(&circuit, &mut controller, &mut rng)))
        });
        let mut baseline = Baseline::qubic();
        let mut rng = artery_num::rng::rng_for("bench/engine/qubic");
        c.bench_function(&format!("engine/qubic_shot/{name}"), |b| {
            b.iter(|| black_box(exec.run(&circuit, &mut baseline, &mut rng)))
        });
    }
}

fn bench_qec_memory(c: &mut Criterion) {
    let exp = MemoryExperiment::new(RotatedSurfaceCode::new(3), 0.02, 0.02);
    let mut rng = artery_num::rng::rng_for("bench/qec");
    c.bench_function("qec/memory_shot_25_cycles", |b| {
        b.iter(|| black_box(exp.run_shot(25, &mut rng)))
    });
}

criterion_group!(benches, bench_engine_shots, bench_qec_memory);
criterion_main!(benches);
